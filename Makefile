# Targets mirror the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench sweep fmt fmt-check vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled tests on the packages with real concurrency: the executors,
# every scheduler family, and the end-to-end integration matrix.
race:
	$(GO) test -race ./internal/core/... ./internal/sched/... ./internal/integration/...

# Repository-level benchmarks (one per table/figure of the paper).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Worker-scaling sweep: regenerates BENCH_concurrent.json (see EXPERIMENTS.md).
sweep:
	$(GO) run ./cmd/relaxbench -sweep -vertices 100000 -edges 1000000 -json BENCH_concurrent.json

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt-check vet build test race
