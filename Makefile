# Targets mirror the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench sweep bench-smoke benchdiff profile fuzz-smoke serve serve-smoke serve-cluster serve-cluster-smoke crash-smoke fmt fmt-check vet lint doc check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled tests on the packages with real concurrency: the executors
# (static and dynamic), every scheduler family, the dynamic-priority
# workloads (sssp, kcore, pagerank), the workload registry, the job service
# (worker pool, graph cache, drain) and its daemon, the trace/metrics
# observability layer, and the end-to-end
# integration matrix.
race:
	$(GO) test -race ./internal/core/... ./internal/sched/... \
		./internal/algos/sssp/... ./internal/algos/kcore/... \
		./internal/algos/pagerank/... ./internal/workload/... \
		./internal/api/... ./internal/ranktrack/... \
		./internal/control/... ./internal/wal/... \
		./internal/trace/... ./internal/metricsexport/... \
		./internal/service/... ./cmd/relaxd/... \
		./internal/gateway/... ./cmd/relaxgw/... \
		./internal/integration/...

# Repository-level benchmarks (one per table/figure of the paper).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Worker-scaling sweep: regenerates BENCH_concurrent.json across the tracked
# entries — MIS on the historical 100k G(n,p) instance, the million-vertex
# instance and the power-law instance; the dynamic-priority workloads
# (sssp, kcore) on the 100k and grid classes; and pagerank on the 100k and
# power-law classes (at the tracked tolerance 1e-6 over a reduced grid —
# push work scales with log(1/tol), see EXPERIMENTS.md). Later invocations
# merge into the file written by the first.
sweep:
	$(GO) run ./cmd/relaxbench -sweep -class hundredk,million,powerlaw -json BENCH_concurrent.json
	$(GO) run ./cmd/relaxbench -sweep -algo sssp,kcore -class hundredk,grid -append -json BENCH_concurrent.json
	$(GO) run ./cmd/relaxbench -sweep -algo pagerank -class hundredk,powerlaw -tol 1e-6 \
		-trials 1 -batches 16,64 -append -json BENCH_concurrent.json

# Short sweep for CI: single trial, one batch size, gated against the
# committed BENCH_concurrent.json — fails on a >25% relaxed-multiqueue
# throughput regression for concurrent MIS, the dynamic sssp workload, or
# residual-push pagerank. Writes its results over BENCH_concurrent.json (CI
# uploads them as an artifact; locally, git restore to discard).
bench-smoke:
	@cp BENCH_concurrent.json /tmp/relaxsched-bench-baseline.json
	$(GO) run ./cmd/relaxbench -sweep -class hundredk,million -trials 1 -batches 16,64 \
		-json BENCH_concurrent.json \
		-baseline /tmp/relaxsched-bench-baseline.json -max-regression 0.25
	$(GO) run ./cmd/relaxbench -sweep -algo sssp -class hundredk -trials 1 -batches 16,64 \
		-append -json BENCH_concurrent.json \
		-baseline /tmp/relaxsched-bench-baseline.json -max-regression 0.25
	$(GO) run ./cmd/relaxbench -sweep -algo pagerank -class hundredk -tol 1e-6 -trials 1 -batches 16,64 \
		-append -json BENCH_concurrent.json \
		-baseline /tmp/relaxsched-bench-baseline.json -max-regression 0.25

# Old-vs-new benchmark diff over the pinned hot-path set (multiqueue churn,
# worker-affine handle churn, 1-worker concurrent sssp and pagerank): the
# base ref (BASE, default origin/main) is benchmarked in a throwaway git
# worktree and compared against the working tree. Fails on a >25% median
# ns/op regression in any benchmark present in both trees; uses benchstat
# for the statistics table when installed (CI installs it). See
# EXPERIMENTS.md "Profiling methodology" for reading the output.
benchdiff:
	BENCHDIFF_BASE="$(BASE)" ./scripts/benchdiff.sh

# CPU+heap profile of a relaxbench run rendered as pprof top-25 tables.
# Defaults to the concurrent MIS panel on the hundredk class; override with
# e.g. `make profile PROFILE_ARGS="-algo sssp -class grid -threads 2"`.
# Raw profiles stay in /tmp/relaxsched-profile for interactive `go tool
# pprof` sessions.
PROFILE_ARGS ?= -class hundredk -threads 1,2 -trials 1
PROFILE_DIR ?= /tmp/relaxsched-profile
profile: build
	@mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/relaxbench $(PROFILE_ARGS) \
		-cpuprofile $(PROFILE_DIR)/cpu.pprof -memprofile $(PROFILE_DIR)/mem.pprof
	@echo "--- CPU profile (top 25 by cumulative time) ---"
	$(GO) tool pprof -top -nodecount=25 -cum $(PROFILE_DIR)/cpu.pprof
	@echo "--- Heap profile (top 25 by in-use space) ---"
	$(GO) tool pprof -top -nodecount=25 -inuse_space $(PROFILE_DIR)/mem.pprof
	@echo "profiles written to $(PROFILE_DIR)/{cpu,mem}.pprof"

# Run the relaxd job service locally on the default port. Submit with e.g.
#   curl -s localhost:8080/v1/jobs -d '{"workload":"mis","mode":"concurrent",
#     "graph":{"n":100000,"edges":1000000,"seed":7}}'
serve:
	$(GO) run ./cmd/relaxd

# Service smoke, as run by CI: build the relaxd binary, boot it, drive a
# MIS and a PageRank job over real HTTP, assert both verify and that a
# repeated identical submit hits the graph cache, scrape the Prometheus
# exposition, fetch a finished job's trace, hit the -debug-addr expvar
# listener, then SIGTERM and require a clean drain (exit 0).
serve-smoke:
	RELAXSCHED_SMOKE_SERVE=1 $(GO) test -run '^TestServeSmokeBinary$$' -v ./cmd/relaxd/

# Run a 2-backend cluster locally: two relaxd nodes on 8081/8082 plus the
# relaxgw gateway on 8080. Submit through the gateway exactly as to a
# single node, e.g.
#   curl -s localhost:8080/v1/jobs -d '{"workload":"mis","mode":"concurrent",
#     "graph":{"n":100000,"edges":1000000,"seed":7}}'
# GET /v1/metrics on 8080 for the cluster aggregate (global rank error,
# per-backend rows). Ctrl-C stops all three.
serve-cluster:
	@trap 'kill 0' INT TERM; \
	$(GO) run ./cmd/relaxd -addr localhost:8081 & \
	$(GO) run ./cmd/relaxd -addr localhost:8082 & \
	sleep 1; \
	$(GO) run ./cmd/relaxgw -addr localhost:8080 \
		-backends http://localhost:8081,http://localhost:8082 & \
	wait

# Cluster smoke, as run by CI: build relaxd and relaxgw, boot two backends
# and the gateway, submit jobs through the gateway, assert graph-affinity
# routing via the owning node's cache hit and the cluster metrics
# aggregate, scrape the gateway's Prometheus exposition (distinct
# per-backend labels) and a job trace led by the gateway's submit hop,
# then SIGTERM all three and require clean exits.
serve-cluster-smoke:
	RELAXSCHED_SMOKE_CLUSTER=1 $(GO) test -run '^TestClusterSmokeBinary$$' -v ./cmd/relaxgw/

# Crash-injection smoke, as run by CI: build relaxd, run it with a
# write-ahead log, SIGKILL it at seeded random points under load, and after
# each restart assert zero lost acceptances and zero re-executed jobs
# (strict run with default segments, then a compaction-churn run with tiny
# segments), finishing with a torn-tail boot. RELAXSCHED_CRASH_SEED and
# RELAXSCHED_CRASH_ROUNDS tune the schedule; a CI seed reproduces locally.
crash-smoke:
	RELAXSCHED_SMOKE_CRASH=1 $(GO) test -run '^TestCrash(ReplaySmoke|CompactionChurn)Binary$$' -v ./internal/faultinject/

# 10-second fuzz of the edge-list parser and of the WAL record decoder, as
# run by CI. (`go test -fuzz` takes one fuzz target per invocation.)
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=10s -run '^FuzzReadEdgeList$$' ./internal/graph/
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=10s -run '^FuzzWALDecode$$' ./internal/wal/

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis as run by CI's lint job (on Go 1.22 and 1.23). staticcheck
# is installed there with `go install honnef.co/go/tools/cmd/staticcheck`;
# locally the target degrades gracefully when the binary is absent.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Documentation build check: go vet plus rendering every package's godoc
# (including the runnable Example functions, which `go test` executes and
# diff-checks against their Output comments), plus a dead-link check over
# every tracked markdown file.
doc: vet
	@for pkg in $$($(GO) list -f '{{if .GoFiles}}{{.ImportPath}}{{end}}' ./...); do \
		$(GO) doc -all $$pkg >/dev/null || exit 1; \
	done
	$(GO) test -run '^Example' ./internal/core/ ./internal/workload/ ./internal/control/
	./scripts/check-md-links.sh

check: fmt-check lint doc build test race
