// Repository-level benchmarks: one benchmark per table and figure of the
// paper's evaluation, plus the ablation benchmarks called out in DESIGN.md.
//
// The table/figure benchmarks use scaled-down inputs so that
// `go test -bench=. -benchmem` finishes in minutes on a development machine;
// the full-size reproductions are produced by cmd/relaxsim (-table1) and
// cmd/relaxbench, whose outputs are recorded in EXPERIMENTS.md. Custom
// benchmark metrics (extra-iterations, speedup) are reported with b.ReportMetric
// so the "shape" results of the paper are visible directly in the benchmark
// output.
package relaxsched_test

import (
	"fmt"
	"runtime"
	"testing"

	"relaxsched/internal/algos/mis"
	"relaxsched/internal/bench"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
	"relaxsched/internal/sim"
)

// ---------------------------------------------------------------------------
// Table 1: extra iterations of relaxed MIS as a function of k, |V|, |E|.
// ---------------------------------------------------------------------------

// BenchmarkTable1ExtraIterations regenerates the cells of Table 1 (at reduced
// trial counts): for each (|V|, |E|, k) cell it runs the MultiQueue-model
// relaxed MIS and reports the mean number of extra iterations as a custom
// metric.
func BenchmarkTable1ExtraIterations(b *testing.B) {
	for _, size := range []sim.Size{
		{Vertices: 1000, Edges: 10000},
		{Vertices: 1000, Edges: 30000},
		{Vertices: 1000, Edges: 100000},
		{Vertices: 10000, Edges: 10000},
		{Vertices: 10000, Edges: 30000},
		{Vertices: 10000, Edges: 100000},
	} {
		for _, k := range []int{4, 8, 16, 32, 64} {
			name := fmt.Sprintf("V=%d/E=%d/k=%d", size.Vertices, size.Edges, k)
			b.Run(name, func(b *testing.B) {
				total := 0.0
				for i := 0; i < b.N; i++ {
					cell, err := sim.RunCell(sim.Config{
						Algorithm: sim.AlgMIS,
						Scheduler: sim.SchedMultiQueue,
						Vertices:  size.Vertices,
						Edges:     size.Edges,
						K:         k,
						Trials:    1,
						Seed:      uint64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					total += cell.ExtraIterations.Mean
				}
				b.ReportMetric(total/float64(b.N), "extra-iters")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 2: concurrent MIS runtime, relaxed vs exact vs sequential, per class.
// ---------------------------------------------------------------------------

// figure2Benchmark runs one scaled-down Figure 2 panel cell: MIS on a G(n,p)
// graph of the given class with the given scheduler and thread count.
func figure2Benchmark(b *testing.B, class bench.Class, scheduler string, threads int) {
	b.Helper()
	r := rng.New(0xf16)
	p := float64(2*class.Edges) / (float64(class.Vertices) * float64(class.Vertices-1))
	g, err := graph.ParallelGNP(class.Vertices, p, runtime.GOMAXPROCS(0), r)
	if err != nil {
		b.Fatal(err)
	}
	labels := core.RandomLabels(g.NumVertices(), r)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch scheduler {
		case bench.SchedulerSequential:
			set := mis.Sequential(g, labels)
			if len(set) != g.NumVertices() {
				b.Fatal("bad sequential result")
			}
		case bench.SchedulerRelaxed:
			mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*threads, g.NumVertices(), uint64(i))
			if _, _, err := mis.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: threads}); err != nil {
				b.Fatal(err)
			}
		case bench.SchedulerExact:
			q := faaqueue.New(g.NumVertices())
			if _, _, err := mis.RunConcurrent(g, labels, q, core.ConcurrentOptions{Workers: threads, BlockedPolicy: core.Wait}); err != nil {
				b.Fatal(err)
			}
		default:
			b.Fatalf("unknown scheduler %q", scheduler)
		}
	}
}

// benchClasses are scaled-down versions of the paper's three graph classes,
// small enough for go test -bench to iterate.
var benchClasses = []bench.Class{
	{Name: "Sparse", Vertices: 50_000, Edges: 500_000},
	{Name: "SmallDense", Vertices: 5_000, Edges: 500_000},
	{Name: "LargeDense", Vertices: 15_000, Edges: 1_500_000},
}

func figure2ThreadCounts() []int {
	threads := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		threads = append(threads, p)
	}
	return threads
}

func BenchmarkFigure2Sparse(b *testing.B)     { runFigure2Class(b, benchClasses[0]) }
func BenchmarkFigure2SmallDense(b *testing.B) { runFigure2Class(b, benchClasses[1]) }
func BenchmarkFigure2LargeDense(b *testing.B) { runFigure2Class(b, benchClasses[2]) }

func runFigure2Class(b *testing.B, class bench.Class) {
	b.Run("sequential", func(b *testing.B) {
		figure2Benchmark(b, class, bench.SchedulerSequential, 1)
	})
	for _, threads := range figure2ThreadCounts() {
		b.Run(fmt.Sprintf("relaxed/threads=%d", threads), func(b *testing.B) {
			figure2Benchmark(b, class, bench.SchedulerRelaxed, threads)
		})
		b.Run(fmt.Sprintf("exact/threads=%d", threads), func(b *testing.B) {
			figure2Benchmark(b, class, bench.SchedulerExact, threads)
		})
	}
}

// ---------------------------------------------------------------------------
// Theorem validation sweeps (Section 3, not numbered tables in the paper).
// ---------------------------------------------------------------------------

// BenchmarkTheorem1Sweep measures the extra iterations of the generic
// framework (greedy coloring) as density m/n grows, which Theorem 1 predicts
// to scale as O(m/n)·poly(k).
func BenchmarkTheorem1Sweep(b *testing.B) {
	const n = 2000
	for _, m := range []int64{2000, 8000, 32000, 128000} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				cell, err := sim.RunCell(sim.Config{
					Algorithm: sim.AlgColoring,
					Vertices:  n,
					Edges:     m,
					K:         16,
					Trials:    1,
					Seed:      uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				total += cell.ExtraIterations.Mean
			}
			b.ReportMetric(total/float64(b.N), "extra-iters")
		})
	}
}

// BenchmarkTheorem2Independence measures the extra iterations of relaxed MIS
// as n grows at fixed average degree and fixed k; Theorem 2 predicts they do
// not grow with n.
func BenchmarkTheorem2Independence(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000, 64000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				cell, err := sim.RunCell(sim.Config{
					Algorithm: sim.AlgMIS,
					Vertices:  n,
					Edges:     int64(10 * n),
					K:         16,
					Trials:    1,
					Seed:      uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				total += cell.ExtraIterations.Mean
			}
			b.ReportMetric(total/float64(b.N), "extra-iters")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 6).
// ---------------------------------------------------------------------------

// BenchmarkAblationDeadShortcut compares Algorithm 4 (MIS with the
// dead-vertex shortcut, the default Problem) against plain Algorithm 2
// semantics (no Dead shortcut) on the same input, reporting extra iterations.
func BenchmarkAblationDeadShortcut(b *testing.B) {
	r := rng.New(4242)
	const n = 5000
	g, err := graph.GNM(n, 50000, r)
	if err != nil {
		b.Fatal(err)
	}
	labels := core.RandomLabels(n, r)

	b.Run("with-dead-shortcut", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			_, res, err := mis.RunRelaxed(g, labels, multiqueue.NewSequential(32, n, rng.New(uint64(i))))
			if err != nil {
				b.Fatal(err)
			}
			total += float64(res.ExtraIterations())
		}
		b.ReportMetric(total/float64(b.N), "extra-iters")
	})
	b.Run("without-dead-shortcut", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			res, err := core.RunRelaxed(&plainMISProblem{g: g}, labels, multiqueue.NewSequential(32, n, rng.New(uint64(i))))
			if err != nil {
				b.Fatal(err)
			}
			total += float64(res.ExtraIterations())
		}
		b.ReportMetric(total/float64(b.N), "extra-iters")
	})
}

// plainMISProblem is greedy MIS expressed as plain Algorithm 2, without the
// Algorithm 4 dead-vertex shortcut: a vertex must wait for every
// higher-priority neighbor to be processed (even neighbors that can no
// longer join the set), and Process makes the greedy membership decision.
type plainMISProblem struct {
	g *graph.Graph
}

func (p *plainMISProblem) NumTasks() int { return p.g.NumVertices() }

func (p *plainMISProblem) NewInstance(st core.State) core.Instance {
	return &plainMISInstance{g: p.g, st: st, inSet: make([]bool, p.g.NumVertices())}
}

type plainMISInstance struct {
	g     *graph.Graph
	st    core.State
	inSet []bool
}

func (inst *plainMISInstance) Blocked(v int) bool {
	lv := inst.st.Label(v)
	for _, u := range inst.g.Neighbors(v) {
		if inst.st.Label(int(u)) < lv && !inst.st.Processed(int(u)) {
			return true
		}
	}
	return false
}

func (inst *plainMISInstance) Dead(int) bool { return false }

func (inst *plainMISInstance) Process(v int) {
	lv := inst.st.Label(v)
	for _, u := range inst.g.Neighbors(v) {
		if inst.st.Label(int(u)) < lv && inst.inSet[u] {
			return
		}
	}
	inst.inSet[v] = true
}

// BenchmarkAblationMultiQueueFactor varies the number of MultiQueue
// sub-queues per thread (the paper uses 4) in the concurrent MIS run.
func BenchmarkAblationMultiQueueFactor(b *testing.B) {
	r := rng.New(777)
	const n = 20000
	g, err := graph.GNM(n, 400000, r)
	if err != nil {
		b.Fatal(err)
	}
	labels := core.RandomLabels(n, r)
	workers := runtime.GOMAXPROCS(0)
	for _, factor := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("factor=%d", factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mq := multiqueue.NewConcurrent(factor*workers, n, uint64(i))
				if _, _, err := mis.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSchedulerFamily compares the sequential-model scheduler
// families at the same relaxation factor on relaxed MIS.
func BenchmarkAblationSchedulerFamily(b *testing.B) {
	r := rng.New(909)
	const n = 10000
	g, err := graph.GNM(n, 100000, r)
	if err != nil {
		b.Fatal(err)
	}
	labels := core.RandomLabels(n, r)
	const k = 16
	families := []struct {
		name    string
		factory func(i int) sched.Scheduler
	}{
		{"multiqueue", func(i int) sched.Scheduler { return multiqueue.NewSequential(k, n, rng.New(uint64(i))) }},
		{"topk", func(i int) sched.Scheduler { return topk.New(k, n, rng.New(uint64(i))) }},
		{"spraylist", func(i int) sched.Scheduler { return spraylist.New(k, rng.New(uint64(i))) }},
		{"kbounded", func(i int) sched.Scheduler { return kbounded.New(k, n) }},
	}
	for _, family := range families {
		b.Run(family.name, func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				_, res, err := mis.RunRelaxed(g, labels, family.factory(i))
				if err != nil {
					b.Fatal(err)
				}
				total += float64(res.ExtraIterations())
			}
			b.ReportMetric(total/float64(b.N), "extra-iters")
		})
	}
}

// BenchmarkAblationReinsertPolicy compares the Reinsert and Wait policies for
// blocked tasks when running the relaxed MultiQueue concurrently.
func BenchmarkAblationReinsertPolicy(b *testing.B) {
	r := rng.New(313)
	const n = 20000
	g, err := graph.GNM(n, 200000, r)
	if err != nil {
		b.Fatal(err)
	}
	labels := core.RandomLabels(n, r)
	workers := runtime.GOMAXPROCS(0)
	for _, policy := range []core.Policy{core.Reinsert, core.Wait} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, n, uint64(i))
				if _, _, err := mis.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers, BlockedPolicy: policy}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
