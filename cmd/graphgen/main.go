// Command graphgen generates random graphs in the library's edge-list format
// and prints basic statistics, so experiment inputs can be created once and
// reused across tools (cmd/misrun reads the same format).
//
// Examples:
//
//	graphgen -model gnm -vertices 10000 -edges 100000 -out graph.txt
//	graphgen -model gnp -vertices 100000 -p 0.0002 -out sparse.txt
//	graphgen -model rmat -scale 14 -edge-factor 8 -out rmat.txt
//	graphgen -model grid -rows 200 -cols 300 -out grid.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		model      = fs.String("model", "gnm", "graph model: gnm, gnp, powerlaw, smallworld, rmat, grid, complete, path, cycle, star")
		vertices   = fs.Int("vertices", 1000, "number of vertices (gnm, gnp, powerlaw, smallworld, complete, path, cycle, star)")
		edges      = fs.Int64("edges", 10000, "number of edges (gnm)")
		p          = fs.Float64("p", 0.01, "edge probability (gnp)")
		avgDeg     = fs.Float64("avg-degree", 8, "average degree (powerlaw)")
		exponent   = fs.Float64("exponent", 2.5, "degree-distribution exponent (powerlaw)")
		latticeK   = fs.Int("k", 6, "lattice degree, even (smallworld)")
		beta       = fs.Float64("beta", 0.1, "rewiring probability (smallworld)")
		scale      = fs.Int("scale", 12, "log2 of the vertex count (rmat)")
		edgeFactor = fs.Int("edge-factor", 8, "edges per vertex (rmat)")
		rows       = fs.Int("rows", 100, "grid rows")
		cols       = fs.Int("cols", 100, "grid columns")
		seed       = fs.Uint64("seed", 1, "random seed")
		outPath    = fs.String("out", "", "output file (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := rng.New(*seed)
	var g *graph.Graph
	switch *model {
	case "gnm":
		g, err = graph.GNM(*vertices, *edges, r)
	case "gnp":
		g, err = graph.ParallelGNP(*vertices, *p, runtime.GOMAXPROCS(0), r)
	case "powerlaw":
		g, err = graph.PowerLaw(*vertices, *avgDeg, *exponent, runtime.GOMAXPROCS(0), r)
	case "smallworld":
		g, err = graph.ParallelWattsStrogatz(*vertices, *latticeK, *beta, runtime.GOMAXPROCS(0), r)
	case "rmat":
		g, err = graph.RMAT(*scale, *edgeFactor, 0.57, 0.19, 0.19, r)
	case "grid":
		g = graph.Grid(*rows, *cols)
	case "complete":
		g = graph.Complete(*vertices)
	case "path":
		g = graph.Path(*vertices)
	case "cycle":
		g = graph.Cycle(*vertices)
	case "star":
		g = graph.Star(*vertices)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, createErr := os.Create(*outPath)
		if createErr != nil {
			return fmt.Errorf("creating %s: %w", *outPath, createErr)
		}
		defer func() {
			if closeErr := f.Close(); closeErr != nil && err == nil {
				err = closeErr
			}
		}()
		out = f
	}
	if err := graph.WriteEdgeList(out, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %s (max degree %d)\n", *model, g.String(), g.MaxDegree())
	return nil
}
