package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relaxsched/internal/graph"
)

func TestRunModelsToStdout(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"gnm", []string{"-model", "gnm", "-vertices", "100", "-edges", "300"}},
		{"gnp", []string{"-model", "gnp", "-vertices", "200", "-p", "0.05"}},
		{"rmat", []string{"-model", "rmat", "-scale", "8", "-edge-factor", "4"}},
		{"grid", []string{"-model", "grid", "-rows", "5", "-cols", "7"}},
		{"complete", []string{"-model", "complete", "-vertices", "10"}},
		{"path", []string{"-model", "path", "-vertices", "10"}},
		{"cycle", []string{"-model", "cycle", "-vertices", "10"}},
		{"star", []string{"-model", "star", "-vertices", "10"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			g, err := graph.ReadEdgeList(&out)
			if err != nil {
				t.Fatalf("generated output does not parse: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() == 0 {
				t.Fatal("generated empty graph")
			}
		})
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var out bytes.Buffer
	if err := run([]string{"-model", "gnm", "-vertices", "50", "-edges", "100", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 50 || g.NumEdges() != 100 {
		t.Fatalf("written graph has n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"unknown model", []string{"-model", "hypercube"}},
		{"too many edges", []string{"-model", "gnm", "-vertices", "5", "-edges", "100"}},
		{"bad gnp probability", []string{"-model", "gnp", "-vertices", "10", "-p", "3"}},
		{"unwritable output", []string{"-model", "path", "-vertices", "5", "-out", "/nonexistent-dir/x/y.txt"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}

func TestDeterministicForSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-model", "gnm", "-vertices", "60", "-edges", "120", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "gnm", "-vertices", "60", "-edges", "120", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "# nodes 60") || a.String() != b.String() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestNewGeneratorModels(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "powerlaw", "-vertices", "500", "-avg-degree", "6", "-exponent", "2.5", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# nodes 500") {
		t.Fatalf("powerlaw output missing header:\n%.120s", out.String())
	}
	out.Reset()
	if err := run([]string{"-model", "smallworld", "-vertices", "400", "-k", "4", "-beta", "0.2", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# nodes 400") {
		t.Fatalf("smallworld output missing header:\n%.120s", out.String())
	}
	if err := run([]string{"-model", "powerlaw", "-vertices", "10", "-exponent", "0.5"}, &out); err == nil {
		t.Fatal("bad powerlaw exponent accepted")
	}
	if err := run([]string{"-model", "smallworld", "-vertices", "10", "-k", "3"}, &out); err == nil {
		t.Fatal("odd smallworld lattice degree accepted")
	}
}
