// Command kcorerun computes the k-core decomposition of a graph in the
// library's edge-list format (see cmd/graphgen), using any of the supported
// execution modes, and reports timing, the degeneracy, and wasted-work
// counters. It is a thin wrapper over the workload registry (see
// cmd/relaxrun for the generic CLI that runs any registered workload).
//
// Examples:
//
//	kcorerun -in graph.txt                          # sequential bucket peeling
//	kcorerun -in graph.txt -mode relaxed -k 32      # sequential-model MultiQueue
//	kcorerun -in graph.txt -mode concurrent -threads 8
//	kcorerun -in graph.txt -mode exact -threads 8   # locked exact heap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"relaxsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kcorerun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcorerun", flag.ContinueOnError)
	var (
		inPath   = fs.String("in", "", "input edge-list file (required)")
		modeName = fs.String("mode", "sequential", "execution mode: sequential, relaxed, concurrent, exact")
		k        = fs.Int("k", 16, "relaxation factor for -mode relaxed (MultiQueue sub-queues)")
		threads  = fs.Int("threads", 4, "worker goroutines for -mode concurrent/exact")
		batch    = fs.Int("batch", 0, "engine batch size for -mode concurrent/exact (0 = engine default)")
		seed     = fs.Uint64("seed", 1, "random seed for the relaxed schedulers")
		verify   = fs.Bool("verify", true, "verify the result against the sequential peeling oracle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := workload.ValidateFlags(*k, *threads, *batch); err != nil {
		return err
	}
	mode, err := workload.ParseMode(*modeName)
	if err != nil {
		return err
	}
	g, err := workload.LoadGraph(*inPath)
	if err != nil {
		return err
	}
	d, err := workload.Lookup("kcore")
	if err != nil {
		return err
	}

	res, err := d.RunMode(g, workload.RunConfig{
		Mode:    mode,
		K:       *k,
		Threads: *threads,
		Batch:   *batch,
	}, workload.Params{Seed: *seed})
	if err != nil {
		return err
	}

	if *verify {
		if err := res.Instance.Verify(res.Output); err != nil {
			return fmt.Errorf("result verification failed: %w", err)
		}
	}
	fmt.Fprintf(out, "graph: %s\n", g.String())
	fmt.Fprintf(out, "mode: %s  time: %v  %s  pops: %d (%d stale)\n",
		mode, res.Elapsed, res.Output.Summary(), res.Cost.Pops, res.Cost.StalePops)
	return nil
}
