// Command kcorerun computes the k-core decomposition of a graph in the
// library's edge-list format (see cmd/graphgen), using any of the supported
// execution modes, and reports timing, the degeneracy, and wasted-work
// counters.
//
// Examples:
//
//	kcorerun -in graph.txt                          # sequential bucket peeling
//	kcorerun -in graph.txt -mode relaxed -k 32      # sequential-model MultiQueue
//	kcorerun -in graph.txt -mode concurrent -threads 8
//	kcorerun -in graph.txt -mode exact -threads 8   # locked exact heap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"relaxsched/internal/algos/kcore"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kcorerun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcorerun", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "input edge-list file (required)")
		mode    = fs.String("mode", "sequential", "execution mode: sequential, relaxed, concurrent, exact")
		k       = fs.Int("k", 16, "relaxation factor for -mode relaxed (MultiQueue sub-queues)")
		threads = fs.Int("threads", 4, "worker goroutines for -mode concurrent/exact")
		batch   = fs.Int("batch", 0, "engine batch size for -mode concurrent/exact (0 = engine default)")
		seed    = fs.Uint64("seed", 1, "random seed for the relaxed schedulers")
		verify  = fs.Bool("verify", true, "verify the result against the sequential peeling oracle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	if *k < 1 {
		return fmt.Errorf("invalid relaxation factor %d: -k must be at least 1", *k)
	}
	if *threads < 1 {
		return fmt.Errorf("invalid worker count %d: -threads must be at least 1", *threads)
	}
	if *batch < 0 {
		return fmt.Errorf("invalid batch size %d: -batch must be non-negative (0 = engine default)", *batch)
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return fmt.Errorf("opening input: %w", err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return fmt.Errorf("parsing input: %w", err)
	}

	start := time.Now()
	var (
		cores []uint32
		st    kcore.Stats
	)
	switch *mode {
	case "sequential":
		cores = kcore.Sequential(g)
	case "relaxed":
		cores, st, err = kcore.RunRelaxed(g, multiqueue.NewSequential(*k, g.NumVertices(), rng.New(*seed)))
	case "concurrent":
		mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor**threads, g.NumVertices(), *seed)
		cores, st, err = kcore.RunConcurrent(g, mq, *threads, *batch)
	case "exact":
		// A coarse-locked exact heap: peeling follows strict minimum-degree
		// order, the baseline the relaxed schedulers are compared against.
		cores, st, err = kcore.RunConcurrent(g, sched.NewLocked(exactheap.New(g.NumVertices())), *threads, *batch)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *verify {
		if err := kcore.Verify(g, cores); err != nil {
			return fmt.Errorf("result verification failed: %w", err)
		}
	}
	fmt.Fprintf(out, "graph: %s\n", g.String())
	fmt.Fprintf(out, "mode: %s  time: %v  degeneracy: %d  pops: %d (%d stale)\n",
		*mode, elapsed, kcore.Degeneracy(cores), st.Pops, st.StalePops)
	return nil
}
