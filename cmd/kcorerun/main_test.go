package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// writeTestGraph writes a random G(n,m) graph to a temp file and returns its
// path.
func writeTestGraph(t *testing.T, n int, m int64) string {
	t.Helper()
	g, err := graph.GNM(n, m, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllModes(t *testing.T) {
	path := writeTestGraph(t, 800, 4000)
	var degeneracies []string
	for _, mode := range []string{"sequential", "relaxed", "concurrent", "exact"} {
		var out bytes.Buffer
		err := run([]string{"-in", path, "-mode", mode, "-threads", "2", "-k", "8", "-seed", "3"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		got := out.String()
		if !strings.Contains(got, "degeneracy:") || !strings.Contains(got, "mode: "+mode) {
			t.Fatalf("%s: unexpected output:\n%s", mode, got)
		}
		idx := strings.Index(got, "degeneracy:")
		degeneracies = append(degeneracies, strings.Fields(got[idx:])[1])
	}
	// The decomposition is exact in every mode, so all degeneracies agree.
	for _, d := range degeneracies[1:] {
		if d != degeneracies[0] {
			t.Fatalf("modes disagree on degeneracy: %v", degeneracies)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t, 50, 100)
	cases := []struct {
		name string
		args []string
	}{
		{"missing input", nil},
		{"nonexistent file", []string{"-in", "/does/not/exist"}},
		{"unknown mode", []string{"-in", path, "-mode", "quantum"}},
		{"zero k", []string{"-in", path, "-mode", "relaxed", "-k", "0"}},
		{"zero threads", []string{"-in", path, "-mode", "concurrent", "-threads", "0"}},
		{"negative batch", []string{"-in", path, "-mode", "concurrent", "-batch", "-1"}},
		{"unknown flag", []string{"-in", path, "-bogus"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}
