// Command misrun computes a greedy maximal independent set for a graph in
// the library's edge-list format (see cmd/graphgen), using any of the
// supported execution modes, and reports timing and wasted-work counters.
//
// Examples:
//
//	misrun -in graph.txt                          # sequential greedy
//	misrun -in graph.txt -mode relaxed -k 32      # sequential-model MultiQueue
//	misrun -in graph.txt -mode concurrent -threads 8
//	misrun -in graph.txt -mode exact -threads 8   # FAA queue + wait policy
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"relaxsched/internal/algos/mis"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("misrun", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "input edge-list file (required)")
		mode    = fs.String("mode", "sequential", "execution mode: sequential, relaxed, concurrent, exact")
		k       = fs.Int("k", 16, "relaxation factor for -mode relaxed (MultiQueue sub-queues)")
		threads = fs.Int("threads", 4, "worker goroutines for -mode concurrent/exact")
		batch   = fs.Int("batch", 0, "scheduler batch size for -mode concurrent/exact (0 = executor default)")
		seed    = fs.Uint64("seed", 1, "random seed for the priority permutation")
		verify  = fs.Bool("verify", true, "verify independence and maximality of the result")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	if *k < 1 {
		return fmt.Errorf("invalid relaxation factor %d: -k must be at least 1", *k)
	}
	if *threads < 1 {
		return fmt.Errorf("invalid worker count %d: -threads must be at least 1", *threads)
	}
	if *batch < 0 {
		return fmt.Errorf("invalid batch size %d: -batch must be non-negative (0 = executor default)", *batch)
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return fmt.Errorf("opening input: %w", err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return fmt.Errorf("parsing input: %w", err)
	}

	r := rng.New(*seed)
	labels := core.RandomLabels(g.NumVertices(), r)

	start := time.Now()
	var (
		inSet []bool
		extra int64
	)
	switch *mode {
	case "sequential":
		inSet = mis.Sequential(g, labels)
	case "relaxed":
		set, res, runErr := mis.RunRelaxed(g, labels, multiqueue.NewSequential(*k, g.NumVertices(), r.Fork()))
		if runErr != nil {
			return runErr
		}
		inSet, extra = set, res.ExtraIterations()
	case "concurrent":
		mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor**threads, g.NumVertices(), *seed)
		set, res, runErr := mis.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: *threads, BatchSize: *batch})
		if runErr != nil {
			return runErr
		}
		inSet, extra = set, res.ExtraIterations()
	case "exact":
		q := faaqueue.New(g.NumVertices())
		set, res, runErr := mis.RunConcurrent(g, labels, q, core.ConcurrentOptions{Workers: *threads, BlockedPolicy: core.Wait, BatchSize: *batch})
		if runErr != nil {
			return runErr
		}
		inSet, extra = set, res.ExtraIterations()
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	elapsed := time.Since(start)

	if *verify {
		if err := mis.Verify(g, inSet); err != nil {
			return fmt.Errorf("result verification failed: %w", err)
		}
	}
	size := 0
	for _, in := range inSet {
		if in {
			size++
		}
	}
	fmt.Fprintf(out, "graph: %s\n", g.String())
	fmt.Fprintf(out, "mode: %s  time: %v  MIS size: %d  extra iterations: %d\n", *mode, elapsed, size, extra)
	return nil
}
