// Command misrun computes a greedy maximal independent set for a graph in
// the library's edge-list format (see cmd/graphgen), using any of the
// supported execution modes, and reports timing and wasted-work counters.
// It is a thin wrapper over the workload registry (see cmd/relaxrun for the
// generic CLI that runs any registered workload).
//
// Examples:
//
//	misrun -in graph.txt                          # sequential greedy
//	misrun -in graph.txt -mode relaxed -k 32      # sequential-model MultiQueue
//	misrun -in graph.txt -mode concurrent -threads 8
//	misrun -in graph.txt -mode exact -threads 8   # FAA queue + wait policy
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"relaxsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("misrun", flag.ContinueOnError)
	var (
		inPath   = fs.String("in", "", "input edge-list file (required)")
		modeName = fs.String("mode", "sequential", "execution mode: sequential, relaxed, concurrent, exact")
		k        = fs.Int("k", 16, "relaxation factor for -mode relaxed (MultiQueue sub-queues)")
		threads  = fs.Int("threads", 4, "worker goroutines for -mode concurrent/exact")
		batch    = fs.Int("batch", 0, "scheduler batch size for -mode concurrent/exact (0 = executor default)")
		seed     = fs.Uint64("seed", 1, "random seed for the priority permutation")
		verify   = fs.Bool("verify", true, "verify independence and maximality of the result")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := workload.ValidateFlags(*k, *threads, *batch); err != nil {
		return err
	}
	mode, err := workload.ParseMode(*modeName)
	if err != nil {
		return err
	}
	g, err := workload.LoadGraph(*inPath)
	if err != nil {
		return err
	}
	d, err := workload.Lookup("mis")
	if err != nil {
		return err
	}

	res, err := d.RunMode(g, workload.RunConfig{
		Mode:    mode,
		K:       *k,
		Threads: *threads,
		Batch:   *batch,
	}, workload.Params{Seed: *seed})
	if err != nil {
		return err
	}

	if *verify {
		if err := res.Instance.Verify(res.Output); err != nil {
			return fmt.Errorf("result verification failed: %w", err)
		}
	}
	fmt.Fprintf(out, "graph: %s\n", g.String())
	fmt.Fprintf(out, "mode: %s  time: %v  %s  extra iterations: %d\n",
		mode, res.Elapsed, res.Output.Summary(), res.Cost.Wasted)
	return nil
}
