package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// writeTestGraph writes a random G(n,m) graph to a temp file and returns its
// path.
func writeTestGraph(t *testing.T, n int, m int64) string {
	t.Helper()
	g, err := graph.GNM(n, m, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllModes(t *testing.T) {
	path := writeTestGraph(t, 800, 4000)
	for _, mode := range []string{"sequential", "relaxed", "concurrent", "exact"} {
		var out bytes.Buffer
		err := run([]string{"-in", path, "-mode", mode, "-threads", "2", "-k", "8", "-seed", "3"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		got := out.String()
		if !strings.Contains(got, "MIS size:") || !strings.Contains(got, "mode: "+mode) {
			t.Fatalf("%s: unexpected output:\n%s", mode, got)
		}
	}
}

func TestRunModesAgreeOnSize(t *testing.T) {
	// All modes compute the greedy MIS for the same seed/permutation, so the
	// reported sizes must be identical.
	path := writeTestGraph(t, 500, 2500)
	var sizes []string
	for _, mode := range []string{"sequential", "relaxed", "concurrent", "exact"} {
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-mode", mode, "-threads", "2", "-seed", "11"}, &out); err != nil {
			t.Fatal(err)
		}
		line := out.String()
		idx := strings.Index(line, "MIS size:")
		if idx < 0 {
			t.Fatalf("no MIS size in output: %s", line)
		}
		fields := strings.Fields(line[idx:])
		sizes = append(sizes, fields[2])
	}
	for _, s := range sizes[1:] {
		if s != sizes[0] {
			t.Fatalf("modes disagree on MIS size: %v", sizes)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t, 50, 100)
	badPath := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(badPath, []byte("not an edge list\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"missing input", []string{"-mode", "sequential"}},
		{"nonexistent file", []string{"-in", "/does/not/exist"}},
		{"malformed file", []string{"-in", badPath}},
		{"unknown mode", []string{"-in", path, "-mode", "quantum"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}

func TestRunRejectsInvalidFlags(t *testing.T) {
	path := writeTestGraph(t, 50, 100)
	cases := []struct {
		name string
		args []string
	}{
		{"zero k", []string{"-in", path, "-mode", "relaxed", "-k", "0"}},
		{"negative k", []string{"-in", path, "-mode", "relaxed", "-k", "-3"}},
		{"zero threads", []string{"-in", path, "-mode", "concurrent", "-threads", "0"}},
		{"negative threads", []string{"-in", path, "-mode", "exact", "-threads", "-1"}},
		{"negative batch", []string{"-in", path, "-mode", "concurrent", "-batch", "-2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}
