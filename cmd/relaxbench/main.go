// Command relaxbench runs the paper's concurrent MIS experiments (Figure 2):
// for a G(n, p) graph of a chosen density class it sweeps thread counts and
// reports the wall-clock time and speedup of
//
//   - the relaxed framework on a concurrent MultiQueue,
//   - the exact framework on a fetch-and-add FIFO with predecessor backoff,
//
// against the optimized sequential greedy MIS.
//
// Examples:
//
//	relaxbench                       # all three classes, default thread sweep
//	relaxbench -class sparse -trials 5
//	relaxbench -vertices 100000 -edges 1000000 -threads 1,2,4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"relaxsched/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("relaxbench", flag.ContinueOnError)
	var (
		algo        = fs.String("algo", "mis", "workload: mis (Figure 2), coloring, matching")
		className   = fs.String("class", "", "graph class: sparse, smalldense, largedense (default: all three)")
		vertices    = fs.Int("vertices", 0, "custom vertex count (overrides -class)")
		edges       = fs.Int64("edges", 0, "custom edge count (with -vertices)")
		threadsCSV  = fs.String("threads", "", "comma-separated thread counts (default: powers of two up to GOMAXPROCS)")
		trials      = fs.Int("trials", 3, "trials per data point")
		queueFactor = fs.Int("queue-factor", 4, "MultiQueue sub-queues per thread")
		seed        = fs.Uint64("seed", 1, "random seed")
		verify      = fs.Bool("verify", true, "check every parallel result against the sequential MIS")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	threads, err := parseThreads(*threadsCSV)
	if err != nil {
		return err
	}

	var classes []bench.Class
	switch {
	case *vertices > 0:
		classes = []bench.Class{{Name: "custom", Vertices: *vertices, Edges: *edges}}
	case *className != "":
		c, err := bench.ClassByName(*className)
		if err != nil {
			return err
		}
		classes = []bench.Class{c}
	default:
		classes = bench.DefaultClasses()
	}

	for _, class := range classes {
		report, err := bench.Run(bench.Config{
			Class:       class,
			Algorithm:   bench.Algorithm(*algo),
			Threads:     threads,
			Trials:      *trials,
			QueueFactor: *queueFactor,
			Seed:        *seed,
			Verify:      *verify,
		})
		if err != nil {
			return fmt.Errorf("class %s: %w", class.Name, err)
		}
		fmt.Fprint(out, report.Format())
		fmt.Fprintf(out, "best speedup: relaxed %.2fx, exact %.2fx\n\n",
			report.BestSpeedup(bench.SchedulerRelaxed), report.BestSpeedup(bench.SchedulerExact))
	}
	return nil
}

func parseThreads(csv string) ([]int, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
