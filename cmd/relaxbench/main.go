// Command relaxbench runs the paper's concurrent experiments (Figure 2):
// for a graph of a chosen density class it sweeps thread counts and reports
// the wall-clock time and speedup of
//
//   - the relaxed framework on a concurrent MultiQueue,
//   - the exact framework on a fetch-and-add FIFO with predecessor backoff,
//
// against the optimized sequential baseline. Besides the static framework
// workloads (mis, coloring, matching) it benchmarks the dynamic-priority
// workloads (sssp — optionally Δ-stepping-bucketed via -delta — kcore, and
// pagerank — residual tolerance via -tol), which run on the dynamic engine
// and report stale pops / re-evaluations / re-pushes as wasted work. All
// workloads dispatch through the internal/workload registry, so -algo
// accepts any registered name.
//
// With -sweep it instead runs the worker-scaling sweep: workers × batch
// sizes × schedulers, reporting throughput per data point and writing the
// machine-readable BENCH_concurrent.json that tracks the repository's
// concurrent-performance trajectory; -append merges new (class, algorithm)
// reports into the existing file instead of overwriting it.
//
// Examples:
//
//	relaxbench                       # all three classes, default thread sweep
//	relaxbench -class sparse -trials 5
//	relaxbench -algo sssp -class grid -delta 16
//	relaxbench -class hundredk,million,powerlaw -sweep   # the tracked MIS sweep
//	relaxbench -sweep -algo sssp,kcore -class hundredk,grid -append  # the dynamic entries
//	relaxbench -sweep -algo pagerank -class hundredk,powerlaw -tol 1e-6 -append
//	relaxbench -vertices 100000 -edges 1000000 -threads 1,2,4
//	relaxbench -sweep -batches 1,16,64 -json sweep.json
//	relaxbench -sweep -baseline BENCH_concurrent.json -max-regression 0.25
//	relaxbench -class sparse -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -cpuprofile and -memprofile write pprof profiles covering the whole run
// (panel or sweep); `make profile` wraps this with a rendered top-N report.
// Profile paths are validated before any benchmark work starts.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"strconv"
	"strings"

	"relaxsched/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("relaxbench", flag.ContinueOnError)
	var (
		algoCSV       = fs.String("algo", "mis", "comma-separated workloads: mis (Figure 2), coloring, matching, sssp, kcore, pagerank")
		className     = fs.String("class", "", "comma-separated graph classes: sparse, smalldense, largedense, hundredk, million, powerlaw, grid (default: the three Figure 2 classes)")
		vertices      = fs.Int("vertices", 0, "custom vertex count (overrides -class)")
		edges         = fs.Int64("edges", 0, "custom edge count (with -vertices)")
		threadsCSV    = fs.String("threads", "", "comma-separated thread counts (default: powers of two up to GOMAXPROCS)")
		trials        = fs.Int("trials", 3, "trials per data point")
		queueFactor   = fs.Int("queue-factor", 4, "MultiQueue sub-queues per thread")
		batch         = fs.Int("batch", 0, "executor batch size for panel runs (0 = executor default)")
		delta         = fs.Uint64("delta", 1, "Δ-stepping bucket width for sssp priorities (1 = exact distances)")
		tol           = fs.Float64("tol", 0, "pagerank target L1 error (0 = workload default 1e-9)")
		seed          = fs.Uint64("seed", 1, "random seed")
		verify        = fs.Bool("verify", true, "check every parallel result against the sequential oracle")
		sweep         = fs.Bool("sweep", false, "run the worker-scaling sweep (workers x batch sizes) instead of Figure 2 panels")
		batchesCSV    = fs.String("batches", "", "comma-separated batch sizes for -sweep (default: 1,4,16,64)")
		jsonPath      = fs.String("json", "BENCH_concurrent.json", "output path for the -sweep JSON report (empty: stdout table only)")
		appendJSON    = fs.Bool("append", false, "merge -sweep reports into the existing -json file, replacing matching (class, algorithm) entries")
		baseline      = fs.String("baseline", "", "baseline sweep JSON to gate against (with -sweep): fail on relaxed-scheduler throughput regression")
		maxRegression = fs.Float64("max-regression", 0.25, "largest tolerated fractional throughput drop versus -baseline")
		cpuProfile    = fs.String("cpuprofile", "", "write a pprof CPU profile covering the whole run (panels or -sweep) to this file")
		memProfile    = fs.String("memprofile", "", "write a pprof heap profile, snapshotted after the run, to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *vertices < 0 {
		return fmt.Errorf("invalid vertex count %d: must be positive", *vertices)
	}
	if *vertices > 0 && *edges < 0 {
		return fmt.Errorf("invalid edge count %d: must be non-negative", *edges)
	}
	if *trials < 1 {
		return fmt.Errorf("invalid trial count %d: must be at least 1", *trials)
	}
	if *queueFactor < 1 {
		return fmt.Errorf("invalid queue factor %d: must be at least 1", *queueFactor)
	}
	if *batch < 0 {
		return fmt.Errorf("invalid batch size %d: must be non-negative (0 = executor default)", *batch)
	}

	var algos []bench.Algorithm
	hasSSSP, hasPageRank := false, false
	for _, name := range strings.Split(*algoCSV, ",") {
		a, err := bench.ParseAlgorithm(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		algos = append(algos, a)
		hasSSSP = hasSSSP || a == bench.AlgorithmSSSP
		hasPageRank = hasPageRank || a == bench.AlgorithmPageRank
	}
	if *delta < 1 || *delta > math.MaxUint32 {
		return fmt.Errorf("invalid delta %d: must be in [1, 2^32)", *delta)
	}
	if *delta != 1 && !hasSSSP {
		return fmt.Errorf("-delta only applies to -algo sssp")
	}
	if *tol < 0 {
		return fmt.Errorf("invalid tolerance %v: -tol must be non-negative (0 = workload default)", *tol)
	}
	if *tol != 0 && !hasPageRank {
		return fmt.Errorf("-tol only applies to -algo pagerank")
	}

	threads, err := parseInts(*threadsCSV, "thread count")
	if err != nil {
		return err
	}

	var classes []bench.Class
	switch {
	case *vertices > 0:
		classes = []bench.Class{{Name: "custom", Vertices: *vertices, Edges: *edges}}
	case *className != "":
		for _, name := range strings.Split(*className, ",") {
			c, err := bench.ClassByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			classes = append(classes, c)
		}
	default:
		classes = bench.DefaultClasses()
	}

	if !*sweep && *batchesCSV != "" {
		return fmt.Errorf("-batches requires -sweep (use -batch for a single panel batch size)")
	}
	if !*sweep && *baseline != "" {
		return fmt.Errorf("-baseline requires -sweep")
	}
	if !*sweep && *appendJSON {
		return fmt.Errorf("-append requires -sweep")
	}
	if *cpuProfile != "" && *cpuProfile == *memProfile {
		return fmt.Errorf("-cpuprofile and -memprofile must be distinct files")
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	if *sweep {
		if *batch != 0 && *batchesCSV != "" {
			return fmt.Errorf("-batch and -batches are mutually exclusive with -sweep")
		}
		if *appendJSON && *jsonPath == "" {
			return fmt.Errorf("-append requires -json")
		}
		batches, err := parseInts(*batchesCSV, "batch size")
		if err != nil {
			return err
		}
		if *batch != 0 {
			if *batch < 1 {
				return fmt.Errorf("invalid batch size %d", *batch)
			}
			batches = []int{*batch}
		}
		return runSweep(out, classes, algos, bench.ScalingConfig{
			Workers:     threads,
			BatchSizes:  batches,
			Trials:      *trials,
			QueueFactor: *queueFactor,
			Delta:       uint32(*delta),
			Tolerance:   *tol,
			Seed:        *seed,
			Verify:      *verify,
		}, *jsonPath, *appendJSON, *baseline, *maxRegression)
	}

	for _, class := range classes {
		for _, algo := range algos {
			if len(algos) > 1 {
				fmt.Fprintf(out, "algorithm=%s\n", algo)
			}
			report, err := bench.Run(bench.Config{
				Class:       class,
				Algorithm:   algo,
				Threads:     threads,
				Trials:      *trials,
				QueueFactor: *queueFactor,
				BatchSize:   *batch,
				Delta:       uint32(*delta),
				Tolerance:   *tol,
				Seed:        *seed,
				Verify:      *verify,
			})
			if err != nil {
				return fmt.Errorf("class %s algo %s: %w", class.Name, algo, err)
			}
			fmt.Fprint(out, report.Format())
			fmt.Fprintf(out, "best speedup: relaxed %.2fx, exact %.2fx\n\n",
				report.BestSpeedup(bench.SchedulerRelaxed), report.BestSpeedup(bench.SchedulerExact))
		}
	}
	return nil
}

// runSweep executes the scaling sweep for every (class, algorithm) pair,
// prints the table per pair, writes all reports as one JSON array to
// jsonPath (merging into the existing file with doAppend), and — when a
// baseline is given — fails on a relaxed-scheduler throughput regression
// beyond maxRegression.
func runSweep(out io.Writer, classes []bench.Class, algos []bench.Algorithm, cfg bench.ScalingConfig, jsonPath string, doAppend bool, baseline string, maxRegression float64) error {
	reports := make([]bench.ScalingReport, 0, len(classes)*len(algos))
	for _, class := range classes {
		for _, algo := range algos {
			cfg.Class = class
			cfg.Algorithm = algo
			report, err := bench.RunScaling(cfg)
			if err != nil {
				return fmt.Errorf("class %s algo %s: %w", class.Name, algo, err)
			}
			fmt.Fprint(out, report.Format())
			fmt.Fprint(out, "best throughput:")
			for i, name := range report.Schedulers() {
				if i > 0 {
					fmt.Fprint(out, ",")
				}
				fmt.Fprintf(out, " %s %.0f tasks/s", name, report.BestThroughput(name))
			}
			fmt.Fprint(out, "\n\n")
			reports = append(reports, report)
		}
	}
	if jsonPath != "" {
		output := reports
		if doAppend {
			existing, err := bench.ReadScalingReportsFile(jsonPath)
			switch {
			case err == nil:
				output = mergeReports(existing, reports)
			case errors.Is(err, fs.ErrNotExist):
				// No existing file: -append degenerates to a plain write.
			default:
				return err
			}
		}
		f, err := os.Create(jsonPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", jsonPath, err)
		}
		if err := bench.WriteScalingReports(f, output); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", jsonPath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	if baseline != "" {
		base, err := bench.ReadScalingReportsFile(baseline)
		if err != nil {
			return err
		}
		if err := bench.CheckRegression(reports, base, bench.SchedulerRelaxed, maxRegression); err != nil {
			return err
		}
		fmt.Fprintf(out, "regression gate passed: %s within %.0f%% of %s\n",
			bench.SchedulerRelaxed, 100*maxRegression, baseline)
	}
	return nil
}

// mergeReports overlays fresh sweep reports onto an existing report list:
// entries with the same (class, algorithm) key are replaced in place, new
// keys are appended — so re-running one algorithm's sweep never discards the
// other tracked entries in BENCH_concurrent.json.
func mergeReports(existing, fresh []bench.ScalingReport) []bench.ScalingReport {
	out := append([]bench.ScalingReport(nil), existing...)
	index := make(map[string]int, len(out))
	for i, rep := range out {
		index[rep.Class+"/"+rep.Algorithm] = i
	}
	for _, rep := range fresh {
		key := rep.Class + "/" + rep.Algorithm
		if i, ok := index[key]; ok {
			out[i] = rep
		} else {
			index[key] = len(out)
			out = append(out, rep)
		}
	}
	return out
}

func parseInts(csv, what string) ([]int, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid %s %q", what, part)
		}
		out = append(out, v)
	}
	return out, nil
}
