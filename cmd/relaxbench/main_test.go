package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCustomGraph(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-vertices", "2000", "-edges", "10000", "-threads", "1,2", "-trials", "1", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"custom", "relaxed-multiqueue", "exact-faa", "sequential", "best speedup"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunNamedClassScaledByThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("full class benchmark is slow")
	}
	var out bytes.Buffer
	err := run([]string{"-class", "smalldense", "-threads", "1", "-trials", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "smalldense") {
		t.Fatalf("output missing class name:\n%s", out.String())
	}
}

func TestRunAlternativeAlgorithms(t *testing.T) {
	for _, algo := range []string{"coloring", "matching"} {
		var out bytes.Buffer
		err := run([]string{
			"-algo", algo, "-vertices", "800", "-edges", "3000", "-threads", "1", "-trials", "1",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "best speedup") {
			t.Fatalf("%s: missing summary line", algo)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-algo", "nope", "-vertices", "100", "-edges", "200", "-threads", "1", "-trials", "1"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"unknown class", []string{"-class", "galactic"}},
		{"bad threads", []string{"-threads", "1,zero", "-vertices", "100", "-edges", "200"}},
		{"negative threads", []string{"-threads", "-2", "-vertices", "100", "-edges", "200"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("1, 2, 8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseThreads = %v, %v", got, err)
	}
	got, err = parseThreads("")
	if err != nil || got != nil {
		t.Fatalf("empty input should yield nil, got %v, %v", got, err)
	}
	if _, err := parseThreads("0"); err == nil {
		t.Fatal("zero thread count accepted")
	}
}
