package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"relaxsched/internal/bench"
)

func TestRunCustomGraph(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-vertices", "2000", "-edges", "10000", "-threads", "1,2", "-trials", "1", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"custom", "relaxed-multiqueue", "exact-faa", "sequential", "best speedup"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunNamedClassScaledByThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("full class benchmark is slow")
	}
	var out bytes.Buffer
	err := run([]string{"-class", "smalldense", "-threads", "1", "-trials", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "smalldense") {
		t.Fatalf("output missing class name:\n%s", out.String())
	}
}

func TestRunAlternativeAlgorithms(t *testing.T) {
	for _, algo := range []string{"coloring", "matching"} {
		var out bytes.Buffer
		err := run([]string{
			"-algo", algo, "-vertices", "800", "-edges", "3000", "-threads", "1", "-trials", "1",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "best speedup") {
			t.Fatalf("%s: missing summary line", algo)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-algo", "nope", "-vertices", "100", "-edges", "200", "-threads", "1", "-trials", "1"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"unknown class", []string{"-class", "galactic"}},
		{"bad threads", []string{"-threads", "1,zero", "-vertices", "100", "-edges", "200"}},
		{"negative threads", []string{"-threads", "-2", "-vertices", "100", "-edges", "200"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2, 8", "thread count")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	got, err = parseInts("", "thread count")
	if err != nil || got != nil {
		t.Fatalf("empty input should yield nil, got %v, %v", got, err)
	}
	if _, err := parseInts("0", "thread count"); err == nil {
		t.Fatal("zero thread count accepted")
	}
	if _, err := parseInts("nope", "batch size"); err == nil {
		t.Fatal("non-numeric batch size accepted")
	}
}

func TestRunSweepWritesJSON(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/BENCH_concurrent.json"
	var out bytes.Buffer
	err := run([]string{
		"-sweep", "-vertices", "1500", "-edges", "6000", "-threads", "1,2",
		"-batches", "1,16", "-trials", "1", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var reports []bench.ScalingReport
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatalf("invalid JSON in %s: %v", jsonPath, err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	rep := reports[0]
	// 3 schedulers x 2 worker counts x 2 batch sizes.
	if len(rep.Points) != 12 {
		t.Fatalf("got %d sweep points, want 12", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.ThroughputTasksPerSec <= 0 {
			t.Fatalf("non-positive throughput in point %+v", pt)
		}
	}
	if !strings.Contains(out.String(), "best throughput") {
		t.Fatalf("missing sweep summary:\n%s", out.String())
	}
}

func TestRunRejectsInvalidFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative vertices", []string{"-vertices", "-5"}},
		{"negative edges", []string{"-vertices", "100", "-edges", "-1"}},
		{"zero trials", []string{"-vertices", "100", "-edges", "200", "-trials", "0"}},
		{"negative trials", []string{"-vertices", "100", "-edges", "200", "-trials", "-2"}},
		{"zero queue factor", []string{"-vertices", "100", "-edges", "200", "-queue-factor", "0"}},
		{"negative batch", []string{"-vertices", "100", "-edges", "200", "-batch", "-4"}},
		{"bad thread list", []string{"-vertices", "100", "-edges", "200", "-threads", "1,0"}},
		{"unknown class", []string{"-class", "galaxy"}},
		{"baseline without sweep", []string{"-vertices", "100", "-edges", "200", "-baseline", "x.json"}},
		{"unknown algo in list", []string{"-algo", "mis,galactic", "-vertices", "100", "-edges", "200"}},
		{"zero delta", []string{"-algo", "sssp", "-vertices", "100", "-edges", "200", "-delta", "0"}},
		{"delta overflows uint32", []string{"-algo", "sssp", "-vertices", "100", "-edges", "200", "-delta", "4294967296"}},
		{"delta without sssp", []string{"-algo", "mis", "-vertices", "100", "-edges", "200", "-delta", "16"}},
		{"negative tol", []string{"-algo", "pagerank", "-vertices", "100", "-edges", "200", "-tol", "-1e-9"}},
		{"tol without pagerank", []string{"-algo", "mis", "-vertices", "100", "-edges", "200", "-tol", "1e-6"}},
		{"append without sweep", []string{"-vertices", "100", "-edges", "200", "-append"}},
		{"append without json", []string{"-sweep", "-vertices", "100", "-edges", "200", "-append", "-json", ""}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}

func TestSweepBaselineGate(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/sweep.json"
	args := []string{
		"-sweep", "-vertices", "2000", "-edges", "8000", "-threads", "1",
		"-batches", "16", "-trials", "1", "-seed", "7", "-json", jsonPath,
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	// Gating against the sweep's own output must always pass.
	var out2 bytes.Buffer
	if err := run(append(args, "-baseline", jsonPath, "-json", dir+"/second.json"), &out2); err != nil {
		t.Fatalf("self-baseline gate failed: %v", err)
	}
	if !strings.Contains(out2.String(), "regression gate passed") {
		t.Fatalf("missing gate confirmation:\n%s", out2.String())
	}
	// An impossible baseline must fail the gate.
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var reports []bench.ScalingReport
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatal(err)
	}
	for i := range reports {
		for j := range reports[i].Points {
			reports[i].Points[j].ThroughputTasksPerSec *= 1000
		}
	}
	inflated, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	badPath := dir + "/inflated.json"
	if err := os.WriteFile(badPath, inflated, 0o644); err != nil {
		t.Fatal(err)
	}
	var out3 bytes.Buffer
	if err := run(append(args, "-baseline", badPath, "-json", dir+"/third.json"), &out3); err == nil {
		t.Fatal("1000x-inflated baseline passed the regression gate")
	}
}

func TestRunDynamicAlgorithms(t *testing.T) {
	// Panel runs for the dynamic workloads, including a bucketed sssp; the
	// multi-algo form prints one header per algorithm.
	var out bytes.Buffer
	err := run([]string{
		"-algo", "sssp,kcore", "-vertices", "900", "-edges", "3600",
		"-threads", "1,2", "-trials", "1", "-delta", "8", "-seed", "9",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"algorithm=sssp", "algorithm=kcore", "best speedup"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSweepDynamicAlgorithmsAppend(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/BENCH.json"
	// First, a MIS sweep creates the file.
	var out bytes.Buffer
	err := run([]string{
		"-sweep", "-vertices", "1200", "-edges", "5000", "-threads", "1",
		"-batches", "16", "-trials", "1", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// Then a dynamic sweep with -append adds sssp and kcore entries without
	// discarding the MIS entry.
	out.Reset()
	err = run([]string{
		"-sweep", "-algo", "sssp,kcore", "-vertices", "1200", "-edges", "5000",
		"-threads", "1", "-batches", "16", "-trials", "1", "-append", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var reports []bench.ScalingReport
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports after append, want 3 (mis + sssp + kcore)", len(reports))
	}
	algos := map[string]bool{}
	for _, rep := range reports {
		algos[rep.Algorithm] = true
	}
	for _, want := range []string{"mis", "sssp", "kcore"} {
		if !algos[want] {
			t.Fatalf("missing %s report after append: %v", want, algos)
		}
	}
	// Re-running the dynamic sweep with -append replaces in place instead of
	// duplicating.
	out.Reset()
	err = run([]string{
		"-sweep", "-algo", "kcore", "-vertices", "1200", "-edges", "5000",
		"-threads", "1", "-batches", "16", "-trials", "1", "-append", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports after re-append, want 3", len(reports))
	}
}

func TestSweepDynamicSelfBaselineGate(t *testing.T) {
	// The regression gate must key on (class, algorithm): a dynamic sweep
	// gated against its own output passes even when the baseline also holds
	// entries for other algorithms.
	dir := t.TempDir()
	jsonPath := dir + "/sweep.json"
	args := []string{
		"-sweep", "-algo", "sssp", "-vertices", "1500", "-edges", "6000",
		"-threads", "1", "-batches", "16", "-trials", "1", "-seed", "3", "-json", jsonPath,
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := run(append(args, "-baseline", jsonPath, "-json", dir+"/second.json"), &out2); err != nil {
		t.Fatalf("self-baseline gate failed: %v", err)
	}
	if !strings.Contains(out2.String(), "regression gate passed") {
		t.Fatalf("missing gate confirmation:\n%s", out2.String())
	}
}

func TestSweepClassList(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/sweep.json"
	var out bytes.Buffer
	err := run([]string{
		"-sweep", "-class", "powerlaw", "-threads", "1", "-batches", "16",
		"-trials", "1", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var reports []bench.ScalingReport
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Class != "powerlaw" || reports[0].Model != "powerlaw" {
		t.Fatalf("unexpected reports: %+v", reports)
	}
}

func TestRunPageRankPanel(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-algo", "pagerank", "-vertices", "800", "-edges", "3200",
		"-threads", "1,2", "-trials", "1", "-tol", "1e-6",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "best speedup") {
		t.Fatalf("missing summary line:\n%s", out.String())
	}
}
