package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles opens and starts the requested pprof outputs. Both paths are
// validated eagerly: an unwritable path fails here, before any benchmark work
// runs, instead of discarding a finished sweep at exit. Either path may be
// empty (that profile is skipped). The returned stop function finishes the
// CPU profile and takes the heap snapshot; call it exactly once, after the
// measured work.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	var memFile *os.File
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			// Undo the started CPU profile so the process (and the next run()
			// call in tests) is back in a clean state.
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
		memFile = f
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memFile != nil {
			// Collect garbage first so the snapshot shows steady-state
			// retention, not whatever the last trial left unreclaimed.
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("-memprofile: %w", err)
			}
			if err := memFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("-memprofile: %w", err)
			}
		}
		return firstErr
	}, nil
}
