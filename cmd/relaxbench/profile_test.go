package main

import (
	"bytes"
	"os"
	"testing"
)

// tinyArgs is a fast panel invocation profile tests piggyback on.
func tinyArgs(extra ...string) []string {
	return append([]string{
		"-vertices", "500", "-edges", "1500", "-threads", "1", "-trials", "1",
	}, extra...)
}

// requirePprof asserts path holds a non-empty gzip stream — the pprof wire
// format — without depending on a profile parser.
func requirePprof(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("%s: %d bytes, not a gzipped pprof profile", path, len(data))
	}
}

func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	var out bytes.Buffer
	if err := run(tinyArgs("-cpuprofile", cpu, "-memprofile", mem), &out); err != nil {
		t.Fatal(err)
	}
	requirePprof(t, cpu)
	requirePprof(t, mem)
}

func TestProfileFlagsWithSweep(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	var out bytes.Buffer
	err := run([]string{
		"-sweep", "-vertices", "800", "-edges", "3000", "-threads", "1",
		"-batches", "16", "-trials", "1", "-json", dir + "/sweep.json",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	requirePprof(t, cpu)
	requirePprof(t, mem)
	if _, err := os.Stat(dir + "/sweep.json"); err != nil {
		t.Fatalf("sweep JSON missing alongside profiles: %v", err)
	}
}

func TestProfileFlagsRejectUnwritablePaths(t *testing.T) {
	dir := t.TempDir()
	bad := dir + "/no-such-dir/x.pprof"
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"cpuprofile", tinyArgs("-cpuprofile", bad)},
		{"memprofile", tinyArgs("-memprofile", bad)},
		{"memprofile after cpu started", tinyArgs("-cpuprofile", dir+"/cpu.pprof", "-memprofile", bad)},
		{"same file for both", tinyArgs("-cpuprofile", dir+"/p.pprof", "-memprofile", dir+"/p.pprof")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if out.Len() != 0 {
				t.Fatalf("benchmark work ran before profile validation:\n%s", out.String())
			}
		})
	}
	// The failed -memprofile case above started the CPU profile; a follow-up
	// run with a valid path must succeed, proving the cleanup stopped it.
	var out bytes.Buffer
	cpu := dir + "/cpu2.pprof"
	if err := run(tinyArgs("-cpuprofile", cpu), &out); err != nil {
		t.Fatalf("CPU profiling left running after a failed start: %v", err)
	}
	requirePprof(t, cpu)
}
