// Command relaxd is the relaxed-scheduler job service: a long-running
// daemon that executes any registry workload (mis, coloring, matching,
// sssp, kcore, pagerank) on generated graphs, over an HTTP JSON API.
//
// Its pending-job queue is itself an internal/sched scheduler — selectable
// with -jobsched between the exact heap, the MultiQueue, the deterministic
// k-bounded queue, a priority-blind FIFO, and the adaptive "auto" mode — so
// the paper's relaxation-versus-throughput trade is applied, and measured,
// at job granularity: every dispatch records the job's rank error and queue
// latency, reported by GET /v1/metrics. Under -jobsched auto a feedback
// controller (internal/control) retunes the relaxation online: it widens the
// dispatch bound and executor batches under queue pressure and tightens
// toward exact when the observed rank error breaches -rank-slo. Repeated
// jobs on the same generator spec share one CSR build through the graph
// cache.
//
// API (see internal/api):
//
//	POST /v1/jobs               submit  {"workload":"mis","mode":"concurrent","graph":{"n":100000,"edges":1000000,"seed":7},"priority":10}
//	GET  /v1/jobs/{id}          status/result
//	GET  /v1/jobs/{id}/trace    per-job lifecycle span timeline (accepted → queued → dispatched → executing → terminal)
//	GET  /v1/workloads          registry listing
//	GET  /v1/metrics            jobs by state, queue depth, cache hits, wasted work, rank error, controller state
//	GET  /v1/metrics/prom       the same counters as Prometheus text exposition, plus latency histograms
//	POST /v1/drain              stop admission
//	GET  /healthz               liveness; 200 {"status":"draining"} during a drain
//
// Observability: -log-level/-log-format select structured (log/slog) job
// logging — every accepted and finished job logs with its job_id and
// X-Relax-Trace-Id — and -debug-addr serves net/http/pprof and
// /debug/vars on a separate listener.
//
// SIGINT/SIGTERM drain gracefully: HTTP stays up through the drain — new
// submissions get 503 while status polls keep working — and queued and
// in-flight jobs finish. Past -drain-timeout the drain turns forced:
// queued jobs are canceled and in-flight concurrent/relaxed executions
// abort at their next batch boundary or pop (a sequential-mode job cannot
// be preempted and finishes on its own). Then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"relaxsched/internal/metricsexport"
	"relaxsched/internal/service"
	"relaxsched/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("relaxd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
		jobsched   = fs.String("jobsched", service.JobSchedMultiQueue, "job-queue scheduler: exact, multiqueue, kbounded, fifo, auto")
		jobschedK  = fs.Int("jobsched-k", 4, "relaxation factor for -jobsched multiqueue/kbounded")
		workers    = fs.Int("workers", 2, "job worker goroutines")
		queueDepth = fs.Int("queue-depth", 256, "admission bound on queued jobs (beyond it: 429)")
		cacheCap   = fs.Int("cache", 8, "graph cache capacity in entries (negative disables)")
		seed       = fs.Uint64("seed", 1, "seed for the relaxed job schedulers")
		drain      = fs.Duration("drain-timeout", 30*time.Second, "grace period for finishing jobs on shutdown")
		retain     = fs.Int("retain", 65536, "finished jobs kept queryable (oldest forgotten first)")
		rankSLO    = fs.Float64("rank-slo", 2, "-jobsched auto: bound on windowed mean job rank error")
		p99SLO     = fs.Duration("p99-slo", 5*time.Second, "-jobsched auto: p99 queue-latency target")
		ctrlEvery  = fs.Duration("control-interval", 250*time.Millisecond, "-jobsched auto: controller sampling period")
		walDir     = fs.String("wal-dir", "", "write-ahead job log directory (empty disables durability); accepted jobs are fsynced before the 202 and replayed after a crash")
		walSegment = fs.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 selects the 4 MiB default)")
		logLevel   = fs.String("log-level", "info", "structured log level: debug, info, warn, error (debug logs every job acceptance)")
		logFormat  = fs.String("log-format", "text", "structured log format: text, json")
		debugAddr  = fs.String("debug-addr", "", "separate listen address for net/http/pprof and /debug/vars (empty disables; keep it off public interfaces)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := trace.NewLogger(out, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	mgr, err := service.NewManager(service.Options{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		JobSched:        *jobsched,
		JobSchedK:       *jobschedK,
		CacheCapacity:   *cacheCap,
		Seed:            *seed,
		RetainJobs:      *retain,
		RankSLO:         *rankSLO,
		P99SLO:          *p99SLO,
		ControlInterval: *ctrlEvery,
		WALDir:          *walDir,
		WALSegmentBytes: *walSegment,
		Logger:          logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		closeCtx, cancel := context.WithCancel(context.Background())
		cancel()
		mgr.Close(closeCtx)
		return err
	}
	fmt.Fprintf(out, "relaxd: listening on http://%s (jobsched=%s k=%d workers=%d queue-depth=%d cache=%d)\n",
		ln.Addr(), *jobsched, *jobschedK, *workers, *queueDepth, *cacheCap)
	if *jobsched == service.JobSchedAuto {
		fmt.Fprintf(out, "relaxd: adaptive relaxation on (rank-slo=%g p99-slo=%v control-interval=%v)\n",
			*rankSLO, *p99SLO, *ctrlEvery)
	}
	if *walDir != "" {
		if w := mgr.Metrics().WAL; w != nil {
			fmt.Fprintf(out, "relaxd: wal: logging to %s (replayed %d unfinished jobs, torn_tail=%v)\n",
				*walDir, w.ReplayedJobs, w.TornTail)
		}
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			closeCtx, cancel := context.WithCancel(context.Background())
			cancel()
			mgr.Close(closeCtx)
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(out, "relaxd: debug listening on http://%s (pprof at /debug/pprof/, expvar at /debug/vars)\n", dln.Addr())
		debugSrv = &http.Server{Handler: metricsexport.DebugHandler()}
		go debugSrv.Serve(dln)
	}

	srv := &http.Server{Handler: service.NewHandler(mgr)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "relaxd: shutdown signal received, draining (timeout %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Close stops admission as its first action but HTTP stays up through
	// the whole drain window (srv.Shutdown only runs afterwards), so new
	// submissions get the documented 503 and clients can keep polling the
	// jobs the daemon is still finishing.
	if err := mgr.Close(drainCtx); err != nil {
		fmt.Fprintf(out, "relaxd: forced drain after %v: queued jobs canceled, in-flight aborted\n", *drain)
	} else {
		fmt.Fprintln(out, "relaxd: drained cleanly")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		fmt.Fprintf(out, "relaxd: http shutdown: %v\n", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	return nil
}
