package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe for the writer goroutine (run) and the
// reader (the test) to share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var (
	listenRE      = regexp.MustCompile(`listening on (http://[^ ]+)`)
	debugListenRE = regexp.MustCompile(`debug listening on (http://[^ ]+)`)
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, performs a
// submit/poll round trip over real HTTP, then cancels the context (the
// in-process equivalent of SIGTERM) and expects a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-jobsched", "exact"}, &out)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		case <-time.After(time.Millisecond):
		}
	}
	if base == "" {
		t.Fatalf("no listen line in output:\n%s", out.String())
	}

	body := `{"workload":"mis","mode":"sequential","graph":{"n":500,"edges":2000,"seed":3}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    int64  `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || st.ID == 0 {
		t.Fatalf("submit: id=%d err=%v", st.ID, err)
	}
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", base, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job ended %q", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job stuck in %q", st.State)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain returned %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("no clean-drain line:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	cases := map[string][]string{
		"unknown jobsched":   {"-jobsched", "mystery"},
		"bad flag":           {"-no-such-flag"},
		"bad addr":           {"-addr", "not-an-address:-1"},
		"negative workers":   {"-workers", "-2"},
		"unknown log level":  {"-log-level", "loud"},
		"unknown log format": {"-log-format", "yaml"},
	}
	for name, args := range cases {
		if err := run(ctx, args, &out); err == nil {
			t.Errorf("%s: accepted %v", name, args)
		}
	}
}
