package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmokeBinary is the service smoke CI runs via `make serve-smoke`
// (gated behind RELAXSCHED_SMOKE_SERVE=1 because it builds and execs the
// real binary): build relaxd, start it as a separate process, submit a
// small MIS and a PageRank job over real HTTP, assert both verify, assert
// the graph cache reports hits > 0 after a second identical submit, then
// SIGTERM the daemon and require a clean exit.
func TestServeSmokeBinary(t *testing.T) {
	if os.Getenv("RELAXSCHED_SMOKE_SERVE") == "" {
		t.Skip("set RELAXSCHED_SMOKE_SERVE=1 to run the relaxd binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "relaxd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building relaxd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-jobsched", "multiqueue", "-jobsched-k", "4")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// The first stdout line announces the bound address.
	scanner := bufio.NewScanner(stdout)
	var base string
	for scanner.Scan() {
		if m := listenRE.FindStringSubmatch(scanner.Text()); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("relaxd printed no listen line; stderr: %s", stderr.String())
	}
	// Keep draining stdout so the daemon never blocks on a full pipe.
	go func() {
		for scanner.Scan() {
		}
	}()

	submit := func(body string) int64 {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %s %s", body, resp.Status, payload)
		}
		var st struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			t.Fatal(err)
		}
		return st.ID
	}
	waitDone := func(id int64) map[string]any {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
			if err != nil {
				t.Fatal(err)
			}
			var st map[string]any
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			switch st["state"] {
			case "done":
				return st
			case "failed", "canceled":
				t.Fatalf("job %d ended %v: %v", id, st["state"], st["error"])
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %d did not finish", id)
		return nil
	}

	misJob := `{"workload":"mis","mode":"concurrent","threads":2,"graph":{"n":20000,"edges":80000,"seed":7},"priority":5}`
	prJob := `{"workload":"pagerank","mode":"concurrent","threads":2,"tolerance":1e-7,"graph":{"n":20000,"edges":80000,"seed":7},"priority":1}`

	misStatus := waitDone(submit(misJob))
	prStatus := waitDone(submit(prJob))
	for name, st := range map[string]map[string]any{"mis": misStatus, "pagerank": prStatus} {
		result, ok := st["result"].(map[string]any)
		if !ok || result["verified"] != true {
			t.Fatalf("%s job not verified: %v", name, st)
		}
	}

	// The second identical MIS submit must hit the graph cache.
	again := waitDone(submit(misJob))
	if result, ok := again["result"].(map[string]any); !ok || result["graph_cache_hit"] != true {
		t.Fatalf("repeat submit missed the graph cache: %v", again)
	}
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		RankError struct {
			Count int64 `json:"count"`
		} `json:"rank_error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Cache.Hits < 1 {
		t.Fatalf("graph cache hits = %d after repeat submit", metrics.Cache.Hits)
	}
	if metrics.RankError.Count != 3 {
		t.Fatalf("rank-error dispatch count = %d, want 3", metrics.RankError.Count)
	}

	// SIGTERM: the daemon must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("relaxd exited non-zero after SIGTERM: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("relaxd did not exit after SIGTERM")
	}
}
