package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"relaxsched/internal/metricsexport"
)

// TestServeSmokeBinary is the service smoke CI runs via `make serve-smoke`
// (gated behind RELAXSCHED_SMOKE_SERVE=1 because it builds and execs the
// real binary): build relaxd, start it as a separate process, submit a
// small MIS and a PageRank job over real HTTP, assert both verify, assert
// the graph cache reports hits > 0 after a second identical submit, then
// SIGTERM the daemon and require a clean exit.
func TestServeSmokeBinary(t *testing.T) {
	if os.Getenv("RELAXSCHED_SMOKE_SERVE") == "" {
		t.Skip("set RELAXSCHED_SMOKE_SERVE=1 to run the relaxd binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "relaxd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building relaxd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-jobsched", "multiqueue", "-jobsched-k", "4", "-debug-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Startup prints the bound API address first, then the debug address;
	// the debug line also says "listening on", so it is matched first.
	scanner := bufio.NewScanner(stdout)
	var base, debugBase string
	for scanner.Scan() {
		line := scanner.Text()
		if m := debugListenRE.FindStringSubmatch(line); m != nil {
			debugBase = m[1]
		} else if m := listenRE.FindStringSubmatch(line); m != nil {
			base = m[1]
		}
		if base != "" && debugBase != "" {
			break
		}
	}
	if base == "" || debugBase == "" {
		t.Fatalf("relaxd printed no listen lines (api=%q debug=%q); stderr: %s", base, debugBase, stderr.String())
	}
	// Keep draining stdout so the daemon never blocks on a full pipe.
	go func() {
		for scanner.Scan() {
		}
	}()

	submit := func(body string) int64 {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %s %s", body, resp.Status, payload)
		}
		var st struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			t.Fatal(err)
		}
		return st.ID
	}
	waitDone := func(id int64) map[string]any {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
			if err != nil {
				t.Fatal(err)
			}
			var st map[string]any
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			switch st["state"] {
			case "done":
				return st
			case "failed", "canceled":
				t.Fatalf("job %d ended %v: %v", id, st["state"], st["error"])
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %d did not finish", id)
		return nil
	}

	misJob := `{"workload":"mis","mode":"concurrent","threads":2,"graph":{"n":20000,"edges":80000,"seed":7},"priority":5}`
	prJob := `{"workload":"pagerank","mode":"concurrent","threads":2,"tolerance":1e-7,"graph":{"n":20000,"edges":80000,"seed":7},"priority":1}`

	misStatus := waitDone(submit(misJob))
	prStatus := waitDone(submit(prJob))
	for name, st := range map[string]map[string]any{"mis": misStatus, "pagerank": prStatus} {
		result, ok := st["result"].(map[string]any)
		if !ok || result["verified"] != true {
			t.Fatalf("%s job not verified: %v", name, st)
		}
	}

	// The second identical MIS submit must hit the graph cache.
	repeatID := submit(misJob)
	again := waitDone(repeatID)
	if result, ok := again["result"].(map[string]any); !ok || result["graph_cache_hit"] != true {
		t.Fatalf("repeat submit missed the graph cache: %v", again)
	}
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		RankError struct {
			Count int64 `json:"count"`
		} `json:"rank_error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Cache.Hits < 1 {
		t.Fatalf("graph cache hits = %d after repeat submit", metrics.Cache.Hits)
	}
	if metrics.RankError.Count != 3 {
		t.Fatalf("rank-error dispatch count = %d, want 3", metrics.RankError.Count)
	}

	// The Prometheus exposition must pass the parser-style lint and carry
	// the counters the JSON snapshot just reported.
	presp, err := http.Get(base + "/v1/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(presp.Body)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("prom scrape: %s", presp.Status)
	}
	if err := metricsexport.Lint(promBody); err != nil {
		t.Fatalf("prom exposition failed lint: %v\n%s", err, promBody)
	}
	for _, want := range []string{"relax_cache_hits_total", "relax_jobs_done_total", "relax_queue_latency_seconds_bucket"} {
		if !bytes.Contains(promBody, []byte(want)) {
			t.Fatalf("prom exposition missing %s:\n%s", want, promBody)
		}
	}

	// The finished job's lifecycle must be reconstructable from its trace.
	tresp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/trace", base, repeatID))
	if err != nil {
		t.Fatal(err)
	}
	var jobTrace struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	err = json.NewDecoder(tresp.Body).Decode(&jobTrace)
	tresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %s", tresp.Status)
	}
	if jobTrace.TraceID == "" || len(jobTrace.Spans) == 0 {
		t.Fatalf("trace is empty: %+v", jobTrace)
	}
	if last := jobTrace.Spans[len(jobTrace.Spans)-1].Name; last != "done" {
		t.Fatalf("trace of a done job ends with span %q, want done", last)
	}

	// The separate debug listener serves expvar (and pprof alongside it).
	dresp, err := http.Get(debugBase + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	err = json.NewDecoder(dresp.Body).Decode(&vars)
	dresp.Body.Close()
	if err != nil || dresp.StatusCode != http.StatusOK {
		t.Fatalf("debug vars: %s %v", dresp.Status, err)
	}

	// SIGTERM: the daemon must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("relaxd exited non-zero after SIGTERM: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("relaxd did not exit after SIGTERM")
	}
}
