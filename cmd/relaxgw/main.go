// Command relaxgw is the cluster gateway for relaxd: it fronts N
// backends behind the same versioned HTTP API as a single node, routing
// each job to the backend owning its graph key (consistent hashing, so
// repeated jobs on one generator spec keep hitting the node whose graph
// cache already holds the build), failing submissions over past
// unreachable backends, and fanning status polls to the owning node.
//
// GET /v1/metrics serves the cluster-wide aggregate — including the
// gateway-measured *global* rank error: each dispatched job's rank among
// every job pending anywhere in the cluster, the paper's rank-error
// statistic lifted from one relaxed queue to the whole fleet — plus a
// per-backend breakdown. GET /v1/metrics/prom renders the same data as
// Prometheus text with one backend="<url>" label set per node, and
// GET /v1/jobs/{id}/trace routes to the owning backend and prepends the
// gateway's own submit-hop span, so a job's whole life is reconstructable
// from one poll. The health checker reads the explicit /healthz status
// body, distinguishing a draining backend (alive, finishing work, out of
// the submit rotation) from a dead one.
//
// SIGINT/SIGTERM drain gracefully: admission stops (503), the drain fans
// out to every backend, and the HTTP server shuts down after a short
// grace period for in-flight polls.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relaxsched/internal/gateway"
	"relaxsched/internal/metricsexport"
	"relaxsched/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxgw:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("relaxgw", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
		backends  = fs.String("backends", "", "comma-separated relaxd base URLs (required), e.g. http://localhost:8081,http://localhost:8082")
		replicas  = fs.Int("replicas", 128, "virtual ring points per backend")
		health    = fs.Duration("health-interval", 2*time.Second, "backend health-check period")
		drain     = fs.Duration("drain-timeout", 30*time.Second, "grace period for the backend drain fan-out on shutdown")
		logLevel  = fs.String("log-level", "info", "structured log level: debug, info, warn, error (debug logs every routed job)")
		logFormat = fs.String("log-format", "text", "structured log format: text, json")
		debugAddr = fs.String("debug-addr", "", "separate listen address for net/http/pprof and /debug/vars (empty disables; keep it off public interfaces)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := trace.NewLogger(out, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-backends is required (comma-separated relaxd base URLs)")
	}
	gw, err := gateway.New(gateway.Options{
		Backends:       urls,
		Replicas:       *replicas,
		HealthInterval: *health,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "relaxgw: listening on http://%s (backends=%d replicas=%d health-interval=%v)\n",
		ln.Addr(), len(urls), *replicas, *health)

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(out, "relaxgw: debug listening on http://%s (pprof at /debug/pprof/, expvar at /debug/vars)\n", dln.Addr())
		debugSrv = &http.Server{Handler: metricsexport.DebugHandler()}
		go debugSrv.Serve(dln)
	}

	srv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "relaxgw: shutdown signal received, draining backends (timeout %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := gw.Drain(drainCtx); err != nil {
		fmt.Fprintf(out, "relaxgw: drain fan-out: %v\n", err)
	} else {
		fmt.Fprintln(out, "relaxgw: backends draining")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		fmt.Fprintf(out, "relaxgw: http shutdown: %v\n", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	return nil
}
