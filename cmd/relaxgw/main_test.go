package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"relaxsched/internal/service"
)

// syncBuffer is a bytes.Buffer safe for the writer goroutine (run) and the
// reader (the test) to share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

// startInProcessBackend runs a real service.Manager behind httptest so the
// gateway under test talks to genuine relaxd HTTP surfaces.
func startInProcessBackend(t *testing.T) string {
	t.Helper()
	mgr, err := service.NewManager(service.Options{Workers: 1, QueueDepth: 64, JobSched: service.JobSchedExact, CacheCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return srv.URL
}

// TestRunServesAndDrains boots the gateway on an ephemeral port over two
// in-process backends, performs a submit/poll round trip through it, then
// cancels the context (the in-process SIGTERM) and expects the drain
// fan-out to reach the backends.
func TestRunServesAndDrains(t *testing.T) {
	backends := startInProcessBackend(t) + "," + startInProcessBackend(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-backends", backends}, &out)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		case <-time.After(time.Millisecond):
		}
	}
	if base == "" {
		t.Fatalf("no listen line in output:\n%s", out.String())
	}

	body := `{"workload":"mis","mode":"sequential","graph":{"n":500,"edges":2000,"seed":3}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    int64  `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", base, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job ended %q", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job stuck in %q", st.State)
	}

	// The cluster metrics route serves the per-backend breakdown.
	mresp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var cm struct {
		HealthyBackends int `json:"healthy_backends"`
		Backends        []struct {
			URL string `json:"url"`
		} `json:"backends"`
		RankError struct {
			Count int64 `json:"count"`
		} `json:"rank_error"`
	}
	err = json.NewDecoder(mresp.Body).Decode(&cm)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cm.HealthyBackends != 2 || len(cm.Backends) != 2 {
		t.Fatalf("cluster metrics: healthy=%d backends=%d", cm.HealthyBackends, len(cm.Backends))
	}
	if cm.RankError.Count != 1 {
		t.Fatalf("global rank-error count = %d, want 1", cm.RankError.Count)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain returned %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("gateway did not shut down\n%s", out.String())
	}
	if !strings.Contains(out.String(), "backends draining") {
		t.Fatalf("no drain fan-out line:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	cases := map[string][]string{
		"missing backends":   {"-addr", "127.0.0.1:0"},
		"empty backends":     {"-backends", " , "},
		"bad flag":           {"-no-such-flag"},
		"unknown log level":  {"-log-level", "loud", "-backends", "http://localhost:9"},
		"unknown log format": {"-log-format", "yaml", "-backends", "http://localhost:9"},
		"bad addr":           {"-addr", "not-an-address:-1", "-backends", "http://localhost:9"},
		"too many backends": append([]string{"-backends"}, func() string {
			urls := make([]string, 300)
			for i := range urls {
				urls[i] = fmt.Sprintf("http://node-%d:8080", i)
			}
			return strings.Join(urls, ",")
		}()),
	}
	for name, args := range cases {
		if err := run(ctx, args, &out); err == nil {
			t.Errorf("%s: accepted %v", name, args)
		}
	}
}
