package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"relaxsched/internal/metricsexport"
)

// daemon is one child process under the smoke test: a relaxd backend or
// the gateway.
type daemon struct {
	name   string
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer
}

func startDaemon(t *testing.T, name, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{name: name, cmd: cmd, stderr: &stderr}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		if m := listenRE.FindStringSubmatch(scanner.Text()); m != nil {
			d.base = m[1]
			break
		}
	}
	if d.base == "" {
		t.Fatalf("%s printed no listen line; stderr: %s", name, stderr.String())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for scanner.Scan() {
		}
	}()
	return d
}

// terminate SIGTERMs the daemon and requires a clean exit.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- d.cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("%s exited non-zero after SIGTERM: %v\nstderr: %s", d.name, err, d.stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("%s did not exit after SIGTERM", d.name)
	}
}

// TestClusterSmokeBinary is the cluster smoke CI runs via
// `make serve-cluster-smoke` (gated behind RELAXSCHED_SMOKE_CLUSTER=1
// because it builds and execs the real binaries): build relaxd and
// relaxgw, start two backends and the gateway fronting them, submit jobs
// through the gateway, assert graph-affinity routing by the owning node's
// cache hit, check the cluster metrics aggregate, then SIGTERM all three
// processes and require clean exits.
func TestClusterSmokeBinary(t *testing.T) {
	if os.Getenv("RELAXSCHED_SMOKE_CLUSTER") == "" {
		t.Skip("set RELAXSCHED_SMOKE_CLUSTER=1 to run the cluster binary smoke test")
	}

	dir := t.TempDir()
	relaxd := filepath.Join(dir, "relaxd")
	relaxgw := filepath.Join(dir, "relaxgw")
	for bin, pkg := range map[string]string{relaxd: "relaxsched/cmd/relaxd", relaxgw: "relaxsched/cmd/relaxgw"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	b1 := startDaemon(t, "relaxd-1", relaxd, "-addr", "127.0.0.1:0", "-workers", "2", "-jobsched", "multiqueue", "-jobsched-k", "4")
	b2 := startDaemon(t, "relaxd-2", relaxd, "-addr", "127.0.0.1:0", "-workers", "2", "-jobsched", "multiqueue", "-jobsched-k", "4")
	gw := startDaemon(t, "relaxgw", relaxgw, "-addr", "127.0.0.1:0", "-backends", b1.base+","+b2.base)

	submit := func(body string) int64 {
		t.Helper()
		resp, err := http.Post(gw.base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %s %s", body, resp.Status, payload)
		}
		var st struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			t.Fatal(err)
		}
		return st.ID
	}
	waitDone := func(id int64) map[string]any {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", gw.base, id))
			if err != nil {
				t.Fatal(err)
			}
			var st map[string]any
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			switch st["state"] {
			case "done":
				return st
			case "failed", "canceled":
				t.Fatalf("job %d ended %v: %v", id, st["state"], st["error"])
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %d did not finish", id)
		return nil
	}

	misJob := `{"workload":"mis","mode":"concurrent","threads":2,"graph":{"n":20000,"edges":80000,"seed":7},"priority":5}`
	prJob := `{"workload":"pagerank","mode":"concurrent","threads":2,"tolerance":1e-7,"graph":{"n":20000,"edges":80000,"seed":7},"priority":1}`

	misID := submit(misJob)
	misStatus := waitDone(misID)
	if result, ok := misStatus["result"].(map[string]any); !ok || result["verified"] != true {
		t.Fatalf("mis job not verified: %v", misStatus)
	}

	// Same graph spec → same owning backend → its cache serves the build.
	// The pagerank job shares the graph key, so affinity routing makes even
	// a different workload hit the owner's cache.
	againID := submit(misJob)
	if misID%256 != againID%256 {
		t.Fatalf("identical specs routed to backends %d and %d", misID%256, againID%256)
	}
	again := waitDone(againID)
	if result, ok := again["result"].(map[string]any); !ok || result["graph_cache_hit"] != true {
		t.Fatalf("repeat submit missed the owning node's graph cache: %v", again)
	}
	pr := waitDone(submit(prJob))
	if result, ok := pr["result"].(map[string]any); !ok || result["graph_cache_hit"] != true {
		t.Fatalf("same-graph pagerank missed the owning node's cache: %v", pr)
	}

	resp, err := http.Get(gw.base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		HealthyBackends int `json:"healthy_backends"`
		Backends        []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
		Jobs struct {
			Done int64 `json:"done"`
		} `json:"jobs"`
		Cache struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
		RankError struct {
			Count int64 `json:"count"`
		} `json:"rank_error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metrics.HealthyBackends != 2 || len(metrics.Backends) != 2 {
		t.Fatalf("cluster metrics: healthy=%d backends=%d", metrics.HealthyBackends, len(metrics.Backends))
	}
	if metrics.Jobs.Done != 3 {
		t.Fatalf("aggregate done = %d, want 3", metrics.Jobs.Done)
	}
	if metrics.Cache.Hits < 2 {
		t.Fatalf("aggregate cache hits = %d after two same-graph repeats", metrics.Cache.Hits)
	}
	if metrics.RankError.Count != 3 {
		t.Fatalf("global rank-error count = %d, want 3", metrics.RankError.Count)
	}

	// The gateway's Prometheus exposition must pass the parser-style lint
	// and label each backend's series with its URL.
	presp, err := http.Get(gw.base + "/v1/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(presp.Body)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("gateway prom scrape: %s", presp.Status)
	}
	if err := metricsexport.Lint(promBody); err != nil {
		t.Fatalf("gateway exposition failed lint: %v\n%s", err, promBody)
	}
	for _, u := range []string{b1.base, b2.base} {
		if !bytes.Contains(promBody, []byte(`backend="`+u+`"`)) {
			t.Fatalf("gateway exposition missing backend label for %s:\n%s", u, promBody)
		}
	}

	// A trace polled through the gateway leads with the gateway's own
	// submit hop, then the owning backend's lifecycle spans.
	tresp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/trace", gw.base, misID))
	if err != nil {
		t.Fatal(err)
	}
	var jobTrace struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	err = json.NewDecoder(tresp.Body).Decode(&jobTrace)
	tresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("gateway trace fetch: %s", tresp.Status)
	}
	if jobTrace.TraceID == "" || len(jobTrace.Spans) < 2 {
		t.Fatalf("gateway trace too small: %+v", jobTrace)
	}
	if jobTrace.Spans[0].Name != "gateway.submit" {
		t.Fatalf("first span = %q, want gateway.submit", jobTrace.Spans[0].Name)
	}
	if last := jobTrace.Spans[len(jobTrace.Spans)-1].Name; last != "done" {
		t.Fatalf("trace of a done job ends with span %q, want done", last)
	}

	// SIGTERM the gateway first (it drains the backends), then the
	// backends; all three must exit 0.
	gw.terminate(t)
	b1.terminate(t)
	b2.terminate(t)
}
