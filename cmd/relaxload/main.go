// Command relaxload is the closed-loop load generator for relaxd: N
// concurrent clients each submit a job, poll it to completion, and
// immediately submit the next, until the requested number of jobs has run.
// It prints a throughput/latency summary plus the server-side view (queue
// latency, job rank error, graph-cache hit rate) from /metrics.
//
// Examples:
//
//	relaxload -url http://localhost:8080 -clients 8 -jobs 64
//	relaxload -url http://localhost:8080 -workloads mis,pagerank -mode concurrent -n 100000 -edges 1000000
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relaxsched/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("relaxload", flag.ContinueOnError)
	var (
		url       = fs.String("url", "", "relaxd base URL, e.g. http://localhost:8080 (required)")
		clients   = fs.Int("clients", 4, "concurrent closed-loop clients")
		jobs      = fs.Int("jobs", 32, "total jobs to run")
		workloads = fs.String("workloads", "", "comma-separated job mix (default: all registry workloads)")
		mode      = fs.String("mode", "concurrent", "execution mode for every job")
		threads   = fs.Int("threads", 2, "per-job worker count for concurrent/exact modes")
		model     = fs.String("graph", service.ModelGNP, "graph model: gnp, powerlaw, grid")
		n         = fs.Int("n", 20_000, "graph vertices")
		edges     = fs.Int64("edges", 80_000, "graph edge target (gnp/powerlaw)")
		exponent  = fs.Float64("exponent", 0, "power-law exponent (0 = default 2.5)")
		graphSeed = fs.Uint64("graph-seed", 1, "graph generator seed (one seed = one cache entry)")
		seeds     = fs.Int("graph-seeds", 1, "cycle jobs over this many consecutive seeds (distinct graph keys; via a gateway, distinct ring positions)")
		spread    = fs.Int("priority-spread", 100, "job priorities cycle over [0, spread)")
		poll      = fs.Duration("poll", 2*time.Millisecond, "status poll interval")
		verify    = fs.Bool("verify", true, "ask each job to run its exactness oracle")
		progress  = fs.Duration("progress", 0, "print a rolling progress line at this interval (0 disables), e.g. -progress 2s")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	if *clients < 1 || *jobs < 1 {
		return fmt.Errorf("-clients and -jobs must be at least 1 (got %d, %d)", *clients, *jobs)
	}
	if *spread < 1 {
		return fmt.Errorf("-priority-spread must be at least 1, got %d", *spread)
	}
	if *seeds < 1 {
		return fmt.Errorf("-graph-seeds must be at least 1, got %d", *seeds)
	}
	var mix []string
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			if w = strings.TrimSpace(w); w != "" {
				mix = append(mix, w)
			}
		}
	}

	cfg := service.LoadConfig{
		BaseURL:   strings.TrimRight(*url, "/"),
		Clients:   *clients,
		Jobs:      *jobs,
		Workloads: mix,
		Mode:      *mode,
		Threads:   *threads,
		Graph: service.GraphSpec{
			Model:    *model,
			N:        *n,
			Edges:    *edges,
			Exponent: *exponent,
			Seed:     *graphSeed,
		},
		GraphSeeds:     *seeds,
		PrioritySpread: *spread,
		PollInterval:   *poll,
		Verify:         *verify,
	}
	if *progress > 0 {
		cfg.Progress = out
		cfg.ProgressInterval = *progress
	}
	if err := cfg.Graph.Validate(); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	fmt.Fprintf(out, "relaxload: %d clients x %d jobs against %s (mode=%s graph=%s)\n",
		*clients, *jobs, cfg.BaseURL, *mode, cfg.Graph.Key())
	res, err := service.RunLoad(ctx, cfg)
	// The report prints even when the run was cut short: the partial
	// summary now carries the accepted-but-never-terminal count, which is
	// the number that matters when the server went away mid-run.
	fmt.Fprint(out, res.Format())
	if err != nil {
		return err
	}
	if res.Unfinished > 0 {
		return fmt.Errorf("%d accepted jobs never reached a terminal state", res.Unfinished)
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d jobs did not finish done", res.Failed, res.Jobs)
	}
	return nil
}
