package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relaxsched/internal/service"
)

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	cases := map[string][]string{
		"missing url":     {},
		"zero clients":    {"-url", "http://x", "-clients", "0"},
		"zero jobs":       {"-url", "http://x", "-jobs", "0"},
		"zero spread":     {"-url", "http://x", "-priority-spread", "0"},
		"bad graph model": {"-url", "http://x", "-graph", "hypercube"},
		"bad flag":        {"-frobnicate"},
	}
	for name, args := range cases {
		if err := run(ctx, args, &out); err == nil {
			t.Errorf("%s: accepted %v", name, args)
		}
	}
}

// TestRunAgainstInProcessService drives the CLI end to end against a real
// manager served over httptest, checking the printed report.
func TestRunAgainstInProcessService(t *testing.T) {
	m, err := service.NewManager(service.Options{Workers: 2, JobSched: service.JobSchedKBounded, JobSchedK: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(m))
	defer func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	}()

	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-url", srv.URL,
		"-clients", "2",
		"-jobs", "6",
		"-workloads", "mis,kcore",
		"-mode", "relaxed",
		"-n", "400",
		"-edges", "1600",
		"-progress", "1ms",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"6 done", "jobs/s", "rank error", "kbounded", "graph cache"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	// The 1ms -progress interval guarantees at least one rolling line
	// during even the fastest run.
	if !strings.Contains(report, "progress: submitted=") {
		t.Fatalf("report missing the rolling progress line:\n%s", report)
	}
}
