// Command relaxrun runs any workload from the registry — mis, coloring,
// matching, sssp, kcore, pagerank — over a graph in the library's edge-list
// format (see cmd/graphgen), in any of the supported execution modes, and
// reports timing, the workload's output summary, and its wasted-work metric.
// It is the generic, registry-driven counterpart of the single-workload
// wrappers cmd/misrun and cmd/kcorerun: a workload added to
// internal/workload is runnable here with no CLI change.
//
// Examples:
//
//	relaxrun -list                                    # table of registered workloads
//	relaxrun -workload pagerank -in graph.txt -mode concurrent -threads 8
//	relaxrun -workload sssp -in graph.txt -mode relaxed -k 32 -delta 16
//	relaxrun -workload coloring -in graph.txt -mode exact -threads 4
//	relaxrun -workload pagerank -in graph.txt -tol 1e-7 -damping 0.9
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"relaxsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("relaxrun", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list the registered workloads and exit")
		name     = fs.String("workload", "", "workload to run (see -list; required)")
		inPath   = fs.String("in", "", "input edge-list file (required)")
		modeName = fs.String("mode", "sequential", "execution mode: sequential, relaxed, concurrent, exact")
		k        = fs.Int("k", 16, "relaxation factor for -mode relaxed (MultiQueue sub-queues)")
		threads  = fs.Int("threads", 4, "worker goroutines for -mode concurrent/exact")
		batch    = fs.Int("batch", 0, "executor batch size for -mode concurrent/exact (0 = executor default)")
		seed     = fs.Uint64("seed", 1, "random seed for permutations, weights and relaxed schedulers")
		delta    = fs.Uint64("delta", 1, "Δ-stepping bucket width for sssp priorities (1 = exact distances)")
		damping  = fs.Float64("damping", 0, "pagerank damping factor in (0, 1) (unset = 0.85)")
		tol      = fs.Float64("tol", 0, "pagerank target L1 error, must be positive (unset = 1e-9)")
		source   = fs.Int("source", -1, "sssp source vertex (-1 = first non-isolated vertex)")
		verify   = fs.Bool("verify", true, "verify the result against the workload's exactness oracle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		printWorkloads(out)
		return nil
	}
	if *name == "" {
		return fmt.Errorf("-workload is required (try -list)")
	}
	d, err := workload.Lookup(*name)
	if err != nil {
		return err
	}
	if err := workload.ValidateFlags(*k, *threads, *batch); err != nil {
		return err
	}
	if *delta < 1 || *delta > 1<<32-1 {
		return fmt.Errorf("invalid delta %d: must be in [1, 2^32)", *delta)
	}
	// An explicitly set workload knob must be valid AND apply to the chosen
	// workload (matching relaxbench's "-tol only applies to -algo pagerank"
	// behavior). An unset flag — or an explicit no-op value for -delta and
	// -source — selects the workload default silently; -tol and -damping
	// have no valid no-op value, so setting them at all requires pagerank.
	var flagErr error
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "tol":
			if *tol <= 0 {
				flagErr = fmt.Errorf("invalid tolerance %v: -tol must be positive", *tol)
			} else if *name != "pagerank" {
				flagErr = fmt.Errorf("-tol only applies to -workload pagerank")
			}
		case "damping":
			if !(*damping > 0 && *damping < 1) {
				flagErr = fmt.Errorf("invalid damping %v: must lie in (0, 1)", *damping)
			} else if *name != "pagerank" {
				flagErr = fmt.Errorf("-damping only applies to -workload pagerank")
			}
		}
	})
	if flagErr != nil {
		return flagErr
	}
	if *delta != 1 && *name != "sssp" {
		return fmt.Errorf("-delta only applies to -workload sssp")
	}
	if *source >= 0 && *name != "sssp" {
		return fmt.Errorf("-source only applies to -workload sssp")
	}
	mode, err := workload.ParseMode(*modeName)
	if err != nil {
		return err
	}
	g, err := workload.LoadGraph(*inPath)
	if err != nil {
		return err
	}

	res, err := d.RunMode(g, workload.RunConfig{
		Mode:    mode,
		K:       *k,
		Threads: *threads,
		Batch:   *batch,
	}, workload.Params{
		Seed:      *seed,
		Delta:     uint32(*delta),
		Damping:   *damping,
		Tolerance: *tol,
		Source:    *source,
	})
	if err != nil {
		return err
	}

	if *verify {
		if err := res.Instance.Verify(res.Output); err != nil {
			return fmt.Errorf("result verification failed: %w", err)
		}
	}
	fmt.Fprintf(out, "graph: %s\n", g.String())
	fmt.Fprintf(out, "workload: %s (%s)  mode: %s  time: %v\n", d.Name, d.Kind, mode, res.Elapsed)
	fmt.Fprintf(out, "%s  %s: %d  pops: %d (%d stale)\n",
		res.Output.Summary(), d.WastedWork, res.Cost.Wasted, res.Cost.Pops, res.Cost.StalePops)
	return nil
}

// printWorkloads renders the registry as an aligned table.
func printWorkloads(out io.Writer) {
	fmt.Fprintf(out, "%-10s %-8s %-24s %s\n", "workload", "kind", "wasted work", "description")
	for _, d := range workload.All() {
		fmt.Fprintf(out, "%-10s %-8s %-24s %s\n", d.Name, d.Kind, d.WastedWork, d.Brief)
		fmt.Fprintf(out, "%-10s input: %s\n", "", d.Input)
	}
}
