package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/workload"
)

// writeTestGraph writes a random G(n,m) graph to a temp file and returns its
// path.
func writeTestGraph(t *testing.T, n int, m int64) string {
	t.Helper()
	g, err := graph.GNM(n, m, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEveryWorkloadEveryMode(t *testing.T) {
	path := writeTestGraph(t, 500, 2500)
	for _, name := range workload.Names() {
		for _, mode := range []string{"sequential", "relaxed", "concurrent", "exact"} {
			var out bytes.Buffer
			err := run([]string{
				"-workload", name, "-in", path, "-mode", mode, "-threads", "2", "-k", "8", "-seed", "3",
			}, &out)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mode, err)
			}
			got := out.String()
			if !strings.Contains(got, "workload: "+name) || !strings.Contains(got, "mode: "+mode) {
				t.Fatalf("%s/%s: unexpected output:\n%s", name, mode, got)
			}
		}
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range workload.Names() {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunPageRankKnobs(t *testing.T) {
	path := writeTestGraph(t, 300, 1200)
	var out bytes.Buffer
	err := run([]string{
		"-workload", "pagerank", "-in", path, "-mode", "concurrent",
		"-threads", "2", "-tol", "1e-7", "-damping", "0.9",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stale pops + re-pushes:") {
		t.Fatalf("missing wasted-work label:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t, 50, 100)
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"missing workload", []string{"-in", path}},
		{"unknown workload", []string{"-workload", "galactic", "-in", path}},
		{"missing input", []string{"-workload", "mis"}},
		{"nonexistent file", []string{"-workload", "mis", "-in", "/does/not/exist"}},
		{"unknown mode", []string{"-workload", "mis", "-in", path, "-mode", "quantum"}},
		{"zero k", []string{"-workload", "mis", "-in", path, "-mode", "relaxed", "-k", "0"}},
		{"zero threads", []string{"-workload", "kcore", "-in", path, "-mode", "concurrent", "-threads", "0"}},
		{"negative batch", []string{"-workload", "kcore", "-in", path, "-mode", "concurrent", "-batch", "-1"}},
		{"zero delta", []string{"-workload", "sssp", "-in", path, "-delta", "0"}},
		{"explicit zero tol", []string{"-workload", "pagerank", "-in", path, "-tol", "0"}},
		{"negative tol", []string{"-workload", "pagerank", "-in", path, "-tol", "-1e-9"}},
		{"damping at 1", []string{"-workload", "pagerank", "-in", path, "-damping", "1"}},
		{"source out of range", []string{"-workload", "sssp", "-in", path, "-source", "50"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}
