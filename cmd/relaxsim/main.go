// Command relaxsim runs the paper's sequential simulations: it measures the
// number of extra scheduler iterations caused by relaxation when executing an
// iterative algorithm through the framework.
//
// The default invocation reproduces Table 1 of the paper (greedy MIS with a
// MultiQueue-model scheduler over the |V| x |E| x k grid):
//
//	relaxsim -table1
//
// Individual cells and sweeps for the other algorithms (used to validate
// Theorems 1 and 2) are available through flags:
//
//	relaxsim -algo coloring -vertices 10000 -edges 30000 -k 32 -trials 5
//	relaxsim -algo mis -sweep-n "1000,10000,100000" -edges 30000 -k 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"relaxsched/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("relaxsim", flag.ContinueOnError)
	var (
		table1    = fs.Bool("table1", false, "reproduce the paper's Table 1 grid (MIS, MultiQueue)")
		algo      = fs.String("algo", "mis", "algorithm: mis, matching, coloring, listcontract, shuffle")
		schedKind = fs.String("sched", "multiqueue", "scheduler family: multiqueue, topk, spraylist, kbounded")
		vertices  = fs.Int("vertices", 1000, "number of vertices (or list nodes / shuffle iterations)")
		edges     = fs.Int64("edges", 10000, "number of edges (ignored by listcontract and shuffle)")
		k         = fs.Int("k", 16, "relaxation factor")
		ks        = fs.String("sweep-k", "", "comma-separated relaxation factors to sweep (overrides -k)")
		sweepN    = fs.String("sweep-n", "", "comma-separated vertex counts to sweep (overrides -vertices)")
		trials    = fs.Int("trials", 2, "trials per cell")
		seed      = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *table1 {
		results, err := sim.Sweep(sim.AlgMIS, sim.SchedMultiQueue, sim.Table1Sizes(), sim.Table1Ks(), *trials, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Table 1 reproduction: mean extra iterations for relaxed MIS (MultiQueue model)")
		fmt.Fprint(out, sim.FormatTable(results))
		return nil
	}

	kList, err := parseInts(*ks, []int{*k})
	if err != nil {
		return fmt.Errorf("parsing -sweep-k: %w", err)
	}
	nList, err := parseInts(*sweepN, []int{*vertices})
	if err != nil {
		return fmt.Errorf("parsing -sweep-n: %w", err)
	}

	sizes := make([]sim.Size, 0, len(nList))
	for _, n := range nList {
		sizes = append(sizes, sim.Size{Vertices: n, Edges: *edges})
	}
	results, err := sim.Sweep(sim.Algorithm(*algo), sim.Scheduler(*schedKind), sizes, kList, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "algorithm=%s scheduler=%s trials=%d: mean extra iterations\n", *algo, *schedKind, *trials)
	fmt.Fprint(out, sim.FormatTable(results))
	fmt.Fprintln(out)
	for _, cell := range results {
		fmt.Fprintf(out, "n=%d m=%d k=%d tasks=%d extra=%s\n",
			cell.Config.Vertices, cell.Config.Edges, cell.Config.K, cell.Tasks, cell.ExtraIterations.String())
	}
	return nil
}

func parseInts(csv string, fallback []int) ([]int, error) {
	if strings.TrimSpace(csv) == "" {
		return fallback, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
