package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleCell(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-algo", "mis", "-vertices", "500", "-edges", "2000", "-k", "8", "-trials", "1", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"algorithm=mis", "k=8", "500", "extra="} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSweeps(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-algo", "coloring", "-sweep-n", "200,400", "-edges", "800", "-sweep-k", "2,4", "-trials", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"k=2", "k=4", "200", "400", "coloring"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunAllAlgorithmsSmall(t *testing.T) {
	for _, algo := range []string{"mis", "matching", "coloring", "listcontract", "shuffle"} {
		var out bytes.Buffer
		err := run([]string{"-algo", algo, "-vertices", "200", "-edges", "500", "-k", "4", "-trials", "1"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "algorithm="+algo) {
			t.Fatalf("%s: header missing", algo)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad sweep-k", []string{"-sweep-k", "4,x"}},
		{"bad sweep-n", []string{"-sweep-n", "abc"}},
		{"unknown algorithm", []string{"-algo", "frobnicate", "-vertices", "100", "-edges", "100"}},
		{"unknown scheduler", []string{"-sched", "magic", "-vertices", "100", "-edges", "100"}},
		{"too many edges", []string{"-vertices", "10", "-edges", "1000"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3", nil)
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	got, err = parseInts("", []int{7})
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("fallback = %v, %v", got, err)
	}
	if _, err := parseInts("1,x", nil); err == nil {
		t.Fatal("invalid input accepted")
	}
}

func TestRunTable1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 grid is slow")
	}
	var out bytes.Buffer
	if err := run([]string{"-table1", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Table 1", "k=64", "10000"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table1 output missing %q", want)
		}
	}
}
