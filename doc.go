// Package relaxsched is a Go reproduction of "Relaxed Schedulers Can
// Efficiently Parallelize Iterative Algorithms" (Alistarh, Brown, Kopinsky,
// Nadiradze; PODC 2018, arXiv:1808.04155).
//
// The library implements the paper's execution framework for iterative
// algorithms with explicit dependencies plus a second executor family for
// dynamic-priority workloads (internal/core), the relaxed priority
// schedulers it builds on — MultiQueue, SprayList, a deterministic k-bounded
// queue, an exact binary heap, and a fetch-and-add FIFO baseline
// (internal/sched/...) — the graph substrate (internal/graph), the
// algorithms the paper analyzes (greedy MIS, maximal matching, greedy
// coloring, list contraction, Knuth shuffle, and the dynamic-priority
// contrast workloads: SSSP with optional Δ-stepping bucketing, and k-core
// decomposition, under internal/algos/...), and the simulation and benchmark
// harnesses that regenerate the paper's Table 1 and Figure 2 (internal/sim,
// internal/bench, cmd/relaxsim, cmd/relaxbench).
//
// The root package contains no code; it exists to carry this documentation
// and the repository-level benchmarks in bench_test.go, which regenerate
// every table and figure of the paper's evaluation (see EXPERIMENTS.md).
package relaxsched
