// Package relaxsched is a Go reproduction of "Relaxed Schedulers Can
// Efficiently Parallelize Iterative Algorithms" (Alistarh, Brown, Kopinsky,
// Nadiradze; PODC 2018, arXiv:1808.04155).
//
// The library implements the paper's execution framework for iterative
// algorithms with explicit dependencies plus a second executor family for
// dynamic-priority workloads (internal/core), the relaxed priority
// schedulers it builds on — MultiQueue, SprayList, a deterministic k-bounded
// queue, an exact binary heap, and a fetch-and-add FIFO baseline
// (internal/sched/...) — the graph substrate (internal/graph), and the
// workloads the paper analyzes plus the extensions it calls for: greedy MIS,
// maximal matching, greedy coloring, list contraction, Knuth shuffle, and
// the dynamic-priority workloads SSSP (optional Δ-stepping bucketing),
// k-core decomposition, and residual-push PageRank (internal/algos/...).
//
// Every schedulable workload registers a descriptor in internal/workload —
// the registry that ties algorithms to executors, schedulers, CLIs and the
// benchmark harness. cmd/relaxrun runs any registered workload over an
// edge-list graph in any execution mode; cmd/misrun and cmd/kcorerun are
// thin single-workload wrappers; cmd/relaxbench and internal/bench
// regenerate the paper's Figure 2 and the worker-scaling sweep behind
// BENCH_concurrent.json; cmd/relaxsim and internal/sim regenerate Table 1.
//
// On the serving path, internal/service and cmd/relaxd expose the registry
// as a long-running job service: the pending-job queue is itself an
// internal/sched scheduler (exact, MultiQueue, k-bounded, FIFO — or auto,
// where the internal/control feedback controller retunes the queue's rank
// bound and the executors' batch size online against operator rank-error
// and p99-latency SLOs), with per-job rank error and queue latency
// measured, a graph cache keyed by canonical generator spec, bounded
// admission and graceful drain. The wire
// contract lives in internal/api — the transport-agnostic Dispatcher
// interface, the wire types, the JSON error envelope, a typed client and
// the versioned /v1 HTTP handler — shared by the daemon, the tools and
// internal/gateway + cmd/relaxgw, a cluster gateway that shards jobs
// across N relaxd backends by consistent hash of the graph key and
// measures the global rank error that emerges from per-node queues (the
// MultiQueue construction lifted to the fleet); cmd/relaxload is the
// closed-loop load generator for either. See ARCHITECTURE.md for the
// layer diagram and the how-to-add-a-workload walkthrough, and
// EXPERIMENTS.md for the measurement methodology.
//
// The root package contains no code; it exists to carry this documentation
// and the repository-level benchmarks in bench_test.go, which regenerate
// every table and figure of the paper's evaluation.
package relaxsched
