// Example: deterministic parallel greedy vertex coloring of a power-law
// (social-network-style) graph.
//
// Register allocation, exam timetabling and Chordal-style scheduling problems
// all reduce to coloring; the greedy heuristic needs a fixed vertex order to
// give reproducible colorings, which is exactly what the framework preserves
// while still running on all cores.
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"relaxsched/internal/algos/coloring"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coloring example:", err)
		os.Exit(1)
	}
}

func run() error {
	const seed = 7
	r := rng.New(seed)

	// An R-MAT graph has the skewed degree distribution of social networks:
	// a few hubs with very high degree and a long tail of low-degree users.
	fmt.Println("generating R-MAT power-law graph (2^15 vertices, ~8 edges/vertex)...")
	g, err := graph.RMAT(15, 8, 0.57, 0.19, 0.19, r)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s, max degree %d\n", g, g.MaxDegree())

	labels := core.RandomLabels(g.NumVertices(), r)

	start := time.Now()
	reference := coloring.Sequential(g, labels)
	fmt.Printf("sequential greedy coloring: %v, %d colors\n", time.Since(start), coloring.NumColors(reference))

	workers := runtime.GOMAXPROCS(0)
	mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, g.NumVertices(), seed)
	start = time.Now()
	colors, res, err := coloring.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("concurrent coloring (%d workers): %v, %d colors, %d failed deletes\n",
		workers, time.Since(start), coloring.NumColors(colors), res.FailedDeletes)

	if !coloring.Equal(colors, reference) {
		return fmt.Errorf("parallel coloring differs from the sequential greedy coloring")
	}
	if err := coloring.Verify(g, colors); err != nil {
		return err
	}
	fmt.Println("parallel coloring is proper and identical to the sequential one ✔")

	// Color histogram: how many vertices got each of the first few colors.
	hist := make(map[int32]int)
	for _, c := range colors {
		hist[c]++
	}
	fmt.Println("color usage (first 8 colors):")
	for c := int32(0); c < 8 && int(c) < coloring.NumColors(colors); c++ {
		fmt.Printf("  color %d: %d vertices\n", c, hist[c])
	}
	return nil
}
