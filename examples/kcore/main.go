// Example: k-core decomposition of a power-law graph with a relaxed
// priority scheduler.
//
// K-core peeling is a dynamic-priority workload: a vertex's removal priority
// is its *current* degree, which drops as neighbors are peeled away. The
// example computes core numbers three ways — the sequential bucket-peeling
// oracle, a relaxed sequential-model MultiQueue, and the concurrent dynamic
// engine — and checks that all three produce the identical decomposition:
// the relaxed executions use the order-independent h-index fixpoint, so
// relaxation can only add work (stale pops), never wrong core numbers.
//
// Power-law graphs are the natural showcase: most vertices sit in shallow
// cores and peel away quickly, while the high-degree hubs form a small dense
// center with a much larger core number (the graph's degeneracy).
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"relaxsched/internal/algos/kcore"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kcore example:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		vertices  = 200_000
		avgDegree = 10
		exponent  = 2.5
		seed      = 7
	)
	fmt.Printf("building power-law graph (%d vertices, avg degree %d, exponent %.1f)...\n",
		vertices, avgDegree, exponent)
	g, err := graph.PowerLaw(vertices, avgDegree, exponent, runtime.GOMAXPROCS(0), rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s, max degree %d\n", g, g.MaxDegree())

	start := time.Now()
	exact := kcore.Sequential(g)
	fmt.Printf("sequential bucket peeling:  %v\n", time.Since(start))

	start = time.Now()
	relaxed, st, err := kcore.RunRelaxed(g, multiqueue.NewSequential(16, g.NumVertices(), rng.New(seed)))
	if err != nil {
		return err
	}
	fmt.Printf("relaxed queue (sequential): %v, %d pops (%d stale)\n", time.Since(start), st.Pops, st.StalePops)

	workers := runtime.GOMAXPROCS(0)
	mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, g.NumVertices(), seed)
	start = time.Now()
	parallel, pst, err := kcore.RunConcurrent(g, mq, core.DynamicOptions{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("relaxed queue (%d workers): %v, %d pops (%d stale)\n", workers, time.Since(start), pst.Pops, pst.StalePops)

	if !kcore.Equal(relaxed, exact) || !kcore.Equal(parallel, exact) {
		return fmt.Errorf("relaxed core numbers differ from the peeling oracle")
	}
	fmt.Println("all executions computed the identical k-core decomposition ✔")

	// A tiny profile of the decomposition: how many vertices sit at each of
	// the lowest core levels, and the dense center at the top.
	degeneracy := kcore.Degeneracy(exact)
	counts := make([]int, degeneracy+1)
	for _, c := range exact {
		counts[c]++
	}
	fmt.Printf("degeneracy (max core number): %d\n", degeneracy)
	for k := 0; k <= int(degeneracy) && k <= 3; k++ {
		fmt.Printf("  core %d: %d vertices\n", k, counts[k])
	}
	if degeneracy > 3 {
		fmt.Printf("  ...\n  core %d (densest): %d vertices\n", degeneracy, counts[degeneracy])
	}
	return nil
}
