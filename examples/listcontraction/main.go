// Example: list contraction / cycle structure analysis with the relaxed
// framework.
//
// The input is a permutation interpreted as a functional graph (i -> p(i)),
// which decomposes into disjoint cycles. Contracting every node of each
// cycle in random priority order — the paper's List Contraction workload —
// is the core primitive behind parallel cycle counting and list ranking. The
// dependency structure is inherently sparse (at most one predecessor per
// node), so by Theorem 1 the relaxation overhead is negligible.
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"relaxsched/internal/algos/listcontract"
	"relaxsched/internal/core"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "listcontraction example:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n    = 200_000
		seed = 13
	)
	r := rng.New(seed)

	// Build the functional graph of a random permutation: next[i] = perm[i].
	// Its cycles partition the n nodes. Fixed points are singleton lists
	// (no pointers), so they are excluded from the cycle structure.
	perm := r.Perm(n)
	next := make([]int32, n)
	for i, p := range perm {
		if p == i {
			next[i] = listcontract.None
		} else {
			next[i] = int32(p)
		}
	}
	problem, err := listcontract.New(next)
	if err != nil {
		return err
	}
	fmt.Printf("random permutation on %d elements: %d cycles of length >= 2\n", n, countCycles(perm))

	labels := core.RandomLabels(n, r)

	start := time.Now()
	seqPrev, seqNext := listcontract.Sequential(problem, labels)
	fmt.Printf("sequential contraction: %v\n", time.Since(start))

	workers := runtime.GOMAXPROCS(0)
	mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, n, seed)
	start = time.Now()
	gotPrev, gotNext, res, err := listcontract.RunConcurrent(problem, labels, mq, core.ConcurrentOptions{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("concurrent contraction (%d workers): %v, extra iterations %d\n",
		workers, time.Since(start), res.ExtraIterations())

	if !listcontract.Equal(gotPrev, gotNext, seqPrev, seqNext) {
		return fmt.Errorf("concurrent contraction record differs from the sequential one")
	}
	if err := listcontract.Verify(problem, labels, gotPrev, gotNext); err != nil {
		return err
	}
	fmt.Println("contraction records are identical and satisfy the priority invariant ✔")

	// A node whose recorded neighbors are itself was the last survivor of
	// its cycle; counting them recovers the cycle count in parallel.
	lastSurvivors := 0
	for v := 0; v < n; v++ {
		if gotPrev[v] == int32(v) && gotNext[v] == int32(v) {
			lastSurvivors++
		}
	}
	fmt.Printf("cycles recovered from contraction records: %d\n", lastSurvivors)
	return nil
}

// countCycles counts the cycles of length at least two in the permutation.
func countCycles(perm []int) int {
	seen := make([]bool, len(perm))
	cycles := 0
	for i := range perm {
		if seen[i] || perm[i] == i {
			continue
		}
		cycles++
		for j := i; !seen[j]; j = perm[j] {
			seen[j] = true
		}
	}
	return cycles
}
