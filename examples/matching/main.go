// Example: greedy maximal matching for a bipartite assignment workload.
//
// A classic use of maximal matching is pairing requests with resources
// (tasks with machines, riders with drivers). This example builds a random
// bipartite "requests x servers" compatibility graph, computes the greedy
// maximal matching deterministically in parallel with the relaxed framework,
// and cross-checks it against both the sequential greedy and the paper's
// line-graph MIS reduction.
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"relaxsched/internal/algos/matching"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "matching example:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		requests = 20_000
		servers  = 20_000
		pairs    = 200_000
		seed     = 99
	)
	r := rng.New(seed)

	fmt.Printf("building compatibility graph: %d requests x %d servers, %d compatible pairs...\n",
		requests, servers, pairs)
	g, err := graph.RandomBipartite(requests, servers, pairs, r)
	if err != nil {
		return err
	}
	numEdges := int(g.NumEdges())
	labels := core.RandomLabels(numEdges, r)

	start := time.Now()
	reference := matching.Sequential(g, labels)
	fmt.Printf("sequential greedy matching: %v, %d pairs matched\n", time.Since(start), matching.Size(reference))

	workers := runtime.GOMAXPROCS(0)
	mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, numEdges, seed)
	start = time.Now()
	matched, res, err := matching.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("concurrent matching (%d workers): %v, %d pairs matched, extra iterations %d\n",
		workers, time.Since(start), matching.Size(matched), res.ExtraIterations())

	if !matching.Equal(matched, reference) {
		return fmt.Errorf("parallel matching differs from the sequential greedy matching")
	}
	if err := matching.Verify(g, matched); err != nil {
		return err
	}

	// Cross-check with the paper's reduction: matching = MIS on the line
	// graph. (The line graph is materialized, so keep this to modest sizes.)
	small, err := graph.RandomBipartite(300, 300, 2000, rng.New(seed+1))
	if err != nil {
		return err
	}
	smallLabels := core.RandomLabels(int(small.NumEdges()), rng.New(seed+2))
	if !matching.Equal(matching.Sequential(small, smallLabels), matching.ViaLineGraph(small, smallLabels)) {
		return fmt.Errorf("line-graph MIS reduction disagrees with direct greedy matching")
	}
	fmt.Println("matching is valid, maximal, deterministic, and agrees with the line-graph MIS reduction ✔")

	matchedRequests := matching.Size(matched)
	fmt.Printf("assignment coverage: %.1f%% of requests served\n", 100*float64(matchedRequests)/float64(requests))
	return nil
}
