// Example: residual-push PageRank on a power-law graph under relaxed
// priority schedulers.
//
// Push-based PageRank is a dynamic-priority workload: the natural processing
// priority of a vertex is its pending residual mass, which rises at runtime
// as neighbors push into it. The example computes ranks three ways — the
// power-iteration oracle, a relaxed sequential-model MultiQueue push, and
// the concurrent dynamic engine — and checks that every execution lands
// within the tolerance budget of the oracle: relaxation can only cost extra
// pushes (reported as stale pops + re-pushes), never a wrong answer beyond
// the tolerance.
//
// Power-law graphs are the interesting case: the high-degree hubs
// concentrate residual mass and sit at the top of the scheduler, so the
// residual order the schedulers approximate actually matters.
package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"relaxsched/internal/algos/pagerank"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pagerank example:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		vertices  = 100_000
		avgDegree = 10
		exponent  = 2.5
		seed      = 7
	)
	opts := pagerank.Options{Damping: pagerank.DefaultDamping, Tolerance: 1e-8}

	fmt.Printf("building power-law graph (%d vertices, avg degree %d, exponent %.1f)...\n",
		vertices, avgDegree, exponent)
	g, err := graph.PowerLaw(vertices, avgDegree, exponent, runtime.GOMAXPROCS(0), rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s, max degree %d\n", g, g.MaxDegree())

	start := time.Now()
	oracle, err := pagerank.PowerIteration(g, opts)
	if err != nil {
		return err
	}
	fmt.Printf("power iteration (oracle):   %v\n", time.Since(start))

	start = time.Now()
	relaxed, st, err := pagerank.RunRelaxed(g, multiqueue.NewSequential(16, g.NumVertices(), rng.New(seed)), opts)
	if err != nil {
		return err
	}
	fmt.Printf("relaxed push (sequential):  %v, %d pushes (%d wasted: stale + re-push)\n",
		time.Since(start), st.Pushes, st.Wasted())

	workers := runtime.GOMAXPROCS(0)
	mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, g.NumVertices(), seed)
	start = time.Now()
	parallel, pst, err := pagerank.RunConcurrent(g, mq, core.DynamicOptions{Workers: workers}, opts)
	if err != nil {
		return err
	}
	fmt.Printf("relaxed push (%d workers):  %v, %d pushes (%d wasted)\n",
		workers, time.Since(start), pst.Pushes, pst.Wasted())

	for name, ranks := range map[string][]float64{"sequential": relaxed, "concurrent": parallel} {
		if d := pagerank.L1(ranks, oracle); d > 2*opts.Tolerance {
			return fmt.Errorf("%s push drifted %v from the oracle (budget %v)", name, d, 2*opts.Tolerance)
		}
	}
	fmt.Printf("all executions within the %.0e L1 tolerance of the oracle ✔\n", opts.Tolerance)
	fmt.Printf("total rank mass: %.9f (mass below 1 is the undrained residual budget)\n", pagerank.Sum(parallel))

	// The hubs dominate the rank mass — show the top five.
	order := make([]int, g.NumVertices())
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return oracle[order[i]] > oracle[order[j]] })
	fmt.Println("top vertices by rank:")
	for _, v := range order[:5] {
		fmt.Printf("  vertex %6d: rank %.6f, degree %d\n", v, oracle[v], g.Degree(v))
	}
	return nil
}
