// Quickstart: compute a greedy Maximal Independent Set with the relaxed
// scheduling framework and confirm that, despite the relaxed scheduler
// returning tasks out of order, the output is exactly the sequential greedy
// MIS (determinism) and the wasted work is tiny (Theorem 2).
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"relaxsched/internal/algos/mis"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		vertices = 50_000
		edges    = 500_000
		seed     = 2018 // the paper's year, for luck
	)
	r := rng.New(seed)

	fmt.Printf("generating G(n,m) random graph with %d vertices and %d edges...\n", vertices, edges)
	g, err := graph.GNM(vertices, edges, r)
	if err != nil {
		return err
	}

	// A uniformly random priority permutation: the framework guarantees the
	// output is the greedy MIS with respect to exactly this order.
	labels := core.RandomLabels(g.NumVertices(), r)

	// 1. Sequential greedy baseline.
	start := time.Now()
	reference := mis.Sequential(g, labels)
	seqTime := time.Since(start)
	fmt.Printf("sequential greedy MIS:   %8v  (size %d)\n", seqTime, count(reference))

	// 2. Relaxed framework, sequential model (Algorithm 4 with a MultiQueue).
	start = time.Now()
	relaxedSet, res, err := mis.RunRelaxed(g, labels, multiqueue.NewSequential(16, vertices, r.Fork()))
	if err != nil {
		return err
	}
	fmt.Printf("relaxed framework (k=16): %8v  (size %d, extra iterations %d)\n",
		time.Since(start), count(relaxedSet), res.ExtraIterations())

	// 3. Concurrent execution on all available cores.
	workers := runtime.GOMAXPROCS(0)
	mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, vertices, seed)
	start = time.Now()
	parallelSet, cres, err := mis.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers})
	if err != nil {
		return err
	}
	parTime := time.Since(start)
	fmt.Printf("concurrent (%d workers):  %8v  (size %d, extra iterations %d, speedup %.2fx)\n",
		workers, parTime, count(parallelSet), cres.ExtraIterations(), seqTime.Seconds()/parTime.Seconds())

	// Determinism and correctness checks.
	if !mis.Equal(relaxedSet, reference) || !mis.Equal(parallelSet, reference) {
		return fmt.Errorf("outputs differ from the sequential greedy MIS — determinism violated")
	}
	if err := mis.Verify(g, reference); err != nil {
		return err
	}
	fmt.Println("all executions produced the identical, verified maximal independent set ✔")
	return nil
}

func count(set []bool) int {
	n := 0
	for _, in := range set {
		if in {
			n++
		}
	}
	return n
}
