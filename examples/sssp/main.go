// Example: single-source shortest paths on a road-network-like grid using a
// relaxed priority scheduler.
//
// SSSP is the classic application of relaxed priority queues (the paper
// cites it as the motivating example for SprayLists and MultiQueues): the
// scheduler may hand out vertices out of distance order, which wastes a
// little work on stale entries but never affects the final distances. Unlike
// the framework algorithms, the result is reached without determinism of the
// intermediate schedule — this example contrasts that behaviour with the
// deterministic framework used elsewhere.
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"relaxsched/internal/algos/sssp"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sssp example:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		rows = 600
		cols = 600
		seed = 5
	)
	fmt.Printf("building %dx%d grid road network with random segment lengths...\n", rows, cols)
	g := graph.Grid(rows, cols)
	weights, err := graph.RandomWeights(g, 100, seed)
	if err != nil {
		return err
	}
	src := 0

	start := time.Now()
	exact, err := sssp.Dijkstra(g, weights, src)
	if err != nil {
		return err
	}
	fmt.Printf("sequential Dijkstra:        %v\n", time.Since(start))

	start = time.Now()
	relaxedDist, st, err := sssp.RunRelaxed(g, weights, src, multiqueue.NewSequential(16, g.NumVertices(), rng.New(seed)))
	if err != nil {
		return err
	}
	_ = relaxedDist
	fmt.Printf("relaxed queue (sequential): %v, %d pops (%d stale)\n", time.Since(start), st.Pops, st.StalePops)

	workers := runtime.GOMAXPROCS(0)
	mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, g.NumVertices(), seed)
	start = time.Now()
	parDist, pst, err := sssp.RunConcurrent(g, weights, src, mq, workers)
	if err != nil {
		return err
	}
	fmt.Printf("relaxed queue (%d workers): %v, %d pops (%d stale)\n", workers, time.Since(start), pst.Pops, pst.StalePops)

	if !sssp.Equal(parDist, exact) {
		return fmt.Errorf("parallel SSSP distances differ from Dijkstra's")
	}
	if err := sssp.Verify(g, weights, src, parDist); err != nil {
		return err
	}
	fmt.Println("all executions computed identical, verified shortest-path distances ✔")

	corner := rows*cols - 1
	fmt.Printf("distance from corner to corner: %d\n", exact[corner])
	return nil
}
