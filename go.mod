module relaxsched

go 1.22
