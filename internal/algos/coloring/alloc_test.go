package coloring

import (
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// plainState is a minimal core.State for allocation tests.
type plainState struct {
	labels    []uint32
	processed []bool
}

func (s *plainState) NumTasks() int        { return len(s.labels) }
func (s *plainState) Processed(v int) bool { return s.processed[v] }
func (s *plainState) Label(v int) uint32   { return s.labels[v] }

// TestHotLoopsZeroAllocs asserts the coloring hot loops scan the CSR
// adjacency without allocating: Blocked always, and Process as long as the
// neighbor colors fit its on-stack scratch (true on bounded-degree inputs).
func TestHotLoopsZeroAllocs(t *testing.T) {
	r := rng.New(7)
	g, err := graph.GNM(2000, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	st := &plainState{labels: core.RandomLabels(n, r), processed: make([]bool, n)}
	inst := New(g).NewInstance(st).(*Instance)

	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			_ = inst.Blocked(v)
		}
	}); avg != 0 {
		t.Fatalf("Blocked allocated %.1f times per full scan, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			inst.Process(v)
		}
	}); avg != 0 {
		t.Fatalf("Process allocated %.1f times per full scan, want 0", avg)
	}
}
