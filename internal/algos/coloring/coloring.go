// Package coloring implements greedy vertex coloring in the relaxed
// scheduling framework (Algorithm 3 of the paper).
//
// The sequential greedy algorithm processes vertices in priority order and
// assigns each vertex the smallest color not used by an already-colored
// (higher-priority) neighbor. The dependency graph is simply the input graph
// with edges oriented by the priority permutation, so by Theorem 1 a
// k-relaxed scheduler executes it with only O(m/n)·poly(k) extra iterations —
// negligible on sparse graphs.
package coloring

import (
	"fmt"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

// NoColor is the color value of a vertex that has not been processed yet.
const NoColor = int32(-1)

// Problem is the greedy coloring problem on a graph. It implements
// core.Problem.
type Problem struct {
	g *graph.Graph
}

var _ core.Problem = (*Problem)(nil)

// New returns the greedy coloring problem for g.
func New(g *graph.Graph) *Problem { return &Problem{g: g} }

// NumTasks returns the number of vertices.
func (p *Problem) NumTasks() int { return p.g.NumVertices() }

// NewInstance binds the problem to an execution.
func (p *Problem) NewInstance(st core.State) core.Instance {
	colors := make([]int32, p.g.NumVertices())
	for i := range colors {
		colors[i] = NoColor
	}
	return &Instance{g: p.g, st: st, labels: core.LabelsOf(st), colors: colors}
}

// Instance is a bound coloring execution. Concurrent workers only ever read
// the color of a processed neighbor, and the framework's processed bit
// provides the necessary happens-before edge, so plain (non-atomic) color
// storage is safe. The priority labels are held as a flat slice so the hot
// loops read them without an interface dispatch per neighbor.
type Instance struct {
	g      *graph.Graph
	st     core.State
	labels []uint32
	colors []int32
}

var _ core.Instance = (*Instance)(nil)

// Blocked reports whether v still has an uncolored higher-priority neighbor.
func (inst *Instance) Blocked(v int) bool {
	lv := inst.labels[v]
	for _, u := range inst.g.Neighbors(v) {
		if inst.labels[u] < lv && !inst.st.Processed(int(u)) {
			return true
		}
	}
	return false
}

// Dead always reports false; every vertex must be colored.
func (inst *Instance) Dead(int) bool { return false }

// Process assigns v the smallest color unused among its higher-priority
// neighbors. The used-color scratch lives on the stack for vertices whose
// neighbors use fewer than 128 colors, so the hot loop over the CSR
// adjacency does not allocate on bounded-degree graphs.
func (inst *Instance) Process(v int) {
	lv := inst.labels[v]
	var scratch [128]bool
	used := scratch[:0]
	for _, u := range inst.g.Neighbors(v) {
		if inst.labels[u] >= lv {
			continue
		}
		c := inst.colors[u]
		if c < 0 {
			continue
		}
		for int(c) >= len(used) {
			used = append(used, false)
		}
		used[c] = true
	}
	color := int32(len(used))
	for c, taken := range used {
		if !taken {
			color = int32(c)
			break
		}
	}
	inst.colors[v] = color
}

// Colors returns the computed coloring. It must only be called after the
// execution has finished.
func (inst *Instance) Colors() []int32 {
	out := make([]int32, len(inst.colors))
	copy(out, inst.colors)
	return out
}

// Sequential computes the greedy coloring directly, without the framework.
func Sequential(g *graph.Graph, labels []uint32) []int32 {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = NoColor
	}
	for _, task := range core.TasksByLabel(labels) {
		v := int(task)
		used := make(map[int32]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		var c int32
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// RunRelaxed executes greedy coloring with a sequential-model scheduler and
// returns the coloring along with the execution counters.
func RunRelaxed(g *graph.Graph, labels []uint32, s sched.Scheduler) ([]int32, core.Result, error) {
	res, err := core.RunRelaxed(New(g), labels, s)
	if err != nil {
		return nil, core.Result{}, fmt.Errorf("coloring: relaxed execution: %w", err)
	}
	return res.Instance.(*Instance).Colors(), res, nil
}

// RunConcurrent executes greedy coloring with worker goroutines sharing a
// concurrent scheduler.
func RunConcurrent(g *graph.Graph, labels []uint32, s sched.Concurrent, opts core.ConcurrentOptions) ([]int32, core.ConcurrentResult, error) {
	res, err := core.RunConcurrent(New(g), labels, s, opts)
	if err != nil {
		return nil, core.ConcurrentResult{}, fmt.Errorf("coloring: concurrent execution: %w", err)
	}
	return res.Instance.(*Instance).Colors(), res, nil
}

// NumColors returns the number of distinct colors used (the maximum color
// plus one), or 0 if the coloring is empty.
func NumColors(colors []int32) int {
	maxColor := int32(-1)
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
	}
	return int(maxColor + 1)
}

// Verify checks that colors is a proper coloring of g: every vertex has a
// non-negative color and no edge connects two vertices of the same color.
func Verify(g *graph.Graph, colors []int32) error {
	n := g.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(colors), n)
	}
	for v := 0; v < n; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("coloring: vertex %d is uncolored", v)
		}
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				return fmt.Errorf("coloring: adjacent vertices %d and %d share color %d", v, u, colors[v])
			}
		}
	}
	return nil
}

// Equal reports whether two colorings are identical.
func Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
