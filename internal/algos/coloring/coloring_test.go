package coloring

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

func TestSequentialOnPath(t *testing.T) {
	// Path with identity labels: colors alternate 0,1,0,1,...
	g := graph.Path(6)
	colors := Sequential(g, core.IdentityLabels(6))
	want := []int32{0, 1, 0, 1, 0, 1}
	if !Equal(colors, want) {
		t.Fatalf("got %v, want %v", colors, want)
	}
	if err := Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	if NumColors(colors) != 2 {
		t.Fatalf("NumColors = %d, want 2", NumColors(colors))
	}
}

func TestSequentialOnCompleteGraph(t *testing.T) {
	g := graph.Complete(7)
	r := rng.New(1)
	labels := core.RandomLabels(7, r)
	colors := Sequential(g, labels)
	if err := Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	if NumColors(colors) != 7 {
		t.Fatalf("clique coloring used %d colors, want 7", NumColors(colors))
	}
}

func TestSequentialOnStarAndEdgeless(t *testing.T) {
	star := graph.Star(9)
	colors := Sequential(star, core.IdentityLabels(9))
	if err := Verify(star, colors); err != nil {
		t.Fatal(err)
	}
	if NumColors(colors) != 2 {
		t.Fatalf("star coloring used %d colors, want 2", NumColors(colors))
	}

	edgeless := graph.FromEdges(5, nil)
	colors = Sequential(edgeless, core.IdentityLabels(5))
	if NumColors(colors) != 1 {
		t.Fatalf("edgeless coloring used %d colors, want 1", NumColors(colors))
	}
	if NumColors(nil) != 0 {
		t.Fatal("NumColors(nil) != 0")
	}
}

func TestGreedyUsesAtMostMaxDegreePlusOneColors(t *testing.T) {
	r := rng.New(3)
	g, err := graph.GNM(400, 3000, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(400, r)
	colors := Sequential(g, labels)
	if err := Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	if NumColors(colors) > g.MaxDegree()+1 {
		t.Fatalf("greedy used %d colors, exceeds Δ+1 = %d", NumColors(colors), g.MaxDegree()+1)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(3)
	cases := []struct {
		name   string
		colors []int32
	}{
		{"wrong length", []int32{0}},
		{"uncolored vertex", []int32{0, NoColor, 0}},
		{"adjacent same color", []int32{0, 0, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Verify(g, tc.colors); err == nil {
				t.Fatalf("Verify accepted invalid coloring %v", tc.colors)
			}
		})
	}
}

func TestRelaxedMatchesSequentialAcrossSchedulers(t *testing.T) {
	r := rng.New(5)
	g, err := graph.GNM(400, 2400, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(400, r)
	want := Sequential(g, labels)

	schedulers := map[string]sched.Scheduler{
		"exactheap":   exactheap.New(400),
		"topk8":       topk.New(8, 400, rng.New(1)),
		"multiqueue8": multiqueue.NewSequential(8, 400, rng.New(2)),
		"spraylist8":  spraylist.New(8, rng.New(3)),
		"kbounded8":   kbounded.New(8, 400),
	}
	for name, s := range schedulers {
		got, _, err := RunRelaxed(g, labels, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(got, want) {
			t.Fatalf("%s: relaxed coloring differs from sequential", name)
		}
		if err := Verify(g, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	r := rng.New(9)
	g, err := graph.GNM(1500, 9000, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(1500, r)
	want := Sequential(g, labels)
	for _, workers := range []int{1, 2, 4, 8} {
		mq := multiqueue.NewConcurrent(4*workers, 1500, uint64(workers))
		got, _, err := RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(got, want) {
			t.Fatalf("workers=%d: concurrent coloring differs from sequential", workers)
		}
		if err := Verify(g, got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestCliqueWorstCaseStillDeterministic(t *testing.T) {
	// The paper uses coloring on a clique as the tightness example for
	// Theorem 1: only the highest-priority live vertex can ever be
	// processed, so relaxation wastes ~k iterations per vertex — but the
	// output must still be the sequential one.
	g := graph.Complete(60)
	r := rng.New(11)
	labels := core.RandomLabels(60, r)
	want := Sequential(g, labels)
	got, res, err := RunRelaxed(g, labels, topk.New(8, 60, rng.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("clique coloring differs from sequential")
	}
	if res.FailedDeletes == 0 {
		t.Fatal("expected failed deletes on a clique with a relaxed scheduler")
	}
}

func TestDeterminismProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(200)
		maxM := int64(n) * int64(n-1) / 2
		m := int64(r.Intn(int(maxM/3 + 1)))
		g, err := graph.GNM(n, m, r)
		if err != nil {
			return false
		}
		labels := core.RandomLabels(n, r)
		want := Sequential(g, labels)
		if Verify(g, want) != nil {
			return false
		}
		got, _, err := RunRelaxed(g, labels, multiqueue.NewSequential(1+r.Intn(16), n, r.Fork()))
		if err != nil {
			return false
		}
		return Equal(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRelaxedColoring(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(5000, 25000, r)
	if err != nil {
		b.Fatal(err)
	}
	labels := core.RandomLabels(5000, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunRelaxed(g, labels, multiqueue.NewSequential(16, 5000, rng.New(uint64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
