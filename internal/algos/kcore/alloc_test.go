package kcore

import (
	"sync/atomic"
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// TestHotLoopsZeroAllocs pins the allocation profile of the fixpoint hot
// loop: a Stale check is one atomic flag operation and an Expand call scans
// one contiguous CSR neighbors run into a pre-allocated per-worker histogram
// — neither may allocate, no matter how many vertices are re-evaluated.
func TestHotLoopsZeroAllocs(t *testing.T) {
	r := rng.New(42)
	g, err := graph.GNM(2000, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	p := &concProblem{
		g:       g,
		est:     make([]atomic.Uint32, n),
		dirty:   make([]atomic.Bool, n),
		scratch: [][]uint32{make([]uint32, g.MaxDegree()+1)},
	}
	for v := 0; v < n; v++ {
		p.est[v].Store(uint32(g.Degree(v)))
	}
	em := &core.Emitter{Worker: 0}

	// Warm up: re-evaluate every vertex once so the emitter buffer reaches
	// its steady-state capacity.
	for v := 0; v < n; v++ {
		p.Expand(int32(v), 0, em)
		em.Reset()
	}

	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			_ = p.Stale(int32(v), 0)
		}
	}); avg != 0 {
		t.Fatalf("Stale allocated %.1f times per full scan, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			p.Expand(int32(v), 0, em)
			em.Reset()
		}
	}); avg != 0 {
		t.Fatalf("Expand allocated %.1f times per full scan, want 0", avg)
	}
}
