// Package kcore computes the k-core decomposition of a graph — for every
// vertex, the largest k such that it belongs to a subgraph of minimum degree
// k (its core number; the maximum over all vertices is the graph's
// degeneracy).
//
// The sequential oracle is the classic bucket-peeling algorithm (repeatedly
// remove a minimum-degree vertex), which is inherently priority-ordered: the
// removal priority of a vertex is its *current* degree, which drops as
// neighbors are peeled. That makes k-core the second natural dynamic-priority
// workload beside shortest paths, and it is expressed here as a
// core.DynamicProblem driven by the dynamic engine.
//
// The relaxed executions use the local fixpoint formulation (Montresor,
// De Pellegrini, Miorandi, 2013): every vertex keeps an estimate initialized
// to its degree, and repeatedly lowers it to the h-index of its neighbors'
// estimates — the largest h such that at least h neighbors have estimate at
// least h. Estimates decrease monotonically and the greatest fixpoint is
// exactly the core decomposition, *regardless of update order*. A relaxed
// scheduler therefore cannot corrupt the result: processing vertices out of
// degree order only delays convergence, which the engine reports as extra
// pops. Re-check tasks are deduplicated with per-vertex dirty flags that are
// set before insertion and claimed at delivery, so at most one task per
// vertex is ever queued: stale pops are structurally zero, and wasted work
// appears as re-evaluations beyond the initial one per vertex
// (Stats.Pops - NumVertices) instead.
//
// The workload registers as "kcore" in internal/workload (wasted work:
// extra re-evaluations), which is how cmd/kcorerun, cmd/relaxrun,
// cmd/relaxbench and internal/bench reach it.
package kcore

import (
	"fmt"
	"sync/atomic"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

// Stats counts the work performed by a k-core execution.
type Stats struct {
	// Pops is the number of items removed from the scheduler.
	Pops int64
	// StalePops is the number of removed items whose vertex had already been
	// re-evaluated since the item was emitted. The dirty-flag dedup keeps at
	// most one task per vertex queued, so this is structurally zero; it is
	// retained for symmetry with the engine's counters.
	StalePops int64
	// Emitted is the number of re-evaluation tasks emitted by estimate
	// decreases.
	Emitted int64
	// EmptyPolls is the number of scheduler polls that found nothing while
	// work remained (concurrent executions only).
	EmptyPolls int64
}

func fromDynamic(st core.DynamicStats) Stats {
	return Stats{Pops: st.Pops, StalePops: st.StalePops, Emitted: st.Emitted, EmptyPolls: st.EmptyPolls}
}

// Sequential computes core numbers with the Batagelj–Zaveršnik bucket
// peeling algorithm in O(n + m): vertices are kept sorted by current degree,
// and peeling a vertex moves each higher-degree neighbor one bucket down.
// It is the correctness oracle and sequential baseline.
func Sequential(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	coreNum := make([]uint32, n)
	if n == 0 {
		return coreNum
	}
	maxDeg := g.MaxDegree()

	deg := make([]uint32, n)
	bin := make([]uint32, maxDeg+1)
	for v := 0; v < n; v++ {
		deg[v] = uint32(g.Degree(v))
		bin[deg[v]]++
	}
	// bin[d] becomes the start index of degree-d vertices in vert.
	var start uint32
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	vert := make([]uint32, n) // vertices sorted by current degree
	pos := make([]uint32, n)  // position of each vertex in vert
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = uint32(v)
		bin[deg[v]]++
	}
	// Restore bin to start indices.
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	for i := 0; i < n; i++ {
		v := vert[i]
		coreNum[v] = deg[v]
		for _, u := range g.Neighbors(int(v)) {
			if deg[u] > deg[v] {
				// Swap u with the first vertex of its degree bucket, then
				// shrink the bucket: u's degree drops by one.
				du := deg[u]
				pu, pw := pos[u], bin[du]
				w := vert[pw]
				if uint32(u) != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, uint32(u)
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return coreNum
}

// Degeneracy returns the maximum core number (0 for an empty graph).
func Degeneracy(coreNums []uint32) uint32 {
	var d uint32
	for _, c := range coreNums {
		if c > d {
			d = c
		}
	}
	return d
}

// hIndexInto computes the h-index of the capped values written into hist by
// the caller: the largest h ≤ cap with at least h values ≥ h. hist[0..cap]
// must hold the value histogram (values above cap counted at cap).
func hIndexInto(hist []uint32, cap uint32) uint32 {
	var cum uint32
	for h := cap; h >= 1; h-- {
		cum += hist[h]
		if cum >= h {
			return h
		}
	}
	return 0
}

// seqProblem is the sequential-model fixpoint workload: plain estimate and
// dirty-flag slices, one scratch histogram.
type seqProblem struct {
	g       *graph.Graph
	est     []uint32
	dirty   []bool
	scratch []uint32
}

func (p *seqProblem) Stale(task int32, _ uint32) bool {
	if !p.dirty[task] {
		return true
	}
	p.dirty[task] = false
	return false
}

func (p *seqProblem) Expand(task int32, _ uint32, em *core.Emitter) {
	v := int(task)
	cur := p.est[v]
	if cur == 0 {
		return
	}
	hist := p.scratch[: cur+1 : cur+1]
	clear(hist)
	for _, u := range p.g.Neighbors(v) {
		e := p.est[u]
		if e > cur {
			e = cur
		}
		hist[e]++
	}
	h := hIndexInto(hist, cur)
	if h >= cur {
		return
	}
	p.est[v] = h
	for _, u := range p.g.Neighbors(v) {
		if p.est[u] > h && !p.dirty[u] {
			p.dirty[u] = true
			em.Emit(u, p.est[u])
		}
	}
}

func (p *seqProblem) Done() bool { return false }

// concProblem is the concurrent fixpoint workload: estimates decrease via
// compare-and-swap, dirty flags are claimed with compare-and-swap (the
// engine's once-per-item Stale contract makes the claim race-free), and each
// engine worker owns one scratch histogram, indexed by Emitter.Worker.
//
// Monotonicity makes the races benign: an expansion that read neighbor
// estimates which then dropped may keep the vertex's estimate too high, but
// every drop re-marks and re-emits the affected neighbors (after the drop is
// published), so a follow-up re-evaluation always observes the new values.
type concProblem struct {
	g       *graph.Graph
	est     []atomic.Uint32
	dirty   []atomic.Bool
	scratch [][]uint32
}

func (p *concProblem) Stale(task int32, _ uint32) bool {
	return !p.dirty[task].CompareAndSwap(true, false)
}

func (p *concProblem) Expand(task int32, _ uint32, em *core.Emitter) {
	v := int(task)
	cur := p.est[v].Load()
	if cur == 0 {
		return
	}
	hist := p.scratch[em.Worker][: cur+1 : cur+1]
	clear(hist)
	for _, u := range p.g.Neighbors(v) {
		e := p.est[u].Load()
		if e > cur {
			e = cur
		}
		hist[e]++
	}
	h := hIndexInto(hist, cur)
	// Publish the decrease; a concurrent re-evaluation of v may already have
	// pushed the estimate below h, in which case there is nothing to do
	// (both values bound the core number from above, keep the smaller).
	for {
		if h >= cur {
			return
		}
		if p.est[v].CompareAndSwap(cur, h) {
			break
		}
		cur = p.est[v].Load()
	}
	for _, u := range p.g.Neighbors(v) {
		if p.est[u].Load() > h && p.dirty[u].CompareAndSwap(false, true) {
			em.Emit(u, p.est[u].Load())
		}
	}
}

func (p *concProblem) Done() bool { return false }

// seedItems returns one re-evaluation task per vertex, at its degree — the
// initial estimate, so a (possibly relaxed) min-priority scheduler
// approximates the peeling order from the start.
func seedItems(g *graph.Graph) []sched.Item {
	seeds := make([]sched.Item, g.NumVertices())
	for v := range seeds {
		seeds[v] = sched.Item{Task: int32(v), Priority: uint32(g.Degree(v))}
	}
	return seeds
}

// RunRelaxed computes core numbers using a (possibly relaxed)
// sequential-model scheduler. The result is always exact; relaxation only
// delays fixpoint convergence, reported as extra work in Stats.
func RunRelaxed(g *graph.Graph, s sched.Scheduler) ([]uint32, Stats, error) {
	if s == nil {
		return nil, Stats{}, fmt.Errorf("kcore: scheduler must not be nil")
	}
	n := g.NumVertices()
	p := &seqProblem{
		g:       g,
		est:     make([]uint32, n),
		dirty:   make([]bool, n),
		scratch: make([]uint32, g.MaxDegree()+1),
	}
	for v := 0; v < n; v++ {
		p.est[v] = uint32(g.Degree(v))
		p.dirty[v] = true
	}
	st, err := core.RunDynamic(p, seedItems(g), s)
	if err != nil {
		return nil, Stats{}, err
	}
	return p.est, fromDynamic(st), nil
}

// RunConcurrent computes core numbers with worker goroutines sharing a
// concurrent scheduler, via the dynamic engine. opts carries the engine
// knobs (worker count, batch size, cancellation).
func RunConcurrent(g *graph.Graph, s sched.Concurrent, opts core.DynamicOptions) ([]uint32, Stats, error) {
	if s == nil {
		return nil, Stats{}, fmt.Errorf("kcore: scheduler must not be nil")
	}
	if opts.Workers < 1 {
		return nil, Stats{}, fmt.Errorf("kcore: worker count must be at least 1, got %d", opts.Workers)
	}
	n := g.NumVertices()
	p := &concProblem{
		g:       g,
		est:     make([]atomic.Uint32, n),
		dirty:   make([]atomic.Bool, n),
		scratch: make([][]uint32, opts.Workers),
	}
	maxDeg := g.MaxDegree()
	for w := range p.scratch {
		p.scratch[w] = make([]uint32, maxDeg+1)
	}
	for v := 0; v < n; v++ {
		p.est[v].Store(uint32(g.Degree(v)))
		p.dirty[v].Store(true)
	}
	res, err := core.RunDynamicConcurrent(p, seedItems(g), s, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]uint32, n)
	for v := range out {
		out[v] = p.est[v].Load()
	}
	return out, fromDynamic(res.DynamicStats), nil
}

// Verify checks that coreNums is the exact k-core decomposition of g by
// recomputing it with the sequential peeling oracle. (The fixpoint property
// alone cannot be checked locally: any common lowering of the estimates —
// all zeros, say — is also a fixpoint; correctness is being the *greatest*
// one.)
func Verify(g *graph.Graph, coreNums []uint32) error {
	n := g.NumVertices()
	if len(coreNums) != n {
		return fmt.Errorf("kcore: %d core numbers for %d vertices", len(coreNums), n)
	}
	want := Sequential(g)
	for v := range want {
		if coreNums[v] != want[v] {
			return fmt.Errorf("kcore: vertex %d has core number %d, want %d", v, coreNums[v], want[v])
		}
	}
	return nil
}

// Equal reports whether two core-number vectors are identical.
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
