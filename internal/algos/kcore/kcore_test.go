package kcore

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

func TestSequentialKnownGraphs(t *testing.T) {
	// A path has degeneracy 1, a cycle 2, a clique n-1, and a star 1.
	path := Sequential(graph.Path(5))
	for v, c := range path {
		if c != 1 {
			t.Fatalf("path core[%d] = %d, want 1", v, c)
		}
	}

	cycle := Sequential(graph.Cycle(6))
	for v, c := range cycle {
		if c != 2 {
			t.Fatalf("cycle core[%d] = %d, want 2", v, c)
		}
	}

	clique := Sequential(graph.Complete(5))
	for v, c := range clique {
		if c != 4 {
			t.Fatalf("clique core[%d] = %d, want 4", v, c)
		}
	}

	star := Sequential(graph.Star(7))
	for v, c := range star {
		if c != 1 {
			t.Fatalf("star core[%d] = %d, want 1", v, c)
		}
	}
}

func TestSequentialLollipop(t *testing.T) {
	// Triangle 0-1-2 with a pendant path 2-3-4: the triangle is the 2-core,
	// the tail has core number 1.
	g := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	got := Sequential(g)
	want := []uint32{2, 2, 2, 1, 1}
	if !Equal(got, want) {
		t.Fatalf("core numbers = %v, want %v", got, want)
	}
	if d := Degeneracy(got); d != 2 {
		t.Fatalf("degeneracy = %d, want 2", d)
	}
	if err := Verify(g, got); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialEmptyAndIsolated(t *testing.T) {
	if got := Sequential(graph.FromEdges(0, nil)); len(got) != 0 {
		t.Fatalf("empty graph core numbers = %v", got)
	}
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	got := Sequential(g)
	if !Equal(got, []uint32{1, 1, 0}) {
		t.Fatalf("isolated-vertex core numbers = %v", got)
	}
}

func TestRelaxedMatchesSequentialAcrossSchedulers(t *testing.T) {
	r := rng.New(3)
	g, err := graph.GNM(600, 4200, r)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(g)

	schedulers := map[string]sched.Scheduler{
		"exactheap":   exactheap.New(600),
		"topk8":       topk.New(8, 600, rng.New(1)),
		"multiqueue8": multiqueue.NewSequential(8, 600, rng.New(2)),
		"spraylist8":  spraylist.New(8, rng.New(3)),
		"kbounded8":   kbounded.New(8, 600),
	}
	for name, s := range schedulers {
		got, st, err := RunRelaxed(g, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(got, want) {
			t.Fatalf("%s: relaxed core numbers differ from the peeling oracle", name)
		}
		if st.Pops < int64(g.NumVertices()) {
			t.Fatalf("%s: fewer pops than vertices: %+v", name, st)
		}
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	r := rng.New(11)
	g, err := graph.GNM(2000, 16000, r)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(g)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, batch := range []int{0, 1} {
			mq := multiqueue.NewConcurrent(4*workers, 2000, uint64(workers+batch))
			got, st, err := RunConcurrent(g, mq, core.DynamicOptions{Workers: workers, BatchSize: batch})
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if !Equal(got, want) {
				t.Fatalf("workers=%d batch=%d: concurrent core numbers differ", workers, batch)
			}
			if err := Verify(g, got); err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if st.Pops < int64(g.NumVertices()) {
				t.Fatalf("workers=%d batch=%d: implausible stats %+v", workers, batch, st)
			}
		}
	}
}

func TestConcurrentExactFIFOMatches(t *testing.T) {
	// The FAA FIFO ignores priorities entirely — the fixpoint must still be
	// reached, just with a worse processing order.
	r := rng.New(19)
	g, err := graph.GNM(1200, 9000, r)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(g)
	got, _, err := RunConcurrent(g, faaqueue.New(1200), core.DynamicOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("FIFO-driven core numbers differ from the peeling oracle")
	}
}

func TestPowerLawCoreNumbers(t *testing.T) {
	// Hub-heavy degree distributions are the interesting case for k-core
	// (the workload peels the fringe before the dense center).
	r := rng.New(7)
	g, err := graph.PowerLaw(3000, 8, 2.5, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(g)
	mq := multiqueue.NewConcurrent(8, g.NumVertices(), 5)
	got, _, err := RunConcurrent(g, mq, core.DynamicOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("power-law core numbers differ from the peeling oracle")
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := RunRelaxed(g, nil); err == nil {
		t.Fatal("nil scheduler accepted by RunRelaxed")
	}
	if _, _, err := RunConcurrent(g, nil, core.DynamicOptions{Workers: 2}); err == nil {
		t.Fatal("nil scheduler accepted by RunConcurrent")
	}
	if _, _, err := RunConcurrent(g, faaqueue.New(3), core.DynamicOptions{Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, _, err := RunConcurrent(g, faaqueue.New(3), core.DynamicOptions{Workers: 1, BatchSize: -2}); err == nil {
		t.Fatal("negative batch accepted")
	}
	if err := Verify(g, []uint32{1}); err == nil {
		t.Fatal("Verify accepted truncated core numbers")
	}
	if err := Verify(g, []uint32{1, 9, 1}); err == nil {
		t.Fatal("Verify accepted wrong core numbers")
	}
}

func TestDeterministicResultProperty(t *testing.T) {
	// Property: the relaxed fixpoint always reproduces the peeling oracle,
	// for random graphs and relaxation factors.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(150)
		maxM := int64(n) * int64(n-1) / 2
		m := int64(r.Intn(int(maxM/2 + 1)))
		g, err := graph.GNM(n, m, r)
		if err != nil {
			return false
		}
		want := Sequential(g)
		got, _, err := RunRelaxed(g, topk.New(1+r.Intn(16), n, r.Fork()))
		if err != nil {
			return false
		}
		if !Equal(got, want) {
			return false
		}
		mq := multiqueue.NewConcurrent(4, n, seed)
		cgot, _, err := RunConcurrent(g, mq, core.DynamicOptions{Workers: 1 + r.Intn(4), BatchSize: r.Intn(3)})
		if err != nil {
			return false
		}
		return Equal(cgot, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequentialKCore(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(20000, 100000, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(g)
	}
}

func BenchmarkConcurrentKCore(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(20000, 100000, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mq := multiqueue.NewConcurrent(4, g.NumVertices(), uint64(i)+1)
		if _, _, err := RunConcurrent(g, mq, core.DynamicOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
