// Package listcontract implements list contraction in the relaxed scheduling
// framework, one of the paper's examples of an iterative algorithm with
// explicit (and inherently sparse) dependencies.
//
// The input is a collection of doubly linked lists over n nodes; contracting
// a node v splices it out by swinging two pointers (v.prev.next = v.next and
// v.next.prev = v.prev). Processing nodes in priority order, a node depends
// only on its current list neighbors of higher priority, so the dependency
// graph has at most n-1 edges and, by Theorem 1, relaxation costs only
// poly(k) extra iterations.
//
// The output recorded for every node is the pair of list neighbors it saw at
// the moment it was contracted. This pair is a deterministic function of the
// input list and the priority permutation, so comparing it across executions
// is the determinism check used by the tests.
package listcontract

import (
	"fmt"
	"sync/atomic"

	"relaxsched/internal/core"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

// None marks the absence of a neighbor (head's prev / tail's next).
const None = int32(-1)

// Problem is the list contraction problem. It implements core.Problem.
type Problem struct {
	next []int32
	prev []int32
}

var _ core.Problem = (*Problem)(nil)

// New returns a list contraction problem for the list(s) described by next:
// next[i] is the successor of node i, or None. Every node must be the
// successor of at most one node, and no node may be its own successor.
func New(next []int32) (*Problem, error) {
	n := len(next)
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = None
	}
	for i, nx := range next {
		if nx == None {
			continue
		}
		if int(nx) < 0 || int(nx) >= n {
			return nil, fmt.Errorf("listcontract: node %d has out-of-range successor %d", i, nx)
		}
		if int(nx) == i {
			return nil, fmt.Errorf("listcontract: node %d is its own successor", i)
		}
		if prev[nx] != None {
			return nil, fmt.Errorf("listcontract: node %d has two predecessors (%d and %d)", nx, prev[nx], i)
		}
		prev[nx] = int32(i)
	}
	return &Problem{next: append([]int32(nil), next...), prev: prev}, nil
}

// NewChain returns the problem for a single chain 0 -> 1 -> ... -> n-1.
func NewChain(n int) *Problem {
	next := make([]int32, n)
	for i := range next {
		if i+1 < n {
			next[i] = int32(i + 1)
		} else {
			next[i] = None
		}
	}
	p, err := New(next)
	if err != nil {
		// A chain is always valid; this is unreachable.
		panic(err)
	}
	return p
}

// NewRandomList returns a problem whose n nodes form a single list in a
// uniformly random order.
func NewRandomList(n int, r *rng.Rand) *Problem {
	order := r.Perm(n)
	next := make([]int32, n)
	for i := range next {
		next[i] = None
	}
	for i := 0; i+1 < n; i++ {
		next[order[i]] = int32(order[i+1])
	}
	p, err := New(next)
	if err != nil {
		// A permutation-derived list is always valid; this is unreachable.
		panic(err)
	}
	return p
}

// NumTasks returns the number of list nodes.
func (p *Problem) NumTasks() int { return len(p.next) }

// NewInstance binds the problem to an execution.
func (p *Problem) NewInstance(st core.State) core.Instance {
	n := len(p.next)
	inst := &Instance{
		st:           st,
		next:         make([]atomic.Int32, n),
		prev:         make([]atomic.Int32, n),
		contractPrev: make([]int32, n),
		contractNext: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		inst.next[i].Store(p.next[i])
		inst.prev[i].Store(p.prev[i])
	}
	return inst
}

// Instance is a bound list contraction execution, safe for concurrent use.
type Instance struct {
	st           core.State
	next         []atomic.Int32
	prev         []atomic.Int32
	contractPrev []int32
	contractNext []int32
}

var _ core.Instance = (*Instance)(nil)

// Blocked reports whether v currently has a higher-priority list neighbor.
//
// Unlike problems over immutable dependency structures, the processed bit of
// the observed neighbor must NOT be consulted here: if a loaded neighbor p
// has a smaller label, v is blocked even when p is already marked processed.
// A processed p in v's pointer is a transient mid-splice view — p's
// contraction rewired v's pointer before p's processed bit was set, but this
// goroutine may observe the bit without the pointer update. Proceeding on
// that stale view would let v contract against a neighborhood the sequential
// order never produces (p's replacement may be an unprocessed lower-priority
// node). Reporting blocked is always safe: the re-delivered v observes the
// rewired pointer, and the node actually blocking v is never waiting on v
// (its label is smaller), so progress is preserved.
func (inst *Instance) Blocked(v int) bool {
	lv := inst.st.Label(v)
	if p := inst.prev[v].Load(); p != None && inst.st.Label(int(p)) < lv {
		return true
	}
	if nx := inst.next[v].Load(); nx != None && inst.st.Label(int(nx)) < lv {
		return true
	}
	return false
}

// Dead always reports false; every node is contracted.
func (inst *Instance) Dead(int) bool { return false }

// Process contracts node v: its neighbors are linked to each other and the
// neighbor pair observed at contraction time is recorded as the output.
func (inst *Instance) Process(v int) {
	p := inst.prev[v].Load()
	nx := inst.next[v].Load()
	inst.contractPrev[v] = p
	inst.contractNext[v] = nx
	if p != None {
		inst.next[p].Store(nx)
	}
	if nx != None {
		inst.prev[nx].Store(p)
	}
}

// Contractions returns, for every node, the (prev, next) pair it observed
// when it was contracted. It must only be called after the execution has
// finished.
func (inst *Instance) Contractions() ([]int32, []int32) {
	prevOut := append([]int32(nil), inst.contractPrev...)
	nextOut := append([]int32(nil), inst.contractNext...)
	return prevOut, nextOut
}

// Sequential contracts the list in priority order without the framework and
// returns the per-node (prev, next) contraction records.
func Sequential(p *Problem, labels []uint32) ([]int32, []int32) {
	n := p.NumTasks()
	next := append([]int32(nil), p.next...)
	prev := append([]int32(nil), p.prev...)
	contractPrev := make([]int32, n)
	contractNext := make([]int32, n)
	for _, task := range core.TasksByLabel(labels) {
		v := int(task)
		pn, nx := prev[v], next[v]
		contractPrev[v] = pn
		contractNext[v] = nx
		if pn != None {
			next[pn] = nx
		}
		if nx != None {
			prev[nx] = pn
		}
	}
	return contractPrev, contractNext
}

// RunRelaxed executes list contraction with a sequential-model scheduler.
func RunRelaxed(p *Problem, labels []uint32, s sched.Scheduler) ([]int32, []int32, core.Result, error) {
	res, err := core.RunRelaxed(p, labels, s)
	if err != nil {
		return nil, nil, core.Result{}, fmt.Errorf("listcontract: relaxed execution: %w", err)
	}
	cp, cn := res.Instance.(*Instance).Contractions()
	return cp, cn, res, nil
}

// RunConcurrent executes list contraction with worker goroutines sharing a
// concurrent scheduler.
func RunConcurrent(p *Problem, labels []uint32, s sched.Concurrent, opts core.ConcurrentOptions) ([]int32, []int32, core.ConcurrentResult, error) {
	res, err := core.RunConcurrent(p, labels, s, opts)
	if err != nil {
		return nil, nil, core.ConcurrentResult{}, fmt.Errorf("listcontract: concurrent execution: %w", err)
	}
	cp, cn := res.Instance.(*Instance).Contractions()
	return cp, cn, res, nil
}

// Verify checks the key invariant of priority-ordered contraction: the
// neighbors a node observes when it is contracted are still uncontracted,
// which (because the node was unblocked) means their priority labels are
// larger than its own. A node may record itself as a neighbor only when a
// cycle has collapsed onto it (it is then the last node of that cycle).
func Verify(p *Problem, labels []uint32, contractPrev, contractNext []int32) error {
	n := p.NumTasks()
	if len(contractPrev) != n || len(contractNext) != n {
		return fmt.Errorf("listcontract: record length mismatch")
	}
	if len(labels) != n {
		return fmt.Errorf("listcontract: %d labels for %d nodes", len(labels), n)
	}
	for v := 0; v < n; v++ {
		for _, x := range [2]int32{contractPrev[v], contractNext[v]} {
			if x == None {
				continue
			}
			if int(x) < 0 || int(x) >= n {
				return fmt.Errorf("listcontract: node %d recorded out-of-range neighbor %d", v, x)
			}
			if int(x) == v {
				continue // collapsed cycle
			}
			if labels[x] < labels[v] {
				return fmt.Errorf("listcontract: node %d (label %d) observed higher-priority neighbor %d (label %d) at contraction time",
					v, labels[v], x, labels[x])
			}
		}
	}
	return nil
}

// Equal reports whether two contraction records are identical.
func Equal(aPrev, aNext, bPrev, bNext []int32) bool {
	if len(aPrev) != len(bPrev) || len(aNext) != len(bNext) {
		return false
	}
	for i := range aPrev {
		if aPrev[i] != bPrev[i] || aNext[i] != bNext[i] {
			return false
		}
	}
	return true
}
