package listcontract

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/core"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int32{1, 2, None}); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	cases := []struct {
		name string
		next []int32
	}{
		{"out of range", []int32{5, None}},
		{"self successor", []int32{0, None}},
		{"two predecessors", []int32{2, 2, None}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.next); err == nil {
				t.Fatalf("New accepted invalid list %v", tc.next)
			}
		})
	}
}

func TestNewChainStructure(t *testing.T) {
	p := NewChain(4)
	if p.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d, want 4", p.NumTasks())
	}
	wantNext := []int32{1, 2, 3, None}
	wantPrev := []int32{None, 0, 1, 2}
	for i := range wantNext {
		if p.next[i] != wantNext[i] || p.prev[i] != wantPrev[i] {
			t.Fatalf("chain pointers wrong at node %d", i)
		}
	}
}

func TestSequentialChainIdentityOrder(t *testing.T) {
	// Contracting the chain 0-1-2-3 in identity order: node 0 sees
	// (None, 1); node 1 then has prev None so sees (None, 2); and so on.
	p := NewChain(4)
	cp, cn := Sequential(p, core.IdentityLabels(4))
	wantPrev := []int32{None, None, None, None}
	wantNext := []int32{1, 2, 3, None}
	if !Equal(cp, cn, wantPrev, wantNext) {
		t.Fatalf("got prev=%v next=%v, want prev=%v next=%v", cp, cn, wantPrev, wantNext)
	}
	if err := Verify(p, core.IdentityLabels(4), cp, cn); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialChainReverseOrder(t *testing.T) {
	// Contracting the chain back to front: every node still sees its
	// original predecessor (lower-indexed nodes are contracted later), while
	// its successor side has already been spliced away, so next is None.
	const n = 5
	p := NewChain(n)
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(n - 1 - i)
	}
	cp, cn := Sequential(p, labels)
	for v := 0; v < n; v++ {
		wantPrev := int32(v - 1)
		if v == 0 {
			wantPrev = None
		}
		if cp[v] != wantPrev || cn[v] != None {
			t.Fatalf("node %d recorded (%d,%d), want (%d,%d)", v, cp[v], cn[v], wantPrev, None)
		}
	}
	if err := Verify(p, labels, cp, cn); err != nil {
		t.Fatal(err)
	}
}

func TestCycleContraction(t *testing.T) {
	// A 3-cycle 0 -> 1 -> 2 -> 0 contracted in identity order.
	p, err := New([]int32{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	labels := core.IdentityLabels(3)
	cp, cn := Sequential(p, labels)
	if err := Verify(p, labels, cp, cn); err != nil {
		t.Fatal(err)
	}
	// Node 0 sees its original neighbors (2, 1); node 1 then forms a 2-cycle
	// with 2; node 2 ends alone, seeing itself.
	if cp[0] != 2 || cn[0] != 1 {
		t.Fatalf("node 0 recorded (%d,%d), want (2,1)", cp[0], cn[0])
	}
	if cp[2] != 2 || cn[2] != 2 {
		t.Fatalf("node 2 recorded (%d,%d), want (2,2) after the cycle collapsed onto it", cp[2], cn[2])
	}
}

func TestRelaxedMatchesSequentialAcrossSchedulers(t *testing.T) {
	r := rng.New(5)
	const n = 500
	p := NewRandomList(n, r)
	labels := core.RandomLabels(n, r)
	wantPrev, wantNext := Sequential(p, labels)

	schedulers := map[string]sched.Scheduler{
		"exactheap":   exactheap.New(n),
		"topk8":       topk.New(8, n, rng.New(1)),
		"multiqueue8": multiqueue.NewSequential(8, n, rng.New(2)),
		"spraylist8":  spraylist.New(8, rng.New(3)),
		"kbounded8":   kbounded.New(8, n),
	}
	for name, s := range schedulers {
		gotPrev, gotNext, res, err := RunRelaxed(p, labels, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(gotPrev, gotNext, wantPrev, wantNext) {
			t.Fatalf("%s: relaxed contraction differs from sequential", name)
		}
		if err := Verify(p, labels, gotPrev, gotNext); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Processed != n {
			t.Fatalf("%s: processed %d nodes, want %d", name, res.Processed, n)
		}
	}
}

func TestSparseDependenciesLowOverhead(t *testing.T) {
	// List contraction has m = n-1 dependency edges, so Theorem 1 predicts
	// the relaxation overhead stays small (poly(k), independent of n).
	r := rng.New(7)
	const n = 5000
	p := NewRandomList(n, r)
	labels := core.RandomLabels(n, r)
	_, _, res, err := RunRelaxed(p, labels, multiqueue.NewSequential(16, n, rng.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraIterations() > n/10 {
		t.Fatalf("extra iterations = %d, unexpectedly large for a sparse dependency graph (n=%d)", res.ExtraIterations(), n)
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	r := rng.New(9)
	const n = 3000
	p := NewRandomList(n, r)
	labels := core.RandomLabels(n, r)
	wantPrev, wantNext := Sequential(p, labels)
	for _, workers := range []int{1, 2, 4, 8} {
		mq := multiqueue.NewConcurrent(4*workers, n, uint64(workers))
		gotPrev, gotNext, _, err := RunConcurrent(p, labels, mq, core.ConcurrentOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(gotPrev, gotNext, wantPrev, wantNext) {
			t.Fatalf("workers=%d: concurrent contraction differs from sequential", workers)
		}
		if err := Verify(p, labels, gotPrev, gotNext); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestMultipleDisjointLists(t *testing.T) {
	// Two disjoint chains: 0->1->2 and 3->4.
	p, err := New([]int32{1, 2, None, 4, None})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	labels := core.RandomLabels(5, r)
	wantPrev, wantNext := Sequential(p, labels)
	gotPrev, gotNext, _, err := RunRelaxed(p, labels, topk.New(4, 5, rng.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(gotPrev, gotNext, wantPrev, wantNext) {
		t.Fatal("relaxed contraction of disjoint lists differs from sequential")
	}
}

func TestVerifyCatchesBadRecords(t *testing.T) {
	p := NewChain(3)
	labels := core.IdentityLabels(3)
	cp, cn := Sequential(p, labels)
	if err := Verify(p, labels, cp[:2], cn); err == nil {
		t.Fatal("Verify accepted truncated record")
	}
	bad := append([]int32(nil), cp...)
	bad[2] = 99
	if err := Verify(p, labels, bad, cn); err == nil {
		t.Fatal("Verify accepted out-of-range neighbor")
	}
	// Node 2 claiming it observed node 0 (a higher-priority node) is a
	// violation of the contraction invariant.
	bad2 := append([]int32(nil), cp...)
	bad2[2] = 0
	if err := Verify(p, labels, bad2, cn); err == nil {
		t.Fatal("Verify accepted higher-priority observed neighbor")
	}
}

func TestDeterminismProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(300)
		p := NewRandomList(n, r)
		labels := core.RandomLabels(n, r)
		wantPrev, wantNext := Sequential(p, labels)
		gotPrev, gotNext, _, err := RunRelaxed(p, labels, multiqueue.NewSequential(1+r.Intn(16), n, r.Fork()))
		if err != nil {
			return false
		}
		if !Equal(gotPrev, gotNext, wantPrev, wantNext) {
			return false
		}
		return Verify(p, labels, gotPrev, gotNext) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	p, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, cn := Sequential(p, nil)
	if len(cp) != 0 || len(cn) != 0 {
		t.Fatal("empty problem produced records")
	}

	single, err := New([]int32{None})
	if err != nil {
		t.Fatal(err)
	}
	cp, cn = Sequential(single, core.IdentityLabels(1))
	if cp[0] != None || cn[0] != None {
		t.Fatalf("singleton recorded (%d,%d), want (None,None)", cp[0], cn[0])
	}
}

func BenchmarkRelaxedListContraction(b *testing.B) {
	r := rng.New(1)
	const n = 20000
	p := NewRandomList(n, r)
	labels := core.RandomLabels(n, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := RunRelaxed(p, labels, multiqueue.NewSequential(16, n, rng.New(uint64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
