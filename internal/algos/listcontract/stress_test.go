package listcontract

import (
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

func TestConcurrentContractionDeterministicStress(t *testing.T) {
	// Regression stress for the stale-neighbor race: adjacent-priority nodes
	// delivered to different workers nearly simultaneously can catch a
	// neighbor pointer mid-splice. Small lists maximize adjacency collisions.
	r := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		n := 50 + r.Intn(200)
		p := NewRandomList(n, r)
		labels := core.RandomLabels(n, r)
		wantPrev, wantNext := Sequential(p, labels)
		mq := multiqueue.NewConcurrent(8, n, uint64(trial))
		gotPrev, gotNext, _, err := RunConcurrent(p, labels, mq, core.ConcurrentOptions{Workers: 8, BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(gotPrev, gotNext, wantPrev, wantNext) {
			t.Fatalf("trial %d (n=%d): concurrent contraction differs from sequential", trial, n)
		}
		if err := Verify(p, labels, gotPrev, gotNext); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
