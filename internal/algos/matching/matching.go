// Package matching implements greedy maximal matching in the relaxed
// scheduling framework.
//
// The sequential greedy algorithm examines edges in priority order and adds
// an edge to the matching iff neither endpoint is already matched. The paper
// treats matching as MIS on the line graph ("one can view matching as an
// independent set of edges"); this package provides both that reduction
// (ViaLineGraph) and a direct edge-task formulation that avoids materializing
// the line graph: each edge is a task, an edge is Blocked while an incident
// higher-priority edge is still live, and becomes Dead as soon as one of its
// endpoints is matched. Theorem 2 therefore applies: the relaxation overhead
// is poly(k), independent of graph size.
package matching

import (
	"fmt"

	"relaxsched/internal/algos/mis"
	"relaxsched/internal/bitset"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

// Problem is the greedy maximal matching problem on a graph, with one task
// per edge. It implements core.Problem. The edge-incidence index is stored
// as a flat CSR pair (offsets + ids), matching the graph core's layout so
// the Blocked hot loop scans one contiguous run per endpoint.
type Problem struct {
	g      *graph.Graph
	edges  []graph.Edge
	incOff []uint32 // len n+1; ids incident to v are incIDs[incOff[v]:incOff[v+1]]
	incIDs []int32
}

var _ core.Problem = (*Problem)(nil)

// New returns the greedy matching problem for g.
func New(g *graph.Graph) *Problem {
	edges := g.Edges()
	incOff, incIDs := graph.IncidenceCSR(g, edges)
	return &Problem{g: g, edges: edges, incOff: incOff, incIDs: incIDs}
}

// incident returns the ids of the edges incident to vertex v.
func (p *Problem) incident(v int32) []int32 {
	return p.incIDs[p.incOff[v]:p.incOff[v+1]]
}

// NumTasks returns the number of edges.
func (p *Problem) NumTasks() int { return len(p.edges) }

// Edges returns the edge list indexed by task id. The returned slice must
// not be modified.
func (p *Problem) Edges() []graph.Edge { return p.edges }

// NewInstance binds the problem to an execution.
func (p *Problem) NewInstance(st core.State) core.Instance {
	return &Instance{
		p:             p,
		st:            st,
		labels:        core.LabelsOf(st),
		inMatching:    bitset.NewAtomic(len(p.edges)),
		vertexMatched: bitset.NewAtomic(p.g.NumVertices()),
	}
}

// Instance is a bound matching execution, safe for concurrent use. The
// priority labels are held as a flat slice so the Blocked scan over the
// incidence CSR reads them without an interface dispatch per entry.
type Instance struct {
	p             *Problem
	st            core.State
	labels        []uint32
	inMatching    *bitset.Atomic
	vertexMatched *bitset.Atomic
}

var _ core.Instance = (*Instance)(nil)

// Blocked reports whether edge task e still has a live incident
// higher-priority edge.
func (inst *Instance) Blocked(e int) bool {
	le := inst.labels[e]
	edge := inst.p.edges[e]
	for _, endpoint := range [2]int32{edge.U, edge.V} {
		for _, f := range inst.p.incident(endpoint) {
			fi := int(f)
			if fi == e {
				continue
			}
			if inst.labels[fi] < le && !inst.st.Processed(fi) && !inst.dead(fi) {
				return true
			}
		}
	}
	return false
}

// dead reports whether edge f can no longer join the matching because one of
// its endpoints is already matched.
func (inst *Instance) dead(f int) bool {
	edge := inst.p.edges[f]
	return inst.vertexMatched.Get(int(edge.U)) || inst.vertexMatched.Get(int(edge.V))
}

// Dead reports whether an endpoint of e is already matched.
func (inst *Instance) Dead(e int) bool { return inst.dead(e) }

// Process adds edge e to the matching and marks both endpoints matched.
func (inst *Instance) Process(e int) {
	inst.inMatching.Set(e)
	edge := inst.p.edges[e]
	inst.vertexMatched.Set(int(edge.U))
	inst.vertexMatched.Set(int(edge.V))
}

// Matching returns the computed matching as a boolean slice indexed by edge
// task id. It must only be called after the execution has finished.
func (inst *Instance) Matching() []bool {
	out := make([]bool, len(inst.p.edges))
	for e := range out {
		out[e] = inst.inMatching.Get(e)
	}
	return out
}

// MatchedEdges returns the matched edges themselves.
func (inst *Instance) MatchedEdges() []graph.Edge {
	var out []graph.Edge
	for e, edge := range inst.p.edges {
		if inst.inMatching.Get(e) {
			out = append(out, edge)
		}
	}
	return out
}

// Sequential computes the greedy maximal matching directly. labels is a
// priority permutation over edge ids (the order of Problem.Edges / g.Edges).
func Sequential(g *graph.Graph, labels []uint32) []bool {
	edges := g.Edges()
	order := core.TasksByLabel(labels)
	matched := make([]bool, len(edges))
	vertexMatched := make([]bool, g.NumVertices())
	for _, task := range order {
		e := int(task)
		edge := edges[e]
		if vertexMatched[edge.U] || vertexMatched[edge.V] {
			continue
		}
		matched[e] = true
		vertexMatched[edge.U] = true
		vertexMatched[edge.V] = true
	}
	return matched
}

// RunRelaxed executes greedy matching with a sequential-model scheduler and
// returns the matching along with the execution counters.
func RunRelaxed(g *graph.Graph, labels []uint32, s sched.Scheduler) ([]bool, core.Result, error) {
	res, err := core.RunRelaxed(New(g), labels, s)
	if err != nil {
		return nil, core.Result{}, fmt.Errorf("matching: relaxed execution: %w", err)
	}
	return res.Instance.(*Instance).Matching(), res, nil
}

// RunConcurrent executes greedy matching with worker goroutines sharing a
// concurrent scheduler.
func RunConcurrent(g *graph.Graph, labels []uint32, s sched.Concurrent, opts core.ConcurrentOptions) ([]bool, core.ConcurrentResult, error) {
	res, err := core.RunConcurrent(New(g), labels, s, opts)
	if err != nil {
		return nil, core.ConcurrentResult{}, fmt.Errorf("matching: concurrent execution: %w", err)
	}
	return res.Instance.(*Instance).Matching(), res, nil
}

// ViaLineGraph computes the same greedy matching by building the line graph
// of g and running greedy MIS on it — the reduction the paper describes
// ("converting it to a graph G', where G' has a vertex for each edge in G").
// It is provided mainly as a cross-check: its output must equal Sequential's
// for the same edge labels.
func ViaLineGraph(g *graph.Graph, labels []uint32) []bool {
	lg, _ := graph.LineGraph(g)
	return mis.Sequential(lg, labels)
}

// Verify checks that matched is a valid maximal matching of g: no two
// matched edges share an endpoint, and every unmatched edge has a matched
// endpoint.
func Verify(g *graph.Graph, matched []bool) error {
	edges := g.Edges()
	if len(matched) != len(edges) {
		return fmt.Errorf("matching: %d entries for %d edges", len(matched), len(edges))
	}
	vertexMatched := make([]bool, g.NumVertices())
	for e, isMatched := range matched {
		if !isMatched {
			continue
		}
		edge := edges[e]
		if vertexMatched[edge.U] || vertexMatched[edge.V] {
			return fmt.Errorf("matching: edge %d (%d,%d) shares an endpoint with another matched edge", e, edge.U, edge.V)
		}
		vertexMatched[edge.U] = true
		vertexMatched[edge.V] = true
	}
	for e, edge := range edges {
		if !matched[e] && !vertexMatched[edge.U] && !vertexMatched[edge.V] {
			return fmt.Errorf("matching: edge %d (%d,%d) could be added (not maximal)", e, edge.U, edge.V)
		}
	}
	return nil
}

// Equal reports whether two matchings are identical.
func Equal(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Size returns the number of matched edges.
func Size(matched []bool) int {
	count := 0
	for _, m := range matched {
		if m {
			count++
		}
	}
	return count
}
