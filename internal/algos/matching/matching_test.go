package matching

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

func TestSequentialOnPath(t *testing.T) {
	// Path 0-1-2-3 has edges (0,1),(1,2),(2,3) in id order. With identity
	// labels, greedy matches edge 0 and edge 2.
	g := graph.Path(4)
	matched := Sequential(g, core.IdentityLabels(3))
	want := []bool{true, false, true}
	if !Equal(matched, want) {
		t.Fatalf("got %v, want %v", matched, want)
	}
	if err := Verify(g, matched); err != nil {
		t.Fatal(err)
	}
	if Size(matched) != 2 {
		t.Fatalf("Size = %d, want 2", Size(matched))
	}
}

func TestSequentialOnStar(t *testing.T) {
	// A star can match exactly one edge.
	g := graph.Star(10)
	r := rng.New(1)
	labels := core.RandomLabels(int(g.NumEdges()), r)
	matched := Sequential(g, labels)
	if err := Verify(g, matched); err != nil {
		t.Fatal(err)
	}
	if Size(matched) != 1 {
		t.Fatalf("star matching size = %d, want 1", Size(matched))
	}
}

func TestSequentialOnCompleteGraphIsPerfect(t *testing.T) {
	// Greedy maximal matching on K_{2k} is maximal; on a complete graph any
	// maximal matching is perfect (n/2 edges).
	g := graph.Complete(8)
	r := rng.New(2)
	labels := core.RandomLabels(int(g.NumEdges()), r)
	matched := Sequential(g, labels)
	if err := Verify(g, matched); err != nil {
		t.Fatal(err)
	}
	if Size(matched) != 4 {
		t.Fatalf("complete-graph matching size = %d, want 4", Size(matched))
	}
}

func TestViaLineGraphAgreesWithDirect(t *testing.T) {
	r := rng.New(3)
	g, err := graph.GNM(80, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(int(g.NumEdges()), r)
	direct := Sequential(g, labels)
	viaLG := ViaLineGraph(g, labels)
	if !Equal(direct, viaLG) {
		t.Fatal("line-graph MIS reduction disagrees with direct greedy matching")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(4) // edges (0,1),(1,2),(2,3)
	cases := []struct {
		name    string
		matched []bool
	}{
		{"wrong length", []bool{true}},
		{"shared endpoint", []bool{true, true, false}},
		{"not maximal", []bool{false, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Verify(g, tc.matched); err == nil {
				t.Fatalf("Verify accepted invalid matching %v", tc.matched)
			}
		})
	}
}

func TestRelaxedMatchesSequentialAcrossSchedulers(t *testing.T) {
	r := rng.New(5)
	g, err := graph.GNM(200, 800, r)
	if err != nil {
		t.Fatal(err)
	}
	m := int(g.NumEdges())
	labels := core.RandomLabels(m, r)
	want := Sequential(g, labels)

	schedulers := map[string]sched.Scheduler{
		"exactheap":   exactheap.New(m),
		"topk8":       topk.New(8, m, rng.New(1)),
		"multiqueue8": multiqueue.NewSequential(8, m, rng.New(2)),
		"spraylist8":  spraylist.New(8, rng.New(3)),
		"kbounded8":   kbounded.New(8, m),
	}
	for name, s := range schedulers {
		got, res, err := RunRelaxed(g, labels, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(got, want) {
			t.Fatalf("%s: relaxed matching differs from sequential", name)
		}
		if err := Verify(g, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Processed+res.DeadSkips != int64(m) {
			t.Fatalf("%s: accounting off: %+v", name, res)
		}
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	r := rng.New(7)
	g, err := graph.GNM(400, 2400, r)
	if err != nil {
		t.Fatal(err)
	}
	m := int(g.NumEdges())
	labels := core.RandomLabels(m, r)
	want := Sequential(g, labels)
	for _, workers := range []int{1, 2, 4, 8} {
		mq := multiqueue.NewConcurrent(4*workers, m, uint64(workers))
		got, _, err := RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(got, want) {
			t.Fatalf("workers=%d: concurrent matching differs from sequential", workers)
		}
		if err := Verify(g, got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestMatchedEdgesAccessor(t *testing.T) {
	g := graph.Path(4)
	labels := core.IdentityLabels(3)
	res, err := core.RunRelaxed(New(g), labels, exactheap.New(3))
	if err != nil {
		t.Fatal(err)
	}
	edges := res.Instance.(*Instance).MatchedEdges()
	if len(edges) != 2 {
		t.Fatalf("MatchedEdges returned %d edges, want 2", len(edges))
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(5, nil)
	matched := Sequential(g, nil)
	if len(matched) != 0 {
		t.Fatalf("matching on edgeless graph has %d entries", len(matched))
	}
	if err := Verify(g, matched); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(100)
		maxM := int64(n) * int64(n-1) / 2
		mEdges := int64(r.Intn(int(maxM/2 + 1)))
		g, err := graph.GNM(n, mEdges, r)
		if err != nil {
			return false
		}
		m := int(g.NumEdges())
		labels := core.RandomLabels(m, r)
		want := Sequential(g, labels)
		if Verify(g, want) != nil {
			return false
		}
		got, _, err := RunRelaxed(g, labels, topk.New(1+r.Intn(16), m, r.Fork()))
		if err != nil {
			return false
		}
		return Equal(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRelaxedMatching(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(2000, 10000, r)
	if err != nil {
		b.Fatal(err)
	}
	m := int(g.NumEdges())
	labels := core.RandomLabels(m, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunRelaxed(g, labels, multiqueue.NewSequential(16, m, rng.New(uint64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
