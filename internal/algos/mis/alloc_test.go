package mis

import (
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// plainState is a minimal core.State for allocation tests: slice-backed, no
// synchronization, nothing that could allocate on the query path.
type plainState struct {
	labels    []uint32
	processed []bool
}

func (s *plainState) NumTasks() int        { return len(s.labels) }
func (s *plainState) Processed(v int) bool { return s.processed[v] }
func (s *plainState) Label(v int) uint32   { return s.labels[v] }

// TestHotLoopsZeroAllocs pins the CSR payoff the allocation profile depends
// on: a Blocked or Process call scans one contiguous neighbors run and must
// not allocate, no matter how many vertices are scanned.
func TestHotLoopsZeroAllocs(t *testing.T) {
	r := rng.New(99)
	g, err := graph.GNM(2000, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	st := &plainState{labels: core.RandomLabels(n, r), processed: make([]bool, n)}
	inst := New(g).NewInstance(st).(*Instance)

	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			_ = inst.Blocked(v)
		}
	}); avg != 0 {
		t.Fatalf("Blocked allocated %.1f times per full scan, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			inst.Process(v)
		}
	}); avg != 0 {
		t.Fatalf("Process allocated %.1f times per full scan, want 0", avg)
	}
}
