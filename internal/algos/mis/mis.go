// Package mis implements greedy Maximal Independent Set in the relaxed
// scheduling framework — the paper's flagship application (Algorithm 4 and
// Theorem 2).
//
// The sequential greedy algorithm examines vertices in priority order and
// adds a vertex to the independent set iff none of its higher-priority
// neighbors was added. The framework version exposes the same decision as a
// core.Problem: a vertex is Blocked while it has a live (unprocessed, not
// dead) higher-priority neighbor, becomes Dead as soon as any neighbor joins
// the set, and Process adds it to the set and kills its neighbors. Theorem 2
// of the paper shows that executing this with a k-relaxed scheduler costs
// only poly(k) extra scheduler iterations beyond the unavoidable n,
// independent of the size or structure of the graph.
package mis

import (
	"fmt"

	"relaxsched/internal/bitset"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

// Problem is the greedy MIS problem on a graph. It implements core.Problem.
type Problem struct {
	g *graph.Graph
}

var _ core.Problem = (*Problem)(nil)

// New returns the greedy MIS problem for g.
func New(g *graph.Graph) *Problem { return &Problem{g: g} }

// NumTasks returns the number of vertices.
func (p *Problem) NumTasks() int { return p.g.NumVertices() }

// NewInstance binds the problem to an execution.
func (p *Problem) NewInstance(st core.State) core.Instance {
	n := p.g.NumVertices()
	return &Instance{
		g:      p.g,
		st:     st,
		labels: core.LabelsOf(st),
		inSet:  bitset.NewAtomic(n),
		dead:   bitset.NewAtomic(n),
	}
}

// Instance is a bound MIS execution. It is safe for concurrent use by the
// framework's worker goroutines. The priority labels are held as a flat
// slice so the Blocked scan over the CSR adjacency reads them without an
// interface dispatch per neighbor.
type Instance struct {
	g      *graph.Graph
	st     core.State
	labels []uint32
	inSet  *bitset.Atomic
	dead   *bitset.Atomic
}

var _ core.Instance = (*Instance)(nil)

// Blocked reports whether v still has a live higher-priority neighbor.
func (inst *Instance) Blocked(v int) bool {
	lv := inst.labels[v]
	for _, u := range inst.g.Neighbors(v) {
		w := int(u)
		if inst.labels[w] < lv && !inst.st.Processed(w) && !inst.dead.Get(w) {
			return true
		}
	}
	return false
}

// Dead reports whether some neighbor of v has already joined the set.
func (inst *Instance) Dead(v int) bool { return inst.dead.Get(v) }

// Process adds v to the independent set and kills its neighbors.
func (inst *Instance) Process(v int) {
	inst.inSet.Set(v)
	for _, u := range inst.g.Neighbors(v) {
		inst.dead.Set(int(u))
	}
}

// InSet returns the computed independent set as a boolean membership slice.
// It must only be called after the execution has finished.
func (inst *Instance) InSet() []bool {
	out := make([]bool, inst.g.NumVertices())
	for v := range out {
		out[v] = inst.inSet.Get(v)
	}
	return out
}

// Size returns the number of vertices in the computed independent set.
func (inst *Instance) Size() int { return inst.inSet.Count() }

// Sequential computes the lexicographically-first MIS with respect to the
// given labels directly, without the scheduling framework. It is the
// correctness oracle and the single-threaded baseline of the paper's plots.
func Sequential(g *graph.Graph, labels []uint32) []bool {
	n := g.NumVertices()
	order := core.TasksByLabel(labels)
	inSet := make([]bool, n)
	excluded := make([]bool, n)
	for _, task := range order {
		v := int(task)
		if excluded[v] {
			continue
		}
		inSet[v] = true
		for _, u := range g.Neighbors(v) {
			excluded[u] = true
		}
	}
	return inSet
}

// RunRelaxed executes greedy MIS with a sequential-model scheduler
// (Algorithm 4) and returns the independent set along with the execution
// counters.
func RunRelaxed(g *graph.Graph, labels []uint32, s sched.Scheduler) ([]bool, core.Result, error) {
	res, err := core.RunRelaxed(New(g), labels, s)
	if err != nil {
		return nil, core.Result{}, fmt.Errorf("mis: relaxed execution: %w", err)
	}
	return res.Instance.(*Instance).InSet(), res, nil
}

// RunConcurrent executes greedy MIS with worker goroutines sharing a
// concurrent scheduler and returns the independent set along with the
// execution counters.
func RunConcurrent(g *graph.Graph, labels []uint32, s sched.Concurrent, opts core.ConcurrentOptions) ([]bool, core.ConcurrentResult, error) {
	res, err := core.RunConcurrent(New(g), labels, s, opts)
	if err != nil {
		return nil, core.ConcurrentResult{}, fmt.Errorf("mis: concurrent execution: %w", err)
	}
	return res.Instance.(*Instance).InSet(), res, nil
}

// Verify checks that inSet is an independent set of g and that it is maximal
// (every vertex outside the set has a neighbor inside it).
func Verify(g *graph.Graph, inSet []bool) error {
	n := g.NumVertices()
	if len(inSet) != n {
		return fmt.Errorf("mis: set has %d entries for %d vertices", len(inSet), n)
	}
	for v := 0; v < n; v++ {
		hasSetNeighbor := false
		for _, u := range g.Neighbors(v) {
			if inSet[u] {
				hasSetNeighbor = true
				if inSet[v] {
					return fmt.Errorf("mis: adjacent vertices %d and %d are both in the set", v, u)
				}
			}
		}
		if !inSet[v] && !hasSetNeighbor {
			return fmt.Errorf("mis: vertex %d is outside the set but has no neighbor inside (not maximal)", v)
		}
	}
	return nil
}

// Equal reports whether two membership slices describe the same vertex set.
func Equal(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
