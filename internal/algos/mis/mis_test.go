package mis

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

func TestSequentialOnPath(t *testing.T) {
	// Path 0-1-2-3-4 with identity labels: greedy picks 0, 2, 4.
	g := graph.Path(5)
	inSet := Sequential(g, core.IdentityLabels(5))
	want := []bool{true, false, true, false, true}
	if !Equal(inSet, want) {
		t.Fatalf("got %v, want %v", inSet, want)
	}
	if err := Verify(g, inSet); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOnCompleteGraph(t *testing.T) {
	g := graph.Complete(10)
	r := rng.New(1)
	labels := core.RandomLabels(10, r)
	inSet := Sequential(g, labels)
	if err := Verify(g, inSet); err != nil {
		t.Fatal(err)
	}
	count := 0
	highest := -1
	for v, in := range inSet {
		if in {
			count++
			highest = v
		}
	}
	if count != 1 {
		t.Fatalf("MIS of a clique has %d vertices, want 1", count)
	}
	if labels[highest] != 0 {
		t.Fatalf("clique MIS picked vertex with label %d, want the top-priority vertex", labels[highest])
	}
}

func TestSequentialOnStarAndEmptyGraph(t *testing.T) {
	star := graph.Star(8)
	labels := core.IdentityLabels(8)
	inSet := Sequential(star, labels)
	if !inSet[0] {
		t.Fatal("center (highest priority) not selected")
	}
	for v := 1; v < 8; v++ {
		if inSet[v] {
			t.Fatalf("leaf %d selected alongside center", v)
		}
	}
	if err := Verify(star, inSet); err != nil {
		t.Fatal(err)
	}

	empty := graph.FromEdges(6, nil)
	inSet = Sequential(empty, core.IdentityLabels(6))
	for v, in := range inSet {
		if !in {
			t.Fatalf("isolated vertex %d not in MIS", v)
		}
	}
	if err := Verify(empty, inSet); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(4)
	cases := []struct {
		name  string
		inSet []bool
	}{
		{"wrong length", []bool{true}},
		{"not independent", []bool{true, true, false, true}},
		{"not maximal", []bool{true, false, false, false}},
		{"empty set on non-empty graph", []bool{false, false, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Verify(g, tc.inSet); err == nil {
				t.Fatalf("Verify accepted invalid set %v", tc.inSet)
			}
		})
	}
}

func TestRelaxedMatchesSequentialAcrossSchedulers(t *testing.T) {
	r := rng.New(7)
	g, err := graph.GNM(500, 2500, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(500, r)
	want := Sequential(g, labels)

	schedulers := map[string]sched.Scheduler{
		"exactheap":    exactheap.New(500),
		"topk16":       topk.New(16, 500, rng.New(1)),
		"multiqueue16": multiqueue.NewSequential(16, 500, rng.New(2)),
		"spraylist16":  spraylist.New(16, rng.New(3)),
		"kbounded16":   kbounded.New(16, 500),
	}
	for name, s := range schedulers {
		got, res, err := RunRelaxed(g, labels, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(got, want) {
			t.Fatalf("%s: relaxed MIS differs from sequential MIS", name)
		}
		if err := Verify(g, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Processed+res.DeadSkips != 500 {
			t.Fatalf("%s: processed+skips = %d, want 500", name, res.Processed+res.DeadSkips)
		}
	}
}

func TestRelaxedExactSchedulerZeroExtraIterations(t *testing.T) {
	r := rng.New(11)
	g, err := graph.GNM(300, 1200, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(300, r)
	_, res, err := RunRelaxed(g, labels, exactheap.New(300))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraIterations() != 0 {
		t.Fatalf("exact scheduler produced %d extra iterations", res.ExtraIterations())
	}
}

func TestTheorem2ExtraIterationsSmall(t *testing.T) {
	// Theorem 2: extra iterations depend only on k, not on n or m. We check
	// the weaker empirical statement that they stay a tiny fraction of n for
	// a moderately dense graph.
	r := rng.New(13)
	const n = 2000
	g, err := graph.GNM(n, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(n, r)
	const k = 16
	_, res, err := RunRelaxed(g, labels, multiqueue.NewSequential(k, n, rng.New(5)))
	if err != nil {
		t.Fatal(err)
	}
	extra := res.ExtraIterations()
	if extra > n/4 {
		t.Fatalf("extra iterations = %d, unexpectedly large relative to n=%d", extra, n)
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	r := rng.New(17)
	g, err := graph.GNM(2000, 12000, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(2000, r)
	want := Sequential(g, labels)

	for _, workers := range []int{1, 2, 4, 8} {
		mq := multiqueue.NewConcurrent(4*workers, 2000, uint64(workers))
		got, res, err := RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(got, want) {
			t.Fatalf("workers=%d: concurrent MIS differs from sequential", workers)
		}
		if err := Verify(g, got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Processed+res.DeadSkips != 2000 {
			t.Fatalf("workers=%d: accounting off: %+v", workers, res.Result)
		}
	}
}

func TestConcurrentExactFIFOWaitPolicy(t *testing.T) {
	r := rng.New(19)
	g, err := graph.GNM(1500, 9000, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(1500, r)
	want := Sequential(g, labels)
	got, _, err := RunConcurrent(g, labels, faaqueue.New(1500),
		core.ConcurrentOptions{Workers: 4, BlockedPolicy: core.Wait})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("exact-FIFO concurrent MIS differs from sequential")
	}
}

func TestDeterminismProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(300)
		maxM := int64(n) * int64(n-1) / 2
		m := int64(r.Intn(int(maxM/2 + 1)))
		g, err := graph.GNM(n, m, r)
		if err != nil {
			return false
		}
		labels := core.RandomLabels(n, r)
		want := Sequential(g, labels)
		if Verify(g, want) != nil {
			return false
		}
		k := 1 + r.Intn(32)
		got, _, err := RunRelaxed(g, labels, topk.New(k, n, r.Fork()))
		if err != nil {
			return false
		}
		return Equal(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceAccessors(t *testing.T) {
	g := graph.Path(4)
	labels := core.IdentityLabels(4)
	res, err := core.RunRelaxed(New(g), labels, exactheap.New(4))
	if err != nil {
		t.Fatal(err)
	}
	inst := res.Instance.(*Instance)
	if inst.Size() != 2 {
		t.Fatalf("Size = %d, want 2", inst.Size())
	}
}

func BenchmarkRelaxedMIS10kVertices(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(10000, 50000, r)
	if err != nil {
		b.Fatal(err)
	}
	labels := core.RandomLabels(10000, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunRelaxed(g, labels, multiqueue.NewSequential(16, 10000, rng.New(uint64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
