package pagerank

import (
	"math"
	"sync/atomic"
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// TestHotLoopsZeroAllocs pins the allocation profile of the push hot loop: a
// Stale check is one atomic load and a compare, an Expand call is one swap
// plus a contiguous CSR neighbors scan of CAS adds — neither may allocate,
// no matter how much residual mass is still circulating.
func TestHotLoopsZeroAllocs(t *testing.T) {
	r := rng.New(42)
	g, err := graph.GNM(2000, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	opts := Defaults()
	p := &concProblem{
		g:        g,
		alpha:    opts.Damping,
		theta:    opts.threshold(n),
		rank:     make([]atomic.Uint64, n),
		residual: make([]atomic.Uint64, n),
		lastEmit: make([]atomic.Uint32, n),
	}
	r0 := (1 - opts.Damping) / float64(n)
	em := &core.Emitter{Worker: 0}

	refill := func() {
		bits := math.Float64bits(r0)
		for v := 0; v < n; v++ {
			p.residual[v].Store(bits)
		}
	}

	// Warm up: push every vertex once so the emitter buffer reaches its
	// steady-state capacity.
	refill()
	for v := 0; v < n; v++ {
		p.Expand(int32(v), 0, em)
		em.Reset()
	}

	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			_ = p.Stale(int32(v), 0)
		}
	}); avg != 0 {
		t.Fatalf("Stale allocated %.1f times per full scan, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		refill()
		for v := 0; v < n; v++ {
			p.Expand(int32(v), 0, em)
			em.Reset()
		}
	}); avg != 0 {
		t.Fatalf("Expand allocated %.1f times per full scan, want 0", avg)
	}
}
