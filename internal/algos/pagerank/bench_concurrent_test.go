package pagerank

import (
	"fmt"
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

// BenchmarkConcurrentPageRank times the residual-push executor on a
// 20k-vertex G(n, m) instance across worker counts at the tracked tolerance
// 1e-6 — the pagerank counterpart of sssp's BenchmarkConcurrentSSSP and a
// gated benchmark in scripts/benchdiff.sh. The instance is deliberately
// smaller than the sweep's hundredk class so an old-vs-new diff run stays
// tractable; the hot path it exercises is the same: the concurrent Expand
// residual scan plus the pooled executor scratch.
func BenchmarkConcurrentPageRank(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(20_000, 200_000, r)
	if err != nil {
		b.Fatal(err)
	}
	opts := Defaults()
	opts.Tolerance = 1e-6
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mq := multiqueue.NewConcurrent(4*workers, g.NumVertices(), uint64(i)+1)
				ranks, st, err := RunConcurrent(g, mq, core.DynamicOptions{Workers: workers}, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(ranks) != g.NumVertices() || st.Pops == 0 {
					b.Fatal("implausible result")
				}
			}
		})
	}
}
