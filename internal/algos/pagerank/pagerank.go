// Package pagerank implements PageRank via residual push under priority
// schedulers: a power-iteration oracle, a relaxed sequential-model variant,
// and a concurrent variant driven by the dynamic engine.
//
// Push-based ("residual") PageRank maintains two vectors: a rank estimate p
// and a residual r, with the invariant π = p + (I − αPᵀ)⁻¹ r, where π is the
// true PageRank vector and P the random-walk transition matrix. A push at
// vertex v drains its residual into its rank estimate and scatters the damped
// residual α·r[v]/deg(v) onto its neighbors; when every residual is below a
// threshold θ, the rank estimate satisfies ‖π − p‖₁ ≤ n·θ/(1−α). Choosing
// θ = ε·(1−α)/n therefore turns a target L1 accuracy ε into a local,
// per-vertex termination test.
//
// The natural processing order is by *pending residual* — always push the
// vertex holding the most unsettled mass, the priority-queue discipline of
// Berkhin's bookmark-coloring algorithm. That priority is a mutable runtime
// quantity (residuals rise as neighbors push into them), so the workload does
// not fit the paper's static framework; like shortest paths and k-core it is
// expressed as a core.DynamicProblem: an item is stale when its vertex's
// residual has already been drained below θ, expansion pushes and re-emits
// every neighbor whose residual crosses θ from below. Relaxed schedulers
// cannot corrupt the result — pushes only move mass along the invariant — so
// any (even FIFO) delivery order converges to the same π within tolerance;
// relaxation costs only extra pushes, reported as Stats.RePushes plus the
// (structurally rare) Stats.StalePops.
//
// Dangling vertices — vertices with no neighbors, which an undirected graph
// exhibits as isolated vertices — are modeled as linking only to themselves:
// a push at a dangling vertex keeps its damped residual in place, which makes
// the transition matrix stochastic and conserves total mass without the
// O(n)-per-push uniform teleport of the full Google matrix. The power
// iteration oracle uses the same convention, so the two agree on every graph.
package pagerank

import (
	"fmt"
	"math"
	"sync/atomic"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

const (
	// DefaultDamping is the standard PageRank damping factor.
	DefaultDamping = 0.85
	// DefaultTolerance is the default target L1 error of the rank estimate.
	DefaultTolerance = 1e-9
)

// Options configures a PageRank computation. Both fields must be set
// explicitly; Defaults() fills in the conventional values. A zero tolerance
// is rejected rather than defaulted: with θ = 0 the push process never
// terminates, and silently substituting a default would mask the bug in the
// caller.
type Options struct {
	// Damping is the probability α of following an edge rather than
	// teleporting. It must lie strictly between 0 and 1.
	Damping float64
	// Tolerance is the target L1 error ε of the returned rank vector against
	// the true PageRank vector. It must be positive. The per-vertex residual
	// threshold is derived as θ = ε·(1−α)/n.
	Tolerance float64
}

// Defaults returns the conventional options: damping 0.85, tolerance 1e-9.
func Defaults() Options {
	return Options{Damping: DefaultDamping, Tolerance: DefaultTolerance}
}

// Validate reports whether the options are usable: damping strictly inside
// (0, 1) and a positive tolerance. Every Run* entry point calls it; callers
// that construct Options from user input (the workload registry, CLIs) call
// it too so one set of bounds governs everywhere.
func (o Options) Validate() error {
	if !(o.Damping > 0 && o.Damping < 1) {
		return fmt.Errorf("pagerank: damping must lie in (0, 1), got %v", o.Damping)
	}
	if !(o.Tolerance > 0) || math.IsInf(o.Tolerance, 1) {
		return fmt.Errorf("pagerank: tolerance must be positive and finite, got %v", o.Tolerance)
	}
	return nil
}

// threshold returns the per-vertex residual threshold θ for an n-vertex
// graph: pushing every residual below θ bounds the final L1 error by
// n·θ/(1−α) = Tolerance.
func (o Options) threshold(n int) float64 {
	if n == 0 {
		return o.Tolerance
	}
	return o.Tolerance * (1 - o.Damping) / float64(n)
}

// Stats counts the work performed by a push execution.
type Stats struct {
	// Pops is the number of items delivered by the scheduler.
	Pops int64
	// StalePops is the number of delivered items dropped without a push:
	// outdated duplicates superseded by a growth re-emission at a better
	// priority, and items whose vertex's residual was already drained below
	// the threshold.
	StalePops int64
	// Pushes is the number of deliveries that drained a residual into the
	// rank estimate (Pops - StalePops).
	Pushes int64
	// RePushes is the number of pushes beyond the first per vertex — the
	// price of processing vertices out of residual order, and the dominant
	// wasted-work term of this workload.
	RePushes int64
	// Emitted is the number of items (re-)emitted by threshold crossings and
	// priority-improving growth.
	Emitted int64
	// EmptyPolls is the number of scheduler polls that found nothing while
	// work remained (concurrent executions only).
	EmptyPolls int64
}

// Wasted returns the workload's wasted-work metric: stale pops plus
// re-pushes. A perfectly residual-ordered execution on a DAG-like instance
// would push every vertex once; everything beyond that is relaxation (or
// graph-cycle) overhead.
func (s Stats) Wasted() int64 { return s.StalePops + s.RePushes }

// priorityOf maps a pending residual to a scheduler priority. Schedulers
// serve the numerically smallest priority first, so the residual's float32
// exponent is inverted: larger residuals sort first, and residuals within a
// factor of two share one priority (IEEE-754 orders positive floats by their
// bit patterns, and the exponent is the pattern's high byte).
//
// Quantizing to the magnitude is deliberate — it is this workload's
// Δ-stepping. Residuals rise continuously as neighbors push into them, so a
// full-resolution priority is outdated the moment it is recorded; bucketing
// by magnitude makes priorities meaningful for a whole factor-of-two of
// growth, and the emit protocol (below) refreshes an item only when its
// vertex's residual crosses into a better bucket. Correctness never depends
// on the priority — the threshold tests use full precision — so the
// quantization only trades scheduling fidelity, exactly like sssp's -delta
// bucketing.
func priorityOf(r float64) uint32 {
	f := float32(r)
	if !(f > 0) {
		return math.MaxUint32
	}
	return 254 - math.Float32bits(f)>>23
}

// PowerIteration computes the PageRank vector by Jacobi iteration on
// π = (1−α)/n·1 + α·Pᵀπ until the L1 change of one sweep guarantees
// ‖π_est − π‖₁ ≤ eps (the change contracts by α per sweep, so the remaining
// error after a sweep of change δ is at most δ·α/(1−α)). It is the exactness
// oracle and the sequential speedup baseline.
func PowerIteration(g *graph.Graph, opts Options) ([]float64, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	ranks := make([]float64, n)
	if n == 0 {
		return ranks, nil
	}
	alpha := opts.Damping
	base := (1 - alpha) / float64(n)
	for v := range ranks {
		ranks[v] = 1 / float64(n)
	}
	next := make([]float64, n)
	// One sweep of change δ leaves at most δ·α/(1−α) of error.
	stop := opts.Tolerance * (1 - alpha) / alpha
	for {
		for v := 0; v < n; v++ {
			next[v] = base
			if g.Degree(v) == 0 {
				next[v] += alpha * ranks[v] // dangling: self-loop
			}
		}
		for v := 0; v < n; v++ {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			share := alpha * ranks[v] / float64(deg)
			for _, u := range g.Neighbors(v) {
				next[u] += share
			}
		}
		var change float64
		for v := range next {
			change += math.Abs(next[v] - ranks[v])
		}
		ranks, next = next, ranks
		if change <= stop {
			return ranks, nil
		}
	}
}

// The emit protocol, shared by both problem variants. A vertex is emitted
//
//   - when an addition carries its residual across the threshold θ from
//     below ("crossing" — the emission that guarantees liveness: every
//     above-threshold vertex always has a live item queued), and
//   - when an addition moves its residual into a strictly better priority
//     bucket than the freshest item it has queued ("growth" — the lazy
//     decrease-key that keeps scheduler priorities honest while inflow
//     accumulates).
//
// lastEmit[v] records the priority of the freshest queued item for v
// (math.MaxUint32 when none is queued). A delivered item with a priority
// worse than lastEmit[v] is an outdated duplicate — a fresher item is in
// flight — and is dropped as a stale pop; the freshest item claims the drain
// by resetting lastEmit[v]. Without the growth rule every queued priority is
// the residual at crossing time — barely above θ, the least informative
// value possible — and an "exact" scheduler degenerates into near-random
// order, measured at ~600x the pushes of round-robin on G(800, 4800).

// seqProblem is the sequential-model push workload: plain float64 rank and
// residual slices.
type seqProblem struct {
	g        *graph.Graph
	alpha    float64
	theta    float64
	rank     []float64
	residual []float64
	lastEmit []uint32
}

func (p *seqProblem) Stale(task int32, priority uint32) bool {
	if p.residual[task] < p.theta {
		return true
	}
	if priority > p.lastEmit[task] {
		return true // outdated duplicate; a fresher item is queued
	}
	p.lastEmit[task] = math.MaxUint32 // claim the drain
	return false
}

// growthHysteresis is how many priority buckets of improvement a growth
// re-emission tolerates without firing: a vertex is re-emitted only when
// its residual's bucket beats its freshest queued item's bucket by MORE
// than this many levels. Zero re-emits on every bucket crossing, which
// keeps scheduler priorities maximally honest but floods the scheduler
// with duplicates (~4 stale pops per useful push, measured on a
// 100k-vertex power-law instance); larger values trade priority staleness
// for fewer duplicates. Two (re-emit at 3+ buckets, i.e. 8x growth) is the
// measured sweet spot: it halves total scheduler traffic while exact-heap
// push counts stay within ~1.5x of round-robin order; tolerating 4+ lets
// priorities go stale enough that the push count itself starts climbing.
const growthHysteresis uint32 = 2

// bump applies one residual addition at u and reports whether the emit
// protocol requires a (re-)emission, returning the priority to emit at.
func bump(old, nu, theta float64, lastEmit *uint32) (uint32, bool) {
	if nu < theta {
		return 0, false
	}
	q := priorityOf(nu)
	if old >= theta && q+growthHysteresis >= *lastEmit {
		return 0, false
	}
	*lastEmit = q
	return q, true
}

func (p *seqProblem) Expand(task int32, _ uint32, em *core.Emitter) {
	v := int(task)
	rho := p.residual[v]
	p.residual[v] = 0
	p.rank[v] += rho
	deg := p.g.Degree(v)
	if deg == 0 {
		// Dangling: the damped mass stays in place (self-loop); it decays
		// geometrically, so the vertex re-emits itself only finitely often.
		nr := p.alpha * rho
		p.residual[v] = nr
		if q, emit := bump(0, nr, p.theta, &p.lastEmit[v]); emit {
			em.Emit(task, q)
		}
		return
	}
	share := p.alpha * rho / float64(deg)
	// One contiguous scan of the CSR neighbors run; hoisting the residual
	// and lastEmit slices keeps the loop body free of pointer re-loads so
	// the only irregular accesses are the per-neighbor residual updates the
	// scan drives.
	residual, lastEmit := p.residual, p.lastEmit
	for _, u := range p.g.Neighbors(v) {
		old := residual[u]
		nu := old + share
		residual[u] = nu
		if q, emit := bump(old, nu, p.theta, &lastEmit[u]); emit {
			em.Emit(u, q)
		}
	}
}

func (p *seqProblem) Done() bool { return false }

// concProblem is the concurrent push workload: ranks and residuals are
// float64 bit patterns in atomic words, updated with compare-and-swap adds.
type concProblem struct {
	g        *graph.Graph
	alpha    float64
	theta    float64
	rank     []atomic.Uint64
	residual []atomic.Uint64
	lastEmit []atomic.Uint32
}

// addFloat atomically adds delta to the float64 stored in a, returning the
// value held immediately before this add took effect.
func addFloat(a *atomic.Uint64, delta float64) (old float64) {
	for {
		ob := a.Load()
		o := math.Float64frombits(ob)
		if a.CompareAndSwap(ob, math.Float64bits(o+delta)) {
			return o
		}
	}
}

func (p *concProblem) Stale(task int32, priority uint32) bool {
	if math.Float64frombits(p.residual[task].Load()) < p.theta {
		return true
	}
	if priority > p.lastEmit[task].Load() {
		return true // outdated duplicate; a fresher item is in flight
	}
	p.lastEmit[task].Store(math.MaxUint32) // claim the drain
	return false
}

// bumpAtomic is the concurrent emit protocol for one residual addition
// old → old+delta at u. The CAS in addFloat serializes concurrent additions,
// so exactly one of several racing adds observes the θ crossing and its
// emission is unconditional; growth re-emissions race on lastEmit with a CAS
// so at most one duplicate per bucket improvement enters the scheduler. A
// lost race never loses liveness — it means a fresher item is already queued
// or the vertex's drain is already claimed (and any mass added before the
// claimed drain's swap rides along with it).
func (p *concProblem) bumpAtomic(u int32, old, nu float64, em *core.Emitter) {
	if nu < p.theta {
		return
	}
	q := priorityOf(nu)
	if old < p.theta {
		p.lastEmit[u].Store(q)
		em.Emit(u, q)
		return
	}
	if last := p.lastEmit[u].Load(); q+growthHysteresis < last && p.lastEmit[u].CompareAndSwap(last, q) {
		em.Emit(u, q)
	}
}

func (p *concProblem) Expand(task int32, _ uint32, em *core.Emitter) {
	v := int(task)
	rho := math.Float64frombits(p.residual[v].Swap(0))
	if rho <= 0 {
		return
	}
	addFloat(&p.rank[v], rho)
	deg := p.g.Degree(v)
	if deg == 0 {
		nr := p.alpha * rho
		old := addFloat(&p.residual[v], nr)
		p.bumpAtomic(task, old, old+nr, em)
		return
	}
	share := p.alpha * rho / float64(deg)
	// Contiguous neighbors scan with the residual slice hoisted, mirroring
	// seqProblem.Expand; the CAS add is the loop's only synchronization.
	residual := p.residual
	for _, u := range p.g.Neighbors(v) {
		old := addFloat(&residual[u], share)
		p.bumpAtomic(u, old, old+share, em)
	}
}

func (p *concProblem) Done() bool { return false }

// seedItems returns one item per vertex at the initial residual (1−α)/n —
// every vertex starts with the same unsettled teleport mass, so the first
// round of a residual-ordered execution is a full sweep. The callers seed
// lastEmit with the same priority so the emit protocol sees the seeds as the
// freshest queued items.
func seedItems(n int, r0, theta float64) []sched.Item {
	if r0 < theta {
		return nil
	}
	seeds := make([]sched.Item, n)
	pri := priorityOf(r0)
	for v := range seeds {
		seeds[v] = sched.Item{Task: int32(v), Priority: pri}
	}
	return seeds
}

// finishStats maps engine counters to package Stats and derives the re-push
// count: a vertex has been pushed at least once exactly when its rank
// estimate is positive, so pushes beyond that count are re-pushes.
func finishStats(st core.DynamicStats, touched int64) Stats {
	pushes := st.Pops - st.StalePops
	re := pushes - touched
	if re < 0 {
		re = 0
	}
	return Stats{
		Pops:       st.Pops,
		StalePops:  st.StalePops,
		Pushes:     pushes,
		RePushes:   re,
		Emitted:    st.Emitted,
		EmptyPolls: st.EmptyPolls,
	}
}

// RunRelaxed computes PageRank using a (possibly relaxed) sequential-model
// scheduler. The returned ranks satisfy ‖π − ranks‖₁ ≤ opts.Tolerance for
// any scheduler; relaxation only costs extra pushes, reported in Stats.
func RunRelaxed(g *graph.Graph, s sched.Scheduler, opts Options) ([]float64, Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if s == nil {
		return nil, Stats{}, fmt.Errorf("pagerank: scheduler must not be nil")
	}
	n := g.NumVertices()
	p := &seqProblem{
		g:        g,
		alpha:    opts.Damping,
		theta:    opts.threshold(n),
		rank:     make([]float64, n),
		residual: make([]float64, n),
		lastEmit: make([]uint32, n),
	}
	r0 := 0.0
	if n > 0 {
		r0 = (1 - opts.Damping) / float64(n)
	}
	seedPri := priorityOf(r0)
	for v := range p.residual {
		p.residual[v] = r0
		p.lastEmit[v] = seedPri
	}
	st, err := core.RunDynamic(p, seedItems(n, r0, p.theta), s)
	if err != nil {
		return nil, Stats{}, err
	}
	var touched int64
	for _, r := range p.rank {
		if r > 0 {
			touched++
		}
	}
	return p.rank, finishStats(st, touched), nil
}

// RunConcurrent computes PageRank with worker goroutines sharing a
// concurrent scheduler, via the dynamic engine. dopts carries the engine
// knobs (worker count, batch size, cancellation). The result is within
// opts.Tolerance of the true PageRank vector in L1 for any scheduler and
// worker count; the exact floating-point values vary run to run because
// concurrent pushes sum residuals in nondeterministic order.
func RunConcurrent(g *graph.Graph, s sched.Concurrent, dopts core.DynamicOptions, opts Options) ([]float64, Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if s == nil {
		return nil, Stats{}, fmt.Errorf("pagerank: scheduler must not be nil")
	}
	if dopts.Workers < 1 {
		return nil, Stats{}, fmt.Errorf("pagerank: worker count must be at least 1, got %d", dopts.Workers)
	}
	n := g.NumVertices()
	p := &concProblem{
		g:        g,
		alpha:    opts.Damping,
		theta:    opts.threshold(n),
		rank:     make([]atomic.Uint64, n),
		residual: make([]atomic.Uint64, n),
		lastEmit: make([]atomic.Uint32, n),
	}
	r0 := 0.0
	if n > 0 {
		r0 = (1 - opts.Damping) / float64(n)
	}
	bits := math.Float64bits(r0)
	seedPri := priorityOf(r0)
	for v := 0; v < n; v++ {
		p.residual[v].Store(bits)
		p.lastEmit[v].Store(seedPri)
	}
	res, err := core.RunDynamicConcurrent(p, seedItems(n, r0, p.theta), s, dopts)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]float64, n)
	var touched int64
	for v := range out {
		out[v] = math.Float64frombits(p.rank[v].Load())
		if out[v] > 0 {
			touched++
		}
	}
	return out, finishStats(res.DynamicStats, touched), nil
}

// L1 returns the L1 distance ‖a − b‖₁ of two equal-length vectors.
func L1(a, b []float64) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// Sum returns the total mass of a rank vector. A fully converged PageRank
// vector sums to 1; a push execution stopped at threshold θ sums to
// 1 − ‖r‖₁/(1−α) ≥ 1 − Tolerance.
func Sum(ranks []float64) float64 {
	var s float64
	for _, r := range ranks {
		s += r
	}
	return s
}

// Verify checks ranks against a freshly computed power-iteration oracle:
// the L1 distance must be within opts.Tolerance plus the oracle's own
// tolerance, and the total mass must be within opts.Tolerance of 1.
func Verify(g *graph.Graph, ranks []float64, opts Options) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	n := g.NumVertices()
	if len(ranks) != n {
		return fmt.Errorf("pagerank: %d ranks for %d vertices", len(ranks), n)
	}
	if n == 0 {
		return nil
	}
	oracle, err := PowerIteration(g, opts)
	if err != nil {
		return err
	}
	if d := L1(ranks, oracle); d > 2*opts.Tolerance {
		return fmt.Errorf("pagerank: L1 distance %v to the power-iteration oracle exceeds %v", d, 2*opts.Tolerance)
	}
	if s := Sum(ranks); math.Abs(s-1) > opts.Tolerance {
		return fmt.Errorf("pagerank: rank mass %v differs from 1 by more than %v", s, opts.Tolerance)
	}
	return nil
}
