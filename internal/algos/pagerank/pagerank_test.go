package pagerank

import (
	"math"
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

func TestPowerIterationUniformOnRegularGraphs(t *testing.T) {
	// On a vertex-transitive graph every vertex has the same rank 1/n.
	for name, g := range map[string]*graph.Graph{
		"cycle":  graph.Cycle(8),
		"clique": graph.Complete(6),
	} {
		ranks, err := PowerIteration(g, Defaults())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := 1 / float64(g.NumVertices())
		for v, r := range ranks {
			if math.Abs(r-want) > 1e-9 {
				t.Fatalf("%s: rank[%d] = %v, want %v", name, v, r, want)
			}
		}
	}
}

func TestPowerIterationStarCenterDominates(t *testing.T) {
	g := graph.Star(9) // vertex 0 is the hub
	ranks, err := PowerIteration(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.NumVertices(); v++ {
		if ranks[0] <= ranks[v] {
			t.Fatalf("hub rank %v not above leaf rank %v", ranks[0], ranks[v])
		}
		if math.Abs(ranks[v]-ranks[1]) > 1e-12 {
			t.Fatalf("leaf ranks differ: %v vs %v", ranks[v], ranks[1])
		}
	}
	if s := Sum(ranks); math.Abs(s-1) > 1e-9 {
		t.Fatalf("ranks sum to %v, want 1", s)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := graph.Path(4)
	cases := map[string]Options{
		"zero tolerance":     {Damping: 0.85, Tolerance: 0},
		"negative tolerance": {Damping: 0.85, Tolerance: -1e-9},
		"NaN tolerance":      {Damping: 0.85, Tolerance: math.NaN()},
		"zero damping":       {Damping: 0, Tolerance: 1e-9},
		"unit damping":       {Damping: 1, Tolerance: 1e-9},
		"negative damping":   {Damping: -0.5, Tolerance: 1e-9},
		"NaN damping":        {Damping: math.NaN(), Tolerance: 1e-9},
	}
	for name, opts := range cases {
		if _, err := PowerIteration(g, opts); err == nil {
			t.Fatalf("%s: PowerIteration accepted %+v", name, opts)
		}
		if _, _, err := RunRelaxed(g, exactheap.New(4), opts); err == nil {
			t.Fatalf("%s: RunRelaxed accepted %+v", name, opts)
		}
		if _, _, err := RunConcurrent(g, faaqueue.New(4), core.DynamicOptions{Workers: 1}, opts); err == nil {
			t.Fatalf("%s: RunConcurrent accepted %+v", name, opts)
		}
	}
}

func TestRunRejectsBadArguments(t *testing.T) {
	g := graph.Path(4)
	if _, _, err := RunRelaxed(g, nil, Defaults()); err == nil {
		t.Fatal("nil sequential scheduler accepted")
	}
	if _, _, err := RunConcurrent(g, nil, core.DynamicOptions{Workers: 1}, Defaults()); err == nil {
		t.Fatal("nil concurrent scheduler accepted")
	}
	if _, _, err := RunConcurrent(g, faaqueue.New(4), core.DynamicOptions{Workers: 0}, Defaults()); err == nil {
		t.Fatal("zero workers accepted")
	}
}

// pushOpts is the per-test accuracy target: tolerance 5e-10 guarantees the
// acceptance bound of 1e-9 L1 against the oracle with margin for the
// oracle's own truncation.
var pushOpts = Options{Damping: DefaultDamping, Tolerance: 5e-10}

func TestRelaxedMatchesOracleAcrossSchedulers(t *testing.T) {
	g, err := graph.GNM(800, 4800, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := PowerIteration(g, pushOpts)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	schedulers := map[string]sched.Scheduler{
		"exactheap":   exactheap.New(n),
		"topk8":       topk.New(8, n, rng.New(1)),
		"multiqueue8": multiqueue.NewSequential(8, n, rng.New(2)),
		"spraylist8":  spraylist.New(8, rng.New(3)),
		"kbounded8":   kbounded.New(8, n),
	}
	for name, s := range schedulers {
		ranks, st, err := RunRelaxed(g, s, pushOpts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := L1(ranks, oracle); d > 1e-9 {
			t.Fatalf("%s: L1 distance to oracle %v exceeds 1e-9", name, d)
		}
		if st.Pops == 0 || st.Pushes == 0 {
			t.Fatalf("%s: no work recorded: %+v", name, st)
		}
		if st.Pushes != st.Pops-st.StalePops {
			t.Fatalf("%s: inconsistent stats %+v", name, st)
		}
		if err := Verify(g, ranks, pushOpts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestConcurrentMatchesOracleOnGNPAndPowerLaw(t *testing.T) {
	gnp, err := graph.GNM(1200, 9600, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := graph.PowerLaw(1500, 8, 2.5, 2, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{"gnp": gnp, "powerlaw": pl} {
		oracle, err := PowerIteration(g, pushOpts)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumVertices()
		for _, workers := range []int{1, 2, 4} {
			variants := map[string]sched.Concurrent{
				"multiqueue": multiqueue.NewConcurrent(4*workers, n, 99),
				"faa":        faaqueue.New(n),
				"locked":     sched.NewLocked(exactheap.New(n)),
			}
			for sname, s := range variants {
				ranks, st, err := RunConcurrent(g, s, core.DynamicOptions{Workers: workers, BatchSize: 8}, pushOpts)
				if err != nil {
					t.Fatalf("%s/%s w=%d: %v", name, sname, workers, err)
				}
				if d := L1(ranks, oracle); d > 1e-9 {
					t.Fatalf("%s/%s w=%d: L1 distance %v exceeds 1e-9", name, sname, workers, d)
				}
				if st.Wasted() < 0 || st.RePushes < 0 {
					t.Fatalf("%s/%s w=%d: negative wasted work %+v", name, sname, workers, st)
				}
			}
		}
	}
}

func TestDanglingMassConservation(t *testing.T) {
	// Two components plus three isolated (dangling) vertices: the self-loop
	// convention must keep the total mass at 1 rather than leaking the
	// dangling vertices' damped residuals.
	g := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 4},
	})
	oracle, err := PowerIteration(g, pushOpts)
	if err != nil {
		t.Fatal(err)
	}
	if s := Sum(oracle); math.Abs(s-1) > 1e-12 {
		t.Fatalf("oracle mass = %v, want 1", s)
	}
	ranks, _, err := RunRelaxed(g, exactheap.New(8), pushOpts)
	if err != nil {
		t.Fatal(err)
	}
	if s := Sum(ranks); math.Abs(s-1) > pushOpts.Tolerance {
		t.Fatalf("push mass = %v, drifted more than %v from 1", s, pushOpts.Tolerance)
	}
	// Every dangling vertex keeps exactly the uniform teleport share
	// amplified by its self-loop: π = (1-α)/n / (1-α) = 1/n.
	want := 1 / float64(g.NumVertices())
	for _, v := range []int{5, 6, 7} {
		if math.Abs(ranks[v]-want) > 1e-10 {
			t.Fatalf("dangling rank[%d] = %v, want %v", v, ranks[v], want)
		}
	}
	cranks, _, err := RunConcurrent(g, faaqueue.New(8), core.DynamicOptions{Workers: 2, BatchSize: 4}, pushOpts)
	if err != nil {
		t.Fatal(err)
	}
	if s := Sum(cranks); math.Abs(s-1) > pushOpts.Tolerance {
		t.Fatalf("concurrent push mass = %v, drifted more than %v from 1", s, pushOpts.Tolerance)
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	ranks, st, err := RunRelaxed(empty, exactheap.New(1), Defaults())
	if err != nil || len(ranks) != 0 || st.Pops != 0 {
		t.Fatalf("empty graph: ranks=%v stats=%+v err=%v", ranks, st, err)
	}
	// All-dangling graph: uniform 1/n by symmetry.
	iso := graph.FromEdges(4, nil)
	ranks, _, err = RunRelaxed(iso, exactheap.New(4), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range ranks {
		if math.Abs(r-0.25) > 1e-9 {
			t.Fatalf("isolated rank[%d] = %v, want 0.25", v, r)
		}
	}
}

func TestVerifyRejectsCorruptedRanks(t *testing.T) {
	g, err := graph.GNM(300, 1500, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ranks, _, err := RunRelaxed(g, exactheap.New(300), pushOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, ranks, pushOpts); err != nil {
		t.Fatal(err)
	}
	bad := append([]float64(nil), ranks...)
	bad[0] += 1e-6
	if err := Verify(g, bad, pushOpts); err == nil {
		t.Fatal("Verify accepted corrupted ranks")
	}
	if err := Verify(g, ranks[:100], pushOpts); err == nil {
		t.Fatal("Verify accepted short rank vector")
	}
}

func TestPriorityOfOrdersResiduals(t *testing.T) {
	// Larger residuals must map to numerically smaller (better) priorities.
	residuals := []float64{0.5, 0.1, 1e-6, 1e-12, 0}
	for i := 1; i < len(residuals); i++ {
		hi, lo := priorityOf(residuals[i-1]), priorityOf(residuals[i])
		if hi >= lo {
			t.Fatalf("priorityOf(%v) = %d not better than priorityOf(%v) = %d",
				residuals[i-1], hi, residuals[i], lo)
		}
	}
	if priorityOf(0) != math.MaxUint32 || priorityOf(-1) != math.MaxUint32 {
		t.Fatal("non-positive residuals must map to the worst priority")
	}
}

func TestWastedWorkGrowsWithRelaxation(t *testing.T) {
	// A heavily relaxed scheduler should need at least as many pushes as the
	// exact residual order; both must still satisfy the tolerance bound.
	g, err := graph.GNM(600, 3600, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	_, exact, err := RunRelaxed(g, exactheap.New(600), pushOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, relaxed, err := RunRelaxed(g, multiqueue.NewSequential(64, 600, rng.New(4)), pushOpts)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Pushes == 0 || relaxed.Pushes == 0 {
		t.Fatalf("missing pushes: exact=%+v relaxed=%+v", exact, relaxed)
	}
	if relaxed.Wasted() < 0 {
		t.Fatalf("negative wasted work: %+v", relaxed)
	}
}
