// Package shuffle implements the Knuth (Fisher–Yates) shuffle in the relaxed
// scheduling framework, another of the paper's examples of an iterative
// algorithm with explicit, inherently sparse dependencies.
//
// The ascending Fisher–Yates variant processes iterations i = 0..n-1 in
// order, swapping A[i] with A[t_i] for a pre-drawn target t_i uniform in
// [0, i]. Iteration i conflicts only with the most recent earlier iteration
// that touched location t_i, so the dependency graph is a forest with at most
// n-1 edges; by Theorem 1 the relaxation overhead is poly(k) and independent
// of n. The output permutation is a deterministic function of the targets,
// so it is identical no matter how relaxed the scheduler is.
package shuffle

import (
	"fmt"
	"sync/atomic"

	"relaxsched/internal/core"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

// Problem is the Knuth shuffle problem: n iterations with pre-drawn swap
// targets. It implements core.Problem. The natural priority order of the
// iterations is the identity permutation (core.IdentityLabels); the
// randomness of the output comes entirely from the swap targets.
type Problem struct {
	targets []int32
	pred    []int32 // pred[i] = latest earlier iteration touching targets[i], or -1
}

var _ core.Problem = (*Problem)(nil)

// New returns a shuffle problem for the given swap targets. targets[i] must
// lie in [0, i].
func New(targets []int32) (*Problem, error) {
	n := len(targets)
	pred := make([]int32, n)
	lastToucher := make([]int32, n)
	for i := range lastToucher {
		lastToucher[i] = -1
	}
	for i, t := range targets {
		if int(t) < 0 || int(t) > i {
			return nil, fmt.Errorf("shuffle: target[%d] = %d outside [0,%d]", i, t, i)
		}
		pred[i] = lastToucher[t]
		lastToucher[t] = int32(i)
		lastToucher[i] = int32(i)
	}
	return &Problem{targets: append([]int32(nil), targets...), pred: pred}, nil
}

// RandomTargets draws uniform swap targets for n iterations from r. Using
// these targets with either Sequential or the framework produces a uniformly
// random permutation of [0, n).
func RandomTargets(n int, r *rng.Rand) []int32 {
	targets := make([]int32, n)
	for i := 1; i < n; i++ {
		targets[i] = int32(r.Intn(i + 1))
	}
	return targets
}

// NumTasks returns the number of iterations.
func (p *Problem) NumTasks() int { return len(p.targets) }

// Targets returns the swap targets. The returned slice must not be modified.
func (p *Problem) Targets() []int32 { return p.targets }

// NewInstance binds the problem to an execution.
func (p *Problem) NewInstance(st core.State) core.Instance {
	n := len(p.targets)
	inst := &Instance{p: p, st: st, perm: make([]atomic.Int32, n)}
	for i := 0; i < n; i++ {
		inst.perm[i].Store(int32(i))
	}
	return inst
}

// Instance is a bound shuffle execution, safe for concurrent use: two
// iterations that touch a common array location are ordered by the
// dependency chain, and the framework's processed bits provide the
// happens-before edges between them.
type Instance struct {
	p    *Problem
	st   core.State
	perm []atomic.Int32
}

var _ core.Instance = (*Instance)(nil)

// Blocked reports whether iteration i must still wait for the previous
// toucher of its swap target.
func (inst *Instance) Blocked(i int) bool {
	pred := inst.p.pred[i]
	return pred >= 0 && !inst.st.Processed(int(pred))
}

// Dead always reports false; every iteration executes.
func (inst *Instance) Dead(int) bool { return false }

// Process performs the swap of iteration i.
func (inst *Instance) Process(i int) {
	t := int(inst.p.targets[i])
	if t == i {
		return
	}
	a := inst.perm[i].Load()
	b := inst.perm[t].Load()
	inst.perm[i].Store(b)
	inst.perm[t].Store(a)
}

// Permutation returns the resulting permutation. It must only be called
// after the execution has finished.
func (inst *Instance) Permutation() []int32 {
	out := make([]int32, len(inst.perm))
	for i := range out {
		out[i] = inst.perm[i].Load()
	}
	return out
}

// Sequential performs the shuffle directly, iterating in index order.
func Sequential(targets []int32) []int32 {
	n := len(targets)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := 1; i < n; i++ {
		t := targets[i]
		perm[i], perm[t] = perm[t], perm[i]
	}
	return perm
}

// RunRelaxed executes the shuffle with a sequential-model scheduler. The
// labels are always the identity permutation, since the iteration order of a
// Knuth shuffle is fixed.
func RunRelaxed(targets []int32, s sched.Scheduler) ([]int32, core.Result, error) {
	p, err := New(targets)
	if err != nil {
		return nil, core.Result{}, err
	}
	res, err := core.RunRelaxed(p, core.IdentityLabels(p.NumTasks()), s)
	if err != nil {
		return nil, core.Result{}, fmt.Errorf("shuffle: relaxed execution: %w", err)
	}
	return res.Instance.(*Instance).Permutation(), res, nil
}

// RunConcurrent executes the shuffle with worker goroutines sharing a
// concurrent scheduler.
func RunConcurrent(targets []int32, s sched.Concurrent, opts core.ConcurrentOptions) ([]int32, core.ConcurrentResult, error) {
	p, err := New(targets)
	if err != nil {
		return nil, core.ConcurrentResult{}, err
	}
	res, err := core.RunConcurrent(p, core.IdentityLabels(p.NumTasks()), s, opts)
	if err != nil {
		return nil, core.ConcurrentResult{}, fmt.Errorf("shuffle: concurrent execution: %w", err)
	}
	return res.Instance.(*Instance).Permutation(), res, nil
}

// Verify checks that perm is a permutation of [0, n).
func Verify(perm []int32) error {
	seen := make([]bool, len(perm))
	for i, v := range perm {
		if int(v) < 0 || int(v) >= len(perm) {
			return fmt.Errorf("shuffle: position %d holds out-of-range value %d", i, v)
		}
		if seen[v] {
			return fmt.Errorf("shuffle: value %d appears more than once", v)
		}
		seen[v] = true
	}
	return nil
}

// Equal reports whether two permutations are identical.
func Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
