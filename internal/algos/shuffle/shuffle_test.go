package shuffle

import (
	"math"
	"testing"
	"testing/quick"

	"relaxsched/internal/core"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int32{0, 0, 2}); err != nil {
		t.Fatalf("valid targets rejected: %v", err)
	}
	cases := []struct {
		name    string
		targets []int32
	}{
		{"negative", []int32{0, -1}},
		{"above index", []int32{0, 2}},
		{"first nonzero", []int32{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.targets); err == nil {
				t.Fatalf("New accepted invalid targets %v", tc.targets)
			}
		})
	}
}

func TestRandomTargetsValid(t *testing.T) {
	r := rng.New(1)
	targets := RandomTargets(200, r)
	if _, err := New(targets); err != nil {
		t.Fatalf("RandomTargets produced invalid targets: %v", err)
	}
	if targets[0] != 0 {
		t.Fatalf("targets[0] = %d, want 0", targets[0])
	}
}

func TestSequentialKnownCases(t *testing.T) {
	cases := []struct {
		name    string
		targets []int32
		want    []int32
	}{
		{"identity targets", []int32{0, 1, 2, 3}, []int32{0, 1, 2, 3}},
		{"all to front", []int32{0, 0, 0, 0}, []int32{3, 0, 1, 2}},
		{"swap last two", []int32{0, 1, 2, 2}, []int32{0, 1, 3, 2}},
		{"empty", nil, []int32{}},
		{"single", []int32{0}, []int32{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Sequential(tc.targets)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
			if err := Verify(got); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVerifyCatchesBadPermutations(t *testing.T) {
	if err := Verify([]int32{0, 0, 2}); err == nil {
		t.Fatal("Verify accepted duplicate values")
	}
	if err := Verify([]int32{0, 5}); err == nil {
		t.Fatal("Verify accepted out-of-range value")
	}
	if err := Verify(nil); err != nil {
		t.Fatal("Verify rejected the empty permutation")
	}
}

func TestRelaxedMatchesSequentialAcrossSchedulers(t *testing.T) {
	r := rng.New(5)
	const n = 2000
	targets := RandomTargets(n, r)
	want := Sequential(targets)

	schedulers := map[string]sched.Scheduler{
		"exactheap":    exactheap.New(n),
		"topk16":       topk.New(16, n, rng.New(1)),
		"multiqueue16": multiqueue.NewSequential(16, n, rng.New(2)),
		"spraylist16":  spraylist.New(16, rng.New(3)),
		"kbounded16":   kbounded.New(16, n),
	}
	for name, s := range schedulers {
		got, res, err := RunRelaxed(targets, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(got, want) {
			t.Fatalf("%s: relaxed shuffle differs from sequential", name)
		}
		if err := Verify(got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Processed != n {
			t.Fatalf("%s: processed %d iterations, want %d", name, res.Processed, n)
		}
	}
}

func TestSparseDependenciesLowOverhead(t *testing.T) {
	// The shuffle's dependency forest has at most n-1 edges, so Theorem 1
	// predicts small relaxation overhead.
	r := rng.New(7)
	const n = 5000
	targets := RandomTargets(n, r)
	_, res, err := RunRelaxed(targets, multiqueue.NewSequential(16, n, rng.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraIterations() > n/10 {
		t.Fatalf("extra iterations = %d, unexpectedly large (n=%d)", res.ExtraIterations(), n)
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	r := rng.New(9)
	const n = 3000
	targets := RandomTargets(n, r)
	want := Sequential(targets)
	for _, workers := range []int{1, 2, 4, 8} {
		mq := multiqueue.NewConcurrent(4*workers, n, uint64(workers))
		got, _, err := RunConcurrent(targets, mq, core.ConcurrentOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(got, want) {
			t.Fatalf("workers=%d: concurrent shuffle differs from sequential", workers)
		}
	}
}

func TestShuffleUniformity(t *testing.T) {
	// The framework execution of the Knuth shuffle must produce uniform
	// permutations (over the randomness of the targets). Chi-square-style
	// check over all 24 permutations of 4 elements.
	r := rng.New(11)
	const trials = 48000
	counts := make(map[[4]int32]int)
	for trial := 0; trial < trials; trial++ {
		targets := RandomTargets(4, r)
		perm, _, err := RunRelaxed(targets, topk.New(3, 4, r.Fork()))
		if err != nil {
			t.Fatal(err)
		}
		counts[[4]int32{perm[0], perm[1], perm[2], perm[3]}]++
	}
	if len(counts) != 24 {
		t.Fatalf("saw %d distinct permutations, want 24", len(counts))
	}
	expected := float64(trials) / 24
	for perm, c := range counts {
		dev := math.Abs(float64(c)-expected) / expected
		if dev > 0.10 {
			t.Fatalf("permutation %v occurred %d times, deviates %.1f%% from uniform", perm, c, dev*100)
		}
	}
}

func TestDeterminismProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(500)
		targets := RandomTargets(n, r)
		want := Sequential(targets)
		got, _, err := RunRelaxed(targets, multiqueue.NewSequential(1+r.Intn(16), n, r.Fork()))
		if err != nil {
			return false
		}
		return Equal(got, want) && Verify(got) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRelaxedRejectsInvalidTargets(t *testing.T) {
	if _, _, err := RunRelaxed([]int32{0, 5}, exactheap.New(2)); err == nil {
		t.Fatal("RunRelaxed accepted invalid targets")
	}
	if _, _, err := RunConcurrent([]int32{0, 5}, multiqueue.NewConcurrent(2, 2, 1), core.ConcurrentOptions{Workers: 1}); err == nil {
		t.Fatal("RunConcurrent accepted invalid targets")
	}
}

func BenchmarkRelaxedShuffle(b *testing.B) {
	r := rng.New(1)
	const n = 50000
	targets := RandomTargets(n, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunRelaxed(targets, multiqueue.NewSequential(16, n, rng.New(uint64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
