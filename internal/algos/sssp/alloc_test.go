package sssp

import (
	"sync/atomic"
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// TestHotLoopsZeroAllocs pins the allocation profile of the dynamic-engine
// port: a Stale check or an Expand call scans one contiguous CSR neighbors
// run with aligned weights and must not allocate, no matter how many
// vertices are relaxed. The emitter is pre-grown (as the engine's per-worker
// emitters are after warm-up), so emission itself is also allocation-free.
func TestHotLoopsZeroAllocs(t *testing.T) {
	r := rng.New(77)
	g, err := graph.GNM(2000, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	dist := make([]atomic.Uint32, n)
	for i := range dist {
		dist[i].Store(Unreachable)
	}
	dist[0].Store(0)
	p := &concProblem{g: g, w: w, dist: dist, delta: 1}
	em := &core.Emitter{}

	// Warm up: relax every vertex once so the emitter buffer reaches its
	// steady-state capacity and most labels settle.
	for v := 0; v < n; v++ {
		p.Expand(int32(v), 0, em)
		em.Reset()
	}

	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			_ = p.Stale(int32(v), 0)
		}
	}); avg != 0 {
		t.Fatalf("Stale allocated %.1f times per full scan, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < n; v++ {
			p.Expand(int32(v), 0, em)
			em.Reset()
		}
	}); avg != 0 {
		t.Fatalf("Expand allocated %.1f times per full scan, want 0", avg)
	}
}
