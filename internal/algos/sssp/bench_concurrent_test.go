package sssp

import (
	"fmt"
	"testing"

	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

// BenchmarkConcurrentSSSP times the concurrent shortest-path executor on a
// 100k-vertex G(n, m) instance across worker counts — the number tracked by
// the EXPERIMENTS.md note on the dynamic-engine port (per-worker counter
// false sharing, batched pops).
func BenchmarkConcurrentSSSP(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(100_000, 1_000_000, r)
	if err != nil {
		b.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mq := multiqueue.NewConcurrent(4*workers, g.NumVertices(), uint64(i)+1)
				dist, st, err := RunConcurrent(g, w, 0, mq, workers)
				if err != nil {
					b.Fatal(err)
				}
				if dist[1] == Unreachable || st.Pops == 0 {
					b.Fatal("implausible result")
				}
			}
		})
	}
}
