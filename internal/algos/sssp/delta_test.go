package sssp

import (
	"testing"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/multiqueue"
)

func TestDeltaVariantsStayExact(t *testing.T) {
	// Bucketed priorities must never change the distances, only the amount
	// of wasted work — for any bucket width, scheduler, and worker count.
	r := rng.New(13)
	g, err := graph.GNM(1500, 9000, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 100, 17)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []uint32{1, 4, 32, 1 << 20} {
		got, st, err := RunRelaxedDelta(g, w, 0, exactheap.New(g.NumVertices()), delta)
		if err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
		if !Equal(got, want) {
			t.Fatalf("delta=%d: sequential distances differ from Dijkstra", delta)
		}
		if st.Pops == 0 {
			t.Fatalf("delta=%d: implausible stats %+v", delta, st)
		}
		for _, workers := range []int{1, 3} {
			mq := multiqueue.NewConcurrent(4, g.NumVertices(), uint64(delta)+uint64(workers))
			got, _, err := RunConcurrentDelta(g, w, 0, mq, delta, core.DynamicOptions{Workers: workers, BatchSize: 8})
			if err != nil {
				t.Fatalf("delta=%d workers=%d: %v", delta, workers, err)
			}
			if !Equal(got, want) {
				t.Fatalf("delta=%d workers=%d: concurrent distances differ from Dijkstra", delta, workers)
			}
			if err := Verify(g, w, 0, got); err != nil {
				t.Fatalf("delta=%d workers=%d: %v", delta, workers, err)
			}
		}
	}
}

func TestDeltaCoarseningAddsStalePopsNotErrors(t *testing.T) {
	// On an exact heap, coarser buckets weaken the delivery order and can
	// only increase wasted work; delta exceeding every distance degenerates
	// to FIFO-like behaviour. The test pins the qualitative shape rather
	// than exact counts (pop order within a bucket is tie-broken by task id).
	r := rng.New(23)
	g, err := graph.GNM(800, 8000, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := RunRelaxedDelta(g, w, 0, exactheap.New(800), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []uint32{16, 1 << 24} {
		got, st, err := RunRelaxedDelta(g, w, 0, exactheap.New(800), delta)
		if err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
		if !Equal(got, exact) {
			t.Fatalf("delta=%d: distances changed", delta)
		}
		if st.Pops < st.StalePops {
			t.Fatalf("delta=%d: inconsistent accounting %+v", delta, st)
		}
	}
}

func TestDeltaValidation(t *testing.T) {
	g := graph.Path(3)
	w := graph.UnitWeights(g)
	if _, _, err := RunRelaxedDelta(g, w, 0, exactheap.New(3), 0); err == nil {
		t.Fatal("zero delta accepted by RunRelaxedDelta")
	}
	mq := multiqueue.NewConcurrent(2, 3, 1)
	if _, _, err := RunConcurrentDelta(g, w, 0, mq, 0, core.DynamicOptions{Workers: 1}); err == nil {
		t.Fatal("zero delta accepted by RunConcurrentDelta")
	}
	if _, _, err := RunConcurrentDelta(g, w, 0, mq, 1, core.DynamicOptions{Workers: 1, BatchSize: -1}); err == nil {
		t.Fatal("negative batch size accepted")
	}
}
