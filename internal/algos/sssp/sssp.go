// Package sssp implements single-source shortest paths with priority
// schedulers: exact sequential Dijkstra, a relaxed sequential-model variant,
// a concurrent variant driven by a relaxed scheduler, and Δ-stepping-style
// bucketed variants that trade priority precision for scheduler throughput.
//
// SSSP is the classic motivating example for relaxed priority scheduling
// (the paper cites it as the standard application of SprayLists and
// MultiQueues) but it does not fit the deterministic framework of package
// core: task priorities are tentative distances, which change during the
// execution, so the required priority permutation cannot be drawn uniformly
// at random up front. It is instead expressed as a core.DynamicProblem and
// executed by the dynamic-priority engine (core.RunDynamic /
// core.RunDynamicConcurrent). Correctness is preserved because distance
// labels only ever decrease and every improvement re-inserts the vertex; the
// cost of relaxation shows up as wasted (stale) queue pops rather than as
// failed deletes. This package therefore lives beside the framework as the
// non-deterministic counterpart that the paper contrasts against.
//
// The Δ-stepping variants (RunRelaxedDelta, RunConcurrentDelta) divide
// priorities by a bucket width before they reach the scheduler, trading
// priority precision for cheaper, more collision-friendly scheduling; Δ = 1
// reproduces exact distance priorities. The workload registers as "sssp" in
// internal/workload (input: random edge weights in [1, 100]; wasted work:
// stale pops), which is how cmd/relaxrun, cmd/relaxbench and internal/bench
// reach it.
package sssp

import (
	"fmt"
	"math"
	"sync/atomic"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

// Unreachable is the distance label of vertices not reachable from the
// source.
const Unreachable = uint32(math.MaxUint32)

// Stats counts the work performed by a shortest-path execution.
type Stats struct {
	// Pops is the number of items removed from the scheduler.
	Pops int64
	// StalePops is the number of removed items whose distance was already
	// outdated (the relaxed analogue of a wasted iteration).
	StalePops int64
	// Relaxations is the number of edge relaxations that improved a
	// distance.
	Relaxations int64
	// EmptyPolls is the number of scheduler polls that found nothing while
	// work remained (concurrent executions only).
	EmptyPolls int64
}

func fromDynamic(st core.DynamicStats) Stats {
	return Stats{
		Pops:        st.Pops,
		StalePops:   st.StalePops,
		Relaxations: st.Emitted,
		EmptyPolls:  st.EmptyPolls,
	}
}

// Dijkstra computes exact shortest-path distances from src using a binary
// heap. It is the correctness oracle and sequential baseline.
func Dijkstra(g *graph.Graph, w *graph.Weights, src int) ([]uint32, error) {
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("sssp: source %d out of range [0,%d)", src, n)
	}
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	h := &distHeap{}
	h.push(distEntry{v: int32(src), d: 0})
	for h.len() > 0 {
		e := h.pop()
		if e.d > dist[e.v] {
			continue
		}
		nbrs := g.Neighbors(int(e.v))
		wts := w.Range(g.AdjOffset(int(e.v)), len(nbrs))
		for i, u := range nbrs {
			nd := e.d + wts[i]
			if nd < dist[u] {
				dist[u] = nd
				h.push(distEntry{v: u, d: nd})
			}
		}
	}
	return dist, nil
}

// seqProblem is the sequential-model shortest-path workload expressed as a
// core.DynamicProblem: labels are plain uint32 distances, an item is stale
// when its priority bucket lies above the current distance's bucket, and
// expansion relaxes the vertex's out-edges, emitting every improved neighbor
// with its new bucketed priority.
type seqProblem struct {
	g     *graph.Graph
	w     *graph.Weights
	dist  []uint32
	delta uint32
}

func (p *seqProblem) Stale(task int32, priority uint32) bool {
	return priority > p.dist[task]/p.delta
}

func (p *seqProblem) Expand(task int32, _ uint32, em *core.Emitter) {
	v := int(task)
	d := p.dist[v]
	// One contiguous scan of the CSR neighbors run and its aligned weights
	// run: the two streams advance together (hardware prefetch keeps them in
	// cache), the only irregular accesses are the dist reads they drive, and
	// equal slice lengths let the compiler drop per-edge bounds checks.
	nbrs := p.g.Neighbors(v)
	wts := p.w.Range(p.g.AdjOffset(v), len(nbrs))
	dist := p.dist
	for i, u := range nbrs {
		nd := d + wts[i]
		if nd < dist[u] {
			dist[u] = nd
			em.Emit(u, nd/p.delta)
		}
	}
}

func (p *seqProblem) Done() bool { return false }

// concProblem is the concurrent shortest-path workload: distance labels are
// updated with compare-and-swap minimum, so the result is exact regardless
// of how relaxed the scheduler is. It is safe for concurrent Stale/Expand
// calls as the dynamic engine requires.
type concProblem struct {
	g     *graph.Graph
	w     *graph.Weights
	dist  []atomic.Uint32
	delta uint32
}

func (p *concProblem) Stale(task int32, priority uint32) bool {
	return priority > p.dist[task].Load()/p.delta
}

func (p *concProblem) Expand(task int32, _ uint32, em *core.Emitter) {
	v := int(task)
	d := p.dist[v].Load()
	// Same contiguous neighbors+weights scan as the sequential problem (see
	// seqProblem.Expand); the CAS-minimum loop is per improved edge only.
	nbrs := p.g.Neighbors(v)
	wts := p.w.Range(p.g.AdjOffset(v), len(nbrs))
	dist := p.dist
	for i, u := range nbrs {
		nd := d + wts[i]
		for {
			cur := dist[u].Load()
			if nd >= cur {
				break
			}
			if dist[u].CompareAndSwap(cur, nd) {
				em.Emit(u, nd/p.delta)
				break
			}
		}
	}
}

func (p *concProblem) Done() bool { return false }

func validate(g *graph.Graph, src int, s any, delta uint32) error {
	n := g.NumVertices()
	if src < 0 || src >= n {
		return fmt.Errorf("sssp: source %d out of range [0,%d)", src, n)
	}
	if s == nil {
		return fmt.Errorf("sssp: scheduler must not be nil")
	}
	if delta < 1 {
		return fmt.Errorf("sssp: delta must be at least 1, got %d", delta)
	}
	return nil
}

// RunRelaxed computes shortest-path distances using a (possibly relaxed)
// sequential-model scheduler. The result is always exact; relaxation only
// costs extra work, reported in Stats.
func RunRelaxed(g *graph.Graph, w *graph.Weights, src int, s sched.Scheduler) ([]uint32, Stats, error) {
	return RunRelaxedDelta(g, w, src, s, 1)
}

// RunRelaxedDelta is RunRelaxed with Δ-stepping-style bucketed priorities:
// an item's scheduler priority is its tentative distance divided by delta,
// so all vertices within one bucket of width delta compare equal. Coarser
// buckets mean cheaper, more collision-friendly priorities at the cost of
// processing vertices further out of distance order — which shows up as
// extra stale pops, never as wrong distances. Delta 1 reproduces RunRelaxed
// exactly.
func RunRelaxedDelta(g *graph.Graph, w *graph.Weights, src int, s sched.Scheduler, delta uint32) ([]uint32, Stats, error) {
	if err := validate(g, src, s, delta); err != nil {
		return nil, Stats{}, err
	}
	dist := make([]uint32, g.NumVertices())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	p := &seqProblem{g: g, w: w, dist: dist, delta: delta}
	st, err := core.RunDynamic(p, []sched.Item{{Task: int32(src), Priority: 0}}, s)
	if err != nil {
		return nil, Stats{}, err
	}
	return dist, fromDynamic(st), nil
}

// RunConcurrent computes shortest-path distances with worker goroutines
// sharing a concurrent scheduler, by handing the workload to the dynamic
// engine (core.RunDynamicConcurrent). Distance updates use compare-and-swap
// minimum, so the result is exact regardless of scheduling; relaxed
// schedulers only add stale pops.
func RunConcurrent(g *graph.Graph, w *graph.Weights, src int, s sched.Concurrent, workers int) ([]uint32, Stats, error) {
	return RunConcurrentDelta(g, w, src, s, 1, core.DynamicOptions{Workers: workers})
}

// RunConcurrentDelta is RunConcurrent with Δ-stepping-style bucketed
// priorities (see RunRelaxedDelta) and explicit engine options (batch size,
// cancellation). Bucketing composes with batching: both relax the effective
// delivery order, trading relaxation quality against scheduler
// synchronization.
func RunConcurrentDelta(g *graph.Graph, w *graph.Weights, src int, s sched.Concurrent, delta uint32, opts core.DynamicOptions) ([]uint32, Stats, error) {
	if err := validate(g, src, s, delta); err != nil {
		return nil, Stats{}, err
	}
	n := g.NumVertices()
	dist := make([]atomic.Uint32, n)
	for i := range dist {
		dist[i].Store(Unreachable)
	}
	dist[src].Store(0)
	p := &concProblem{g: g, w: w, dist: dist, delta: delta}
	res, err := core.RunDynamicConcurrent(p, []sched.Item{{Task: int32(src), Priority: 0}}, s, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = dist[i].Load()
	}
	return out, fromDynamic(res.DynamicStats), nil
}

// Verify checks that dist is the exact shortest-path distance vector from
// src: the source has distance 0, every edge satisfies the triangle
// inequality, every finite-distance vertex other than the source has a tight
// incoming edge, and unreachable vertices have no reachable neighbor.
func Verify(g *graph.Graph, w *graph.Weights, src int, dist []uint32) error {
	n := g.NumVertices()
	if len(dist) != n {
		return fmt.Errorf("sssp: %d distances for %d vertices", len(dist), n)
	}
	if src < 0 || src >= n {
		return fmt.Errorf("sssp: source %d out of range", src)
	}
	if dist[src] != 0 {
		return fmt.Errorf("sssp: source distance is %d, want 0", dist[src])
	}
	for v := 0; v < n; v++ {
		base := g.AdjOffset(v)
		if dist[v] == Unreachable {
			for _, u := range g.Neighbors(v) {
				if dist[u] != Unreachable {
					return fmt.Errorf("sssp: vertex %d is unreachable but neighbor %d has distance %d", v, u, dist[u])
				}
			}
			continue
		}
		tight := v == src
		for i, u := range g.Neighbors(v) {
			wt := w.At(base + i)
			if dist[u] != Unreachable && dist[u]+wt < dist[v] {
				return fmt.Errorf("sssp: edge (%d,%d) violates optimality: %d + %d < %d", u, v, dist[u], wt, dist[v])
			}
			if dist[u] != Unreachable && dist[u]+wt == dist[v] {
				tight = true
			}
		}
		if !tight {
			return fmt.Errorf("sssp: vertex %d has distance %d but no tight incoming edge", v, dist[v])
		}
	}
	return nil
}

// Equal reports whether two distance vectors are identical.
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// distEntry and distHeap form a small dedicated binary heap for Dijkstra, so
// the sequential baseline does not depend on the scheduler packages.
type distEntry struct {
	v int32
	d uint32
}

type distHeap struct {
	entries []distEntry
}

func (h *distHeap) len() int { return len(h.entries) }

func (h *distHeap) push(e distEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].d <= h.entries[i].d {
			break
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		i = parent
	}
}

func (h *distHeap) pop() distEntry {
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= len(h.entries) {
			break
		}
		smallest := left
		if right := left + 1; right < len(h.entries) && h.entries[right].d < h.entries[left].d {
			smallest = right
		}
		if h.entries[i].d <= h.entries[smallest].d {
			break
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
	return top
}
