// Package sssp implements single-source shortest paths with priority
// schedulers: exact sequential Dijkstra, a relaxed sequential-model variant,
// and a concurrent variant driven by a relaxed scheduler.
//
// SSSP is the classic motivating example for relaxed priority scheduling
// (the paper cites it as the standard application of SprayLists and
// MultiQueues) but it does not fit the deterministic framework of package
// core: task priorities are tentative distances, which change during the
// execution, so the required priority permutation cannot be drawn uniformly
// at random up front. Correctness is instead preserved because distance
// labels only ever decrease and every improvement re-inserts the vertex; the
// cost of relaxation shows up as wasted (stale) queue pops rather than as
// failed deletes. This package therefore lives beside the framework as the
// non-deterministic counterpart that the paper contrasts against.
package sssp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

// Unreachable is the distance label of vertices not reachable from the
// source.
const Unreachable = uint32(math.MaxUint32)

// Stats counts the work performed by a shortest-path execution.
type Stats struct {
	// Pops is the number of items removed from the scheduler.
	Pops int64
	// StalePops is the number of removed items whose distance was already
	// outdated (the relaxed analogue of a wasted iteration).
	StalePops int64
	// Relaxations is the number of edge relaxations that improved a
	// distance.
	Relaxations int64
}

// Dijkstra computes exact shortest-path distances from src using a binary
// heap. It is the correctness oracle and sequential baseline.
func Dijkstra(g *graph.Graph, w *graph.Weights, src int) ([]uint32, error) {
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("sssp: source %d out of range [0,%d)", src, n)
	}
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	h := &distHeap{}
	h.push(distEntry{v: int32(src), d: 0})
	for h.len() > 0 {
		e := h.pop()
		if e.d > dist[e.v] {
			continue
		}
		base := g.AdjOffset(int(e.v))
		for i, u := range g.Neighbors(int(e.v)) {
			nd := e.d + w.At(base+i)
			if nd < dist[u] {
				dist[u] = nd
				h.push(distEntry{v: u, d: nd})
			}
		}
	}
	return dist, nil
}

// RunRelaxed computes shortest-path distances using a (possibly relaxed)
// sequential-model scheduler. The result is always exact; relaxation only
// costs extra work, reported in Stats.
func RunRelaxed(g *graph.Graph, w *graph.Weights, src int, s sched.Scheduler) ([]uint32, Stats, error) {
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, Stats{}, fmt.Errorf("sssp: source %d out of range [0,%d)", src, n)
	}
	if s == nil {
		return nil, Stats{}, fmt.Errorf("sssp: scheduler must not be nil")
	}
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	s.Insert(sched.Item{Task: int32(src), Priority: 0})

	var st Stats
	for {
		it, ok := s.ApproxGetMin()
		if !ok {
			break
		}
		st.Pops++
		v := int(it.Task)
		if it.Priority > dist[v] {
			st.StalePops++
			continue
		}
		d := dist[v]
		base := g.AdjOffset(v)
		for i, u := range g.Neighbors(v) {
			nd := d + w.At(base+i)
			if nd < dist[u] {
				dist[u] = nd
				st.Relaxations++
				s.Insert(sched.Item{Task: u, Priority: nd})
			}
		}
	}
	return dist, st, nil
}

// RunConcurrent computes shortest-path distances with worker goroutines
// sharing a concurrent scheduler. Distance updates use compare-and-swap
// minimum, so the result is exact regardless of scheduling; relaxed
// schedulers only add stale pops.
func RunConcurrent(g *graph.Graph, w *graph.Weights, src int, s sched.Concurrent, workers int) ([]uint32, Stats, error) {
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, Stats{}, fmt.Errorf("sssp: source %d out of range [0,%d)", src, n)
	}
	if s == nil {
		return nil, Stats{}, fmt.Errorf("sssp: scheduler must not be nil")
	}
	if workers < 1 {
		return nil, Stats{}, fmt.Errorf("sssp: worker count must be at least 1, got %d", workers)
	}
	dist := make([]atomic.Uint32, n)
	for i := range dist {
		dist[i].Store(Unreachable)
	}
	dist[src].Store(0)

	// pending counts items that are in the scheduler or currently being
	// expanded; the execution is complete when it reaches zero.
	var pending atomic.Int64
	pending.Add(1)
	s.Insert(sched.Item{Task: int32(src), Priority: 0})

	stats := make([]Stats, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			st := &stats[wk]
			idle := 0
			for {
				if pending.Load() == 0 {
					return
				}
				it, ok := s.ApproxGetMin()
				if !ok {
					idle++
					if idle > 32 {
						runtime.Gosched()
					}
					continue
				}
				idle = 0
				st.Pops++
				v := int(it.Task)
				if it.Priority > dist[v].Load() {
					st.StalePops++
					pending.Add(-1)
					continue
				}
				d := dist[v].Load()
				base := g.AdjOffset(v)
				for i, u := range g.Neighbors(v) {
					nd := d + w.At(base+i)
					for {
						cur := dist[u].Load()
						if nd >= cur {
							break
						}
						if dist[u].CompareAndSwap(cur, nd) {
							st.Relaxations++
							pending.Add(1)
							s.Insert(sched.Item{Task: u, Priority: nd})
							break
						}
					}
				}
				pending.Add(-1)
			}
		}(wk)
	}
	wg.Wait()

	out := make([]uint32, n)
	for i := range out {
		out[i] = dist[i].Load()
	}
	var total Stats
	for _, st := range stats {
		total.Pops += st.Pops
		total.StalePops += st.StalePops
		total.Relaxations += st.Relaxations
	}
	return out, total, nil
}

// Verify checks that dist is the exact shortest-path distance vector from
// src: the source has distance 0, every edge satisfies the triangle
// inequality, every finite-distance vertex other than the source has a tight
// incoming edge, and unreachable vertices have no reachable neighbor.
func Verify(g *graph.Graph, w *graph.Weights, src int, dist []uint32) error {
	n := g.NumVertices()
	if len(dist) != n {
		return fmt.Errorf("sssp: %d distances for %d vertices", len(dist), n)
	}
	if src < 0 || src >= n {
		return fmt.Errorf("sssp: source %d out of range", src)
	}
	if dist[src] != 0 {
		return fmt.Errorf("sssp: source distance is %d, want 0", dist[src])
	}
	for v := 0; v < n; v++ {
		base := g.AdjOffset(v)
		if dist[v] == Unreachable {
			for _, u := range g.Neighbors(v) {
				if dist[u] != Unreachable {
					return fmt.Errorf("sssp: vertex %d is unreachable but neighbor %d has distance %d", v, u, dist[u])
				}
			}
			continue
		}
		tight := v == src
		for i, u := range g.Neighbors(v) {
			wt := w.At(base + i)
			if dist[u] != Unreachable && dist[u]+wt < dist[v] {
				return fmt.Errorf("sssp: edge (%d,%d) violates optimality: %d + %d < %d", u, v, dist[u], wt, dist[v])
			}
			if dist[u] != Unreachable && dist[u]+wt == dist[v] {
				tight = true
			}
		}
		if !tight {
			return fmt.Errorf("sssp: vertex %d has distance %d but no tight incoming edge", v, dist[v])
		}
	}
	return nil
}

// Equal reports whether two distance vectors are identical.
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// distEntry and distHeap form a small dedicated binary heap for Dijkstra, so
// the sequential baseline does not depend on the scheduler packages.
type distEntry struct {
	v int32
	d uint32
}

type distHeap struct {
	entries []distEntry
}

func (h *distHeap) len() int { return len(h.entries) }

func (h *distHeap) push(e distEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].d <= h.entries[i].d {
			break
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		i = parent
	}
}

func (h *distHeap) pop() distEntry {
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= len(h.entries) {
			break
		}
		smallest := left
		if right := left + 1; right < len(h.entries) && h.entries[right].d < h.entries[left].d {
			smallest = right
		}
		if h.entries[i].d <= h.entries[smallest].d {
			break
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
	return top
}
