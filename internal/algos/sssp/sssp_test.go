package sssp

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

func TestDijkstraOnPathUnitWeights(t *testing.T) {
	g := graph.Path(6)
	w := graph.UnitWeights(g)
	dist, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if dist[v] != uint32(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if err := Verify(g, w, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraKnownWeightedGraph(t *testing.T) {
	// Triangle 0-1 (weight from hash), plus we verify against Verify only —
	// and a hand-checked diamond graph with unit weights: 0-1, 0-2, 1-3,
	// 2-3: dist(3) = 2.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	w := graph.UnitWeights(g)
	dist, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 1, 1, 2}
	if !Equal(dist, want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
}

func TestDijkstraUnreachableVertices(t *testing.T) {
	// Two components: 0-1 and 2-3.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	w := graph.UnitWeights(g)
	dist, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("components 2,3 should be unreachable, got %v", dist)
	}
	if err := Verify(g, w, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraSourceValidation(t *testing.T) {
	g := graph.Path(3)
	w := graph.UnitWeights(g)
	if _, err := Dijkstra(g, w, -1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := Dijkstra(g, w, 3); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestRelaxedMatchesDijkstraAcrossSchedulers(t *testing.T) {
	r := rng.New(5)
	g, err := graph.GNM(500, 2500, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}

	schedulers := map[string]sched.Scheduler{
		"exactheap":   exactheap.New(500),
		"topk8":       topk.New(8, 500, rng.New(1)),
		"multiqueue8": multiqueue.NewSequential(8, 500, rng.New(2)),
		"spraylist8":  spraylist.New(8, rng.New(3)),
		"kbounded8":   kbounded.New(8, 500),
	}
	for name, s := range schedulers {
		got, st, err := RunRelaxed(g, w, 0, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(got, want) {
			t.Fatalf("%s: relaxed SSSP distances differ from Dijkstra", name)
		}
		if err := Verify(g, w, 0, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Pops == 0 || st.Relaxations == 0 {
			t.Fatalf("%s: implausible stats %+v", name, st)
		}
	}
}

func TestRelaxedExactSchedulerNoMoreWorkThanDijkstra(t *testing.T) {
	// With an exact scheduler the relaxed runner is plain Dijkstra with
	// lazy deletion; stale pops happen only for superseded queue entries.
	r := rng.New(7)
	g, err := graph.GNM(300, 1500, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := RunRelaxed(g, w, 0, exactheap.New(300))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("distances differ")
	}
	if st.Pops != st.StalePops+int64(countReachable(want)) {
		t.Fatalf("pop accounting inconsistent: %+v (reachable=%d)", st, countReachable(want))
	}
}

func countReachable(dist []uint32) int {
	count := 0
	for _, d := range dist {
		if d != Unreachable {
			count++
		}
	}
	return count
}

func TestConcurrentMatchesDijkstra(t *testing.T) {
	r := rng.New(9)
	g, err := graph.GNM(2000, 10000, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 100, 11)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		mq := multiqueue.NewConcurrent(4*workers, 2000, uint64(workers))
		got, st, err := RunConcurrent(g, w, 0, mq, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(got, want) {
			t.Fatalf("workers=%d: concurrent SSSP distances differ from Dijkstra", workers)
		}
		if err := Verify(g, w, 0, got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Pops < int64(countReachable(want)) {
			t.Fatalf("workers=%d: fewer pops than reachable vertices: %+v", workers, st)
		}
	}
}

func TestConcurrentValidation(t *testing.T) {
	g := graph.Path(3)
	w := graph.UnitWeights(g)
	mq := multiqueue.NewConcurrent(2, 3, 1)
	if _, _, err := RunConcurrent(g, w, -1, mq, 2); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, _, err := RunConcurrent(g, w, 0, nil, 2); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, _, err := RunConcurrent(g, w, 0, mq, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, _, err := RunRelaxed(g, w, 5, exactheap.New(3)); err == nil {
		t.Fatal("out-of-range source accepted by RunRelaxed")
	}
	if _, _, err := RunRelaxed(g, w, 0, nil); err == nil {
		t.Fatal("nil scheduler accepted by RunRelaxed")
	}
}

func TestVerifyCatchesWrongDistances(t *testing.T) {
	g := graph.Path(4)
	w := graph.UnitWeights(g)
	good, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]uint32)
	}{
		{"wrong source distance", func(d []uint32) { d[0] = 5 }},
		{"too small", func(d []uint32) { d[3] = 1 }},
		{"too large", func(d []uint32) { d[2] = 7 }},
		{"spurious unreachable", func(d []uint32) { d[3] = Unreachable }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := append([]uint32(nil), good...)
			tc.mutate(bad)
			if err := Verify(g, w, 0, bad); err == nil {
				t.Fatalf("Verify accepted wrong distances %v", bad)
			}
		})
	}
	if err := Verify(g, w, 0, good[:2]); err == nil {
		t.Fatal("Verify accepted truncated distances")
	}
}

func TestGridDistancesMatchManhattan(t *testing.T) {
	const rows, cols = 12, 17
	g := graph.Grid(rows, cols)
	w := graph.UnitWeights(g)
	dist, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if dist[r*cols+c] != uint32(r+c) {
				t.Fatalf("grid dist(%d,%d) = %d, want %d", r, c, dist[r*cols+c], r+c)
			}
		}
	}
}

func TestDeterministicResultProperty(t *testing.T) {
	// Property: relaxed SSSP always reproduces Dijkstra's distances, for
	// random graphs, weights and relaxation factors.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(200)
		maxM := int64(n) * int64(n-1) / 2
		m := int64(r.Intn(int(maxM/2 + 1)))
		g, err := graph.GNM(n, m, r)
		if err != nil {
			return false
		}
		w, err := graph.RandomWeights(g, 1+uint32(r.Intn(64)), seed)
		if err != nil {
			return false
		}
		src := r.Intn(n)
		want, err := Dijkstra(g, w, src)
		if err != nil {
			return false
		}
		got, _, err := RunRelaxed(g, w, src, topk.New(1+r.Intn(16), n, r.Fork()))
		if err != nil {
			return false
		}
		return Equal(got, want) && Verify(g, w, src, got) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstra(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(20000, 100000, r)
	if err != nil {
		b.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Dijkstra(g, w, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelaxedSSSP(b *testing.B) {
	r := rng.New(1)
	g, err := graph.GNM(20000, 100000, r)
	if err != nil {
		b.Fatal(err)
	}
	w, err := graph.RandomWeights(g, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunRelaxed(g, w, 0, multiqueue.NewSequential(16, 20000, rng.New(uint64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
