// Package api is the typed, versioned wire surface of the relaxd job
// service: the JSON types every process speaks (JobSpec, JobStatus,
// Metrics, the GraphSpec cache key, the uniform error envelope), the
// transport-agnostic Dispatcher interface, a typed HTTP client, and the
// HTTP handler that serves any Dispatcher.
//
// The package exists so that the three places a job can be dispatched —
// in-process through service.Manager, remotely through Client, and
// cluster-wide through the gateway — are interchangeable behind one
// interface, and so that relaxd, relaxload and relaxgw decode exactly the
// same bytes instead of hand-rolling per-binary structs.
//
// The HTTP surface is versioned under /v1 (see NewHandler); the
// pre-versioning paths remain as aliases for one release.
package api

import "context"

// Dispatcher is the transport-agnostic job-dispatch interface: everything
// a client can ask a job service to do, independent of whether the service
// is in-process (service.Manager via service.Local), a single remote node
// (Client), or a whole cluster behind a gateway.
//
// Implementations return *Error for failures that have a wire
// representation (admission rejections, unknown jobs, dead backends), so
// HTTP layers can map them onto status codes without string matching.
type Dispatcher interface {
	// Submit validates and enqueues a job, returning its queued status
	// (including the assigned id).
	Submit(ctx context.Context, spec JobSpec) (JobStatus, error)
	// Status reports a job's current state by id.
	Status(ctx context.Context, id int64) (JobStatus, error)
	// JobTrace returns a job's recorded lifecycle span timeline. Jobs
	// evicted from the bounded trace ring report CodeUnknownJob even when
	// Status still answers.
	JobTrace(ctx context.Context, id int64) (JobTrace, error)
	// Workloads lists the runnable workloads in deterministic order.
	Workloads(ctx context.Context) ([]WorkloadInfo, error)
	// Metrics returns a consistent snapshot of the service counters.
	Metrics(ctx context.Context) (Metrics, error)
	// Drain stops admission: subsequent Submits are rejected while already
	// accepted jobs run to completion. It does not block for the drain.
	Drain(ctx context.Context) error
}
