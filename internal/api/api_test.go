package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeDispatcher is an in-memory Dispatcher for exercising the handler and
// client as a matched pair, including every error-envelope path.
type fakeDispatcher struct {
	jobs     map[int64]JobStatus
	nextID   int64
	draining bool
	// submitErr, when set, is returned by Submit verbatim.
	submitErr error
	// metrics, when set, is returned by Metrics (with Draining overlaid).
	metrics *Metrics
}

func newFakeDispatcher() *fakeDispatcher {
	return &fakeDispatcher{jobs: map[int64]JobStatus{}, nextID: 1}
}

func (f *fakeDispatcher) Submit(_ context.Context, spec JobSpec) (JobStatus, error) {
	if f.submitErr != nil {
		return JobStatus{}, f.submitErr
	}
	if f.draining {
		return JobStatus{}, Errorf(CodeDraining, "draining, not accepting jobs")
	}
	if spec.Workload == "" {
		return JobStatus{}, Errorf(CodeInvalidRequest, "workload is required")
	}
	st := JobStatus{ID: f.nextID, State: StateQueued, Spec: spec}
	f.jobs[f.nextID] = st
	f.nextID++
	return st, nil
}

func (f *fakeDispatcher) Status(_ context.Context, id int64) (JobStatus, error) {
	st, ok := f.jobs[id]
	if !ok {
		return JobStatus{}, Errorf(CodeUnknownJob, "unknown job id %d", id)
	}
	return st, nil
}

func (f *fakeDispatcher) JobTrace(_ context.Context, id int64) (JobTrace, error) {
	st, ok := f.jobs[id]
	if !ok {
		return JobTrace{}, Errorf(CodeUnknownJob, "unknown job id %d", id)
	}
	return JobTrace{
		ID:      st.ID,
		TraceID: "fake-trace",
		Spans:   []TraceSpan{{Name: "accepted"}, {Name: "queued", StartNanos: 10}},
	}, nil
}

func (f *fakeDispatcher) Workloads(context.Context) ([]WorkloadInfo, error) {
	return []WorkloadInfo{{Name: "mis", Kind: "static", Brief: "b", Input: "i", WastedWork: "w"}}, nil
}

func (f *fakeDispatcher) Metrics(context.Context) (Metrics, error) {
	if f.metrics != nil {
		m := *f.metrics
		m.Draining = f.draining
		return m, nil
	}
	return Metrics{JobSched: "exact", Draining: f.draining}, nil
}

func (f *fakeDispatcher) Drain(context.Context) error {
	f.draining = true
	return nil
}

// TestClientHandlerRoundTrip drives the typed client against the generic
// handler end to end: submit, status, workloads, metrics, drain, healthz.
func TestClientHandlerRoundTrip(t *testing.T) {
	d := newFakeDispatcher()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	c := NewClient(srv.URL + "/") // trailing slash is normalized away
	ctx := context.Background()

	spec := DefaultJobSpec()
	spec.Workload = "mis"
	spec.Graph = GraphSpec{N: 100, Edges: 200}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != 1 || st.State != StateQueued {
		t.Fatalf("submit returned %+v", st)
	}
	if st.Spec.Workload != "mis" || st.Spec.Graph.N != 100 {
		t.Fatalf("spec did not round-trip: %+v", st.Spec)
	}

	got, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != st.ID {
		t.Fatalf("status returned %+v", got)
	}

	infos, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "mis" {
		t.Fatalf("workloads = %+v", infos)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobSched != "exact" || m.Draining {
		t.Fatalf("metrics = %+v", m)
	}

	tr, err := c.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "fake-trace" || len(tr.Spans) != 2 || tr.Spans[1].Name != "queued" {
		t.Fatalf("trace = %+v", tr)
	}
	if _, err := c.JobTrace(ctx, 999); !IsCode(err, CodeUnknownJob) {
		t.Fatalf("trace of unknown job returned %v", err)
	}

	ok, err := c.Healthy(ctx)
	if err != nil || !ok {
		t.Fatalf("healthy = %v, %v", ok, err)
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if status, err := c.Health(ctx); err != nil || status != StatusDraining {
		t.Fatalf("health after drain = %q, %v, want %q", status, err, StatusDraining)
	}
	if ok, err := c.Healthy(ctx); err != nil || ok {
		t.Fatalf("healthy after drain = %v, %v", ok, err)
	}
	if _, err := c.Submit(ctx, spec); !IsCode(err, CodeDraining) {
		t.Fatalf("submit while draining returned %v", err)
	}
}

// TestControllerMetricsRoundTrip: the adaptive-controller section of
// Metrics survives the handler→client wire round trip field by field, is
// keyed "controller" in the raw JSON, and is omitted entirely for nodes on
// static schedulers (nil Controller).
func TestControllerMetricsRoundTrip(t *testing.T) {
	d := newFakeDispatcher()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	want := ControllerStats{
		Enabled:        true,
		K:              6,
		Batch:          48,
		RankSLO:        2.5,
		P99SLOMs:       750,
		Steps:          1234,
		Widened:        17,
		Tightened:      3,
		RankViolations: 4,
		P99Violations:  21,
		LastAdjustment: "widen: queue p99 900ms > SLO 750ms; k=6 batch=48",
	}
	d.metrics = &Metrics{JobSched: "auto", Controller: &want}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Controller == nil {
		t.Fatal("controller section dropped over the wire")
	}
	if *m.Controller != want {
		t.Fatalf("controller round trip:\ngot  %+v\nwant %+v", *m.Controller, want)
	}

	resp, raw := get(t, srv.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s %s", resp.Status, raw)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	ctrl, ok := body["controller"].(map[string]any)
	if !ok {
		t.Fatalf("no controller key in %s", raw)
	}
	if ctrl["k"] != float64(6) || ctrl["batch"] != float64(48) || ctrl["last_adjustment"] != want.LastAdjustment {
		t.Fatalf("controller JSON = %v", ctrl)
	}

	// Static nodes carry no controller key at all (omitempty on a nil
	// pointer), so scrapers can distinguish "disabled" from "all zero".
	d.metrics = &Metrics{JobSched: "exact"}
	_, raw = get(t, srv.URL+"/v1/metrics")
	body = nil // Unmarshal into a reused map merges keys; start fresh.
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if _, present := body["controller"]; present {
		t.Fatalf("static node leaked a controller section: %s", raw)
	}
}

// TestErrorEnvelopeOverTheWire: codes, retry hints and HTTP statuses
// survive the handler→client round trip; the removed legacy alias field
// must stay gone.
func TestErrorEnvelopeOverTheWire(t *testing.T) {
	d := newFakeDispatcher()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	// 404 with code unknown_job.
	_, err := c.Status(ctx, 999)
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeUnknownJob {
		t.Fatalf("unknown job returned %v", err)
	}

	// 429 with retry_after_ms passes through typed.
	d.submitErr = &Error{Code: CodeQueueFull, Message: "job queue full", RetryAfterMS: 250}
	_, err = c.Submit(ctx, JobSpec{Workload: "mis"})
	if !errors.As(err, &e) || e.Code != CodeQueueFull || e.RetryAfterMS != 250 {
		t.Fatalf("queue-full error = %v", err)
	}

	// The raw wire body carries code, message, the retry hint and the
	// Retry-After header — and nothing else: the deprecated legacy "error"
	// mirror is gone.
	resp, raw := post(t, srv.URL+"/v1/jobs", `{"workload":"mis"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %s", resp.Status)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body["code"] != "queue_full" || body["retry_after_ms"] != float64(250) {
		t.Fatalf("envelope = %s", raw)
	}
	if _, present := body["error"]; present {
		t.Fatalf("removed legacy error field still on the wire: %s", raw)
	}

	// Non-envelope upstream bodies are coerced by the client, not dropped.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	}))
	defer plain.Close()
	_, err = NewClient(plain.URL).Status(ctx, 1)
	if !errors.As(err, &e) || e.Code != CodeBackendDown || !strings.Contains(e.Message, "gateway exploded") {
		t.Fatalf("coerced error = %v", err)
	}
}

// TestErrorEnvelopeTable pins the full error surface of the live handler:
// every documented code arrives with its mapped HTTP status, an intact
// message, the retry hint if and only if one was set, and decodes on the
// client side to a typed *Error matching IsCode. One row per code —
// adding a code without extending this table is a test failure waiting in
// a review.
func TestErrorEnvelopeTable(t *testing.T) {
	d := newFakeDispatcher()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	oversized := `{"workload":"` + strings.Repeat("x", maxJobSpecBytes) + `"}`
	cases := []struct {
		name string
		// request issues the failing call through the typed client after
		// arming the fake, returning the error to assert on.
		arm       func()
		request   func() error
		rawURL    string // matching raw request for wire-level checks
		rawBody   string // non-empty: POST, else GET
		wantCode  string
		wantHTTP  int
		wantRetry string // expected Retry-After header ("" = absent)
	}{
		{
			name:     "invalid request -> 400",
			arm:      func() { d.submitErr = Errorf(CodeInvalidRequest, "workload is required") },
			request:  func() error { _, err := c.Submit(ctx, JobSpec{}); return err },
			rawURL:   srv.URL + "/v1/jobs",
			rawBody:  `{}`,
			wantCode: CodeInvalidRequest,
			wantHTTP: 400,
		},
		{
			name:     "unknown job -> 404",
			arm:      func() { d.submitErr = nil },
			request:  func() error { _, err := c.Status(ctx, 404404); return err },
			rawURL:   srv.URL + "/v1/jobs/404404",
			wantCode: CodeUnknownJob,
			wantHTTP: 404,
		},
		{
			name:     "oversized spec -> 413",
			arm:      func() { d.submitErr = nil },
			request:  func() error { return asClientError(t, c, oversized) },
			rawURL:   srv.URL + "/v1/jobs",
			rawBody:  oversized,
			wantCode: CodePayloadTooLarge,
			wantHTTP: 413,
		},
		{
			name: "queue full -> 429 with Retry-After",
			arm: func() {
				d.submitErr = &Error{Code: CodeQueueFull, Message: "job queue full", RetryAfterMS: 1500}
			},
			request:   func() error { _, err := c.Submit(ctx, JobSpec{Workload: "mis"}); return err },
			rawURL:    srv.URL + "/v1/jobs",
			rawBody:   `{"workload":"mis"}`,
			wantCode:  CodeQueueFull,
			wantHTTP:  429,
			wantRetry: "2", // 1500ms rounds up to whole seconds
		},
		{
			name:     "backend down -> 502",
			arm:      func() { d.submitErr = Errorf(CodeBackendDown, "backend unreachable") },
			request:  func() error { _, err := c.Submit(ctx, JobSpec{Workload: "mis"}); return err },
			rawURL:   srv.URL + "/v1/jobs",
			rawBody:  `{"workload":"mis"}`,
			wantCode: CodeBackendDown,
			wantHTTP: 502,
		},
		{
			name:     "draining -> 503",
			arm:      func() { d.submitErr = Errorf(CodeDraining, "draining, not accepting jobs") },
			request:  func() error { _, err := c.Submit(ctx, JobSpec{Workload: "mis"}); return err },
			rawURL:   srv.URL + "/v1/jobs",
			rawBody:  `{"workload":"mis"}`,
			wantCode: CodeDraining,
			wantHTTP: 503,
		},
		{
			// Submit's fallback for uncoded errors is invalid_request — most
			// are spec validation; dispatchers must wrap genuinely internal
			// failures (as Local does for ErrLogUnavailable) themselves.
			name:     "uncoded submit failure -> 400 fallback",
			arm:      func() { d.submitErr = fmt.Errorf("spec rejected by workload") },
			request:  func() error { _, err := c.Submit(ctx, JobSpec{Workload: "mis"}); return err },
			rawURL:   srv.URL + "/v1/jobs",
			rawBody:  `{"workload":"mis"}`,
			wantCode: CodeInvalidRequest,
			wantHTTP: 400,
		},
		{
			name:     "typed internal failure -> 500",
			arm:      func() { d.submitErr = Errorf(CodeInternal, "recording acceptance: log unavailable") },
			request:  func() error { _, err := c.Submit(ctx, JobSpec{Workload: "mis"}); return err },
			rawURL:   srv.URL + "/v1/jobs",
			rawBody:  `{"workload":"mis"}`,
			wantCode: CodeInternal,
			wantHTTP: 500,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.arm()

			// Typed client: code survives, IsCode matches.
			err := tc.request()
			var e *Error
			if !errors.As(err, &e) || e.Code != tc.wantCode {
				t.Fatalf("client error = %v, want code %q", err, tc.wantCode)
			}
			if !IsCode(err, tc.wantCode) {
				t.Fatalf("IsCode(%v, %q) = false", err, tc.wantCode)
			}
			if e.Message == "" {
				t.Fatal("envelope lost its message")
			}

			// Raw wire: status, headers, and body shape.
			var resp *http.Response
			var raw []byte
			if tc.rawBody != "" {
				resp, raw = post(t, tc.rawURL, tc.rawBody)
			} else {
				resp, raw = get(t, tc.rawURL)
			}
			if resp.StatusCode != tc.wantHTTP {
				t.Fatalf("status = %s, want %d (body %s)", resp.Status, tc.wantHTTP, raw)
			}
			if got := resp.Header.Get("Retry-After"); got != tc.wantRetry {
				t.Fatalf("Retry-After = %q, want %q", got, tc.wantRetry)
			}
			var body map[string]any
			if err := json.Unmarshal(raw, &body); err != nil {
				t.Fatalf("non-JSON error body %q: %v", raw, err)
			}
			if body["code"] != tc.wantCode {
				t.Fatalf("wire code = %v, want %q (body %s)", body["code"], tc.wantCode, raw)
			}
			if _, hasMsg := body["message"].(string); !hasMsg {
				t.Fatalf("wire envelope missing message: %s", raw)
			}
		})
	}
}

// asClientError submits a raw oversized body through the typed client's
// transport path and returns the decoded error (the client API has no way
// to produce a >limit body through JobSpec itself).
func asClientError(t *testing.T, c *Client, body string) error {
	t.Helper()
	resp, err := http.Post(c.BaseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var e Error
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return &e
}

// TestHandlerRequestValidation: malformed bodies, oversized payloads and
// bad ids map to the documented envelope codes.
func TestHandlerRequestValidation(t *testing.T) {
	srv := httptest.NewServer(NewHandler(newFakeDispatcher()))
	defer srv.Close()

	cases := []struct {
		name     string
		body     string
		wantCode string
		wantHTTP int
	}{
		{"malformed json", `{`, CodeInvalidRequest, 400},
		{"unknown field", `{"workload":"mis","frobnicate":1}`, CodeInvalidRequest, 400},
		{"oversized body", `{"workload":"` + strings.Repeat("x", maxJobSpecBytes) + `"}`, CodePayloadTooLarge, 413},
	}
	for _, tc := range cases {
		resp, raw := post(t, srv.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.wantHTTP {
			t.Fatalf("%s: status %s, body %s", tc.name, resp.Status, raw)
		}
		var e Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Code != tc.wantCode {
			t.Fatalf("%s: envelope %s (err %v)", tc.name, raw, err)
		}
	}

	resp, raw := get(t, srv.URL+"/v1/jobs/abc")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %s %s", resp.Status, raw)
	}
}

// TestUnversionedAliasesRemoved: the pre-versioning paths were deprecated
// aliases for one release after the /v1 cutover and are now gone — only the
// /v1 routes (and unversioned /healthz) resolve.
func TestUnversionedAliasesRemoved(t *testing.T) {
	d := newFakeDispatcher()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	resp, raw := post(t, srv.URL+"/v1/jobs", `{"workload":"mis"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s %s", resp.Status, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil || st.ID != 1 {
		t.Fatalf("submit body: %s", raw)
	}
	for _, path := range []string{"/v1/jobs/1", "/v1/workloads", "/v1/metrics"} {
		resp, raw := get(t, srv.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s %s", path, resp.Status, raw)
		}
	}
	resp, raw = post(t, srv.URL+"/jobs", `{"workload":"mis"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy POST /jobs: %s %s, want 404", resp.Status, raw)
	}
	for _, path := range []string{"/jobs/1", "/workloads", "/metrics"} {
		resp, raw := get(t, srv.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("legacy GET %s: %s %s, want 404", path, resp.Status, raw)
		}
	}
}

func TestWrapError(t *testing.T) {
	plain := fmt.Errorf("spec invalid")
	if e := WrapError(plain, CodeInvalidRequest); e.Code != CodeInvalidRequest || e.Message != "spec invalid" {
		t.Fatalf("wrapped = %+v", e)
	}
	typed := Errorf(CodeQueueFull, "full")
	if e := WrapError(fmt.Errorf("submitting: %w", typed), CodeInternal); e != typed {
		t.Fatalf("wrapped typed error did not pass through: %+v", e)
	}
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}
