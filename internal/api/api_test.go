package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeDispatcher is an in-memory Dispatcher for exercising the handler and
// client as a matched pair, including every error-envelope path.
type fakeDispatcher struct {
	jobs     map[int64]JobStatus
	nextID   int64
	draining bool
	// submitErr, when set, is returned by Submit verbatim.
	submitErr error
}

func newFakeDispatcher() *fakeDispatcher {
	return &fakeDispatcher{jobs: map[int64]JobStatus{}, nextID: 1}
}

func (f *fakeDispatcher) Submit(_ context.Context, spec JobSpec) (JobStatus, error) {
	if f.submitErr != nil {
		return JobStatus{}, f.submitErr
	}
	if f.draining {
		return JobStatus{}, Errorf(CodeDraining, "draining, not accepting jobs")
	}
	if spec.Workload == "" {
		return JobStatus{}, Errorf(CodeInvalidRequest, "workload is required")
	}
	st := JobStatus{ID: f.nextID, State: StateQueued, Spec: spec}
	f.jobs[f.nextID] = st
	f.nextID++
	return st, nil
}

func (f *fakeDispatcher) Status(_ context.Context, id int64) (JobStatus, error) {
	st, ok := f.jobs[id]
	if !ok {
		return JobStatus{}, Errorf(CodeUnknownJob, "unknown job id %d", id)
	}
	return st, nil
}

func (f *fakeDispatcher) Workloads(context.Context) ([]WorkloadInfo, error) {
	return []WorkloadInfo{{Name: "mis", Kind: "static", Brief: "b", Input: "i", WastedWork: "w"}}, nil
}

func (f *fakeDispatcher) Metrics(context.Context) (Metrics, error) {
	return Metrics{JobSched: "exact", Draining: f.draining}, nil
}

func (f *fakeDispatcher) Drain(context.Context) error {
	f.draining = true
	return nil
}

// TestClientHandlerRoundTrip drives the typed client against the generic
// handler end to end: submit, status, workloads, metrics, drain, healthz.
func TestClientHandlerRoundTrip(t *testing.T) {
	d := newFakeDispatcher()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	c := NewClient(srv.URL + "/") // trailing slash is normalized away
	ctx := context.Background()

	spec := DefaultJobSpec()
	spec.Workload = "mis"
	spec.Graph = GraphSpec{N: 100, Edges: 200}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != 1 || st.State != StateQueued {
		t.Fatalf("submit returned %+v", st)
	}
	if st.Spec.Workload != "mis" || st.Spec.Graph.N != 100 {
		t.Fatalf("spec did not round-trip: %+v", st.Spec)
	}

	got, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != st.ID {
		t.Fatalf("status returned %+v", got)
	}

	infos, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "mis" {
		t.Fatalf("workloads = %+v", infos)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobSched != "exact" || m.Draining {
		t.Fatalf("metrics = %+v", m)
	}

	ok, err := c.Healthy(ctx)
	if err != nil || !ok {
		t.Fatalf("healthy = %v, %v", ok, err)
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Healthy(ctx); err != nil || ok {
		t.Fatalf("healthy after drain = %v, %v", ok, err)
	}
	if _, err := c.Submit(ctx, spec); !IsCode(err, CodeDraining) {
		t.Fatalf("submit while draining returned %v", err)
	}
}

// TestErrorEnvelopeOverTheWire: codes, retry hints and HTTP statuses
// survive the handler→client round trip, including the legacy alias field.
func TestErrorEnvelopeOverTheWire(t *testing.T) {
	d := newFakeDispatcher()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	// 404 with code unknown_job.
	_, err := c.Status(ctx, 999)
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeUnknownJob {
		t.Fatalf("unknown job returned %v", err)
	}

	// 429 with retry_after_ms passes through typed.
	d.submitErr = &Error{Code: CodeQueueFull, Message: "job queue full", RetryAfterMS: 250}
	_, err = c.Submit(ctx, JobSpec{Workload: "mis"})
	if !errors.As(err, &e) || e.Code != CodeQueueFull || e.RetryAfterMS != 250 {
		t.Fatalf("queue-full error = %v", err)
	}

	// The raw wire body carries code, message, retry hint, the legacy
	// "error" alias, and the Retry-After header.
	resp, raw := post(t, srv.URL+"/v1/jobs", `{"workload":"mis"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %s", resp.Status)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body["code"] != "queue_full" || body["retry_after_ms"] != float64(250) {
		t.Fatalf("envelope = %s", raw)
	}
	if body["error"] != body["message"] {
		t.Fatalf("legacy error field does not mirror message: %s", raw)
	}

	// Non-envelope upstream bodies are coerced by the client, not dropped.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	}))
	defer plain.Close()
	_, err = NewClient(plain.URL).Status(ctx, 1)
	if !errors.As(err, &e) || e.Code != CodeBackendDown || !strings.Contains(e.Message, "gateway exploded") {
		t.Fatalf("coerced error = %v", err)
	}
}

// TestHandlerRequestValidation: malformed bodies, oversized payloads and
// bad ids map to the documented envelope codes.
func TestHandlerRequestValidation(t *testing.T) {
	srv := httptest.NewServer(NewHandler(newFakeDispatcher()))
	defer srv.Close()

	cases := []struct {
		name     string
		body     string
		wantCode string
		wantHTTP int
	}{
		{"malformed json", `{`, CodeInvalidRequest, 400},
		{"unknown field", `{"workload":"mis","frobnicate":1}`, CodeInvalidRequest, 400},
		{"oversized body", `{"workload":"` + strings.Repeat("x", maxJobSpecBytes) + `"}`, CodePayloadTooLarge, 413},
	}
	for _, tc := range cases {
		resp, raw := post(t, srv.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.wantHTTP {
			t.Fatalf("%s: status %s, body %s", tc.name, resp.Status, raw)
		}
		var e Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Code != tc.wantCode {
			t.Fatalf("%s: envelope %s (err %v)", tc.name, raw, err)
		}
	}

	resp, raw := get(t, srv.URL+"/v1/jobs/abc")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %s %s", resp.Status, raw)
	}
}

// TestUnversionedAliases: the pre-versioning paths serve the same handlers
// during the deprecation window.
func TestUnversionedAliases(t *testing.T) {
	d := newFakeDispatcher()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	resp, raw := post(t, srv.URL+"/jobs", `{"workload":"mis"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy submit: %s %s", resp.Status, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil || st.ID != 1 {
		t.Fatalf("legacy submit body: %s", raw)
	}
	for _, path := range []string{"/jobs/1", "/workloads", "/metrics", "/v1/jobs/1", "/v1/workloads", "/v1/metrics"} {
		resp, raw := get(t, srv.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s %s", path, resp.Status, raw)
		}
	}
}

func TestWrapError(t *testing.T) {
	plain := fmt.Errorf("spec invalid")
	if e := WrapError(plain, CodeInvalidRequest); e.Code != CodeInvalidRequest || e.Message != "spec invalid" {
		t.Fatalf("wrapped = %+v", e)
	}
	typed := Errorf(CodeQueueFull, "full")
	if e := WrapError(fmt.Errorf("submitting: %w", typed), CodeInternal); e != typed {
		t.Fatalf("wrapped typed error did not pass through: %+v", e)
	}
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}
