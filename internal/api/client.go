package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"relaxsched/internal/trace"
)

// maxErrorBody bounds how much of a non-JSON error body the client keeps
// when synthesizing an envelope from a raw response.
const maxErrorBody = 4096

// Client is the typed HTTP client for the versioned relaxd wire API. It
// implements Dispatcher, so code written against the interface runs
// unchanged against an in-process manager, a single remote node, or a
// gateway. The zero value is not usable; construct with NewClient.
type Client struct {
	// BaseURL is the service root, e.g. "http://localhost:8080" (no
	// trailing slash).
	BaseURL string
	// HTTP is the underlying client. NewClient installs one with a
	// request timeout; callers sharing a fleet of Clients may inject a
	// single *http.Client here instead.
	HTTP *http.Client
}

var _ Dispatcher = (*Client)(nil)

// defaultHTTPClient bounds every request end to end. Submissions return
// 202 immediately (execution is asynchronous), so 30 s only ever bites on
// a wedged server — exactly when the caller wants the error.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// NewClient returns a client for the service rooted at baseURL, sharing
// the package-level timed HTTP client.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: defaultHTTPClient}
}

// Submit POSTs a job spec and returns its queued status. Admission
// rejections come back as *Error (CodeQueueFull carries RetryAfterMS).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body), http.StatusAccepted, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Status GETs one job's status by id.
func (c *Client) Status(ctx context.Context, id int64) (JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), nil, http.StatusOK, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// JobTrace GETs one job's lifecycle span timeline by id. Jobs evicted
// from the server's bounded trace ring return CodeUnknownJob.
func (c *Client) JobTrace(ctx context.Context, id int64) (JobTrace, error) {
	var tr JobTrace
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/jobs/%d/trace", id), nil, http.StatusOK, &tr); err != nil {
		return JobTrace{}, err
	}
	return tr, nil
}

// Workloads GETs the registry listing.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var infos []WorkloadInfo
	if err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, http.StatusOK, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Metrics GETs the service counters snapshot. Against a gateway this
// decodes the cluster-wide aggregate; use ClusterMetrics for the
// per-backend breakdown.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, http.StatusOK, &m); err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// ClusterMetrics GETs a gateway's metrics including the per-backend rows.
// Against a single node the Backends slice is simply empty.
func (c *Client) ClusterMetrics(ctx context.Context) (ClusterMetrics, error) {
	var m ClusterMetrics
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, http.StatusOK, &m); err != nil {
		return ClusterMetrics{}, err
	}
	return m, nil
}

// Drain POSTs the drain request: the service stops admitting jobs.
func (c *Client) Drain(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/drain", nil, http.StatusAccepted, nil)
}

// Health GETs /healthz and returns the reported status string: StatusOK
// for an accepting service, StatusDraining for one alive but refusing new
// submissions (both HTTP 200). A transport failure returns the error —
// that, not a status string, is what "dead" looks like.
func (c *Client) Health(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return "", err
	}
	if id := trace.IDFromContext(ctx); id != "" {
		req.Header.Set(trace.Header, id)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if json.Unmarshal(payload, &body) == nil && body.Status != "" {
		return body.Status, nil
	}
	// Pre-observability servers (and proxies) may answer without the JSON
	// body; fall back to the status code.
	if resp.StatusCode == http.StatusOK {
		return StatusOK, nil
	}
	return "", &Error{
		Code:    codeForStatus(resp.StatusCode),
		Message: fmt.Sprintf("GET /healthz returned %s: %s", resp.Status, bytes.TrimSpace(payload)),
	}
}

// Healthy GETs /healthz and reports whether the service is accepting
// work: reachable and not draining. A reachable-but-draining service
// returns (false, nil); a transport failure returns the error.
func (c *Client) Healthy(ctx context.Context) (bool, error) {
	status, err := c.Health(ctx)
	if err != nil {
		return false, err
	}
	return status == StatusOK, nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// do performs one request and decodes the response: the expected status
// decodes into out (when non-nil); anything else decodes the error
// envelope, synthesizing one from the raw body if the server (or an
// intermediary) did not speak it.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, want int, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Forward the context's trace ID so a hop through this client (the
	// gateway's backend calls, a polling tool) stays on one trace.
	if id := trace.IDFromContext(ctx); id != "" {
		req.Header.Set(trace.Header, id)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		var e Error
		if json.Unmarshal(payload, &e) == nil && (e.Code != "" || e.Message != "") {
			if e.Code == "" {
				e.Code = codeForStatus(resp.StatusCode)
			}
			return &e
		}
		return &Error{
			Code:    codeForStatus(resp.StatusCode),
			Message: fmt.Sprintf("%s %s returned %s: %s", method, path, resp.Status, bytes.TrimSpace(payload)),
		}
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBody))
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding %s %s response: %w", method, path, err)
	}
	return nil
}
