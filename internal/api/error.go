package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"relaxsched/internal/trace"
)

// Error codes carried by the wire error envelope. Every error the HTTP
// surface returns uses one of these, so clients branch on Code instead of
// matching message strings.
const (
	// CodeInvalidRequest covers malformed JSON, unknown fields and spec
	// validation failures (HTTP 400).
	CodeInvalidRequest = "invalid_request"
	// CodeUnknownJob reports a status query for an id the service has no
	// record of (HTTP 404).
	CodeUnknownJob = "unknown_job"
	// CodePayloadTooLarge reports a request body beyond the service's
	// bound (HTTP 413).
	CodePayloadTooLarge = "payload_too_large"
	// CodeQueueFull is an admission-control rejection: the pending queue
	// is at its bound (HTTP 429). RetryAfterMS suggests a backoff.
	CodeQueueFull = "queue_full"
	// CodeBackendDown is a gateway-level failure: the backend owning the
	// request is unreachable (HTTP 502).
	CodeBackendDown = "backend_down"
	// CodeDraining is an admission-control rejection: the service is
	// shutting down (HTTP 503).
	CodeDraining = "draining"
	// CodeInternal is any other server-side failure (HTTP 500).
	CodeInternal = "internal"
)

// Error is the uniform wire error envelope, serialized as the whole body
// of every non-2xx response:
//
//	{"code":"queue_full","message":"service: job queue full","retry_after_ms":100}
//
// It implements error, so Dispatcher implementations return it directly
// and HTTP layers render it without translation. (The pre-versioning
// "error" mirror key was kept for one release after the /v1 cutover and
// has since been removed, together with the unversioned path aliases.)
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable account of what went wrong.
	Message string `json:"message"`
	// RetryAfterMS, when positive, tells the client how long to back off
	// before retrying (set on queue_full rejections).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// TraceID is the request's trace ID (the X-Relax-Trace-Id value), so a
	// failure report alone is enough to grep the fleet's logs. Stamped by
	// WriteError; empty on errors that never crossed the HTTP surface.
	TraceID string `json:"trace_id,omitempty"`
}

func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// HTTPStatus maps the envelope's code onto its HTTP status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeInvalidRequest:
		return http.StatusBadRequest
	case CodeUnknownJob:
		return http.StatusNotFound
	case CodePayloadTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeBackendDown:
		return http.StatusBadGateway
	case CodeDraining:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Errorf builds an envelope from a code and a format string.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WrapError coerces any error into an envelope: an *Error passes through
// unchanged, anything else becomes fallback-coded.
func WrapError(err error, fallbackCode string) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return &Error{Code: fallbackCode, Message: err.Error()}
}

// IsCode reports whether err is (or wraps) an *Error with the given code.
func IsCode(err error, code string) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == code
}

// codeForStatus is the client-side inverse of HTTPStatus, used when a
// server (or proxy) answers without a decodable envelope.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidRequest
	case http.StatusNotFound:
		return CodeUnknownJob
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeQueueFull
	case http.StatusBadGateway:
		return CodeBackendDown
	case http.StatusServiceUnavailable:
		return CodeDraining
	default:
		return CodeInternal
	}
}

// WriteJSON writes v as an indented JSON body with the given status.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteError renders err as the wire envelope with its mapped status,
// coercing non-envelope errors to fallbackCode. 429 responses also carry
// a standard Retry-After header (whole seconds, rounded up). When r's
// context carries a trace ID (r may be nil), the envelope echoes it —
// WrapError can return a shared *Error, so the stamp goes on a copy.
func WriteError(w http.ResponseWriter, r *http.Request, err error, fallbackCode string) {
	e := WrapError(err, fallbackCode)
	if r != nil {
		if id := trace.IDFromContext(r.Context()); id != "" && e.TraceID != id {
			stamped := *e
			stamped.TraceID = id
			e = &stamped
		}
	}
	if e.Code == CodeQueueFull && e.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (e.RetryAfterMS+999)/1000))
	}
	WriteJSON(w, e.HTTPStatus(), e)
}
