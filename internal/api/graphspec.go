package api

import "fmt"

// Graph models a job may request. These mirror the generator families the
// bench harness sweeps (internal/bench), so service jobs and offline
// benchmarks run on identically distributed inputs.
const (
	// ModelGNP is the Erdős–Rényi G(n, p) model (the default when empty).
	ModelGNP = "gnp"
	// ModelPowerLaw is the Chung–Lu power-law model.
	ModelPowerLaw = "powerlaw"
	// ModelGrid is a near-square grid (seedless and deterministic).
	ModelGrid = "grid"
)

// MaxGraphVertices and MaxGraphEdges bound the size of a graph a single
// job may ask a node to build — admission control for memory, not a
// correctness limit. Both must be checked: 4M vertices admits a gnp edge
// target up to n(n-1)/2 ≈ 8e12, whose generator-side edge shards would
// OOM the daemon long before the CSR builder's own guards fire.
const (
	MaxGraphVertices = 4_000_000
	MaxGraphEdges    = 40_000_000
)

// GraphSpec is the canonical description of a generated input graph: the
// generator class, its size, its shape parameters and its seed. It is the
// graph cache key — two jobs whose specs render to the same Key share one
// CSR build — and, behind a gateway, the consistent-hash routing key that
// keeps each backend's cache hot. Derived per-job inputs (priority
// permutations, sssp edge weights) are a function of the job's seed, not
// of the graph, so they are deliberately outside the key.
type GraphSpec struct {
	// Model selects the generator: gnp (default when empty), powerlaw, grid.
	Model string `json:"model,omitempty"`
	// N is the number of vertices (grid: rounded to the nearest factorable
	// rows×cols shape with exactly N vertices, falling back to a path).
	N int `json:"n"`
	// Edges is the target edge count for gnp and powerlaw (ignored by grid).
	Edges int64 `json:"edges,omitempty"`
	// Exponent is the power-law exponent (powerlaw only; 0 selects 2.5).
	Exponent float64 `json:"exponent,omitempty"`
	// Seed drives the randomized generators (ignored by grid).
	Seed uint64 `json:"seed,omitempty"`
}

// Normalized returns the spec with defaults made explicit, so equivalent
// specs render to one cache key.
func (s GraphSpec) Normalized() GraphSpec {
	if s.Model == "" {
		s.Model = ModelGNP
	}
	if s.Model == ModelPowerLaw && s.Exponent == 0 {
		s.Exponent = 2.5
	}
	if s.Model == ModelGrid {
		// Grid is deterministic: seed and edge target do not influence the
		// built graph and must not split the cache.
		s.Seed = 0
		s.Edges = 0
		s.Exponent = 0
	}
	if s.Model != ModelPowerLaw {
		s.Exponent = 0
	}
	return s
}

// Validate checks the spec against the generator families' requirements.
func (s GraphSpec) Validate() error {
	n := s.Normalized()
	switch n.Model {
	case ModelGNP, ModelPowerLaw, ModelGrid:
	default:
		return fmt.Errorf("unknown graph model %q (known: %s, %s, %s)", s.Model, ModelGNP, ModelPowerLaw, ModelGrid)
	}
	if n.N < 1 {
		return fmt.Errorf("graph must have at least 1 vertex, got %d", s.N)
	}
	if n.N > MaxGraphVertices {
		return fmt.Errorf("graph of %d vertices exceeds the per-job limit of %d", s.N, MaxGraphVertices)
	}
	if n.Model != ModelGrid && s.Edges < 0 {
		return fmt.Errorf("edge count must be non-negative, got %d", s.Edges)
	}
	if n.Model != ModelGrid && s.Edges > MaxGraphEdges {
		return fmt.Errorf("edge target %d exceeds the per-job limit of %d", s.Edges, MaxGraphEdges)
	}
	if n.Model == ModelPowerLaw && !(n.Exponent > 1) {
		return fmt.Errorf("power-law exponent must exceed 1, got %v", s.Exponent)
	}
	if maxEdges := int64(n.N) * int64(n.N-1) / 2; n.Model == ModelGNP && s.Edges > maxEdges {
		return fmt.Errorf("edge count %d exceeds the simple-graph maximum %d for %d vertices", s.Edges, maxEdges, s.N)
	}
	return nil
}

// Key renders the canonical cache/routing key, e.g.
// "gnp/n=100000/m=1000000/seed=7".
func (s GraphSpec) Key() string {
	n := s.Normalized()
	switch n.Model {
	case ModelGrid:
		return fmt.Sprintf("grid/n=%d", n.N)
	case ModelPowerLaw:
		return fmt.Sprintf("powerlaw/n=%d/m=%d/exp=%g/seed=%d", n.N, n.Edges, n.Exponent, n.Seed)
	default:
		return fmt.Sprintf("gnp/n=%d/m=%d/seed=%d", n.N, n.Edges, n.Seed)
	}
}
