package api

import "testing"

func TestGraphSpecValidate(t *testing.T) {
	good := []GraphSpec{
		{N: 10},
		{Model: ModelGNP, N: 100, Edges: 200, Seed: 5},
		{Model: ModelPowerLaw, N: 100, Edges: 300, Exponent: 2.5},
		{Model: ModelPowerLaw, N: 100, Edges: 300}, // exponent defaults
		{Model: ModelGrid, N: 100},
		{Model: ModelGrid, N: 7}, // prime: falls back to a path
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("%+v rejected: %v", s, err)
		}
	}
	bad := []GraphSpec{
		{},
		{N: -1},
		{Model: "hypercube", N: 10},
		{Model: ModelGNP, N: 10, Edges: -1},
		{Model: ModelGNP, N: 3, Edges: 4}, // beyond simple-graph max
		{Model: ModelPowerLaw, N: 10, Edges: 20, Exponent: 1},
		{N: MaxGraphVertices + 1},
		{N: 1000, Edges: MaxGraphEdges + 1},
		{Model: ModelPowerLaw, N: 1000, Edges: MaxGraphEdges + 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("%+v accepted", s)
		}
	}
}

// TestGraphSpecKeyCanonicalization: specs that build the same graph render
// the same key; specs that differ in any graph-determining field do not.
// The key doubles as the gateway's routing key, so canonicalization is
// also what keeps equivalent submissions on one backend.
func TestGraphSpecKeyCanonicalization(t *testing.T) {
	if (GraphSpec{N: 10, Edges: 20, Seed: 1}).Key() != (GraphSpec{Model: ModelGNP, N: 10, Edges: 20, Seed: 1}).Key() {
		t.Fatal("empty model and explicit gnp render different keys")
	}
	if (GraphSpec{Model: ModelPowerLaw, N: 10, Edges: 20}).Key() != (GraphSpec{Model: ModelPowerLaw, N: 10, Edges: 20, Exponent: 2.5}).Key() {
		t.Fatal("default exponent splits the powerlaw key")
	}
	// Grid ignores seed, edges and exponent by construction.
	if (GraphSpec{Model: ModelGrid, N: 100, Seed: 1, Edges: 5}).Key() != (GraphSpec{Model: ModelGrid, N: 100, Seed: 2}).Key() {
		t.Fatal("grid key depends on ignored fields")
	}
	distinct := []GraphSpec{
		{N: 10, Edges: 20, Seed: 1},
		{N: 10, Edges: 20, Seed: 2},
		{N: 10, Edges: 21, Seed: 1},
		{N: 11, Edges: 20, Seed: 1},
		{Model: ModelPowerLaw, N: 10, Edges: 20, Seed: 1},
		{Model: ModelPowerLaw, N: 10, Edges: 20, Seed: 1, Exponent: 3},
		{Model: ModelGrid, N: 10},
	}
	seen := map[string]GraphSpec{}
	for _, s := range distinct {
		key := s.Key()
		if prev, dup := seen[key]; dup {
			t.Fatalf("%+v and %+v share key %q", prev, s, key)
		}
		seen[key] = s
	}
}
