package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"relaxsched/internal/trace"
)

// maxJobSpecBytes bounds a submission body. A valid JobSpec is a few
// hundred bytes; the bound keeps one client from growing the daemon's
// heap with an endless token.
const maxJobSpecBytes = 1 << 16

// NewHandler serves any Dispatcher over the versioned HTTP wire API:
//
//	POST /v1/jobs            submit a job (JobSpec JSON) -> 202 + JobStatus
//	GET  /v1/jobs/{id}       poll a job's status/result  -> 200 + JobStatus
//	GET  /v1/jobs/{id}/trace job lifecycle span timeline -> 200 + JobTrace
//	GET  /v1/workloads       list the registry           -> 200 + []WorkloadInfo
//	GET  /v1/metrics         service counters snapshot   -> 200 + Metrics
//	POST /v1/drain           stop admission              -> 202
//	GET  /healthz            liveness ("ok"/"draining")
//
// The pre-versioning unversioned paths (/jobs, /jobs/{id}, /workloads,
// /metrics) were kept as deprecated aliases for one release after the /v1
// cutover and are gone; they now return 404. Only /healthz stays
// unversioned.
//
// Every request runs under a trace ID: taken from the X-Relax-Trace-Id
// header when the caller sent one, minted here otherwise, echoed in the
// response's same header, carried in the request context (so dispatchers
// and their log lines see it), and stamped into every error envelope.
//
// /healthz distinguishes draining from dead: a draining service still
// answers 200 with body {"status":"draining"} — it is alive and finishing
// accepted work, just refusing new submissions. Probes that should stop
// routing to it branch on the body, not the status code.
//
// Every non-2xx response body is the Error envelope: 400 invalid_request,
// 404 unknown_job, 413 payload_too_large, 429 queue_full (with
// retry_after_ms), 502 backend_down, 503 draining.
func NewHandler(d Dispatcher) http.Handler {
	mux := http.NewServeMux()
	handle := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+path, h)
	}
	handle("POST", "/jobs", func(w http.ResponseWriter, r *http.Request) {
		spec := DefaultJobSpec()
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				WriteError(w, r, Errorf(CodePayloadTooLarge, "job spec exceeds %d bytes", tooBig.Limit), CodePayloadTooLarge)
				return
			}
			WriteError(w, r, Errorf(CodeInvalidRequest, "decoding job spec: %v", err), CodeInvalidRequest)
			return
		}
		st, err := d.Submit(r.Context(), spec)
		if err != nil {
			WriteError(w, r, err, CodeInvalidRequest)
			return
		}
		WriteJSON(w, http.StatusAccepted, st)
	})
	handle("GET", "/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		st, err := d.Status(r.Context(), id)
		if err != nil {
			WriteError(w, r, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusOK, st)
	})
	handle("GET", "/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		tr, err := d.JobTrace(r.Context(), id)
		if err != nil {
			WriteError(w, r, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusOK, tr)
	})
	handle("GET", "/workloads", func(w http.ResponseWriter, r *http.Request) {
		infos, err := d.Workloads(r.Context())
		if err != nil {
			WriteError(w, r, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusOK, infos)
	})
	handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		m, err := d.Metrics(r.Context())
		if err != nil {
			WriteError(w, r, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusOK, m)
	})
	handle("POST", "/drain", func(w http.ResponseWriter, r *http.Request) {
		if err := d.Drain(r.Context()); err != nil {
			WriteError(w, r, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		m, err := d.Metrics(r.Context())
		switch {
		case err != nil:
			WriteError(w, r, err, CodeInternal)
		case m.Draining:
			WriteJSON(w, http.StatusOK, map[string]string{"status": StatusDraining})
		default:
			WriteJSON(w, http.StatusOK, map[string]string{"status": StatusOK})
		}
	})
	return WithTrace(mux)
}

// Health status strings served by /healthz. A gateway's /healthz uses the
// same vocabulary; see its Handler for the no-backends 503 case.
const (
	StatusOK       = "ok"
	StatusDraining = "draining"
)

// jobID parses the {id} path value, writing the invalid_request envelope
// itself when the value is not an integer.
func jobID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		WriteError(w, r, Errorf(CodeInvalidRequest, "invalid job id %q", r.PathValue("id")), CodeInvalidRequest)
		return 0, false
	}
	return id, true
}

// WithTrace wraps h so every request runs under a trace ID: the inbound
// X-Relax-Trace-Id header (sanitized) or a freshly minted ID, placed in
// the request context and echoed on the response header before h runs.
// NewHandler applies it already; wrapper muxes that add sibling routes
// beside a NewHandler (the prom exposition, a gateway's overrides) apply
// it themselves so those routes trace identically.
func WithTrace(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if trace.IDFromContext(r.Context()) != "" {
			// Already traced by an enclosing WithTrace; don't re-mint.
			h.ServeHTTP(w, r)
			return
		}
		id := trace.SanitizeID(r.Header.Get(trace.Header))
		w.Header().Set(trace.Header, id)
		h.ServeHTTP(w, r.WithContext(trace.ContextWithID(r.Context(), id)))
	})
}
