package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// maxJobSpecBytes bounds a submission body. A valid JobSpec is a few
// hundred bytes; the bound keeps one client from growing the daemon's
// heap with an endless token.
const maxJobSpecBytes = 1 << 16

// NewHandler serves any Dispatcher over the versioned HTTP wire API:
//
//	POST /v1/jobs         submit a job (JobSpec JSON) -> 202 + JobStatus
//	GET  /v1/jobs/{id}    poll a job's status/result  -> 200 + JobStatus
//	GET  /v1/workloads    list the registry           -> 200 + []WorkloadInfo
//	GET  /v1/metrics      service counters snapshot   -> 200 + Metrics
//	POST /v1/drain        stop admission              -> 202
//	GET  /healthz         liveness ("ok"/"draining")
//
// The pre-versioning unversioned paths (/jobs, /jobs/{id}, /workloads,
// /metrics) were kept as deprecated aliases for one release after the /v1
// cutover and are gone; they now return 404. Only /healthz stays
// unversioned.
//
// Every non-2xx response body is the Error envelope: 400 invalid_request,
// 404 unknown_job, 413 payload_too_large, 429 queue_full (with
// retry_after_ms), 502 backend_down, 503 draining.
func NewHandler(d Dispatcher) http.Handler {
	mux := http.NewServeMux()
	handle := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+path, h)
	}
	handle("POST", "/jobs", func(w http.ResponseWriter, r *http.Request) {
		spec := DefaultJobSpec()
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				WriteError(w, Errorf(CodePayloadTooLarge, "job spec exceeds %d bytes", tooBig.Limit), CodePayloadTooLarge)
				return
			}
			WriteError(w, Errorf(CodeInvalidRequest, "decoding job spec: %v", err), CodeInvalidRequest)
			return
		}
		st, err := d.Submit(r.Context(), spec)
		if err != nil {
			WriteError(w, err, CodeInvalidRequest)
			return
		}
		WriteJSON(w, http.StatusAccepted, st)
	})
	handle("GET", "/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			WriteError(w, Errorf(CodeInvalidRequest, "invalid job id %q", r.PathValue("id")), CodeInvalidRequest)
			return
		}
		st, err := d.Status(r.Context(), id)
		if err != nil {
			WriteError(w, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusOK, st)
	})
	handle("GET", "/workloads", func(w http.ResponseWriter, r *http.Request) {
		infos, err := d.Workloads(r.Context())
		if err != nil {
			WriteError(w, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusOK, infos)
	})
	handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		m, err := d.Metrics(r.Context())
		if err != nil {
			WriteError(w, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusOK, m)
	})
	handle("POST", "/drain", func(w http.ResponseWriter, r *http.Request) {
		if err := d.Drain(r.Context()); err != nil {
			WriteError(w, err, CodeInternal)
			return
		}
		WriteJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		m, err := d.Metrics(r.Context())
		switch {
		case err != nil:
			WriteError(w, err, CodeInternal)
		case m.Draining:
			WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		default:
			WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}
	})
	return mux
}
