package api

import "time"

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// StateQueued means the job sits in a scheduler-backed pending queue.
	StateQueued JobState = "queued"
	// StateRunning means a worker is executing the job.
	StateRunning JobState = "running"
	// StateDone means the job finished and (if requested) verified.
	StateDone JobState = "done"
	// StateFailed means execution or verification returned an error.
	StateFailed JobState = "failed"
	// StateCanceled means the job was aborted by a forced shutdown before
	// it could finish.
	StateCanceled JobState = "canceled"
)

// JobSpec is a job submission: which workload to run, in which execution
// mode, on which (generated) graph, at which queue priority. The field set
// deliberately mirrors cmd/relaxrun's flags — a job is one relaxrun
// invocation made resident.
type JobSpec struct {
	// Workload is a registry name (mis, coloring, matching, sssp, kcore,
	// pagerank).
	Workload string `json:"workload"`
	// Mode is the execution mode: sequential, relaxed, concurrent, exact.
	Mode string `json:"mode"`
	// Graph describes the input graph; it is also the graph-cache key and
	// the gateway's consistent-hash routing key.
	Graph GraphSpec `json:"graph"`
	// Priority is the job's queue priority; lower values are scheduled
	// sooner, exactly like a task priority in internal/sched.
	Priority uint32 `json:"priority"`
	// K is the relaxation factor for mode "relaxed" (default 16).
	K int `json:"k,omitempty"`
	// Threads is the worker count for modes "concurrent"/"exact" (default
	// 2).
	Threads int `json:"threads,omitempty"`
	// Batch is the executor batch size (0 = executor default).
	Batch int `json:"batch,omitempty"`
	// Seed drives the job's derived inputs (permutations, weights) and
	// relaxed schedulers.
	Seed uint64 `json:"seed,omitempty"`
	// Delta is the sssp Δ-stepping bucket width (0 or 1 = exact distances).
	Delta uint32 `json:"delta,omitempty"`
	// Damping is the pagerank damping factor (0 selects 0.85).
	Damping float64 `json:"damping,omitempty"`
	// Tolerance is the pagerank target L1 error (0 selects 1e-9).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Source is the sssp source vertex (-1 = first non-isolated vertex).
	Source int `json:"source"`
	// Verify asks the worker to check the output against the workload's
	// exactness oracle after execution (the default for submissions).
	Verify bool `json:"verify"`
}

// DefaultJobSpec returns the spec template HTTP submissions are decoded
// over, making the documented defaults explicit.
func DefaultJobSpec() JobSpec {
	return JobSpec{
		Mode:    "sequential",
		K:       16,
		Threads: 2,
		Source:  -1,
		Verify:  true,
	}
}

// JobResult is the outcome of a finished job.
type JobResult struct {
	// Summary is the workload's one-line output account ("MIS size: 123").
	Summary string `json:"summary"`
	// Verified reports whether the output passed the workload's exactness
	// oracle (false when the submission asked not to verify).
	Verified bool `json:"verified"`
	// Pops, StalePops and Wasted are the execution's work accounting (see
	// workload.Cost); WastedWorkLabel names what Wasted counts.
	Pops            int64  `json:"pops"`
	StalePops       int64  `json:"stale_pops"`
	Wasted          int64  `json:"wasted"`
	WastedWorkLabel string `json:"wasted_work_label"`
	// ExecNanos is the wall-clock execution time (excluding queueing and
	// graph build/cache lookup).
	ExecNanos int64 `json:"exec_ns"`
	// GraphCacheHit reports whether the input graph came from the cache.
	GraphCacheHit bool `json:"graph_cache_hit"`
	// Steals, GlobalFallbacks and EmptyPolls are the concurrent scheduler's
	// contention accounting for this job (zero outside mode "concurrent"):
	// pops served from another worker's lane, pops that fell through to a
	// global scan, and polls that found every probed lane empty.
	Steals          int64 `json:"steals,omitempty"`
	GlobalFallbacks int64 `json:"global_fallbacks,omitempty"`
	EmptyPolls      int64 `json:"empty_polls,omitempty"`
}

// JobStatus is the externally visible state of a job, returned by the
// submit and status endpoints. Behind a gateway the ID carries the owning
// backend in its low bits; clients must treat it as opaque.
type JobStatus struct {
	ID    int64    `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set for done jobs.
	Result *JobResult `json:"result,omitempty"`
	// QueueRank is the rank (1 = true minimum) this job had among all
	// pending jobs when the scheduler dispensed it — its observed
	// scheduling rank error is QueueRank-1. Zero while still queued.
	QueueRank int `json:"queue_rank,omitempty"`
	// QueueNanos is the time the job spent queued before dispatch.
	QueueNanos int64 `json:"queue_ns,omitempty"`
	// SubmittedAt is the submission wall-clock time.
	SubmittedAt time.Time `json:"submitted_at"`
	// Recovered reports that this job was replayed from the write-ahead
	// log after a restart rather than submitted to this process. A
	// recovered job that finishes has no Result from before the crash.
	Recovered bool `json:"recovered,omitempty"`
}

// WorkloadInfo is one row of the workload-listing endpoint, taken straight
// from the registry descriptor.
type WorkloadInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Brief      string `json:"brief"`
	Input      string `json:"input"`
	WastedWork string `json:"wasted_work"`
}

// LatencySummary summarizes a latency distribution in milliseconds. Count,
// mean and max are exact over the service lifetime; the percentiles are
// computed over a sliding window of the most recent samples. In a
// gateway's cluster aggregate the percentiles are count-weighted means of
// the per-backend percentiles — an approximation, flagged in the docs.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// LatencyHistogram is a latency distribution with logarithmic
// (power-of-two) buckets, the wire form behind the Prometheus histogram
// exposition. Unlike LatencySummary's ring-windowed percentiles it is
// exact and unwindowed, so two scrapes subtract into the distribution of
// any interval, and cluster aggregation is a lossless bucket-wise sum.
type LatencyHistogram struct {
	// BoundsMs are the inclusive upper bucket bounds in milliseconds,
	// strictly increasing. Every node of one release emits the same
	// bounds, which is what lets the gateway merge bucket-wise.
	BoundsMs []float64 `json:"bounds_ms"`
	// Counts has len(BoundsMs)+1 entries: Counts[i] is the number of
	// observations in (BoundsMs[i-1], BoundsMs[i]]; the final entry is the
	// +Inf overflow bucket.
	Counts []int64 `json:"counts"`
	// SumMs is the sum of all observations in milliseconds.
	SumMs float64 `json:"sum_ms"`
}

// TraceSpan is one phase of a job's recorded lifecycle. Offsets are
// nanoseconds since the owning trace's StartedAt, measured on the
// recording process's monotonic clock. EndNanos is zero while the phase
// is still running; terminal marker spans have EndNanos == StartNanos. In
// a gateway-composed trace the gateway's own hop span is rebased against
// the backend's clock and may start at a negative offset.
type TraceSpan struct {
	Name       string `json:"name"`
	StartNanos int64  `json:"start_ns"`
	EndNanos   int64  `json:"end_ns,omitempty"`
	// Detail carries phase-specific context: the rank error observed at
	// dispatch, the failure message, the backend a gateway routed to.
	Detail string `json:"detail,omitempty"`
}

// JobTrace is the GET /v1/jobs/{id}/trace payload: one job's span
// timeline (accepted → wal-synced → queued → dispatched →
// graph-build/cache-hit → executing → terminal). Through a gateway the
// spans additionally start with the gateway's own submit hop, and the
// TraceID is the one minted at first touch and propagated via
// X-Relax-Trace-Id — the same ID on the job's log lines fleet-wide.
// Traces live in a bounded ring; old jobs eventually answer 404.
type JobTrace struct {
	ID      int64  `json:"id"`
	TraceID string `json:"trace_id"`
	// StartedAt anchors offset zero in wall-clock time (the recording
	// node's acceptance time).
	StartedAt time.Time   `json:"started_at"`
	Spans     []TraceSpan `json:"spans"`
}

// RankErrorStats summarizes observed per-job scheduling rank error — the
// number of pending jobs that were strictly better (lower priority value)
// than the one the queue dispensed, the paper's rank error measured at job
// granularity. An exact job scheduler reports all zeros. At the gateway
// the same statistic is measured against the cluster-wide pending set.
type RankErrorStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
}

// JobCounts breaks the jobs a service has seen down by outcome. Queued
// and Running are instantaneous gauges; the rest are lifetime counters.
type JobCounts struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Rejected counts submissions refused by admission control (queue full
	// or draining); they never became jobs.
	Rejected int64 `json:"rejected"`
}

// CacheStats is a snapshot of a graph cache's counters.
type CacheStats struct {
	// Entries and Capacity describe current occupancy.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits counts lookups served by an existing entry — including waiters
	// that piggybacked on a build still in flight; Misses counts lookups
	// that had to initiate a CSR build themselves.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries displaced by the LRU bound.
	Evictions int64 `json:"evictions"`
}

// CostTotals accumulates the work accounting of every finished job.
type CostTotals struct {
	Pops      int64 `json:"pops"`
	StalePops int64 `json:"stale_pops"`
	// Wasted sums each workload's headline wasted-work metric (extra
	// iterations, stale pops, re-evaluations — see the registry's
	// WastedWork labels).
	Wasted int64 `json:"wasted"`
	// Steals, GlobalFallbacks and EmptyPolls sum the concurrent scheduler's
	// contention accounting (multiqueue.Stats) over every finished
	// concurrent-mode job.
	Steals          int64 `json:"steals"`
	GlobalFallbacks int64 `json:"global_fallbacks"`
	EmptyPolls      int64 `json:"empty_polls"`
}

// ControllerStats reports the adaptive relaxation controller's state
// (internal/control) when the node runs -jobsched auto; nodes on a static
// scheduler omit the section entirely. In a cluster aggregate the counters
// are sums, K and Batch are means across the reporting backends (rounded),
// and the SLO fields are zeroed unless every reporting backend agrees —
// the same convention as the "mixed" JobSched label.
type ControllerStats struct {
	// Enabled reports that at least one controller contributed to this
	// snapshot.
	Enabled bool `json:"enabled"`
	// K is the job-queue relaxation currently in force; Batch is the
	// executor batch-size target in force.
	K     int `json:"k"`
	Batch int `json:"batch"`
	// RankSLO and P99SLOMs echo the operator's targets.
	RankSLO  float64 `json:"rank_slo"`
	P99SLOMs float64 `json:"p99_slo_ms"`
	// Steps counts control windows evaluated; Widened and Tightened count
	// the windows that moved a knob.
	Steps     int64 `json:"steps"`
	Widened   int64 `json:"widened"`
	Tightened int64 `json:"tightened"`
	// RankViolations and P99Violations count control windows whose sample
	// breached the respective SLO (even when the knobs were already pinned
	// at a bound).
	RankViolations int64 `json:"rank_violations"`
	P99Violations  int64 `json:"p99_violations"`
	// LastAdjustment describes the most recent widen or tighten (omitted
	// in cluster aggregates, where there is no single "last").
	LastAdjustment string `json:"last_adjustment,omitempty"`
}

// WALStats reports the write-ahead job log's counters when the node runs
// with -wal-dir; nodes without a log omit the section. In a cluster
// aggregate the counters are sums over the reporting backends and
// TornTail is true if any backend recovered past a torn tail.
type WALStats struct {
	// Appends counts records written (accepted jobs plus terminal marks);
	// Fsyncs counts file syncs issued — group commit keeps Fsyncs ≤
	// Appends, and the gap is the batching win.
	Appends int64 `json:"appends"`
	Fsyncs  int64 `json:"fsyncs"`
	// ReplayedJobs counts accepted-but-unfinished jobs re-enqueued from
	// the log at the last boot.
	ReplayedJobs int64 `json:"replayed_jobs"`
	// Segments is the current number of live log segments; Compacted
	// counts segments deleted since boot; Bytes counts bytes appended
	// since boot.
	Segments  int   `json:"segments"`
	Compacted int64 `json:"compacted"`
	Bytes     int64 `json:"bytes"`
	// TornTail reports that the last boot's replay stopped at a torn
	// record at the end of the log (expected after a crash mid-append;
	// the torn record was never acknowledged).
	TornTail bool `json:"torn_tail,omitempty"`
}

// Metrics is the GET /v1/metrics snapshot of one node. A gateway serves
// the same shape as the cluster aggregate (see ClusterMetrics).
type Metrics struct {
	// UptimeSeconds is the time since the manager (or gateway) started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// JobSched and JobSchedK identify the scheduler the pending-job queue
	// runs on ("mixed" in a cluster aggregate of heterogeneous backends);
	// Workers and QueueCapacity are the pool size and admission bound
	// (cluster: sums).
	JobSched      string `json:"job_sched"`
	JobSchedK     int    `json:"job_sched_k"`
	Workers       int    `json:"workers"`
	QueueCapacity int    `json:"queue_capacity"`
	// Draining reports whether the service has stopped accepting jobs.
	Draining bool `json:"draining"`

	Jobs  JobCounts  `json:"jobs"`
	Cache CacheStats `json:"cache"`
	Cost  CostTotals `json:"cost"`
	// RankError is the job queue's observed relaxation. On a gateway this
	// is the *global* rank error: each job's rank among every job pending
	// anywhere in the cluster, measured at the coordination layer.
	RankError RankErrorStats `json:"rank_error"`
	// QueueLatency measures submit→dispatch; ExecLatency measures the
	// execution itself (excluding queueing and graph build).
	QueueLatency LatencySummary `json:"queue_latency"`
	ExecLatency  LatencySummary `json:"exec_latency"`
	// QueueLatencyHist and ExecLatencyHist are the same two distributions
	// as unwindowed log-bucketed histograms — exact counts over the service
	// lifetime, from which a percentile is derivable at any scrape window
	// (unlike the ring-windowed percentiles above). Present since the
	// observability release; older nodes omit them.
	QueueLatencyHist *LatencyHistogram `json:"queue_latency_hist,omitempty"`
	ExecLatencyHist  *LatencyHistogram `json:"exec_latency_hist,omitempty"`
	// Controller is the adaptive relaxation controller's state, present
	// only under -jobsched auto (cluster: aggregated over the backends
	// that run one).
	Controller *ControllerStats `json:"controller,omitempty"`
	// WAL is the write-ahead job log's state, present only with -wal-dir
	// (cluster: aggregated over the backends that run one).
	WAL *WALStats `json:"wal,omitempty"`
}

// BackendMetrics is one backend's row in a gateway's cluster snapshot.
type BackendMetrics struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Error records why the backend's metrics could not be fetched.
	Error string `json:"error,omitempty"`
	// Metrics is the backend's own snapshot (nil when unreachable).
	Metrics *Metrics `json:"metrics,omitempty"`
}

// ClusterMetrics is the gateway's GET /v1/metrics payload: a cluster-wide
// aggregate in the exact wire shape of a single node's Metrics (so
// single-node clients keep working unchanged), plus the per-backend
// breakdown. The embedded RankError is the gateway-measured global rank
// error — the MultiQueue construction's quality metric lifted to cluster
// level, with per-node rank errors still visible under Backends.
type ClusterMetrics struct {
	Metrics
	// HealthyBackends counts backends whose last health check passed.
	HealthyBackends int `json:"healthy_backends"`
	// Backends lists every configured backend in routing order.
	Backends []BackendMetrics `json:"backends"`
}
