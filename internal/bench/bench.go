// Package bench is the concurrent benchmark harness behind the paper's
// Figure 2: it measures the wall-clock time of workloads from the
// internal/workload registry over G(n, p) random graphs (and power-law and
// grid instances), comparing
//
//   - the relaxed framework on a concurrent MultiQueue (the paper's
//     contribution),
//   - the exact framework on a fetch-and-add FIFO with the wait-on-
//     predecessor backoff (the paper's exact-scheduler baseline), and
//   - the optimized sequential baseline (the speedup denominator),
//
// across a sweep of thread counts. The paper runs its three classes at
// 10^8–10^10 edges on a 4-socket Xeon; this harness keeps the same class
// shapes (sparse, small dense, large dense — i.e. the same average-degree
// regimes) at sizes that fit a single development machine, which preserves
// the qualitative comparison the figure makes.
//
// The harness is workload-agnostic: every algorithm — static-framework (mis,
// coloring, matching) and dynamic-priority (sssp, kcore, pagerank) alike —
// is dispatched through its registry descriptor, so panels, scaling sweeps,
// the JSON trajectory and the regression gate gain a new workload the moment
// it registers itself.
package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/stats"
	"relaxsched/internal/workload"
)

// Graph models selectable per class.
const (
	// ModelGNP is the Erdős–Rényi G(n, p) model of Figure 2 (the default).
	ModelGNP = "gnp"
	// ModelPowerLaw is the Chung–Lu power-law model: heavy-tailed degrees
	// with a few very high-degree hubs, the degree profile of web/social
	// graphs and a harsher dependency structure for MIS and coloring.
	ModelPowerLaw = "powerlaw"
	// ModelGrid is a square grid — the road-network-like topology that is
	// the classic Δ-stepping benchmark for the shortest-path workload: long
	// shortest-path chains instead of the logarithmic diameter of G(n, p).
	ModelGrid = "grid"
)

// Class describes one of Figure 2's graph classes.
type Class struct {
	// Name identifies the class ("sparse", "smalldense", "largedense", ...).
	Name string
	// Vertices and Edges give the scaled-down instance size. The ratio
	// Edges/Vertices (the average degree) is what distinguishes the classes.
	Vertices int
	Edges    int64
	// Model selects the generator: ModelGNP (default when empty) or
	// ModelPowerLaw.
	Model string
	// Exponent is the power-law exponent for ModelPowerLaw (default 2.5).
	Exponent float64
}

// AverageDegree returns 2*Edges/Vertices.
func (c Class) AverageDegree() float64 {
	if c.Vertices == 0 {
		return 0
	}
	return 2 * float64(c.Edges) / float64(c.Vertices)
}

// DefaultClasses returns scaled-down versions of the paper's three classes.
// The paper's sparse class has average degree ~20, the small dense class
// ~2000, and the large dense class ~2000 with 10x more vertices; the scaled
// classes keep the sparse/dense distinction (node-dequeue-bound versus
// edge-traversal-bound) while remaining runnable on a laptop.
func DefaultClasses() []Class {
	return []Class{
		{Name: "sparse", Vertices: 200_000, Edges: 2_000_000},
		{Name: "smalldense", Vertices: 20_000, Edges: 2_000_000},
		{Name: "largedense", Vertices: 60_000, Edges: 6_000_000},
	}
}

// SweepClasses returns the classes tracked by the worker-scaling sweep
// behind BENCH_concurrent.json: the 100k-vertex G(n,p) instance the sweep
// has always measured, a million-vertex G(n,p) instance (the large-graph
// throughput track), a power-law instance exercising hub-heavy dependency
// structure, and a 500×500 grid — the dynamic-workload track, whose long
// shortest-path chains are what Δ-stepping bucketing trades against.
func SweepClasses() []Class {
	return []Class{
		{Name: "hundredk", Vertices: 100_000, Edges: 1_000_000},
		{Name: "million", Vertices: 1_000_000, Edges: 10_000_000},
		{Name: "powerlaw", Vertices: 200_000, Edges: 2_000_000, Model: ModelPowerLaw, Exponent: 2.5},
		{Name: "grid", Vertices: 250_000, Edges: 499_000, Model: ModelGrid},
	}
}

// ClassByName returns the named class from DefaultClasses or SweepClasses.
func ClassByName(name string) (Class, error) {
	for _, c := range append(DefaultClasses(), SweepClasses()...) {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("bench: unknown graph class %q", name)
}

// Scheduler names used in measurements.
const (
	SchedulerSequential = "sequential"
	SchedulerRelaxed    = "relaxed-multiqueue"
	SchedulerExact      = "exact-faa"
)

// Algorithm selects which registered workload a panel benchmarks. Values are
// registry names (see internal/workload); the paper's Figure 2 uses MIS, the
// other workloads are the "more general graph processing" extension the
// paper's future-work section calls for.
type Algorithm string

// The registered workloads, named for convenience.
const (
	AlgorithmMIS      Algorithm = "mis"
	AlgorithmColoring Algorithm = "coloring"
	AlgorithmMatching Algorithm = "matching"
	AlgorithmSSSP     Algorithm = "sssp"
	AlgorithmKCore    Algorithm = "kcore"
	AlgorithmPageRank Algorithm = "pagerank"
)

// Dynamic reports whether the algorithm is a dynamic-priority workload
// (mutable priorities, runtime-generated tasks) rather than a static
// framework algorithm.
func (a Algorithm) Dynamic() bool {
	d, err := workload.Lookup(string(a))
	return err == nil && d.Kind == workload.Dynamic
}

// ParseAlgorithm validates an algorithm name against the workload registry;
// the empty string selects the default (MIS, as in Figure 2).
func ParseAlgorithm(name string) (Algorithm, error) {
	if name == "" {
		return AlgorithmMIS, nil
	}
	if _, err := workload.Lookup(name); err != nil {
		return "", fmt.Errorf("bench: unknown algorithm %q", name)
	}
	return Algorithm(name), nil
}

// Config describes one Figure 2 panel (one graph class, a thread sweep).
type Config struct {
	Class Class
	// Algorithm selects the workload (default AlgorithmMIS, as in Figure 2).
	Algorithm Algorithm
	// Threads is the list of worker counts to sweep. Defaults to powers of
	// two up to GOMAXPROCS.
	Threads []int
	// Trials per data point. Default 3.
	Trials int
	// QueueFactor is the number of MultiQueue sub-queues per thread
	// (default 4, as in the paper).
	QueueFactor int
	// BatchSize is the executor batch size (0 selects the executor default,
	// 1 the single-item discipline).
	BatchSize int
	// Delta is the Δ-stepping bucket width for AlgorithmSSSP (0 or 1 keep
	// exact distance priorities); other algorithms ignore it.
	Delta uint32
	// Tolerance is the target L1 error for AlgorithmPageRank (0 selects the
	// workload default 1e-9); other algorithms ignore it.
	Tolerance float64
	// Seed makes graph generation and permutations reproducible.
	Seed uint64
	// Verify makes every parallel run check its output against the
	// sequential reference. It is on by default in tests and off for large
	// timing runs only if explicitly disabled.
	Verify bool
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgorithmMIS
	}
	if len(c.Threads) == 0 {
		c.Threads = DefaultThreadSweep()
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.QueueFactor <= 0 {
		c.QueueFactor = DefaultQueueFactor
	}
	return c
}

// params maps a panel config onto the registry's workload parameters.
func (c Config) params() workload.Params {
	return workload.Params{
		Seed:      c.Seed,
		Delta:     c.Delta,
		Tolerance: c.Tolerance,
		Source:    -1, // sssp: first non-isolated vertex
	}
}

// DefaultThreadSweep returns 1, 2, 4, ... up to GOMAXPROCS.
func DefaultThreadSweep() []int {
	maxProcs := runtime.GOMAXPROCS(0)
	threads := []int{1}
	for t := 2; t <= maxProcs; t *= 2 {
		threads = append(threads, t)
	}
	if last := threads[len(threads)-1]; last != maxProcs {
		threads = append(threads, maxProcs)
	}
	return threads
}

// Measurement is one data point of a Figure 2 panel.
type Measurement struct {
	Scheduler string
	Threads   int
	// Time summarizes wall-clock seconds across trials.
	Time stats.Summary
	// Speedup is the ratio of the sequential baseline's mean time to this
	// measurement's mean time.
	Speedup float64
	// ExtraIterations summarizes the workload's wasted-work metric per trial
	// (see the workload's Descriptor.WastedWork label; zero for the
	// sequential baseline).
	ExtraIterations stats.Summary
	// EmptyPolls summarizes scheduler polls that found nothing per trial.
	EmptyPolls stats.Summary
}

// Report is the outcome of one Figure 2 panel.
type Report struct {
	Class        Class
	Sequential   Measurement
	Measurements []Measurement
}

// buildPanel generates the class's input graph, binds the workload through
// the registry, and times the sequential baseline — the setup shared by Run
// (Figure 2 panels) and RunScaling (the worker-scaling sweep), so numbers
// from the two harnesses stay comparable by construction.
func buildPanel(class Class, alg Algorithm, trials int, seed uint64, p workload.Params) (workload.Instance, stats.Summary, workload.Output, error) {
	r := rng.New(seed ^ 0xbe9cbe9cbe9cbe9c)
	g, err := generateGraph(class, r)
	if err != nil {
		return nil, stats.Summary{}, nil, err
	}
	d, err := workload.Lookup(string(alg))
	if err != nil {
		return nil, stats.Summary{}, nil, fmt.Errorf("bench: unknown algorithm %q", alg)
	}
	inst, err := d.New(g, p)
	if err != nil {
		return nil, stats.Summary{}, nil, err
	}

	var seqTimes []float64
	var reference workload.Output
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		reference = inst.RunSequential()
		seqTimes = append(seqTimes, time.Since(start).Seconds())
	}
	return inst, stats.Summarize(seqTimes), reference, nil
}

// generateGraph builds a class's input graph. The paper generates each
// input graph with all available threads regardless of the thread count
// under test; the parallel generators mirror that and emit CSR shards
// directly.
func generateGraph(class Class, r *rng.Rand) (*graph.Graph, error) {
	n := class.Vertices
	var g *graph.Graph
	var err error
	switch class.Model {
	case "", ModelGNP:
		p := float64(2*class.Edges) / (float64(n) * float64(n-1))
		g, err = graph.ParallelGNP(n, p, runtime.GOMAXPROCS(0), r)
	case ModelPowerLaw:
		exponent := class.Exponent
		if exponent == 0 {
			exponent = 2.5
		}
		avgDeg := 2 * float64(class.Edges) / float64(n)
		g, err = graph.PowerLaw(n, avgDeg, exponent, runtime.GOMAXPROCS(0), r)
	case ModelGrid:
		// Factor n as rows*cols with the most square shape available, so the
		// built graph has exactly the class's declared vertex count (falling
		// back to a 1×n path for primes).
		rows := int(math.Sqrt(float64(n)))
		for rows > 1 && n%rows != 0 {
			rows--
		}
		if rows < 1 {
			rows = 1
		}
		g = graph.Grid(rows, n/rows)
	default:
		err = fmt.Errorf("unknown graph model %q", class.Model)
	}
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s graph: %w", class.Name, err)
	}
	return g, nil
}

// Run executes one Figure 2 panel.
func Run(cfg Config) (Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: between trials the runner checks ctx
// and in-flight concurrent trials abort at their next batch boundary, so a
// canceled sweep returns promptly without orphaning worker goroutines.
func RunContext(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Class.Vertices <= 0 {
		return Report{}, fmt.Errorf("bench: class has no vertices")
	}
	inst, seqTime, reference, err := buildPanel(cfg.Class, cfg.Algorithm, cfg.Trials, cfg.Seed, cfg.params())
	if err != nil {
		return Report{}, err
	}

	report := Report{Class: cfg.Class}
	report.Sequential = Measurement{
		Scheduler: SchedulerSequential,
		Threads:   1,
		Time:      seqTime,
		Speedup:   1,
	}

	for _, threads := range cfg.Threads {
		if threads < 1 {
			return Report{}, fmt.Errorf("bench: invalid thread count %d", threads)
		}
		for _, name := range []string{SchedulerRelaxed, SchedulerExact} {
			variant, err := schedulerVariant(name, cfg.QueueFactor, cfg.Seed, inst.NumTasks())
			if err != nil {
				return Report{}, err
			}
			m, err := runParallel(ctx, inst, cfg.Trials, cfg.Verify, threads, cfg.BatchSize, reference, variant.policy,
				func(trial int) sched.Concurrent { return variant.factory(threads, trial) })
			if err != nil {
				return Report{}, fmt.Errorf("bench: %s run at %d threads: %w", name, threads, err)
			}
			m.Scheduler = name
			m.Speedup = report.Sequential.Time.Mean / m.Time.Mean
			report.Measurements = append(report.Measurements, m)
		}
	}
	return report, nil
}

// runParallel measures one (scheduler, workers, batch) data point: trials
// timed runs through the registry instance, each verified against the
// sequential reference output when asked. The bench trial runner honors
// ctx: it stops between trials on cancellation and passes ctx.Done() into
// the execution so an in-flight trial aborts at its next batch boundary.
func runParallel(ctx context.Context, inst workload.Instance, trials int, verify bool, workers, batch int, reference workload.Output, policy core.Policy, factory func(trial int) sched.Concurrent) (Measurement, error) {
	var times []float64
	var extras []float64
	var empties []float64
	for trial := 0; trial < trials; trial++ {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		start := time.Now()
		out, cost, err := inst.RunConcurrent(factory(trial), workload.ConcOptions{
			Workers:   workers,
			BatchSize: batch,
			Policy:    policy,
			Cancel:    ctx.Done(),
		})
		if err != nil {
			return Measurement{}, err
		}
		times = append(times, time.Since(start).Seconds())
		extras = append(extras, float64(cost.Wasted))
		empties = append(empties, float64(cost.EmptyPolls))
		if verify {
			if err := inst.Matches(reference, out); err != nil {
				return Measurement{}, err
			}
		}
	}
	return Measurement{
		Threads:         workers,
		Time:            stats.Summarize(times),
		ExtraIterations: stats.Summarize(extras),
		EmptyPolls:      stats.Summarize(empties),
	}, nil
}

// Format renders the report as an aligned text table, one row per
// (scheduler, threads) data point — the textual equivalent of one Figure 2
// panel.
func (rep Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class=%s |V|=%d |E|=%d avg-degree=%.1f\n",
		rep.Class.Name, rep.Class.Vertices, rep.Class.Edges, rep.Class.AverageDegree())
	fmt.Fprintf(&b, "%-20s %8s %12s %12s %10s %14s\n",
		"scheduler", "threads", "time-mean(s)", "time-min(s)", "speedup", "extra-iters")
	fmt.Fprintf(&b, "%-20s %8d %12.4f %12.4f %10.2f %14s\n",
		rep.Sequential.Scheduler, 1, rep.Sequential.Time.Mean, rep.Sequential.Time.Min, 1.0, "-")

	sorted := append([]Measurement(nil), rep.Measurements...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Scheduler != sorted[j].Scheduler {
			return sorted[i].Scheduler < sorted[j].Scheduler
		}
		return sorted[i].Threads < sorted[j].Threads
	})
	for _, m := range sorted {
		fmt.Fprintf(&b, "%-20s %8d %12.4f %12.4f %10.2f %14.1f\n",
			m.Scheduler, m.Threads, m.Time.Mean, m.Time.Min, m.Speedup, m.ExtraIterations.Mean)
	}
	return b.String()
}

// BestSpeedup returns the largest speedup achieved by the given scheduler in
// the report (0 if the scheduler has no measurements).
func (rep Report) BestSpeedup(scheduler string) float64 {
	best := 0.0
	for _, m := range rep.Measurements {
		if m.Scheduler == scheduler && m.Speedup > best {
			best = m.Speedup
		}
	}
	return best
}
