// Package bench is the concurrent benchmark harness behind the paper's
// Figure 2: it measures the wall-clock time of computing a greedy MIS over
// G(n, p) random graphs of three density classes, comparing
//
//   - the relaxed framework on a concurrent MultiQueue (the paper's
//     contribution),
//   - the exact framework on a fetch-and-add FIFO with the wait-on-
//     predecessor backoff (the paper's exact-scheduler baseline), and
//   - the optimized sequential greedy algorithm (the speedup baseline),
//
// across a sweep of thread counts. The paper runs the three classes at
// 10^8–10^10 edges on a 4-socket Xeon; this harness keeps the same class
// shapes (sparse, small dense, large dense — i.e. the same average-degree
// regimes) at sizes that fit a single development machine, which preserves
// the qualitative comparison the figure makes.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"relaxsched/internal/algos/coloring"
	"relaxsched/internal/algos/matching"
	"relaxsched/internal/algos/mis"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/stats"
)

// Graph models selectable per class.
const (
	// ModelGNP is the Erdős–Rényi G(n, p) model of Figure 2 (the default).
	ModelGNP = "gnp"
	// ModelPowerLaw is the Chung–Lu power-law model: heavy-tailed degrees
	// with a few very high-degree hubs, the degree profile of web/social
	// graphs and a harsher dependency structure for MIS and coloring.
	ModelPowerLaw = "powerlaw"
	// ModelGrid is a square grid — the road-network-like topology that is
	// the classic Δ-stepping benchmark for the shortest-path workload: long
	// shortest-path chains instead of the logarithmic diameter of G(n, p).
	ModelGrid = "grid"
)

// Class describes one of Figure 2's graph classes.
type Class struct {
	// Name identifies the class ("sparse", "smalldense", "largedense", ...).
	Name string
	// Vertices and Edges give the scaled-down instance size. The ratio
	// Edges/Vertices (the average degree) is what distinguishes the classes.
	Vertices int
	Edges    int64
	// Model selects the generator: ModelGNP (default when empty) or
	// ModelPowerLaw.
	Model string
	// Exponent is the power-law exponent for ModelPowerLaw (default 2.5).
	Exponent float64
}

// AverageDegree returns 2*Edges/Vertices.
func (c Class) AverageDegree() float64 {
	if c.Vertices == 0 {
		return 0
	}
	return 2 * float64(c.Edges) / float64(c.Vertices)
}

// DefaultClasses returns scaled-down versions of the paper's three classes.
// The paper's sparse class has average degree ~20, the small dense class
// ~2000, and the large dense class ~2000 with 10x more vertices; the scaled
// classes keep the sparse/dense distinction (node-dequeue-bound versus
// edge-traversal-bound) while remaining runnable on a laptop.
func DefaultClasses() []Class {
	return []Class{
		{Name: "sparse", Vertices: 200_000, Edges: 2_000_000},
		{Name: "smalldense", Vertices: 20_000, Edges: 2_000_000},
		{Name: "largedense", Vertices: 60_000, Edges: 6_000_000},
	}
}

// SweepClasses returns the classes tracked by the worker-scaling sweep
// behind BENCH_concurrent.json: the 100k-vertex G(n,p) instance the sweep
// has always measured, a million-vertex G(n,p) instance (the large-graph
// throughput track), a power-law instance exercising hub-heavy dependency
// structure, and a 500×500 grid — the dynamic-workload track, whose long
// shortest-path chains are what Δ-stepping bucketing trades against.
func SweepClasses() []Class {
	return []Class{
		{Name: "hundredk", Vertices: 100_000, Edges: 1_000_000},
		{Name: "million", Vertices: 1_000_000, Edges: 10_000_000},
		{Name: "powerlaw", Vertices: 200_000, Edges: 2_000_000, Model: ModelPowerLaw, Exponent: 2.5},
		{Name: "grid", Vertices: 250_000, Edges: 499_000, Model: ModelGrid},
	}
}

// ClassByName returns the named class from DefaultClasses or SweepClasses.
func ClassByName(name string) (Class, error) {
	for _, c := range append(DefaultClasses(), SweepClasses()...) {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("bench: unknown graph class %q", name)
}

// Scheduler names used in measurements.
const (
	SchedulerSequential = "sequential"
	SchedulerRelaxed    = "relaxed-multiqueue"
	SchedulerExact      = "exact-faa"
)

// Algorithm selects which framework algorithm a panel benchmarks. The paper's
// Figure 2 uses MIS; the other algorithms are provided as the "more general
// graph processing" extension the paper's future-work section calls for.
type Algorithm string

// Supported benchmark algorithms. The first three run on the static
// framework (core.RunConcurrent over a fixed priority permutation); sssp and
// kcore are dynamic-priority workloads driven by the dynamic engine
// (core.RunDynamicConcurrent), where wasted work appears as stale pops
// instead of failed deletes.
const (
	AlgorithmMIS      Algorithm = "mis"
	AlgorithmColoring Algorithm = "coloring"
	AlgorithmMatching Algorithm = "matching"
	AlgorithmSSSP     Algorithm = "sssp"
	AlgorithmKCore    Algorithm = "kcore"
)

// Dynamic reports whether the algorithm is a dynamic-priority workload
// (mutable priorities, runtime-generated tasks) rather than a static
// framework algorithm.
func (a Algorithm) Dynamic() bool {
	return a == AlgorithmSSSP || a == AlgorithmKCore
}

// ParseAlgorithm validates an algorithm name from user input; the empty
// string selects the default (MIS, as in Figure 2).
func ParseAlgorithm(name string) (Algorithm, error) {
	switch a := Algorithm(name); a {
	case "":
		return AlgorithmMIS, nil
	case AlgorithmMIS, AlgorithmColoring, AlgorithmMatching, AlgorithmSSSP, AlgorithmKCore:
		return a, nil
	default:
		return "", fmt.Errorf("bench: unknown algorithm %q", name)
	}
}

// Config describes one Figure 2 panel (one graph class, a thread sweep).
type Config struct {
	Class Class
	// Algorithm selects the workload (default AlgorithmMIS, as in Figure 2).
	Algorithm Algorithm
	// Threads is the list of worker counts to sweep. Defaults to powers of
	// two up to GOMAXPROCS.
	Threads []int
	// Trials per data point. Default 3.
	Trials int
	// QueueFactor is the number of MultiQueue sub-queues per thread
	// (default 4, as in the paper).
	QueueFactor int
	// BatchSize is the executor batch size (0 selects the executor default,
	// 1 the single-item discipline).
	BatchSize int
	// Delta is the Δ-stepping bucket width for AlgorithmSSSP (0 or 1 keep
	// exact distance priorities); other algorithms ignore it.
	Delta uint32
	// Seed makes graph generation and permutations reproducible.
	Seed uint64
	// Verify makes every parallel run check its output against the
	// sequential MIS. It is on by default in tests and off for large timing
	// runs only if explicitly disabled.
	Verify bool
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgorithmMIS
	}
	if len(c.Threads) == 0 {
		c.Threads = DefaultThreadSweep()
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.QueueFactor <= 0 {
		c.QueueFactor = multiqueue.DefaultQueueFactor
	}
	return c
}

// DefaultThreadSweep returns 1, 2, 4, ... up to GOMAXPROCS.
func DefaultThreadSweep() []int {
	maxProcs := runtime.GOMAXPROCS(0)
	threads := []int{1}
	for t := 2; t <= maxProcs; t *= 2 {
		threads = append(threads, t)
	}
	if last := threads[len(threads)-1]; last != maxProcs {
		threads = append(threads, maxProcs)
	}
	return threads
}

// Measurement is one data point of a Figure 2 panel.
type Measurement struct {
	Scheduler string
	Threads   int
	// Time summarizes wall-clock seconds across trials.
	Time stats.Summary
	// Speedup is the ratio of the sequential baseline's mean time to this
	// measurement's mean time.
	Speedup float64
	// ExtraIterations summarizes wasted scheduler deliveries per trial
	// (failed deletes plus dead skips beyond n; zero for the sequential
	// baseline).
	ExtraIterations stats.Summary
	// EmptyPolls summarizes scheduler polls that found nothing per trial.
	EmptyPolls stats.Summary
}

// Report is the outcome of one Figure 2 panel.
type Report struct {
	Class        Class
	Sequential   Measurement
	Measurements []Measurement
}

// buildPanel generates the class's input graph, builds the workload, and
// times the sequential baseline — the setup shared by Run (Figure 2 panels)
// and RunScaling (the worker-scaling sweep), so numbers from the two
// harnesses stay comparable by construction.
func buildPanel(class Class, alg Algorithm, trials int, seed uint64) (*workload, stats.Summary, uint64, error) {
	r := rng.New(seed ^ 0xbe9cbe9cbe9cbe9c)
	g, err := generateGraph(class, r)
	if err != nil {
		return nil, stats.Summary{}, 0, err
	}
	w, err := buildWorkload(alg, g, r)
	if err != nil {
		return nil, stats.Summary{}, 0, err
	}

	var seqTimes []float64
	var reference uint64
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		reference = w.runSequential()
		seqTimes = append(seqTimes, time.Since(start).Seconds())
	}
	return w, stats.Summarize(seqTimes), reference, nil
}

// generateGraph builds a class's input graph. The paper generates each
// input graph with all available threads regardless of the thread count
// under test; the parallel generators mirror that and emit CSR shards
// directly.
func generateGraph(class Class, r *rng.Rand) (*graph.Graph, error) {
	n := class.Vertices
	var g *graph.Graph
	var err error
	switch class.Model {
	case "", ModelGNP:
		p := float64(2*class.Edges) / (float64(n) * float64(n-1))
		g, err = graph.ParallelGNP(n, p, runtime.GOMAXPROCS(0), r)
	case ModelPowerLaw:
		exponent := class.Exponent
		if exponent == 0 {
			exponent = 2.5
		}
		avgDeg := 2 * float64(class.Edges) / float64(n)
		g, err = graph.PowerLaw(n, avgDeg, exponent, runtime.GOMAXPROCS(0), r)
	case ModelGrid:
		// Factor n as rows*cols with the most square shape available, so the
		// built graph has exactly the class's declared vertex count (falling
		// back to a 1×n path for primes).
		rows := int(math.Sqrt(float64(n)))
		for rows > 1 && n%rows != 0 {
			rows--
		}
		if rows < 1 {
			rows = 1
		}
		g = graph.Grid(rows, n/rows)
	default:
		err = fmt.Errorf("unknown graph model %q", class.Model)
	}
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s graph: %w", class.Name, err)
	}
	return g, nil
}

// Run executes one Figure 2 panel.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Class.Vertices <= 0 {
		return Report{}, fmt.Errorf("bench: class has no vertices")
	}
	if cfg.Algorithm.Dynamic() {
		return runDynamicPanel(cfg)
	}
	w, seqTime, reference, err := buildPanel(cfg.Class, cfg.Algorithm, cfg.Trials, cfg.Seed)
	if err != nil {
		return Report{}, err
	}

	report := Report{Class: cfg.Class}
	report.Sequential = Measurement{
		Scheduler: SchedulerSequential,
		Threads:   1,
		Time:      seqTime,
		Speedup:   1,
	}

	for _, threads := range cfg.Threads {
		if threads < 1 {
			return Report{}, fmt.Errorf("bench: invalid thread count %d", threads)
		}
		for _, variant := range []struct {
			name    string
			policy  core.Policy
			factory func(trial int) sched.Concurrent
		}{
			{
				name:   SchedulerRelaxed,
				policy: core.Reinsert,
				factory: func(trial int) sched.Concurrent {
					return multiqueue.NewConcurrent(cfg.QueueFactor*threads, w.numTasks, cfg.Seed+uint64(trial)*7919)
				},
			},
			{
				name:    SchedulerExact,
				policy:  core.Wait,
				factory: func(trial int) sched.Concurrent { return faaqueue.New(w.numTasks) },
			},
		} {
			m, err := runParallel(w, cfg.Trials, cfg.Verify, threads, cfg.BatchSize, reference, variant.policy, variant.factory)
			if err != nil {
				return Report{}, fmt.Errorf("bench: %s run at %d threads: %w", variant.name, threads, err)
			}
			m.Scheduler = variant.name
			m.Speedup = report.Sequential.Time.Mean / m.Time.Mean
			report.Measurements = append(report.Measurements, m)
		}
	}
	return report, nil
}

// workload bundles everything needed to benchmark one algorithm on one
// graph: the framework problem, the priority labels, the sequential baseline
// and an output fingerprint used for the determinism check.
type workload struct {
	numTasks      int
	labels        []uint32
	problem       core.Problem
	runSequential func() uint64
	fingerprint   func(inst core.Instance) uint64
}

func buildWorkload(alg Algorithm, g *graph.Graph, r *rng.Rand) (*workload, error) {
	switch alg {
	case AlgorithmMIS, "":
		labels := core.RandomLabels(g.NumVertices(), r)
		return &workload{
			numTasks: g.NumVertices(),
			labels:   labels,
			problem:  mis.New(g),
			runSequential: func() uint64 {
				return hashBools(mis.Sequential(g, labels))
			},
			fingerprint: func(inst core.Instance) uint64 {
				return hashBools(inst.(*mis.Instance).InSet())
			},
		}, nil
	case AlgorithmColoring:
		labels := core.RandomLabels(g.NumVertices(), r)
		return &workload{
			numTasks: g.NumVertices(),
			labels:   labels,
			problem:  coloring.New(g),
			runSequential: func() uint64 {
				return hashInts(coloring.Sequential(g, labels))
			},
			fingerprint: func(inst core.Instance) uint64 {
				return hashInts(inst.(*coloring.Instance).Colors())
			},
		}, nil
	case AlgorithmMatching:
		numEdges := int(g.NumEdges())
		labels := core.RandomLabels(numEdges, r)
		return &workload{
			numTasks: numEdges,
			labels:   labels,
			problem:  matching.New(g),
			runSequential: func() uint64 {
				return hashBools(matching.Sequential(g, labels))
			},
			fingerprint: func(inst core.Instance) uint64 {
				return hashBools(inst.(*matching.Instance).Matching())
			},
		}, nil
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %q", alg)
	}
}

func runParallel(w *workload, trials int, verify bool, threads, batch int, reference uint64, policy core.Policy, factory func(trial int) sched.Concurrent) (Measurement, error) {
	var times []float64
	var extras []float64
	var empties []float64
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		res, err := core.RunConcurrent(w.problem, w.labels, factory(trial), core.ConcurrentOptions{
			Workers:       threads,
			BlockedPolicy: policy,
			BatchSize:     batch,
		})
		if err != nil {
			return Measurement{}, err
		}
		times = append(times, time.Since(start).Seconds())
		extras = append(extras, float64(res.ExtraIterations()))
		empties = append(empties, float64(res.EmptyPolls))
		if verify && w.fingerprint(res.Instance) != reference {
			return Measurement{}, fmt.Errorf("parallel output differs from the sequential output (determinism violation)")
		}
	}
	return Measurement{
		Threads:         threads,
		Time:            stats.Summarize(times),
		ExtraIterations: stats.Summarize(extras),
		EmptyPolls:      stats.Summarize(empties),
	}, nil
}

// hashBools and hashInts compute FNV-1a fingerprints of algorithm outputs
// so determinism checks do not need to retain full copies per trial.
func hashBools(xs []bool) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range xs {
		var b uint64
		if x {
			b = 1
		}
		h = (h ^ b) * 1099511628211
	}
	return h
}

func hashInts[T int32 | uint32](xs []T) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range xs {
		h = (h ^ uint64(uint32(x))) * 1099511628211
	}
	return h
}

// Format renders the report as an aligned text table, one row per
// (scheduler, threads) data point — the textual equivalent of one Figure 2
// panel.
func (rep Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class=%s |V|=%d |E|=%d avg-degree=%.1f\n",
		rep.Class.Name, rep.Class.Vertices, rep.Class.Edges, rep.Class.AverageDegree())
	fmt.Fprintf(&b, "%-20s %8s %12s %12s %10s %14s\n",
		"scheduler", "threads", "time-mean(s)", "time-min(s)", "speedup", "extra-iters")
	fmt.Fprintf(&b, "%-20s %8d %12.4f %12.4f %10.2f %14s\n",
		rep.Sequential.Scheduler, 1, rep.Sequential.Time.Mean, rep.Sequential.Time.Min, 1.0, "-")

	sorted := append([]Measurement(nil), rep.Measurements...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Scheduler != sorted[j].Scheduler {
			return sorted[i].Scheduler < sorted[j].Scheduler
		}
		return sorted[i].Threads < sorted[j].Threads
	})
	for _, m := range sorted {
		fmt.Fprintf(&b, "%-20s %8d %12.4f %12.4f %10.2f %14.1f\n",
			m.Scheduler, m.Threads, m.Time.Mean, m.Time.Min, m.Speedup, m.ExtraIterations.Mean)
	}
	return b.String()
}

// BestSpeedup returns the largest speedup achieved by the given scheduler in
// the report (0 if the scheduler has no measurements).
func (rep Report) BestSpeedup(scheduler string) float64 {
	best := 0.0
	for _, m := range rep.Measurements {
		if m.Scheduler == scheduler && m.Speedup > best {
			best = m.Speedup
		}
	}
	return best
}
