package bench

import (
	"runtime"
	"strings"
	"testing"
)

func TestDefaultClasses(t *testing.T) {
	classes := DefaultClasses()
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(classes))
	}
	var sparse, smallDense Class
	for _, c := range classes {
		switch c.Name {
		case "sparse":
			sparse = c
		case "smalldense":
			smallDense = c
		}
		if c.Vertices <= 0 || c.Edges <= 0 {
			t.Fatalf("class %s has non-positive size", c.Name)
		}
	}
	if sparse.AverageDegree() >= smallDense.AverageDegree() {
		t.Fatalf("sparse class (deg %.1f) should be sparser than smalldense (deg %.1f)",
			sparse.AverageDegree(), smallDense.AverageDegree())
	}
}

func TestClassByName(t *testing.T) {
	c, err := ClassByName("sparse")
	if err != nil || c.Name != "sparse" {
		t.Fatalf("ClassByName(sparse) = %v, %v", c, err)
	}
	if _, err := ClassByName("nope"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestDefaultThreadSweep(t *testing.T) {
	threads := DefaultThreadSweep()
	if len(threads) == 0 || threads[0] != 1 {
		t.Fatalf("sweep %v should start at 1", threads)
	}
	maxProcs := runtime.GOMAXPROCS(0)
	if threads[len(threads)-1] != maxProcs {
		t.Fatalf("sweep %v should end at GOMAXPROCS=%d", threads, maxProcs)
	}
	for i := 1; i < len(threads); i++ {
		if threads[i] <= threads[i-1] {
			t.Fatalf("sweep %v not strictly increasing", threads)
		}
	}
}

func TestRunSmallPanelVerified(t *testing.T) {
	// A miniature panel: small graph, verification on, 1-2 threads. This
	// exercises the full harness (generation, sequential baseline, relaxed
	// and exact parallel runs, determinism check).
	cfg := Config{
		Class:   Class{Name: "tiny", Vertices: 3000, Edges: 15000},
		Threads: []int{1, 2},
		Trials:  1,
		Seed:    42,
		Verify:  true,
	}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Sequential.Time.Mean <= 0 {
		t.Fatal("sequential baseline has no time")
	}
	if len(report.Measurements) != 4 {
		t.Fatalf("got %d measurements, want 4 (2 schedulers x 2 thread counts)", len(report.Measurements))
	}
	for _, m := range report.Measurements {
		if m.Time.Mean <= 0 {
			t.Fatalf("measurement %s/%d has non-positive time", m.Scheduler, m.Threads)
		}
		if m.Speedup <= 0 {
			t.Fatalf("measurement %s/%d has non-positive speedup", m.Scheduler, m.Threads)
		}
	}
	out := report.Format()
	for _, want := range []string{"tiny", SchedulerRelaxed, SchedulerExact, SchedulerSequential, "threads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted report missing %q:\n%s", want, out)
		}
	}
	if report.BestSpeedup(SchedulerRelaxed) <= 0 {
		t.Fatal("BestSpeedup returned 0 for relaxed scheduler")
	}
	if report.BestSpeedup("nonexistent") != 0 {
		t.Fatal("BestSpeedup for unknown scheduler should be 0")
	}
}

func TestRunColoringAndMatchingPanels(t *testing.T) {
	// The extension beyond the paper's Figure 2: the same harness drives the
	// other framework algorithms. Tiny inputs, verification on.
	for _, alg := range []Algorithm{AlgorithmColoring, AlgorithmMatching} {
		cfg := Config{
			Class:     Class{Name: "tiny", Vertices: 1200, Edges: 6000},
			Algorithm: alg,
			Threads:   []int{1, 2},
			Trials:    1,
			Seed:      9,
			Verify:    true,
		}
		report, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(report.Measurements) != 4 {
			t.Fatalf("%s: got %d measurements, want 4", alg, len(report.Measurements))
		}
		for _, m := range report.Measurements {
			if m.Time.Mean <= 0 || m.Speedup <= 0 {
				t.Fatalf("%s: bad measurement %+v", alg, m)
			}
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	cfg := Config{
		Class:     Class{Name: "tiny", Vertices: 100, Edges: 200},
		Algorithm: "sorting",
		Threads:   []int{1},
		Trials:    1,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := Config{
		Class:   Class{Name: "tiny", Vertices: 100, Edges: 200},
		Threads: []int{0},
		Trials:  1,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero thread count accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Class: Class{Name: "x", Vertices: 10, Edges: 5}}.withDefaults()
	if cfg.Trials != 3 || cfg.QueueFactor <= 0 || len(cfg.Threads) == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}
