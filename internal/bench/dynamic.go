package bench

import (
	"fmt"
	"runtime"
	"time"

	"relaxsched/internal/algos/kcore"
	"relaxsched/internal/algos/sssp"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/stats"
)

// This file is the dynamic-workload side of the harness: shortest paths and
// k-core decomposition driven by the dynamic engine. The panel and sweep
// shapes are identical to the static framework's — same classes, same
// scheduler variants, same JSON layout — so BENCH_concurrent.json tracks
// both executor families in one file. Counters are mapped by analogy:
// ExtraIterations reports stale pops (the dynamic regime's wasted
// deliveries) and tasks/sec divides settled tasks (vertices) by wall-clock
// time.

// dynCounters normalizes the per-trial wasted-work counters of the dynamic
// workloads: for sssp, wasted deliveries are stale pops; for kcore, the
// dirty-flag dedup keeps stale pops structurally zero and waste appears as
// re-evaluations beyond the initial one per vertex.
type dynCounters struct {
	wasted     float64
	emptyPolls float64
}

// dynWorkload bundles everything needed to benchmark one dynamic-priority
// algorithm on one graph: the sequential baseline and an output fingerprint
// for the exactness check, plus a parallel runner parameterized over
// scheduler, worker count and engine batch size.
type dynWorkload struct {
	numTasks      int
	runSequential func() uint64
	runParallel   func(s sched.Concurrent, workers, batch int) (dynCounters, uint64, error)
}

// firstNonIsolated returns the lowest-numbered vertex with at least one
// neighbor (0 for an empty or edgeless graph) — a deterministic
// shortest-path source that is never trivially unreachable from everything.
func firstNonIsolated(g *graph.Graph) int {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(v) > 0 {
			return v
		}
	}
	return 0
}

func buildDynWorkload(alg Algorithm, g *graph.Graph, seed uint64, delta uint32) (*dynWorkload, error) {
	switch alg {
	case AlgorithmSSSP:
		if delta == 0 {
			delta = 1
		}
		w, err := graph.RandomWeights(g, 100, seed^0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("bench: generating weights: %w", err)
		}
		src := firstNonIsolated(g)
		return &dynWorkload{
			numTasks: g.NumVertices(),
			runSequential: func() uint64 {
				dist, err := sssp.Dijkstra(g, w, src)
				if err != nil {
					panic(err)
				}
				return hashInts(dist)
			},
			runParallel: func(s sched.Concurrent, workers, batch int) (dynCounters, uint64, error) {
				dist, st, err := sssp.RunConcurrentDelta(g, w, src, s, workers, delta, batch)
				if err != nil {
					return dynCounters{}, 0, err
				}
				return dynCounters{wasted: float64(st.StalePops), emptyPolls: float64(st.EmptyPolls)}, hashInts(dist), nil
			},
		}, nil
	case AlgorithmKCore:
		return &dynWorkload{
			numTasks: g.NumVertices(),
			runSequential: func() uint64 {
				return hashInts(kcore.Sequential(g))
			},
			runParallel: func(s sched.Concurrent, workers, batch int) (dynCounters, uint64, error) {
				cores, st, err := kcore.RunConcurrent(g, s, workers, batch)
				if err != nil {
					return dynCounters{}, 0, err
				}
				wasted := float64(st.Pops) - float64(g.NumVertices())
				return dynCounters{wasted: wasted, emptyPolls: float64(st.EmptyPolls)}, hashInts(cores), nil
			},
		}, nil
	default:
		return nil, fmt.Errorf("bench: algorithm %q is not a dynamic workload", alg)
	}
}

// buildDynPanel mirrors buildPanel for the dynamic workloads: generate the
// class graph, build the workload, time the sequential baseline.
func buildDynPanel(class Class, alg Algorithm, trials int, seed uint64, delta uint32) (*dynWorkload, stats.Summary, uint64, error) {
	r := rng.New(seed ^ 0xbe9cbe9cbe9cbe9c)
	g, err := generateGraph(class, r)
	if err != nil {
		return nil, stats.Summary{}, 0, err
	}
	w, err := buildDynWorkload(alg, g, seed, delta)
	if err != nil {
		return nil, stats.Summary{}, 0, err
	}
	var seqTimes []float64
	var reference uint64
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		reference = w.runSequential()
		seqTimes = append(seqTimes, time.Since(start).Seconds())
	}
	return w, stats.Summarize(seqTimes), reference, nil
}

// runDynParallel mirrors runParallel: one (scheduler, workers, batch) data
// point, verified against the sequential fingerprint when asked. Both
// dynamic workloads are exact under any scheduler, so a fingerprint mismatch
// is a correctness bug, not a tolerated relaxation artifact.
func runDynParallel(w *dynWorkload, trials int, verify bool, workers, batch int, reference uint64, factory func(trial int) sched.Concurrent) (Measurement, error) {
	var times, stale, empties []float64
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		counters, fingerprint, err := w.runParallel(factory(trial), workers, batch)
		if err != nil {
			return Measurement{}, err
		}
		times = append(times, time.Since(start).Seconds())
		stale = append(stale, counters.wasted)
		empties = append(empties, counters.emptyPolls)
		if verify && fingerprint != reference {
			return Measurement{}, fmt.Errorf("parallel output differs from the sequential output (exactness violation)")
		}
	}
	return Measurement{
		Threads:         workers,
		Time:            stats.Summarize(times),
		ExtraIterations: stats.Summarize(stale),
		EmptyPolls:      stats.Summarize(empties),
	}, nil
}

// runDynamicPanel executes one Figure 2-style panel for a dynamic workload:
// relaxed MultiQueue versus exact FAA FIFO across the thread sweep, against
// the sequential baseline (Dijkstra or bucket peeling).
func runDynamicPanel(cfg Config) (Report, error) {
	w, seqTime, reference, err := buildDynPanel(cfg.Class, cfg.Algorithm, cfg.Trials, cfg.Seed, cfg.Delta)
	if err != nil {
		return Report{}, err
	}
	report := Report{Class: cfg.Class}
	report.Sequential = Measurement{
		Scheduler: SchedulerSequential,
		Threads:   1,
		Time:      seqTime,
		Speedup:   1,
	}
	for _, threads := range cfg.Threads {
		if threads < 1 {
			return Report{}, fmt.Errorf("bench: invalid thread count %d", threads)
		}
		for _, name := range []string{SchedulerRelaxed, SchedulerExact} {
			variant, err := schedulerVariant(name, ScalingConfig{QueueFactor: cfg.QueueFactor, Seed: cfg.Seed}, w.numTasks)
			if err != nil {
				return Report{}, err
			}
			m, err := runDynParallel(w, cfg.Trials, cfg.Verify, threads, cfg.BatchSize,
				reference, func(trial int) sched.Concurrent { return variant.factory(threads, trial) })
			if err != nil {
				return Report{}, fmt.Errorf("bench: %s run at %d threads: %w", name, threads, err)
			}
			m.Scheduler = name
			m.Speedup = report.Sequential.Time.Mean / m.Time.Mean
			report.Measurements = append(report.Measurements, m)
		}
	}
	return report, nil
}

// runScalingDynamic executes the worker-scaling sweep for a dynamic
// workload, producing the same report shape as the static sweep so the two
// executor families share BENCH_concurrent.json and the regression gate.
func runScalingDynamic(cfg ScalingConfig) (ScalingReport, error) {
	w, seqTime, reference, err := buildDynPanel(cfg.Class, cfg.Algorithm, cfg.Trials, cfg.Seed, cfg.Delta)
	if err != nil {
		return ScalingReport{}, err
	}
	model := cfg.Class.Model
	if model == "" {
		model = ModelGNP
	}
	report := ScalingReport{
		Class:             cfg.Class.Name,
		Vertices:          cfg.Class.Vertices,
		Edges:             cfg.Class.Edges,
		Model:             model,
		Algorithm:         string(cfg.Algorithm),
		Tasks:             w.numTasks,
		NumCPU:            runtime.NumCPU(),
		Trials:            cfg.Trials,
		Seed:              cfg.Seed,
		SequentialSeconds: seqTime.Mean,
	}
	for _, name := range cfg.Schedulers {
		variant, err := schedulerVariant(name, cfg, w.numTasks)
		if err != nil {
			return ScalingReport{}, err
		}
		for _, workers := range cfg.Workers {
			if workers < 1 {
				return ScalingReport{}, fmt.Errorf("bench: invalid worker count %d", workers)
			}
			for _, batch := range cfg.BatchSizes {
				if batch < 1 {
					return ScalingReport{}, fmt.Errorf("bench: invalid batch size %d", batch)
				}
				m, err := runDynParallel(w, cfg.Trials, cfg.Verify, workers, batch, reference,
					func(trial int) sched.Concurrent { return variant.factory(workers, trial) })
				if err != nil {
					return ScalingReport{}, fmt.Errorf("bench: %s at %d workers batch %d: %w", name, workers, batch, err)
				}
				report.Points = append(report.Points, ScalingPoint{
					Scheduler:             name,
					Workers:               workers,
					BatchSize:             batch,
					TimeMeanSeconds:       m.Time.Mean,
					TimeMinSeconds:        m.Time.Min,
					ThroughputTasksPerSec: float64(w.numTasks) / m.Time.Mean,
					Speedup:               report.SequentialSeconds / m.Time.Mean,
					ExtraIterationsMean:   m.ExtraIterations.Mean,
					EmptyPollsMean:        m.EmptyPolls.Mean,
				})
			}
		}
	}
	return report, nil
}
