package bench

import (
	"strings"
	"testing"
)

func tinyClass() Class {
	return Class{Name: "tiny", Vertices: 1200, Edges: 5000}
}

func TestDynamicPanelSSSPAndKCore(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmSSSP, AlgorithmKCore} {
		report, err := Run(Config{
			Class:     tinyClass(),
			Algorithm: alg,
			Threads:   []int{1, 2},
			Trials:    1,
			Seed:      3,
			Verify:    true,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// 2 thread counts x 2 schedulers.
		if len(report.Measurements) != 4 {
			t.Fatalf("%s: got %d measurements, want 4", alg, len(report.Measurements))
		}
		for _, m := range report.Measurements {
			if m.Time.Mean <= 0 {
				t.Fatalf("%s: non-positive time in %+v", alg, m)
			}
			if m.Scheduler != SchedulerRelaxed && m.Scheduler != SchedulerExact {
				t.Fatalf("%s: unexpected scheduler %q", alg, m.Scheduler)
			}
		}
		if out := report.Format(); !strings.Contains(out, "tiny") {
			t.Fatalf("%s: missing class name in format output:\n%s", alg, out)
		}
	}
}

func TestDynamicScalingSweepShape(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmSSSP, AlgorithmKCore} {
		report, err := RunScaling(ScalingConfig{
			Class:      tinyClass(),
			Algorithm:  alg,
			Workers:    []int{1, 2},
			BatchSizes: []int{1, 16},
			Trials:     1,
			Seed:       5,
			Verify:     true,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if report.Algorithm != string(alg) || report.Tasks != tinyClass().Vertices {
			t.Fatalf("%s: unexpected report header %+v", alg, report)
		}
		// 3 schedulers x 2 worker counts x 2 batch sizes.
		if len(report.Points) != 12 {
			t.Fatalf("%s: got %d points, want 12", alg, len(report.Points))
		}
		for _, pt := range report.Points {
			if pt.ThroughputTasksPerSec <= 0 {
				t.Fatalf("%s: non-positive throughput in %+v", alg, pt)
			}
		}
	}
}

func TestDynamicSweepDeltaBucketing(t *testing.T) {
	// Coarse Δ buckets must keep the sweep exact (Verify is on) while
	// changing only wasted work; the report is tagged with the algorithm so
	// the regression gate keys stay distinct from MIS.
	report, err := RunScaling(ScalingConfig{
		Class:      tinyClass(),
		Algorithm:  AlgorithmSSSP,
		Workers:    []int{2},
		BatchSizes: []int{16},
		Trials:     1,
		Delta:      64,
		Seed:       7,
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(report.Points))
	}
}

func TestGridClassGeneration(t *testing.T) {
	c, err := ClassByName("grid")
	if err != nil {
		t.Fatal(err)
	}
	if c.Model != ModelGrid {
		t.Fatalf("grid class model = %q", c.Model)
	}
	// A scaled-down grid panel end to end, verified.
	report, err := Run(Config{
		Class:     Class{Name: "minigrid", Vertices: 900, Edges: 1740, Model: ModelGrid},
		Algorithm: AlgorithmSSSP,
		Threads:   []int{1},
		Trials:    1,
		Seed:      11,
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Measurements) != 2 {
		t.Fatalf("got %d measurements, want 2", len(report.Measurements))
	}
}

func TestParseAlgorithm(t *testing.T) {
	for name, want := range map[string]Algorithm{
		"":         AlgorithmMIS,
		"mis":      AlgorithmMIS,
		"coloring": AlgorithmColoring,
		"matching": AlgorithmMatching,
		"sssp":     AlgorithmSSSP,
		"kcore":    AlgorithmKCore,
		"pagerank": AlgorithmPageRank,
	} {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %q, %v", name, got, err)
		}
	}
	if _, err := ParseAlgorithm("galactic"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if AlgorithmMIS.Dynamic() || !AlgorithmSSSP.Dynamic() || !AlgorithmKCore.Dynamic() || !AlgorithmPageRank.Dynamic() {
		t.Fatal("Dynamic() misclassifies algorithms")
	}
}

func TestPageRankPanelAndSweep(t *testing.T) {
	// A loose tolerance keeps the panel fast; Verify compares every parallel
	// run against the power-iteration reference through the L1 budget.
	report, err := Run(Config{
		Class:     tinyClass(),
		Algorithm: AlgorithmPageRank,
		Threads:   []int{1, 2},
		Trials:    1,
		Tolerance: 1e-6,
		Seed:      3,
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Measurements) != 4 {
		t.Fatalf("got %d measurements, want 4", len(report.Measurements))
	}

	sweep, err := RunScaling(ScalingConfig{
		Class:      tinyClass(),
		Algorithm:  AlgorithmPageRank,
		Workers:    []int{1, 2},
		BatchSizes: []int{1, 16},
		Trials:     1,
		Tolerance:  1e-6,
		Seed:       5,
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Algorithm != string(AlgorithmPageRank) {
		t.Fatalf("unexpected sweep header %+v", sweep)
	}
	// 3 schedulers x 2 worker counts x 2 batch sizes.
	if len(sweep.Points) != 12 {
		t.Fatalf("got %d points, want 12", len(sweep.Points))
	}
	for _, pt := range sweep.Points {
		if pt.ThroughputTasksPerSec <= 0 {
			t.Fatalf("non-positive throughput in %+v", pt)
		}
	}
}

func TestPageRankPowerLawPanelVerified(t *testing.T) {
	// The hub-heavy case the sweep tracks, scaled down: power-law degrees
	// concentrate residual mass at the hubs, the interesting regime for
	// residual-ordered scheduling.
	report, err := Run(Config{
		Class:     Class{Name: "miniplaw", Vertices: 1500, Edges: 6000, Model: ModelPowerLaw, Exponent: 2.5},
		Algorithm: AlgorithmPageRank,
		Threads:   []int{2},
		Trials:    1,
		Tolerance: 1e-7,
		Seed:      13,
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Measurements) != 2 {
		t.Fatalf("got %d measurements, want 2", len(report.Measurements))
	}
}
