package bench

import (
	"os"
	"runtime"
	"testing"

	"relaxsched/internal/algos/mis"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched/multiqueue"
)

// TestMillionVertexMISSmoke generates a million-vertex G(n,p) graph with the
// parallel CSR builder and runs a concurrent relaxed MIS over it, verifying
// the result against the sequential oracle. It is the CI smoke proof that
// the CSR layout carries million-vertex workloads end to end (CI runs it
// under the race detector); locally it only runs when
// RELAXSCHED_SMOKE_MILLION is set, so plain `go test ./...` stays fast.
func TestMillionVertexMISSmoke(t *testing.T) {
	if os.Getenv("RELAXSCHED_SMOKE_MILLION") == "" {
		t.Skip("set RELAXSCHED_SMOKE_MILLION=1 to run the million-vertex smoke test")
	}
	const n = 1_000_000
	const m = 2_000_000
	r := rng.New(0x1e6)
	p := float64(2*m) / (float64(n) * float64(n-1))
	g, err := graph.ParallelGNP(n, p, runtime.GOMAXPROCS(0), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Fatalf("generated %d vertices, want %d", g.NumVertices(), n)
	}
	labels := core.RandomLabels(n, r)
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	mq := multiqueue.NewConcurrent(multiqueue.DefaultQueueFactor*workers, n, 0x1e6)
	set, _, err := mis.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := mis.Verify(g, set); err != nil {
		t.Fatal(err)
	}
	if !mis.Equal(set, mis.Sequential(g, labels)) {
		t.Fatal("concurrent MIS differs from the sequential oracle")
	}
}
