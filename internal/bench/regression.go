package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadScalingReports parses a JSON array of sweep reports as written by
// WriteScalingReports (the layout of BENCH_concurrent.json).
func ReadScalingReports(r io.Reader) ([]ScalingReport, error) {
	var reports []ScalingReport
	if err := json.NewDecoder(r).Decode(&reports); err != nil {
		return nil, fmt.Errorf("bench: parsing sweep reports: %w", err)
	}
	return reports, nil
}

// ReadScalingReportsFile reads a sweep-report JSON file.
func ReadScalingReportsFile(path string) ([]ScalingReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: opening baseline: %w", err)
	}
	defer f.Close()
	return ReadScalingReports(f)
}

// CheckRegression compares the best throughput the given scheduler reached
// in each current report against the baseline report for the same class and
// algorithm, and returns an error naming every class whose throughput
// dropped by more than maxRegression (a fraction, e.g. 0.25 for 25%).
// Classes absent from the baseline are skipped, so new sweep classes can be
// introduced without updating the baseline first.
func CheckRegression(current, baseline []ScalingReport, scheduler string, maxRegression float64) error {
	if maxRegression < 0 || maxRegression >= 1 {
		return fmt.Errorf("bench: max regression %v out of [0,1)", maxRegression)
	}
	baseBest := make(map[string]float64, len(baseline))
	for _, rep := range baseline {
		baseBest[rep.Class+"/"+rep.Algorithm] = rep.BestThroughput(scheduler)
	}
	var failures []string
	for _, rep := range current {
		base, ok := baseBest[rep.Class+"/"+rep.Algorithm]
		if !ok || base <= 0 {
			continue
		}
		got := rep.BestThroughput(scheduler)
		floor := (1 - maxRegression) * base
		if got < floor {
			failures = append(failures, fmt.Sprintf(
				"%s/%s: %s throughput %.0f tasks/s is below %.0f (baseline %.0f, max regression %.0f%%)",
				rep.Class, rep.Algorithm, scheduler, got, floor, base, 100*maxRegression))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: throughput regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
