package bench

import (
	"strings"
	"testing"
)

func sweepReport(class, alg string, best float64) ScalingReport {
	return ScalingReport{
		Class:     class,
		Algorithm: alg,
		Points: []ScalingPoint{
			{Scheduler: SchedulerRelaxed, Workers: 1, BatchSize: 16, ThroughputTasksPerSec: best / 2},
			{Scheduler: SchedulerRelaxed, Workers: 2, BatchSize: 16, ThroughputTasksPerSec: best},
			{Scheduler: SchedulerExact, Workers: 2, BatchSize: 16, ThroughputTasksPerSec: best * 3},
		},
	}
}

func TestCheckRegressionPasses(t *testing.T) {
	baseline := []ScalingReport{sweepReport("hundredk", "mis", 1000)}
	current := []ScalingReport{sweepReport("hundredk", "mis", 800)}
	if err := CheckRegression(current, baseline, SchedulerRelaxed, 0.25); err != nil {
		t.Fatalf("20%% drop within a 25%% budget failed: %v", err)
	}
}

func TestCheckRegressionFails(t *testing.T) {
	baseline := []ScalingReport{sweepReport("hundredk", "mis", 1000)}
	current := []ScalingReport{sweepReport("hundredk", "mis", 700)}
	err := CheckRegression(current, baseline, SchedulerRelaxed, 0.25)
	if err == nil {
		t.Fatal("30% drop passed a 25% budget")
	}
	if !strings.Contains(err.Error(), "hundredk/mis") {
		t.Fatalf("error does not name the regressed class: %v", err)
	}
}

func TestCheckRegressionSkipsUnknownClasses(t *testing.T) {
	baseline := []ScalingReport{sweepReport("hundredk", "mis", 1000)}
	current := []ScalingReport{
		sweepReport("hundredk", "mis", 900),
		sweepReport("million", "mis", 1), // new class, no baseline: skipped
	}
	if err := CheckRegression(current, baseline, SchedulerRelaxed, 0.25); err != nil {
		t.Fatalf("new class without baseline failed the gate: %v", err)
	}
}

func TestCheckRegressionRejectsBadBudget(t *testing.T) {
	if err := CheckRegression(nil, nil, SchedulerRelaxed, 1.5); err == nil {
		t.Fatal("budget 1.5 accepted")
	}
	if err := CheckRegression(nil, nil, SchedulerRelaxed, -0.1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestReadScalingReportsRoundTrip(t *testing.T) {
	reports := []ScalingReport{sweepReport("hundredk", "mis", 1234)}
	var buf strings.Builder
	if err := WriteScalingReports(&buf, reports); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScalingReports(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Class != "hundredk" || got[0].BestThroughput(SchedulerRelaxed) != 1234 {
		t.Fatalf("round trip mangled reports: %+v", got)
	}
}

func TestSweepClasses(t *testing.T) {
	classes := SweepClasses()
	byName := make(map[string]Class, len(classes))
	for _, c := range classes {
		byName[c.Name] = c
	}
	million, ok := byName["million"]
	if !ok || million.Vertices != 1_000_000 {
		t.Fatalf("sweep classes missing the million-vertex track: %+v", classes)
	}
	pl, ok := byName["powerlaw"]
	if !ok || pl.Model != ModelPowerLaw {
		t.Fatalf("sweep classes missing the power-law track: %+v", classes)
	}
	for _, c := range classes {
		if _, err := ClassByName(c.Name); err != nil {
			t.Fatalf("ClassByName(%s): %v", c.Name, err)
		}
	}
}

func TestRunScalingPowerLawSmallVerified(t *testing.T) {
	rep, err := RunScaling(ScalingConfig{
		Class:      Class{Name: "tinypl", Vertices: 2000, Edges: 10000, Model: ModelPowerLaw},
		Workers:    []int{1},
		BatchSizes: []int{16},
		Schedulers: []string{SchedulerRelaxed},
		Trials:     1,
		Seed:       9,
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != ModelPowerLaw {
		t.Fatalf("report model %q, want %q", rep.Model, ModelPowerLaw)
	}
	if len(rep.Points) != 1 || rep.Points[0].ThroughputTasksPerSec <= 0 {
		t.Fatalf("unexpected points: %+v", rep.Points)
	}
}
