package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"relaxsched/internal/core"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/workload"
)

// SchedulerLockedKBounded names the coarse-locked deterministic k-bounded
// scheduler in sweep measurements. It exercises the sched.Batcher path: one
// lock acquisition per batch with native batch operations inside.
const SchedulerLockedKBounded = "locked-kbounded"

// DefaultQueueFactor is the number of MultiQueue sub-queues per thread
// (4, as in the paper).
const DefaultQueueFactor = multiqueue.DefaultQueueFactor

// DefaultBatchSweep returns the batch sizes the scaling sweep measures:
// 1 (the single-item discipline), the executor default, and one size in
// between and one beyond, so the throughput-versus-relaxation tradeoff is
// visible in the output.
func DefaultBatchSweep() []int {
	return []int{1, 4, core.DefaultBatchSize, 64}
}

// DefaultWorkerSweep returns 1, 2, 4, ... up to NumCPU, always including
// NumCPU itself — the x-axis of the scaling sweep.
func DefaultWorkerSweep() []int {
	return DefaultThreadSweep()
}

// ScalingConfig configures RunScaling, the worker-scaling sweep behind
// BENCH_concurrent.json.
type ScalingConfig struct {
	Class Class
	// Algorithm selects the workload (default AlgorithmMIS).
	Algorithm Algorithm
	// Workers is the list of worker counts to sweep (default
	// DefaultWorkerSweep).
	Workers []int
	// BatchSizes is the list of executor batch sizes to sweep (default
	// DefaultBatchSweep).
	BatchSizes []int
	// Schedulers is the list of scheduler names to sweep (default
	// SchedulerRelaxed, SchedulerExact and SchedulerLockedKBounded).
	Schedulers []string
	// Trials per data point. Default 3.
	Trials int
	// QueueFactor is the number of MultiQueue sub-queues per thread
	// (default 4, as in the paper).
	QueueFactor int
	// Delta is the Δ-stepping bucket width for AlgorithmSSSP (0 or 1 keep
	// exact distance priorities); other algorithms ignore it.
	Delta uint32
	// Tolerance is the target L1 error for AlgorithmPageRank (0 selects the
	// workload default 1e-9); other algorithms ignore it.
	Tolerance float64
	// Seed makes graph generation and permutations reproducible.
	Seed uint64
	// Verify makes every run check its output against the sequential oracle.
	Verify bool
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.Algorithm == "" {
		c.Algorithm = AlgorithmMIS
	}
	if len(c.Workers) == 0 {
		c.Workers = DefaultWorkerSweep()
	}
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = DefaultBatchSweep()
	}
	if len(c.Schedulers) == 0 {
		c.Schedulers = []string{SchedulerRelaxed, SchedulerExact, SchedulerLockedKBounded}
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.QueueFactor <= 0 {
		c.QueueFactor = DefaultQueueFactor
	}
	return c
}

// params maps a sweep config onto the registry's workload parameters.
func (c ScalingConfig) params() workload.Params {
	return workload.Params{
		Seed:      c.Seed,
		Delta:     c.Delta,
		Tolerance: c.Tolerance,
		Source:    -1, // sssp: first non-isolated vertex
	}
}

// ScalingPoint is one (scheduler, workers, batch size) measurement.
type ScalingPoint struct {
	Scheduler string `json:"scheduler"`
	Workers   int    `json:"workers"`
	BatchSize int    `json:"batch_size"`
	// TimeMeanSeconds and TimeMinSeconds summarize wall-clock time across
	// trials.
	TimeMeanSeconds float64 `json:"time_mean_seconds"`
	TimeMinSeconds  float64 `json:"time_min_seconds"`
	// ThroughputTasksPerSec is tasks divided by mean wall-clock time — the
	// primary quantity the sweep tracks across PRs.
	ThroughputTasksPerSec float64 `json:"throughput_tasks_per_sec"`
	// Speedup is the sequential baseline's mean time over this point's mean.
	Speedup float64 `json:"speedup"`
	// ExtraIterationsMean counts the workload's wasted-work metric per trial.
	ExtraIterationsMean float64 `json:"extra_iterations_mean"`
	// EmptyPollsMean counts deliveries that found the scheduler empty.
	EmptyPollsMean float64 `json:"empty_polls_mean"`
}

// ScalingReport is the JSON-serializable outcome of one scaling sweep —
// the machine-readable perf trajectory written to BENCH_concurrent.json.
type ScalingReport struct {
	Class     string `json:"class"`
	Vertices  int    `json:"vertices"`
	Edges     int64  `json:"edges"`
	Model     string `json:"model,omitempty"`
	Algorithm string `json:"algorithm"`
	Tasks     int    `json:"tasks"`
	NumCPU    int    `json:"num_cpu"`
	Trials    int    `json:"trials"`
	Seed      uint64 `json:"seed"`
	// SequentialSeconds is the mean wall-clock time of the optimized
	// sequential baseline, the denominator of every Speedup.
	SequentialSeconds float64        `json:"sequential_seconds"`
	Points            []ScalingPoint `json:"points"`
}

// RunScaling executes the worker-scaling sweep: for one graph class and
// registered workload it measures throughput for every (scheduler, workers,
// batch size) combination against the sequential baseline.
func RunScaling(cfg ScalingConfig) (ScalingReport, error) {
	return RunScalingContext(context.Background(), cfg)
}

// RunScalingContext is RunScaling with cancellation, checked between trials
// and inside in-flight concurrent trials (see RunContext).
func RunScalingContext(ctx context.Context, cfg ScalingConfig) (ScalingReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Class.Vertices <= 0 {
		return ScalingReport{}, fmt.Errorf("bench: class has no vertices")
	}
	inst, seqTime, reference, err := buildPanel(cfg.Class, cfg.Algorithm, cfg.Trials, cfg.Seed, cfg.params())
	if err != nil {
		return ScalingReport{}, err
	}

	model := cfg.Class.Model
	if model == "" {
		model = ModelGNP
	}
	report := ScalingReport{
		Class:             cfg.Class.Name,
		Vertices:          cfg.Class.Vertices,
		Edges:             cfg.Class.Edges,
		Model:             model,
		Algorithm:         string(cfg.Algorithm),
		Tasks:             inst.NumTasks(),
		NumCPU:            runtime.NumCPU(),
		Trials:            cfg.Trials,
		Seed:              cfg.Seed,
		SequentialSeconds: seqTime.Mean,
	}

	for _, name := range cfg.Schedulers {
		variant, err := schedulerVariant(name, cfg.QueueFactor, cfg.Seed, inst.NumTasks())
		if err != nil {
			return ScalingReport{}, err
		}
		for _, workers := range cfg.Workers {
			if workers < 1 {
				return ScalingReport{}, fmt.Errorf("bench: invalid worker count %d", workers)
			}
			for _, batch := range cfg.BatchSizes {
				if batch < 1 {
					return ScalingReport{}, fmt.Errorf("bench: invalid batch size %d", batch)
				}
				m, err := runParallel(ctx, inst, cfg.Trials, cfg.Verify, workers, batch, reference, variant.policy,
					func(trial int) sched.Concurrent { return variant.factory(workers, trial) })
				if err != nil {
					return ScalingReport{}, fmt.Errorf("bench: %s at %d workers batch %d: %w", name, workers, batch, err)
				}
				report.Points = append(report.Points, ScalingPoint{
					Scheduler:             name,
					Workers:               workers,
					BatchSize:             batch,
					TimeMeanSeconds:       m.Time.Mean,
					TimeMinSeconds:        m.Time.Min,
					ThroughputTasksPerSec: float64(inst.NumTasks()) / m.Time.Mean,
					Speedup:               report.SequentialSeconds / m.Time.Mean,
					ExtraIterationsMean:   m.ExtraIterations.Mean,
					EmptyPollsMean:        m.EmptyPolls.Mean,
				})
			}
		}
	}
	return report, nil
}

// sweepVariant maps a sweep scheduler name to its blocked-task policy
// (static workloads only) and per-(workers, trial) scheduler factory.
type sweepVariant struct {
	policy  core.Policy
	factory func(workers, trial int) sched.Concurrent
}

func schedulerVariant(name string, queueFactor int, seed uint64, numTasks int) (sweepVariant, error) {
	if queueFactor <= 0 {
		queueFactor = DefaultQueueFactor
	}
	switch name {
	case SchedulerRelaxed:
		return sweepVariant{
			policy: core.Reinsert,
			factory: func(workers, trial int) sched.Concurrent {
				return multiqueue.NewConcurrent(queueFactor*workers, numTasks, seed+uint64(trial)*7919)
			},
		}, nil
	case SchedulerExact:
		return sweepVariant{
			policy:  core.Wait,
			factory: func(workers, trial int) sched.Concurrent { return faaqueue.New(numTasks) },
		}, nil
	case SchedulerLockedKBounded:
		return sweepVariant{
			policy: core.Reinsert,
			factory: func(workers, trial int) sched.Concurrent {
				return sched.NewLocked(kbounded.New(queueFactor*workers, numTasks))
			},
		}, nil
	default:
		return sweepVariant{}, fmt.Errorf("bench: unknown sweep scheduler %q", name)
	}
}

// WriteJSON writes the report as indented JSON.
func (rep ScalingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteScalingReports writes several sweep reports (one per graph class) as
// a single indented JSON array — the layout of BENCH_concurrent.json.
func WriteScalingReports(w io.Writer, reports []ScalingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// Format renders the sweep as an aligned text table.
func (rep ScalingReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scaling sweep: class=%s algo=%s |V|=%d |E|=%d tasks=%d cpus=%d seq=%.4fs\n",
		rep.Class, rep.Algorithm, rep.Vertices, rep.Edges, rep.Tasks, rep.NumCPU, rep.SequentialSeconds)
	fmt.Fprintf(&b, "%-20s %8s %6s %12s %14s %10s %12s\n",
		"scheduler", "workers", "batch", "time-mean(s)", "tasks/sec", "speedup", "extra-iters")
	sorted := append([]ScalingPoint(nil), rep.Points...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Scheduler != sorted[j].Scheduler {
			return sorted[i].Scheduler < sorted[j].Scheduler
		}
		if sorted[i].Workers != sorted[j].Workers {
			return sorted[i].Workers < sorted[j].Workers
		}
		return sorted[i].BatchSize < sorted[j].BatchSize
	})
	for _, pt := range sorted {
		fmt.Fprintf(&b, "%-20s %8d %6d %12.4f %14.0f %10.2f %12.1f\n",
			pt.Scheduler, pt.Workers, pt.BatchSize, pt.TimeMeanSeconds,
			pt.ThroughputTasksPerSec, pt.Speedup, pt.ExtraIterationsMean)
	}
	return b.String()
}

// Schedulers returns the distinct scheduler names present in the sweep, in
// first-appearance order.
func (rep ScalingReport) Schedulers() []string {
	var names []string
	seen := make(map[string]bool)
	for _, pt := range rep.Points {
		if !seen[pt.Scheduler] {
			seen[pt.Scheduler] = true
			names = append(names, pt.Scheduler)
		}
	}
	return names
}

// BestThroughput returns the highest throughput the given scheduler reached
// anywhere in the sweep (0 if absent).
func (rep ScalingReport) BestThroughput(scheduler string) float64 {
	best := 0.0
	for _, pt := range rep.Points {
		if pt.Scheduler == scheduler && pt.ThroughputTasksPerSec > best {
			best = pt.ThroughputTasksPerSec
		}
	}
	return best
}
