// Package bitset provides dense bit sets over [0, n).
//
// Two variants are provided: Set, a plain single-threaded bit set used by the
// sequential executors and verifiers, and Atomic, a concurrent bit set whose
// Set/Get operations are safe for use from multiple goroutines and which
// underpins the "processed" and "dead" task state in the concurrent executor.
package bitset

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Set is a fixed-size bit set over [0, n). The zero value is an empty set of
// size 0; use New to create a set of a given size.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty Set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i. It panics if i is out of range, since an out-of-range task
// index always indicates a programming error in this library.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and o have the same size and the same set bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Atomic is a fixed-size concurrent bit set over [0, n). All methods are safe
// for concurrent use. Bits can only be set, read, and reset wholesale; there
// is deliberately no concurrent Clear of a single bit because the executors
// only ever need monotone state transitions (unprocessed -> processed,
// live -> dead).
type Atomic struct {
	words []atomic.Uint64
	n     int
}

// NewAtomic returns an empty Atomic bit set with capacity for n bits.
func NewAtomic(n int) *Atomic {
	if n < 0 {
		n = 0
	}
	return &Atomic{
		words: make([]atomic.Uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// Len returns the capacity of the set in bits.
func (a *Atomic) Len() int { return a.n }

// Set sets bit i and reports whether this call changed it (i.e. it was
// previously clear). The test-and-set semantics let concurrent executors
// claim a task exactly once.
func (a *Atomic) Set(i int) bool {
	a.check(i)
	w := &a.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			return true
		}
	}
}

// Get reports whether bit i is set.
func (a *Atomic) Get(i int) bool {
	a.check(i)
	return a.words[i/wordBits].Load()&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits. The result is a consistent snapshot
// only when no concurrent writers are active.
func (a *Atomic) Count() int {
	total := 0
	for i := range a.words {
		total += bits.OnesCount64(a.words[i].Load())
	}
	return total
}

// Reset clears every bit. It must not race with concurrent Set/Get calls.
func (a *Atomic) Reset() {
	for i := range a.words {
		a.words[i].Store(0)
	}
}

// Snapshot copies the current contents into a plain Set. Like Count, the
// result is only consistent when writers are quiescent.
func (a *Atomic) Snapshot() *Set {
	s := New(a.n)
	for i := range a.words {
		s.words[i] = a.words[i].Load()
	}
	return s
}

func (a *Atomic) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, a.n))
	}
}
