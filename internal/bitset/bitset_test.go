package bitset

import (
	"sync"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestSetBasicOperations(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("new set has count %d, want 0", s.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Count() != 7 {
		t.Fatalf("Count after Clear = %d, want 7", s.Count())
	}
}

func TestSetReset(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d, want 0", s.Count())
	}
}

func TestSetCloneAndEqual(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 7 {
		s.Set(i)
	}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(1)
	if s.Equal(c) {
		t.Fatal("sets equal after modifying clone")
	}
	other := New(100)
	if s.Equal(other) {
		t.Fatal("sets of different sizes reported equal")
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	cases := []func(*Set){
		func(s *Set) { s.Set(-1) },
		func(s *Set) { s.Set(10) },
		func(s *Set) { s.Get(10) },
		func(s *Set) { s.Clear(-5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic on out-of-range access", i)
				}
			}()
			fn(New(10))
		}()
	}
}

func TestSetZeroAndNegativeSize(t *testing.T) {
	if s := New(0); s.Count() != 0 || s.Len() != 0 {
		t.Fatal("empty set misbehaves")
	}
	if s := New(-5); s.Len() != 0 {
		t.Fatal("negative size not clamped to 0")
	}
}

func TestSetMatchesMapModel(t *testing.T) {
	// Property test: a sequence of random Set/Clear operations matches a map
	// model.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 257
		s := New(n)
		model := make(map[int]bool)
		for op := 0; op < 500; op++ {
			i := r.Intn(n)
			switch r.Intn(3) {
			case 0:
				s.Set(i)
				model[i] = true
			case 1:
				s.Clear(i)
				delete(model, i)
			case 2:
				if s.Get(i) != model[i] {
					return false
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicSetReturnsTrueExactlyOnce(t *testing.T) {
	a := NewAtomic(64)
	if !a.Set(10) {
		t.Fatal("first Set(10) returned false")
	}
	if a.Set(10) {
		t.Fatal("second Set(10) returned true")
	}
	if !a.Get(10) {
		t.Fatal("Get(10) false after Set")
	}
}

func TestAtomicConcurrentClaim(t *testing.T) {
	// Many goroutines race to claim each bit; exactly one should win per bit.
	const n = 4096
	const workers = 8
	a := NewAtomic(n)
	wins := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if a.Set(i) {
					wins[id]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != n {
		t.Fatalf("total successful claims = %d, want %d", total, n)
	}
	if a.Count() != n {
		t.Fatalf("Count = %d, want %d", a.Count(), n)
	}
}

func TestAtomicSnapshotAndReset(t *testing.T) {
	a := NewAtomic(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	s := a.Snapshot()
	if s.Count() != 50 {
		t.Fatalf("snapshot count = %d, want 50", s.Count())
	}
	for i := 0; i < 100; i++ {
		if s.Get(i) != (i%2 == 0) {
			t.Fatalf("snapshot bit %d = %v", i, s.Get(i))
		}
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatalf("count after reset = %d", a.Count())
	}
}

func TestAtomicOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAtomic(10).Get(11)
}

func BenchmarkSetSet(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<20 - 1))
	}
}

func BenchmarkAtomicSet(b *testing.B) {
	a := NewAtomic(1 << 20)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a.Set(i & (1<<20 - 1))
			i++
		}
	})
}
