// Package control implements the adaptive relaxation controller behind
// relaxd's -jobsched auto mode: a feedback loop that tunes how much
// scheduling relaxation the service buys itself, online, from the metrics
// the service already records.
//
// The paper's trade — relaxed scheduling exchanges a bounded amount of
// priority-order error for throughput — is exposed in relaxd as two static
// knobs: the job-queue relaxation k (how far from strict priority order the
// pending queue may dispatch) and the executor batch size (how many tasks a
// worker drains per scheduler acquisition, which behaves like extra
// relaxation of size B). This package closes the loop over both with one
// additive-increase / multiplicative-decrease (AIMD) policy:
//
//   - Widen (additive): when the queue is under pressure — p99 queue
//     latency above the operator's SLO, or queue depth near the admission
//     bound — relaxation is not earning its keep; raise k by KStep and the
//     batch size by BatchStep, drifting toward FIFO-like laxity.
//   - Tighten (multiplicative): when the observed windowed rank error
//     exceeds the operator's rank SLO, the service is paying more ordering
//     error than the operator contracted for; halve k and the batch size,
//     snapping back toward exact. Quality violations dominate pressure: if
//     both fire in one window, the controller tightens.
//   - Hold: otherwise leave the knobs alone.
//
// The controller is deliberately pure: Step consumes a Sample the caller
// assembled from its own sensors (internal/ranktrack for rank error, the
// service's latency rings for p99) and returns the new targets. It reads no
// clocks and no global state, so scripted load traces drive it
// deterministically in tests — see the package example and the trajectory
// tests.
package control

import "fmt"

// Default knob bounds and steps, used by Config.withDefaults.
const (
	// DefaultMaxK caps how far the controller will relax the job queue; the
	// k-bounded queue's hard rank guarantee makes this also a hard cap on
	// any single dispatch's rank error.
	DefaultMaxK = 64
	// DefaultMaxBatch caps the executor batch size.
	DefaultMaxBatch = 256
	// DefaultBatchStep is the additive batch increase per widen step.
	DefaultBatchStep = 8
	// DefaultHighWater is the queue-depth fraction of capacity above which
	// the controller widens even before the latency SLO trips.
	DefaultHighWater = 0.75
)

// Config bounds and targets for a Controller. Zero values select the
// documented defaults.
type Config struct {
	// RankSLO is the operator's bound on the windowed mean rank error
	// (pending jobs that were strictly better than the dispatched one).
	// A window whose mean exceeds it triggers a multiplicative tighten.
	RankSLO float64
	// P99SLOMs is the operator's p99 queue-latency target in milliseconds.
	// A window whose p99 exceeds it triggers an additive widen.
	P99SLOMs float64

	// MinK and MaxK bound the job-queue relaxation (defaults 1 and
	// DefaultMaxK); InitialK is the starting point (default MinK — start
	// exact, earn relaxation).
	MinK, MaxK, InitialK int
	// MinBatch and MaxBatch bound the executor batch size (defaults 1 and
	// DefaultMaxBatch); InitialBatch is the starting point (default
	// MinBatch).
	MinBatch, MaxBatch, InitialBatch int
	// KStep and BatchStep are the additive increments of a widen step
	// (defaults 1 and DefaultBatchStep).
	KStep, BatchStep int
	// HighWater is the queue-depth fraction of capacity that triggers a
	// widen on its own (default DefaultHighWater).
	HighWater float64
}

func (c Config) withDefaults() Config {
	if c.MinK == 0 {
		c.MinK = 1
	}
	if c.MaxK == 0 {
		c.MaxK = DefaultMaxK
	}
	if c.InitialK == 0 {
		c.InitialK = c.MinK
	}
	if c.MinBatch == 0 {
		c.MinBatch = 1
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.InitialBatch == 0 {
		c.InitialBatch = c.MinBatch
	}
	if c.KStep == 0 {
		c.KStep = 1
	}
	if c.BatchStep == 0 {
		c.BatchStep = DefaultBatchStep
	}
	if c.HighWater == 0 {
		c.HighWater = DefaultHighWater
	}
	return c
}

func (c Config) validate() error {
	if c.RankSLO < 0 {
		return fmt.Errorf("control: rank SLO must be non-negative, got %g", c.RankSLO)
	}
	if c.P99SLOMs < 0 {
		return fmt.Errorf("control: p99 SLO must be non-negative, got %gms", c.P99SLOMs)
	}
	if c.MinK < 1 || c.MaxK < c.MinK {
		return fmt.Errorf("control: need 1 <= MinK <= MaxK, got [%d, %d]", c.MinK, c.MaxK)
	}
	if c.InitialK < c.MinK || c.InitialK > c.MaxK {
		return fmt.Errorf("control: InitialK %d outside [%d, %d]", c.InitialK, c.MinK, c.MaxK)
	}
	if c.MinBatch < 1 || c.MaxBatch < c.MinBatch {
		return fmt.Errorf("control: need 1 <= MinBatch <= MaxBatch, got [%d, %d]", c.MinBatch, c.MaxBatch)
	}
	if c.InitialBatch < c.MinBatch || c.InitialBatch > c.MaxBatch {
		return fmt.Errorf("control: InitialBatch %d outside [%d, %d]", c.InitialBatch, c.MinBatch, c.MaxBatch)
	}
	if c.KStep < 1 || c.BatchStep < 1 {
		return fmt.Errorf("control: widen steps must be at least 1, got KStep=%d BatchStep=%d", c.KStep, c.BatchStep)
	}
	if c.HighWater <= 0 || c.HighWater > 1 {
		return fmt.Errorf("control: HighWater must be in (0, 1], got %g", c.HighWater)
	}
	return nil
}

// Sample is one control window's sensor readings, assembled by the caller
// from measurements it already makes.
type Sample struct {
	// QueueDepth is the current number of pending jobs; QueueCap is the
	// admission bound it is judged against.
	QueueDepth, QueueCap int
	// RankErr is the mean rank error of the dispatches in this window.
	// Negative means the window saw no dispatches — no quality signal, so
	// the rank check is skipped rather than misread as "perfect".
	RankErr float64
	// P99Ms is the observed p99 queue latency in milliseconds (over the
	// caller's sliding sample window; zero when it holds no samples).
	P99Ms float64
}

// Action classifies a Step's decision.
type Action string

const (
	// Widen raised k/batch additively in response to queue pressure.
	Widen Action = "widen"
	// Tighten halved k/batch in response to a rank-error SLO violation.
	Tighten Action = "tighten"
	// Hold left the knobs unchanged (no trigger, or a trigger already
	// pinned at its bound).
	Hold Action = "hold"
)

// Decision is the controller's output for one window: the knob targets the
// caller should apply.
type Decision struct {
	// K is the job-queue relaxation target.
	K int
	// Batch is the executor batch-size target.
	Batch int
	// Action records what this step did.
	Action Action
}

// Status is a snapshot of the controller's state and counters, the source
// of the controller section of /v1/metrics.
type Status struct {
	// K and Batch are the current targets.
	K, Batch int
	// Steps counts Step calls; Widened and Tightened count the steps that
	// actually moved a knob.
	Steps, Widened, Tightened int64
	// RankViolations and P99Violations count control windows whose sample
	// breached the respective SLO — breaches are counted even when the
	// knobs were already pinned at their bounds.
	RankViolations, P99Violations int64
	// LastAdjustment describes the most recent widen or tighten,
	// human-readably ("" until the first adjustment).
	LastAdjustment string
}

// Controller is the AIMD state machine. It is not safe for concurrent use;
// callers (the service's control loop) serialize Step and Status.
type Controller struct {
	cfg    Config
	k      int
	batch  int
	status Status
}

// New validates the configuration and returns a controller starting at
// InitialK/InitialBatch.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, k: cfg.InitialK, batch: cfg.InitialBatch}
	c.status.K, c.status.Batch = c.k, c.batch
	return c, nil
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Step consumes one window's sample and returns the knob targets. Rank
// violations dominate pressure: a window that breaches both SLOs tightens.
func (c *Controller) Step(s Sample) Decision {
	c.status.Steps++
	rankBreach := s.RankErr >= 0 && s.RankErr > c.cfg.RankSLO
	p99Breach := s.P99Ms > c.cfg.P99SLOMs
	depthHigh := s.QueueCap > 0 &&
		float64(s.QueueDepth) >= c.cfg.HighWater*float64(s.QueueCap)
	if rankBreach {
		c.status.RankViolations++
	}
	if p99Breach {
		c.status.P99Violations++
	}

	action := Hold
	switch {
	case rankBreach:
		nk := max(c.k/2, c.cfg.MinK)
		nb := max(c.batch/2, c.cfg.MinBatch)
		if nk != c.k || nb != c.batch {
			c.k, c.batch = nk, nb
			c.status.Tightened++
			c.status.LastAdjustment = fmt.Sprintf(
				"tighten: window rank error %.2f > SLO %.2f; k=%d batch=%d",
				s.RankErr, c.cfg.RankSLO, nk, nb)
			action = Tighten
		}
	case p99Breach || depthHigh:
		nk := min(c.k+c.cfg.KStep, c.cfg.MaxK)
		nb := min(c.batch+c.cfg.BatchStep, c.cfg.MaxBatch)
		if nk != c.k || nb != c.batch {
			cause := fmt.Sprintf("queue p99 %.0fms > SLO %.0fms", s.P99Ms, c.cfg.P99SLOMs)
			if !p99Breach {
				cause = fmt.Sprintf("queue depth %d/%d over high water", s.QueueDepth, s.QueueCap)
			}
			c.k, c.batch = nk, nb
			c.status.Widened++
			c.status.LastAdjustment = fmt.Sprintf(
				"widen: %s; k=%d batch=%d", cause, nk, nb)
			action = Widen
		}
	}
	c.status.K, c.status.Batch = c.k, c.batch
	return Decision{K: c.k, Batch: c.batch, Action: action}
}

// Status returns a snapshot of the controller's counters and current
// targets.
func (c *Controller) Status() Status { return c.status }
