package control

import (
	"strings"
	"testing"
)

// testConfig is a small, fully pinned configuration so trajectory
// expectations are easy to read: k in [1, 8] stepping by 1, batch in
// [1, 64] stepping by 4, SLOs rank<=2 / p99<=100ms, high water 0.75.
func testConfig() Config {
	return Config{
		RankSLO:   2,
		P99SLOMs:  100,
		MinK:      1,
		MaxK:      8,
		MinBatch:  1,
		MaxBatch:  64,
		BatchStep: 4,
	}
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// run feeds a scripted trace of samples and returns the k after each step.
func run(c *Controller, trace []Sample) []int {
	ks := make([]int, len(trace))
	for i, s := range trace {
		ks[i] = c.Step(s).K
	}
	return ks
}

func TestDefaults(t *testing.T) {
	c := mustNew(t, Config{RankSLO: 2, P99SLOMs: 100})
	cfg := c.Config()
	if cfg.MinK != 1 || cfg.MaxK != DefaultMaxK || cfg.InitialK != 1 {
		t.Errorf("k defaults = [%d, %d] start %d, want [1, %d] start 1",
			cfg.MinK, cfg.MaxK, cfg.InitialK, DefaultMaxK)
	}
	if cfg.MinBatch != 1 || cfg.MaxBatch != DefaultMaxBatch || cfg.InitialBatch != 1 {
		t.Errorf("batch defaults = [%d, %d] start %d, want [1, %d] start 1",
			cfg.MinBatch, cfg.MaxBatch, cfg.InitialBatch, DefaultMaxBatch)
	}
	if cfg.KStep != 1 || cfg.BatchStep != DefaultBatchStep || cfg.HighWater != DefaultHighWater {
		t.Errorf("steps = (%d, %d, %g), want (1, %d, %g)",
			cfg.KStep, cfg.BatchStep, cfg.HighWater, DefaultBatchStep, DefaultHighWater)
	}
	st := c.Status()
	if st.K != 1 || st.Batch != 1 {
		t.Errorf("initial status K=%d Batch=%d, want 1/1", st.K, st.Batch)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{RankSLO: -1},
		{P99SLOMs: -1},
		{MinK: 5, MaxK: 2},
		{MinK: 2, MaxK: 8, InitialK: 1},
		{InitialK: 100, MaxK: 8},
		{MinBatch: 9, MaxBatch: 4},
		{InitialBatch: 1000, MaxBatch: 64},
		{KStep: -1},
		{BatchStep: -2},
		{HighWater: 1.5},
		{HighWater: -0.1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) accepted an invalid config", i, cfg)
		}
	}
}

func TestHoldWhenHealthy(t *testing.T) {
	c := mustNew(t, testConfig())
	calm := Sample{QueueDepth: 2, QueueCap: 256, RankErr: 0.5, P99Ms: 20}
	for i := 0; i < 10; i++ {
		d := c.Step(calm)
		if d.Action != Hold || d.K != 1 || d.Batch != 1 {
			t.Fatalf("step %d: got %+v, want hold at k=1 batch=1", i, d)
		}
	}
	st := c.Status()
	if st.Steps != 10 || st.Widened != 0 || st.Tightened != 0 ||
		st.RankViolations != 0 || st.P99Violations != 0 {
		t.Errorf("status after calm trace = %+v", st)
	}
	if st.LastAdjustment != "" {
		t.Errorf("LastAdjustment = %q, want empty before any adjustment", st.LastAdjustment)
	}
}

func TestWidenTrajectoryUnderSustainedPressure(t *testing.T) {
	// p99 over SLO every window: k climbs additively 1, 2, 3, ... and
	// saturates at MaxK=8 after 7 steps; batch keeps climbing by 4 until it
	// hits MaxBatch=64 at step 16, after which the controller holds.
	c := mustNew(t, testConfig())
	hot := Sample{QueueDepth: 10, QueueCap: 256, RankErr: 0.5, P99Ms: 500}
	trace := make([]Sample, 20)
	for i := range trace {
		trace[i] = hot
	}
	got := run(c, trace)
	want := []int{2, 3, 4, 5, 6, 7, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("k trajectory = %v, want %v", got, want)
		}
	}
	st := c.Status()
	if st.Widened != 16 {
		t.Errorf("Widened = %d, want 16 (batch saturates at step 16, then holds)", st.Widened)
	}
	if st.P99Violations != 20 {
		t.Errorf("P99Violations = %d, want 20 (breaches count even at the cap)", st.P99Violations)
	}
	if st.Batch != 64 {
		t.Errorf("Batch = %d, want 64 (clamped at MaxBatch)", st.Batch)
	}
}

func TestTightenIsMultiplicative(t *testing.T) {
	// Drive k to the cap, then one rank breach halves it; repeated
	// breaches walk it down to MinK in log steps.
	c := mustNew(t, testConfig())
	hot := Sample{QueueDepth: 10, QueueCap: 256, RankErr: 0.5, P99Ms: 500}
	for i := 0; i < 7; i++ {
		c.Step(hot)
	}
	if k := c.Status().K; k != 8 {
		t.Fatalf("setup: k = %d, want 8", k)
	}
	// Setup left batch at 1 + 7*4 = 29. Five breaches: k halves 4, 2, 1
	// and pins; batch halves 14, 7, 3, 1 and pins — so the first four
	// steps each move a knob and the fifth holds at the floor.
	breach := Sample{QueueDepth: 10, QueueCap: 256, RankErr: 5, P99Ms: 20}
	got := run(c, []Sample{breach, breach, breach, breach, breach})
	want := []int{4, 2, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tighten trajectory = %v, want %v", got, want)
		}
	}
	st := c.Status()
	if st.Tightened != 4 {
		t.Errorf("Tightened = %d, want 4 (the floor step holds)", st.Tightened)
	}
	if st.K != 1 || st.Batch != 1 {
		t.Errorf("floor = k=%d batch=%d, want 1/1", st.K, st.Batch)
	}
	if st.RankViolations != 5 {
		t.Errorf("RankViolations = %d, want 5", st.RankViolations)
	}
	if !strings.Contains(st.LastAdjustment, "tighten") {
		t.Errorf("LastAdjustment = %q, want a tighten description", st.LastAdjustment)
	}
}

func TestRankBreachDominatesPressure(t *testing.T) {
	// A window breaching both SLOs must tighten, not widen: the quality
	// contract outranks the latency one.
	c := mustNew(t, testConfig())
	hot := Sample{QueueDepth: 10, QueueCap: 256, RankErr: 0.5, P99Ms: 500}
	for i := 0; i < 5; i++ {
		c.Step(hot)
	}
	both := Sample{QueueDepth: 255, QueueCap: 256, RankErr: 9, P99Ms: 900}
	d := c.Step(both)
	if d.Action != Tighten || d.K != 3 {
		t.Errorf("Step(both breached) = %+v, want tighten to k=3", d)
	}
	st := c.Status()
	if st.RankViolations != 1 || st.P99Violations != 6 {
		t.Errorf("violations = rank %d / p99 %d, want 1 / 6", st.RankViolations, st.P99Violations)
	}
}

func TestDepthHighWaterWidensWithoutLatencySignal(t *testing.T) {
	// A queue filling toward its admission bound widens even while p99
	// still looks fine (latency lags depth).
	c := mustNew(t, testConfig())
	deep := Sample{QueueDepth: 192, QueueCap: 256, RankErr: 0.5, P99Ms: 20}
	d := c.Step(deep)
	if d.Action != Widen || d.K != 2 {
		t.Errorf("Step(deep queue) = %+v, want widen to k=2", d)
	}
	if st := c.Status(); st.P99Violations != 0 {
		t.Errorf("P99Violations = %d, want 0 (depth widening is not an SLO breach)", st.P99Violations)
	}
	if !strings.Contains(c.Status().LastAdjustment, "depth") {
		t.Errorf("LastAdjustment = %q, want a depth cause", c.Status().LastAdjustment)
	}
}

func TestIdleWindowIsNoSignal(t *testing.T) {
	// RankErr < 0 marks a window with no dispatches: it must not be read
	// as "rank error fine" nor as a breach — with a calm queue the
	// controller holds.
	c := mustNew(t, testConfig())
	idle := Sample{QueueDepth: 0, QueueCap: 256, RankErr: -1, P99Ms: 0}
	d := c.Step(idle)
	if d.Action != Hold || d.K != 1 {
		t.Errorf("Step(idle) = %+v, want hold at k=1", d)
	}
	if st := c.Status(); st.RankViolations != 0 {
		t.Errorf("RankViolations = %d, want 0", st.RankViolations)
	}
}

func TestBurstRecoveryCycle(t *testing.T) {
	// A full scripted episode: calm → burst (widen) → overshoot (rank
	// breach, tighten) → calm again (hold at the tightened point).
	c := mustNew(t, testConfig())
	calm := Sample{QueueDepth: 1, QueueCap: 256, RankErr: 0, P99Ms: 10}
	burst := Sample{QueueDepth: 200, QueueCap: 256, RankErr: 1, P99Ms: 400}
	overshoot := Sample{QueueDepth: 50, QueueCap: 256, RankErr: 4, P99Ms: 80}

	trace := []Sample{calm, calm, burst, burst, burst, burst, overshoot, calm, calm}
	got := run(c, trace)
	want := []int{1, 1, 2, 3, 4, 5, 2, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("k trajectory = %v, want %v", got, want)
		}
	}
	st := c.Status()
	if st.Widened != 4 || st.Tightened != 1 {
		t.Errorf("Widened/Tightened = %d/%d, want 4/1", st.Widened, st.Tightened)
	}
}
