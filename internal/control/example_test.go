package control_test

import (
	"fmt"

	"relaxsched/internal/control"
)

// Example drives the controller through a scripted load episode: a calm
// queue holds the knobs at their exact-scheduler floor, sustained latency
// pressure widens them additively, and a rank-error SLO breach snaps them
// back multiplicatively.
func Example() {
	c, err := control.New(control.Config{
		RankSLO:   2,   // tolerate a windowed mean rank error of 2
		P99SLOMs:  100, // target p99 queue latency of 100ms
		MaxK:      8,
		MaxBatch:  64,
		BatchStep: 4,
	})
	if err != nil {
		panic(err)
	}

	calm := control.Sample{QueueDepth: 2, QueueCap: 256, RankErr: 0, P99Ms: 15}
	pressure := control.Sample{QueueDepth: 40, QueueCap: 256, RankErr: 1, P99Ms: 350}
	breach := control.Sample{QueueDepth: 10, QueueCap: 256, RankErr: 5, P99Ms: 60}

	for _, s := range []control.Sample{calm, pressure, pressure, pressure, breach, calm} {
		d := c.Step(s)
		fmt.Printf("%-7s k=%d batch=%d\n", d.Action, d.K, d.Batch)
	}
	st := c.Status()
	fmt.Printf("widened=%d tightened=%d rank_violations=%d\n",
		st.Widened, st.Tightened, st.RankViolations)
	// Output:
	// hold    k=1 batch=1
	// widen   k=2 batch=5
	// widen   k=3 batch=9
	// widen   k=4 batch=13
	// tighten k=2 batch=6
	// hold    k=2 batch=6
	// widened=3 tightened=1 rank_violations=1
}
