package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/multiqueue"
)

// TestRunConcurrentCancelBeforeStart: with an already-closed Cancel channel
// every worker aborts at its first batch boundary and the executor reports
// ErrCanceled instead of ErrStuck, even though tasks remain unresolved.
func TestRunConcurrentCancelBeforeStart(t *testing.T) {
	p := randomDepthProblem(500, 1500, rng.New(1))
	labels := RandomLabels(p.NumTasks(), rng.New(2))
	mq := multiqueue.NewConcurrent(8, p.NumTasks(), 3)
	cancel := make(chan struct{})
	close(cancel)
	_, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 4, Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

// gateProblem blocks every Process call until its gate channel closes, so a
// test can hold an execution mid-flight deterministically.
type gateProblem struct {
	n         int
	gate      chan struct{}
	processed atomic.Int64
}

func (p *gateProblem) NumTasks() int { return p.n }
func (p *gateProblem) NewInstance(st State) Instance {
	return &gateInstance{p: p}
}

type gateInstance struct{ p *gateProblem }

func (inst *gateInstance) Blocked(int) bool { return false }
func (inst *gateInstance) Dead(int) bool    { return false }
func (inst *gateInstance) Process(int) {
	if inst.p.processed.Add(1) == 1 {
		<-inst.p.gate // first task parks until the test fires cancellation
	}
}

// TestRunConcurrentCancelMidRun parks the execution on its first processed
// task, closes Cancel, releases the gate, and expects a prompt ErrCanceled:
// workers must notice the closed channel at the next batch boundary rather
// than draining the remaining tasks.
func TestRunConcurrentCancelMidRun(t *testing.T) {
	p := &gateProblem{n: 50_000, gate: make(chan struct{})}
	labels := IdentityLabels(p.n)
	mq := multiqueue.NewConcurrent(4, p.n, 7)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		// Batch size 1: at most one task resolves per episode, so after the
		// gate releases the worker sees the closed Cancel channel within one
		// task's worth of work.
		_, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 1, BatchSize: 1, Cancel: cancel})
		done <- err
	}()
	for p.processed.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(cancel)
	close(p.gate)
	err := <-done
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if got := p.processed.Load(); got >= int64(p.n) {
		t.Fatalf("execution ran to completion (%d tasks) despite cancellation", got)
	}
}

// perpetualProblem re-emits one follow-on item per expansion, so the dynamic
// engine never drains on its own — the test for cancellation of executions
// that would otherwise run forever.
type perpetualProblem struct {
	expanded atomic.Int64
}

func (p *perpetualProblem) Stale(int32, uint32) bool { return false }
func (p *perpetualProblem) Expand(task int32, priority uint32, em *Emitter) {
	p.expanded.Add(1)
	em.Emit(task, priority+1)
}
func (p *perpetualProblem) Done() bool { return false }

// TestRunDynamicConcurrentCancel aborts a dynamic execution that would never
// terminate by itself; only Cancel can stop it.
func TestRunDynamicConcurrentCancel(t *testing.T) {
	p := &perpetualProblem{}
	mq := multiqueue.NewConcurrent(4, 1024, 11)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := RunDynamicConcurrent(p, []sched.Item{{Task: 0, Priority: 0}}, mq, DynamicOptions{Workers: 2, Cancel: cancel})
		done <- err
	}()
	for p.expanded.Load() < 100 {
		time.Sleep(100 * time.Microsecond)
	}
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("got %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dynamic execution did not abort after cancellation")
	}
}

// TestCancelNilChannelIsInert: a nil Cancel channel must not change behavior
// — the executions complete exactly as before the option existed.
func TestCancelNilChannelIsInert(t *testing.T) {
	p := randomDepthProblem(300, 900, rng.New(5))
	labels := RandomLabels(p.NumTasks(), rng.New(6))
	mq := multiqueue.NewConcurrent(8, p.NumTasks(), 9)
	res, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 4, Cancel: nil})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != int64(p.NumTasks()) {
		t.Fatalf("processed %d of %d tasks", res.Processed, p.NumTasks())
	}
}
