package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"relaxsched/internal/sched"
)

// DefaultBatchSize is the number of tasks a worker requests from the
// scheduler per synchronization episode when ConcurrentOptions.BatchSize is
// zero. Batching amortizes one scheduler acquisition (a sub-queue lock, a
// fetch-and-add) over the whole batch; the value is a compromise between
// amortization and the extra relaxation a batch introduces (popping B items
// at once behaves like a scheduler whose rank bound grew by B).
const DefaultBatchSize = 16

// ConcurrentOptions configures RunConcurrent.
type ConcurrentOptions struct {
	// Workers is the number of goroutines processing tasks. It must be at
	// least 1.
	Workers int
	// BlockedPolicy selects what a worker does with a task that is delivered
	// while blocked: Reinsert (default, the relaxed framework of Algorithm 2)
	// or Wait (the backoff scheme the paper uses with its exact scheduler).
	BlockedPolicy Policy
	// BatchSize is the number of tasks a worker requests from the scheduler
	// per acquisition. Zero selects DefaultBatchSize; 1 reproduces the
	// single-item delivery discipline exactly. Failed-delete re-inserts are
	// flushed back in batches of the same size.
	BatchSize int
	// Cancel, when non-nil, aborts the execution as soon as the channel is
	// closed (a context's Done channel fits directly): workers stop at their
	// next batch boundary and RunConcurrent returns ErrCanceled. The
	// instance's state is then partial and must be discarded. A nil channel
	// disables cancellation at no cost to the hot loop.
	Cancel <-chan struct{}
	// Tunable, when non-nil, supplies the batch size dynamically: workers
	// re-read it at every batch episode, so an external controller
	// (internal/control) can retune a running execution. It overrides
	// BatchSize; its value at start seeds the workers' buffers. Nil keeps
	// the static BatchSize path at no cost.
	Tunable *TunableOptions
}

// WorkerResult reports per-worker counters from a concurrent execution.
type WorkerResult struct {
	Processed     int64
	DeadSkips     int64
	FailedDeletes int64
	Waits         int64
	EmptyPolls    int64
}

// ConcurrentResult extends Result with per-worker detail.
type ConcurrentResult struct {
	Result
	Workers []WorkerResult
}

// workerState is one worker's execution-time state, laid out as two 64-byte
// cache lines: the first holds the counters only the owning worker writes,
// the second holds the cross-worker-read resolved counter. Without the
// padding, up to three workers' counters land on one line and every
// Processed++ invalidates the others' caches; without the split, idle
// workers' termination-check loads of resolved would pull the owner's hot
// counter line into shared state and each owner increment would pay a
// coherence miss.
type workerState struct {
	WorkerResult               // 40 bytes, written only by the owning worker
	_            [64 - 40]byte // rest of the owner-private cache line
	// resolved is the number of tasks this worker has resolved (processed or
	// skipped as dead) and published. Each resolved task is counted by
	// exactly one worker, so the sum across workers is exact whenever all
	// workers have published — which they do before every termination check.
	resolved atomic.Int64
	_        [64 - 8]byte
}

// Compile-time guard: workerState must stay exactly two 64-byte cache
// lines. Adding a counter to WorkerResult without re-padding breaks this
// assignment instead of silently re-introducing false sharing.
var _ [128]byte = [unsafe.Sizeof(workerState{})]byte{}

// sumResolved returns the total number of published resolved tasks.
func sumResolved(states []workerState) int64 {
	var total int64
	for i := range states {
		total += states[i].resolved.Load()
	}
	return total
}

// RunConcurrent executes the problem with worker goroutines sharing a
// concurrent scheduler, as in the paper's Figure 2 experiments. The problem
// instance must be safe for concurrent calls on distinct tasks (all the
// algos packages in this library are). The output is identical to
// RunSequential with the same labels.
//
// Each worker drains the scheduler in batches (see
// ConcurrentOptions.BatchSize), so one scheduler acquisition is amortized
// over many tasks, and re-inserts blocked tasks in batches likewise.
// Termination is tracked with per-worker resolved-task counters rather than
// scheduler emptiness (a concurrent scheduler may transiently report empty
// while another worker holds the last tasks) or a single shared countdown
// (which every worker would hammer): a worker publishes its delta after each
// batch and performs the exact sum check only when it finds the scheduler
// empty.
func RunConcurrent(p Problem, labels []uint32, s sched.Concurrent, opts ConcurrentOptions) (ConcurrentResult, error) {
	n := p.NumTasks()
	if err := validateLabels(n, labels); err != nil {
		return ConcurrentResult{}, err
	}
	if s == nil {
		return ConcurrentResult{}, ErrNilScheduler
	}
	if opts.Workers < 1 {
		return ConcurrentResult{}, fmt.Errorf("%w: got %d", ErrNoWorkers, opts.Workers)
	}
	if opts.BatchSize < 0 {
		return ConcurrentResult{}, fmt.Errorf("%w: got %d", ErrBadBatch, opts.BatchSize)
	}
	policy := opts.BlockedPolicy
	if policy == 0 {
		policy = Reinsert
	}
	batch := opts.BatchSize
	if batch == 0 {
		batch = DefaultBatchSize
	}
	if opts.Tunable != nil {
		batch = opts.Tunable.Batch()
	}

	st := newConcState(labels)
	inst := p.NewInstance(st)

	// Load every task in priority order so an exact FIFO scheduler dispenses
	// them exactly as Algorithm 1 would, with one batch insert: batch
	// implementations preserve intra-batch order where order is meaningful
	// and shard internally where spreading matters, so a single call both
	// amortizes the preload's synchronization and keeps the schedulers'
	// distribution properties.
	items := make([]sched.Item, n)
	for pos, task := range TasksByLabel(labels) {
		items[pos] = sched.Item{Task: task, Priority: labels[task]}
	}
	s.InsertBatch(items)

	states := make([]workerState, opts.Workers)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(inst, st, s, policy, batch, opts.Tunable, int64(n), states, w, opts.Cancel, &canceled)
		}(w)
	}
	wg.Wait()

	if canceled.Load() {
		return ConcurrentResult{}, fmt.Errorf("%w after %d of %d tasks", ErrCanceled, sumResolved(states), n)
	}
	if resolved := sumResolved(states); resolved != int64(n) {
		return ConcurrentResult{}, fmt.Errorf("%w: %d tasks unresolved", ErrStuck, int64(n)-resolved)
	}

	res := ConcurrentResult{Workers: make([]WorkerResult, opts.Workers)}
	res.Instance = inst
	for w := range states {
		wr := states[w].WorkerResult
		res.Workers[w] = wr
		res.Processed += wr.Processed
		res.DeadSkips += wr.DeadSkips
		res.FailedDeletes += wr.FailedDeletes
		res.Waits += wr.Waits
		res.EmptyPolls += wr.EmptyPolls
	}
	res.Iterations = res.Processed + res.DeadSkips + res.FailedDeletes
	return res, nil
}

func runWorker(inst Instance, st *concState, s sched.Concurrent, policy Policy, batch int, tun *TunableOptions, total int64, states []workerState, self int, cancel <-chan struct{}, canceled *atomic.Bool) {
	ws := &states[self]
	wr := &ws.WorkerResult
	// The worker-affine scheduler view and the pooled pop/re-insert buffers
	// — see runDynamicWorker, which does the same.
	s = sched.ForWorker(s, self, len(states))
	sc := getScratch(batch)
	buf := sc.buf
	reinsert := sc.aux
	defer func() {
		sc.buf = buf
		sc.aux = reinsert
		putScratch(sc)
	}()
	var backoff idleBackoff
	var unpublished int64

	for {
		// Pick up a retuned batch size at the episode boundary (no-op
		// without a tunable; one atomic load with one).
		buf = episodeBatch(tun, buf)
		// One non-blocking cancellation check per batch episode; the reinsert
		// buffer is always empty here, so publishing the local delta is all
		// the cleanup an abort needs. A nil channel is never ready.
		select {
		case <-cancel:
			if unpublished != 0 {
				ws.resolved.Add(unpublished)
			}
			canceled.Store(true)
			return
		default:
		}
		n := s.ApproxPopBatch(buf)
		if n == 0 {
			wr.EmptyPolls++
			// The re-insert buffer is always empty here (it is flushed after
			// every batch), so publishing the local delta makes the global
			// sum exact: if it covers every task, the execution is complete.
			if unpublished != 0 {
				ws.resolved.Add(unpublished)
				unpublished = 0
			}
			if sumResolved(states) == total {
				return
			}
			backoff.wait()
			continue
		}
		backoff.reset()

		items := buf[:n]
		sortBatch(items)
		for _, it := range items {
			v := int(it.Task)
			if inst.Dead(v) {
				wr.DeadSkips++
				unpublished++
				continue
			}
			if inst.Blocked(v) {
				released := false
				if policy == Wait {
					wr.Waits++
					released = spinUntilUnblocked(inst, v)
				}
				if !released {
					wr.FailedDeletes++
					reinsert = append(reinsert, it)
					continue
				}
			}
			// The task may have been killed while it was blocked (an MIS
			// neighbor of higher priority joined the independent set); the
			// re-check keeps the output identical to the sequential execution.
			if inst.Dead(v) {
				wr.DeadSkips++
				unpublished++
				continue
			}
			inst.Process(v)
			st.markProcessed(v)
			wr.Processed++
			unpublished++
		}
		allBlocked := len(reinsert) == len(items)
		if len(reinsert) > 0 {
			s.InsertBatch(reinsert)
			reinsert = reinsert[:0]
		}
		if unpublished != 0 {
			ws.resolved.Add(unpublished)
			unpublished = 0
		}
		if allBlocked && len(states) > 1 {
			// Every task in the episode was a failed delete: each one waits on
			// a blocker another worker holds in flight, so re-popping
			// immediately would spin on the same minima until that worker runs
			// again — with more goroutines than cores, potentially a whole
			// scheduling slice of pure churn (the worker-affine multiqueue's
			// extra sampling accuracy makes it especially good at re-finding
			// the blocked minima it just re-inserted). Yield the P so the
			// blocker's owner can finish; on real parallel hardware blockers
			// resolve in microseconds and a zero-progress episode is rare.
			// With a single worker the blockers are still IN the scheduler —
			// spinning is productive (later pops deliver them) and yielding
			// would only hand the P to unrelated goroutines, so don't.
			runtime.Gosched()
		}
	}
}

// sortBatch orders a delivered batch by scheduling priority, so intra-batch
// dependencies are handled in dependency order (a blocked task whose blocker
// sits later in the same batch would otherwise always be a failed delete)
// and so an exact scheduler's batches replay the sequential order. Batches
// arrive mostly sorted — heap-backed schedulers pop minima in increasing
// order and FIFO batches are preloaded in priority order — so insertion sort
// runs in effectively linear time.
func sortBatch(items []sched.Item) {
	for i := 1; i < len(items); i++ {
		it := items[i]
		j := i - 1
		for j >= 0 && it.Less(items[j]) {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = it
	}
}

// Idle backoff thresholds: a worker that keeps finding the scheduler empty
// first busy-spins (refills usually arrive within nanoseconds), then yields
// its P, then sleeps with exponentially growing duration. Sleeping workers
// stop burning CPU while the last tasks drain, at a bounded cost to wakeup
// latency.
const (
	backoffSpinLimit  = 32
	backoffYieldLimit = 64
	backoffSleepCap   = 128 * time.Microsecond
)

// idleBackoff tracks consecutive empty polls and escalates the waiting
// strategy accordingly.
type idleBackoff struct {
	idle int
}

func (b *idleBackoff) reset() { b.idle = 0 }

func (b *idleBackoff) wait() {
	b.idle++
	switch {
	case b.idle <= backoffSpinLimit:
		// Busy-spin: cheapest reaction to a transient empty.
	case b.idle <= backoffYieldLimit:
		runtime.Gosched()
	default:
		d := time.Microsecond << uint(min(b.idle-backoffYieldLimit-1, 7))
		if d > backoffSleepCap {
			d = backoffSleepCap
		}
		time.Sleep(d)
	}
}

// spinUntilUnblocked waits for v's blocking dependencies to resolve and
// reports whether they did. The wait is bounded: if the dependencies do not
// resolve within the budget (for example because this is the only worker and
// the predecessor is still sitting in the scheduler), the caller falls back
// to re-inserting the task so the execution always makes progress.
func spinUntilUnblocked(inst Instance, v int) bool {
	const maxSpins = 1 << 14
	for spin := 0; spin < maxSpins; spin++ {
		if inst.Dead(v) || !inst.Blocked(v) {
			return true
		}
		if spin > 16 {
			runtime.Gosched()
		}
	}
	return false
}
