package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"relaxsched/internal/sched"
)

// ConcurrentOptions configures RunConcurrent.
type ConcurrentOptions struct {
	// Workers is the number of goroutines processing tasks. It must be at
	// least 1.
	Workers int
	// BlockedPolicy selects what a worker does with a task that is delivered
	// while blocked: Reinsert (default, the relaxed framework of Algorithm 2)
	// or Wait (the backoff scheme the paper uses with its exact scheduler).
	BlockedPolicy Policy
}

// WorkerResult reports per-worker counters from a concurrent execution.
type WorkerResult struct {
	Processed     int64
	DeadSkips     int64
	FailedDeletes int64
	Waits         int64
	EmptyPolls    int64
}

// ConcurrentResult extends Result with per-worker detail.
type ConcurrentResult struct {
	Result
	Workers []WorkerResult
}

// RunConcurrent executes the problem with worker goroutines sharing a
// concurrent scheduler, as in the paper's Figure 2 experiments. The problem
// instance must be safe for concurrent calls on distinct tasks (all the
// algos packages in this library are). The output is identical to
// RunSequential with the same labels.
//
// Termination is tracked with an outstanding-task counter rather than
// scheduler emptiness, because a concurrent scheduler may transiently report
// empty while another worker holds the last tasks.
func RunConcurrent(p Problem, labels []uint32, s sched.Concurrent, opts ConcurrentOptions) (ConcurrentResult, error) {
	n := p.NumTasks()
	if err := validateLabels(n, labels); err != nil {
		return ConcurrentResult{}, err
	}
	if s == nil {
		return ConcurrentResult{}, ErrNilScheduler
	}
	if opts.Workers < 1 {
		return ConcurrentResult{}, fmt.Errorf("%w: got %d", ErrNoWorkers, opts.Workers)
	}
	policy := opts.BlockedPolicy
	if policy == 0 {
		policy = Reinsert
	}

	st := newConcState(labels)
	inst := p.NewInstance(st)

	// Load every task in priority order so an exact FIFO scheduler dispenses
	// them exactly as Algorithm 1 would.
	for _, task := range TasksByLabel(labels) {
		s.Insert(sched.Item{Task: task, Priority: labels[task]})
	}

	var remaining atomic.Int64
	remaining.Store(int64(n))

	workers := make([]WorkerResult, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(inst, st, s, policy, &remaining, &workers[w])
		}(w)
	}
	wg.Wait()

	if remaining.Load() != 0 {
		return ConcurrentResult{}, fmt.Errorf("%w: %d tasks unresolved", ErrStuck, remaining.Load())
	}

	res := ConcurrentResult{Workers: workers}
	res.Instance = inst
	for _, wr := range workers {
		res.Processed += wr.Processed
		res.DeadSkips += wr.DeadSkips
		res.FailedDeletes += wr.FailedDeletes
		res.Waits += wr.Waits
		res.EmptyPolls += wr.EmptyPolls
	}
	res.Iterations = res.Processed + res.DeadSkips + res.FailedDeletes
	return res, nil
}

func runWorker(inst Instance, st *concState, s sched.Concurrent, policy Policy, remaining *atomic.Int64, wr *WorkerResult) {
	idleSpins := 0
	for {
		if remaining.Load() == 0 {
			return
		}
		it, ok := s.ApproxGetMin()
		if !ok {
			wr.EmptyPolls++
			idleSpins++
			if idleSpins > 32 {
				runtime.Gosched()
			}
			continue
		}
		idleSpins = 0
		v := int(it.Task)

		if inst.Dead(v) {
			wr.DeadSkips++
			remaining.Add(-1)
			continue
		}
		if inst.Blocked(v) {
			released := false
			if policy == Wait {
				wr.Waits++
				released = spinUntilUnblocked(inst, v)
			}
			if !released {
				wr.FailedDeletes++
				s.Insert(it)
				continue
			}
		}
		// The task may have been killed while it was blocked (an MIS
		// neighbor of higher priority joined the independent set); the
		// re-check keeps the output identical to the sequential execution.
		if inst.Dead(v) {
			wr.DeadSkips++
			remaining.Add(-1)
			continue
		}
		inst.Process(v)
		st.markProcessed(v)
		wr.Processed++
		remaining.Add(-1)
	}
}

// spinUntilUnblocked waits for v's blocking dependencies to resolve and
// reports whether they did. The wait is bounded: if the dependencies do not
// resolve within the budget (for example because this is the only worker and
// the predecessor is still sitting in the scheduler), the caller falls back
// to re-inserting the task so the execution always makes progress.
func spinUntilUnblocked(inst Instance, v int) bool {
	const maxSpins = 1 << 14
	for spin := 0; spin < maxSpins; spin++ {
		if inst.Dead(v) || !inst.Blocked(v) {
			return true
		}
		if spin > 16 {
			runtime.Gosched()
		}
	}
	return false
}
