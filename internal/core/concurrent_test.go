package core

import (
	"errors"
	"testing"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
)

func TestRunConcurrentBatchSizeOneMatchesSequential(t *testing.T) {
	// BatchSize 1 reproduces the single-item delivery discipline: every
	// scheduler acquisition delivers at most one task. The output must equal
	// the sequential one and the counter identities must hold exactly as in
	// the unbatched executor.
	r := rng.New(71)
	p := randomDepthProblem(1500, 6000, r)
	labels := RandomLabels(1500, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*depthInstance).depth

	for _, workers := range []int{1, 4} {
		mq := multiqueue.NewConcurrent(4*workers, 1500, uint64(workers))
		res, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: workers, BatchSize: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Instance.(*depthInstance).depth
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d batch=1: depth[%d] = %d, want %d", workers, v, got[v], want[v])
			}
		}
		if res.Processed != 1500 {
			t.Fatalf("workers=%d batch=1: processed %d", workers, res.Processed)
		}
		if res.Iterations != res.Processed+res.DeadSkips+res.FailedDeletes {
			t.Fatalf("workers=%d batch=1: iteration accounting inconsistent: %+v", workers, res.Result)
		}
	}
}

func TestRunConcurrentBatchSizeSweepDeterministic(t *testing.T) {
	// Every batch size — including ones larger than the task count — must
	// produce the sequential output, for both a plain dependency problem and
	// one exercising the Dead shortcut.
	r := rng.New(73)
	const n = 1200
	p := &killerProblem{n: n, adj: randomDepthProblem(n, 5000, r).adj}
	labels := RandomLabels(n, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*killerInstance).selection()

	for _, batch := range []int{1, 2, 3, DefaultBatchSize, 64, 2 * n} {
		mq := multiqueue.NewConcurrent(16, n, uint64(batch))
		res, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 4, BatchSize: batch})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		got := res.Instance.(*killerInstance).selection()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("batch=%d: selected[%d] = %v, want %v", batch, v, got[v], want[v])
			}
		}
		if res.Processed+res.DeadSkips != n {
			t.Fatalf("batch=%d: processed+skips = %d, want %d", batch, res.Processed+res.DeadSkips, n)
		}
	}
}

func TestRunConcurrentWaitPolicyUnderContention(t *testing.T) {
	// The Wait policy on an exact FIFO with a long dependency chain forces
	// real predecessor waiting: vertex i+1 is dispensed while vertex i is
	// frequently still unprocessed on another worker. Run with enough
	// workers that waiting and the bounded-spin fallback both occur; the
	// race detector watches the Blocked/Process interplay.
	const n = 3000
	p := newDepthProblem(n, chainEdges(n))
	labels := IdentityLabels(n)

	for _, batch := range []int{1, DefaultBatchSize} {
		q := faaqueue.New(n)
		res, err := RunConcurrent(p, labels, q, ConcurrentOptions{Workers: 6, BlockedPolicy: Wait, BatchSize: batch})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		depths := res.Instance.(*depthInstance).depth
		for i, d := range depths {
			if d != int32(i) {
				t.Fatalf("batch=%d: depth[%d] = %d, want %d", batch, i, d, i)
			}
		}
		if res.Processed != n {
			t.Fatalf("batch=%d: processed %d", batch, res.Processed)
		}
	}
}

func TestRunConcurrentRejectsNegativeBatch(t *testing.T) {
	p := newDepthProblem(2, nil)
	mq := multiqueue.NewConcurrent(2, 2, 1)
	_, err := RunConcurrent(p, IdentityLabels(2), mq, ConcurrentOptions{Workers: 1, BatchSize: -1})
	if !errors.Is(err, ErrBadBatch) {
		t.Fatalf("expected ErrBadBatch, got %v", err)
	}
}

func TestRunConcurrentLockedBatcherScheduler(t *testing.T) {
	// The coarse-locked deterministic k-bounded queue exercises the
	// sched.Batcher fast path inside Locked: one lock acquisition per batch.
	r := rng.New(77)
	p := randomDepthProblem(900, 3600, r)
	labels := RandomLabels(900, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*depthInstance).depth

	s := sched.NewLocked(kbounded.New(16, 900))
	res, err := RunConcurrent(p, labels, s, ConcurrentOptions{Workers: 4, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Instance.(*depthInstance).depth
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestRunConcurrentEmptyPollsAccountedWithBackoff(t *testing.T) {
	// With far more workers than tasks, most workers find the scheduler
	// empty, back off, and exit through the termination check. EmptyPolls
	// must record those polls (the backoff must not bypass accounting), and
	// the execution must terminate promptly despite sleeping workers.
	const n = 4
	p := newDepthProblem(n, chainEdges(n))
	labels := IdentityLabels(n)
	mq := multiqueue.NewConcurrent(4, n, 9)
	res, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != n {
		t.Fatalf("processed %d, want %d", res.Processed, n)
	}
	if res.EmptyPolls == 0 {
		t.Fatal("expected nonzero EmptyPolls with 8 workers and 4 tasks")
	}
	var perWorker int64
	for _, wr := range res.Workers {
		perWorker += wr.EmptyPolls
	}
	if perWorker != res.EmptyPolls {
		t.Fatalf("per-worker EmptyPolls sum %d != aggregate %d", perWorker, res.EmptyPolls)
	}
}

func TestSortBatch(t *testing.T) {
	items := []sched.Item{
		{Task: 3, Priority: 9},
		{Task: 1, Priority: 2},
		{Task: 2, Priority: 2},
		{Task: 0, Priority: 0},
	}
	sortBatch(items)
	for i := 1; i < len(items); i++ {
		if items[i].Less(items[i-1]) {
			t.Fatalf("batch not sorted at %d: %v", i, items)
		}
	}
	if items[0].Task != 0 || items[1].Task != 1 || items[2].Task != 2 || items[3].Task != 3 {
		t.Fatalf("unexpected order: %v", items)
	}
	sortBatch(nil) // must not panic
}

func TestIdleBackoffEscalates(t *testing.T) {
	// The backoff never panics, spins first, and resets cleanly. (The
	// sleeping tier is exercised implicitly by every drain in the suite; its
	// durations are capped, so calling it a few times stays fast.)
	var b idleBackoff
	for i := 0; i < backoffYieldLimit+3; i++ {
		b.wait()
	}
	if b.idle != backoffYieldLimit+3 {
		t.Fatalf("idle counter = %d", b.idle)
	}
	b.reset()
	if b.idle != 0 {
		t.Fatal("reset did not clear the idle counter")
	}
}
