// Package core implements the two executor families every workload in this
// repository runs on: the paper's execution framework for iterative
// algorithms with explicit dependencies (Section 2), and a dynamic-priority
// engine for workloads whose priorities change at runtime.
//
// # The static framework
//
// A Problem describes a set of n tasks and, once bound to an execution via
// NewInstance, can answer two questions about a task — is it Blocked (does it
// still have an unprocessed higher-priority dependency) and is it Dead (has
// it become unnecessary, the Algorithm 4 shortcut) — and can Process it.
// Tasks are totally ordered by a priority permutation; the framework
// guarantees that a task is processed only after all of its higher-priority
// dependencies have been resolved, which makes the output identical to the
// sequential algorithm's regardless of how relaxed the scheduler is.
//
// Three executors are provided:
//
//   - RunSequential — Algorithm 1: an exact scheduler delivers tasks in
//     strict priority order; every task is handled exactly once.
//   - RunRelaxed — Algorithms 2 and 4 in the paper's sequential model: a
//     (possibly relaxed) scheduler delivers tasks, blocked tasks are
//     re-inserted ("failed deletes"), dead tasks are skipped.
//   - RunConcurrent — the shared-memory version used for the paper's Figure 2
//     experiments: worker goroutines share a concurrent scheduler and
//     process tasks in parallel, preserving determinism through the same
//     Blocked checks.
//
// # The dynamic engine
//
// Shortest paths, k-core peeling and residual-push PageRank do not fit the
// framework: their priorities are tentative quantities (distances, degrees,
// residual mass) that change during the execution, and expansion generates
// new work. They implement DynamicProblem — a once-per-item staleness check
// plus an expansion emitting follow-on items through an Emitter — and run on
// RunDynamic (sequential model) or RunDynamicConcurrent (batched workers
// with per-worker-balance termination); see dynamic.go and the
// ExampleRunDynamic godoc. Exactness comes from the problem's monotone state
// updates, so relaxation costs only stale pops and re-evaluations, never
// wrong output.
//
// Workloads of both families register in internal/workload, which is how the
// CLIs and the bench harness reach them.
package core

import (
	"errors"
	"fmt"

	"relaxsched/internal/bitset"
	"relaxsched/internal/rng"
)

// State is the view of execution state a problem instance may query. The
// implementation backing RunConcurrent is safe for concurrent use.
type State interface {
	// NumTasks returns the number of tasks in the execution.
	NumTasks() int
	// Processed reports whether task v has been processed.
	Processed(v int) bool
	// Label returns the priority label of task v: its position in the
	// priority permutation, with 0 the highest priority.
	Label(v int) uint32
}

// LabelView is an optional State extension: states whose labels live in a
// flat slice expose it so per-neighbor hot loops can read labels without an
// interface call per entry. The returned slice is the fixed priority
// permutation and must not be modified.
type LabelView interface {
	Labels() []uint32
}

// LabelsOf returns the flat label slice of st, borrowing it via LabelView
// when available and materializing a copy with n Label queries otherwise.
// Problem instances call it once at binding time so their Blocked/Process
// loops index a slice instead of dispatching through the State interface for
// every neighbor scanned.
func LabelsOf(st State) []uint32 {
	if lv, ok := st.(LabelView); ok {
		return lv.Labels()
	}
	labels := make([]uint32, st.NumTasks())
	for v := range labels {
		labels[v] = st.Label(v)
	}
	return labels
}

// Problem describes an iterative algorithm with explicit dependencies.
// Implementations live in the algos sub-packages (MIS, matching, coloring,
// list contraction, Knuth shuffle).
type Problem interface {
	// NumTasks returns the number of tasks the problem defines.
	NumTasks() int
	// NewInstance binds the problem to an execution. The instance may keep
	// the State and query it lazily. Instances used with RunConcurrent must
	// be safe for concurrent calls on distinct tasks.
	NewInstance(st State) Instance
}

// Instance is a Problem bound to a single execution.
type Instance interface {
	// Blocked reports whether task v still has an unprocessed, live
	// higher-priority dependency and therefore cannot be processed yet.
	Blocked(v int) bool
	// Dead reports whether task v no longer needs processing (e.g. an MIS
	// vertex with a neighbor already in the independent set). Problems
	// without this shortcut simply return false.
	Dead(v int) bool
	// Process executes task v. The framework calls Process at most once per
	// task and only when the task is neither Blocked nor Dead.
	Process(v int)
}

// Policy selects how executors handle a task that is delivered while still
// blocked on a higher-priority dependency.
type Policy int

const (
	// Reinsert puts the blocked task back into the scheduler and moves on —
	// the behaviour of Algorithm 2/4 and the right choice for relaxed
	// schedulers.
	Reinsert Policy = iota + 1
	// Wait spins until the blocking dependencies resolve — the behaviour of
	// the paper's exact concurrent framework ("we elect to use a backoff
	// scheme wherein if an unprocessed predecessor is encountered, we wait
	// for the predecessor to process").
	Wait
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Reinsert:
		return "reinsert"
	case Wait:
		return "wait"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Result reports what an execution did. Counters follow the paper's cost
// model: Iterations counts scheduler deliveries (successful ApproxGetMin
// calls), of which FailedDeletes were wasted on blocked tasks and DeadSkips
// discarded dead tasks; the "extra iterations" of Table 1 are
// Iterations - NumTasks.
type Result struct {
	// Processed is the number of tasks actually processed.
	Processed int64
	// DeadSkips is the number of deliveries that found the task dead.
	DeadSkips int64
	// FailedDeletes is the number of deliveries that found the task blocked
	// and re-inserted it (Reinsert policy only).
	FailedDeletes int64
	// Waits is the number of deliveries that found the task blocked and
	// spun until it was released (Wait policy only).
	Waits int64
	// Iterations is the total number of successful scheduler deliveries.
	Iterations int64
	// EmptyPolls is the number of ApproxGetMin calls that returned nothing
	// while work remained (concurrent executions only).
	EmptyPolls int64
	// Instance is the bound problem instance, from which callers retrieve
	// the algorithm's output.
	Instance Instance
}

// ExtraIterations returns Iterations minus the number of processed and
// skipped tasks — the paper's "number of extra iterations due to relaxation".
func (r Result) ExtraIterations() int64 {
	return r.Iterations - r.Processed - r.DeadSkips
}

// Errors returned by the executors.
var (
	// ErrBadPermutation indicates the label slice is not a permutation of
	// [0, NumTasks).
	ErrBadPermutation = errors.New("core: labels are not a permutation of the task set")
	// ErrStuck indicates the scheduler ran dry while unresolved tasks
	// remained, which means the Problem's dependency structure is cyclic or
	// its Blocked implementation is inconsistent.
	ErrStuck = errors.New("core: scheduler empty but unresolved tasks remain")
	// ErrNoWorkers indicates RunConcurrent was asked to run with fewer than
	// one worker.
	ErrNoWorkers = errors.New("core: worker count must be at least 1")
	// ErrNilScheduler indicates a nil scheduler or scheduler factory.
	ErrNilScheduler = errors.New("core: scheduler must not be nil")
	// ErrBadBatch indicates RunConcurrent was given a negative batch size.
	ErrBadBatch = errors.New("core: batch size must not be negative")
	// ErrCanceled indicates a concurrent execution was aborted through the
	// options' Cancel channel before it completed. The problem's state is
	// left partially updated and must be discarded.
	ErrCanceled = errors.New("core: execution canceled")
)

// RandomLabels returns a uniformly random priority permutation for n tasks:
// element v is the label (priority position) of task v.
func RandomLabels(n int, r *rng.Rand) []uint32 {
	labels := make([]uint32, n)
	perm := r.Perm(n)
	for pos, task := range perm {
		labels[task] = uint32(pos)
	}
	return labels
}

// IdentityLabels returns the identity permutation, i.e. task v has priority
// v. Problems whose iteration order is inherent (such as the Knuth shuffle)
// use it.
func IdentityLabels(n int) []uint32 {
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	return labels
}

// TasksByLabel returns task ids sorted by increasing label, i.e. the
// permutation π with π[i] = the task of priority i. It is the inverse of the
// labels slice and is used to preload exact FIFO schedulers in priority
// order.
func TasksByLabel(labels []uint32) []int32 {
	order := make([]int32, len(labels))
	for task, label := range labels {
		order[label] = int32(task)
	}
	return order
}

// validateLabels checks that labels is a permutation of [0, n).
func validateLabels(n int, labels []uint32) error {
	if len(labels) != n {
		return fmt.Errorf("%w: got %d labels for %d tasks", ErrBadPermutation, len(labels), n)
	}
	seen := bitset.New(n)
	for _, l := range labels {
		if int(l) >= n {
			return fmt.Errorf("%w: label %d out of range", ErrBadPermutation, l)
		}
		if seen.Get(int(l)) {
			return fmt.Errorf("%w: label %d repeated", ErrBadPermutation, l)
		}
		seen.Set(int(l))
	}
	return nil
}
