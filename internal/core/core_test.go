package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

// depthProblem is a small dependency-graph problem used to exercise the
// executors: Process(v) assigns v a depth one larger than the maximum depth
// of its higher-priority neighbors. The resulting depth vector is a
// deterministic function of (graph, labels), so comparing it across executors
// and schedulers checks determinism end to end.
type depthProblem struct {
	n   int
	adj [][]int32
}

func newDepthProblem(n int, edges [][2]int32) *depthProblem {
	p := &depthProblem{n: n, adj: make([][]int32, n)}
	for _, e := range edges {
		p.adj[e[0]] = append(p.adj[e[0]], e[1])
		p.adj[e[1]] = append(p.adj[e[1]], e[0])
	}
	return p
}

func randomDepthProblem(n, m int, r *rng.Rand) *depthProblem {
	edges := make([][2]int32, 0, m)
	for len(edges) < m {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
	}
	return newDepthProblem(n, edges)
}

func (p *depthProblem) NumTasks() int { return p.n }

func (p *depthProblem) NewInstance(st State) Instance {
	return &depthInstance{p: p, st: st, depth: make([]int32, p.n)}
}

type depthInstance struct {
	p     *depthProblem
	st    State
	depth []int32
}

func (inst *depthInstance) Blocked(v int) bool {
	lv := inst.st.Label(v)
	for _, u := range inst.p.adj[v] {
		if inst.st.Label(int(u)) < lv && !inst.st.Processed(int(u)) {
			return true
		}
	}
	return false
}

func (inst *depthInstance) Dead(int) bool { return false }

func (inst *depthInstance) Process(v int) {
	lv := inst.st.Label(v)
	var d int32
	for _, u := range inst.p.adj[v] {
		if inst.st.Label(int(u)) < lv && inst.depth[u]+1 > d {
			d = inst.depth[u] + 1
		}
	}
	inst.depth[v] = d
}

// killerProblem exercises the Dead shortcut: processing a task kills all of
// its higher-labelled neighbors (like MIS), and killed tasks must never be
// processed.
type killerProblem struct {
	n   int
	adj [][]int32
}

func newKillerProblem(n int, edges [][2]int32) *killerProblem {
	p := &killerProblem{n: n, adj: make([][]int32, n)}
	for _, e := range edges {
		p.adj[e[0]] = append(p.adj[e[0]], e[1])
		p.adj[e[1]] = append(p.adj[e[1]], e[0])
	}
	return p
}

func (p *killerProblem) NumTasks() int { return p.n }

func (p *killerProblem) NewInstance(st State) Instance {
	return &killerInstance{
		p:        p,
		st:       st,
		dead:     make([]atomic.Bool, p.n),
		selected: make([]atomic.Bool, p.n),
	}
}

type killerInstance struct {
	p        *killerProblem
	st       State
	dead     []atomic.Bool
	selected []atomic.Bool
}

func (inst *killerInstance) Blocked(v int) bool {
	lv := inst.st.Label(v)
	for _, u := range inst.p.adj[v] {
		if inst.st.Label(int(u)) < lv && !inst.st.Processed(int(u)) && !inst.dead[u].Load() {
			return true
		}
	}
	return false
}

func (inst *killerInstance) Dead(v int) bool { return inst.dead[v].Load() }

func (inst *killerInstance) Process(v int) {
	inst.selected[v].Store(true)
	for _, u := range inst.p.adj[v] {
		if inst.st.Label(int(u)) > inst.st.Label(v) {
			inst.dead[u].Store(true)
		}
	}
}

func (inst *killerInstance) selection() []bool {
	out := make([]bool, inst.p.n)
	for i := range out {
		out[i] = inst.selected[i].Load()
	}
	return out
}

func chainEdges(n int) [][2]int32 {
	edges := make([][2]int32, 0, n)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	return edges
}

func TestLabelHelpers(t *testing.T) {
	r := rng.New(1)
	labels := RandomLabels(100, r)
	if err := validateLabels(100, labels); err != nil {
		t.Fatalf("RandomLabels produced invalid permutation: %v", err)
	}
	id := IdentityLabels(5)
	for i, l := range id {
		if int(l) != i {
			t.Fatalf("IdentityLabels[%d] = %d", i, l)
		}
	}
	order := TasksByLabel(labels)
	for pos, task := range order {
		if labels[task] != uint32(pos) {
			t.Fatalf("TasksByLabel inconsistent at position %d", pos)
		}
	}
}

func TestValidateLabels(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		labels []uint32
		ok     bool
	}{
		{"valid", 3, []uint32{2, 0, 1}, true},
		{"wrong length", 3, []uint32{0, 1}, false},
		{"out of range", 3, []uint32{0, 1, 3}, false},
		{"duplicate", 3, []uint32{0, 1, 1}, false},
		{"empty", 0, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateLabels(tc.n, tc.labels)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && !errors.Is(err, ErrBadPermutation) {
				t.Fatalf("expected ErrBadPermutation, got %v", err)
			}
		})
	}
}

func TestRunSequentialChainDepths(t *testing.T) {
	const n = 10
	p := newDepthProblem(n, chainEdges(n))
	labels := IdentityLabels(n)
	res, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != n || res.Iterations != n || res.ExtraIterations() != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	depths := res.Instance.(*depthInstance).depth
	for i, d := range depths {
		if d != int32(i) {
			t.Fatalf("depth[%d] = %d, want %d (chain processed in order)", i, d, i)
		}
	}
}

func TestRunSequentialRejectsBadLabels(t *testing.T) {
	p := newDepthProblem(3, nil)
	if _, err := RunSequential(p, []uint32{0, 0, 1}); !errors.Is(err, ErrBadPermutation) {
		t.Fatalf("expected ErrBadPermutation, got %v", err)
	}
}

func TestRunRelaxedMatchesSequentialAcrossSchedulers(t *testing.T) {
	r := rng.New(7)
	p := randomDepthProblem(300, 900, r)
	labels := RandomLabels(300, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*depthInstance).depth

	schedulers := map[string]sched.Scheduler{
		"exactheap":  exactheap.New(300),
		"topk8":      topk.New(8, 300, rng.New(1)),
		"multiqueue": multiqueue.NewSequential(8, 300, rng.New(2)),
		"spraylist":  spraylist.New(8, rng.New(3)),
		"kbounded":   kbounded.New(8, 300),
	}
	for name, s := range schedulers {
		res, err := RunRelaxed(p, labels, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Processed != 300 {
			t.Fatalf("%s: processed %d tasks, want 300", name, res.Processed)
		}
		got := res.Instance.(*depthInstance).depth
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: depth[%d] = %d, want %d (non-deterministic output)", name, v, got[v], want[v])
			}
		}
		if res.Iterations != res.Processed+res.FailedDeletes {
			t.Fatalf("%s: iteration accounting inconsistent: %+v", name, res)
		}
	}
}

func TestRunRelaxedExactSchedulerHasNoFailedDeletes(t *testing.T) {
	r := rng.New(9)
	p := randomDepthProblem(200, 600, r)
	labels := RandomLabels(200, r)
	res, err := RunRelaxed(p, labels, exactheap.New(200))
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedDeletes != 0 {
		t.Fatalf("exact scheduler produced %d failed deletes", res.FailedDeletes)
	}
	if res.ExtraIterations() != 0 {
		t.Fatalf("exact scheduler produced %d extra iterations", res.ExtraIterations())
	}
}

func TestRunRelaxedNilScheduler(t *testing.T) {
	p := newDepthProblem(2, nil)
	if _, err := RunRelaxed(p, IdentityLabels(2), nil); !errors.Is(err, ErrNilScheduler) {
		t.Fatalf("expected ErrNilScheduler, got %v", err)
	}
}

func TestRunRelaxedKillerSkipsDeadTasks(t *testing.T) {
	// On a chain with identity labels, processing vertex i kills i+1, so
	// exactly the even vertices are selected.
	const n = 20
	p := newKillerProblem(n, chainEdges(n))
	labels := IdentityLabels(n)
	res, err := RunRelaxed(p, labels, topk.New(4, n, rng.New(11)))
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Instance.(*killerInstance).selection()
	for v := 0; v < n; v++ {
		want := v%2 == 0
		if sel[v] != want {
			t.Fatalf("selected[%d] = %v, want %v", v, sel[v], want)
		}
	}
	if res.Processed+res.DeadSkips != n {
		t.Fatalf("processed+skips = %d, want %d", res.Processed+res.DeadSkips, n)
	}
	if res.DeadSkips != n/2 {
		t.Fatalf("dead skips = %d, want %d", res.DeadSkips, n/2)
	}
}

func TestRunConcurrentMatchesSequential(t *testing.T) {
	r := rng.New(21)
	p := randomDepthProblem(2000, 8000, r)
	labels := RandomLabels(2000, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*depthInstance).depth

	for _, workers := range []int{1, 2, 4, 8} {
		mq := multiqueue.NewConcurrent(4*workers, 2000, uint64(workers))
		res, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Processed != 2000 {
			t.Fatalf("workers=%d: processed %d", workers, res.Processed)
		}
		got := res.Instance.(*depthInstance).depth
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d: depth[%d] = %d, want %d", workers, v, got[v], want[v])
			}
		}
		if len(res.Workers) != workers {
			t.Fatalf("workers=%d: got %d worker results", workers, len(res.Workers))
		}
	}
}

func TestRunConcurrentExactFIFOWithWaitPolicy(t *testing.T) {
	r := rng.New(23)
	p := randomDepthProblem(1000, 3000, r)
	labels := RandomLabels(1000, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*depthInstance).depth

	q := faaqueue.New(1000)
	res, err := RunConcurrent(p, labels, q, ConcurrentOptions{Workers: 4, BlockedPolicy: Wait})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Instance.(*depthInstance).depth
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestRunConcurrentKillerDeterministic(t *testing.T) {
	r := rng.New(31)
	p := &killerProblem{n: 1500, adj: randomDepthProblem(1500, 6000, r).adj}
	labels := RandomLabels(1500, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*killerInstance).selection()

	for trial := 0; trial < 3; trial++ {
		mq := multiqueue.NewConcurrent(16, 1500, uint64(trial))
		res, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Instance.(*killerInstance).selection()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: selected[%d] = %v, want %v", trial, v, got[v], want[v])
			}
		}
		if res.Processed+res.DeadSkips != 1500 {
			t.Fatalf("trial %d: processed+skips = %d", trial, res.Processed+res.DeadSkips)
		}
	}
}

func TestRunConcurrentOptionValidation(t *testing.T) {
	p := newDepthProblem(2, nil)
	labels := IdentityLabels(2)
	if _, err := RunConcurrent(p, labels, nil, ConcurrentOptions{Workers: 1}); !errors.Is(err, ErrNilScheduler) {
		t.Fatalf("expected ErrNilScheduler, got %v", err)
	}
	mq := multiqueue.NewConcurrent(2, 2, 1)
	if _, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 0}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("expected ErrNoWorkers, got %v", err)
	}
	if _, err := RunConcurrent(p, []uint32{0, 0}, mq, ConcurrentOptions{Workers: 1}); !errors.Is(err, ErrBadPermutation) {
		t.Fatalf("expected ErrBadPermutation, got %v", err)
	}
}

func TestRunConcurrentSingleWorkerWithLockedScheduler(t *testing.T) {
	r := rng.New(41)
	p := randomDepthProblem(500, 1500, r)
	labels := RandomLabels(500, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*depthInstance).depth

	s := sched.NewLocked(topk.New(16, 500, rng.New(1)))
	res, err := RunConcurrent(p, labels, s, ConcurrentOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Instance.(*depthInstance).depth
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Reinsert.String() != "reinsert" || Wait.String() != "wait" {
		t.Fatal("policy names wrong")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestDeterminismPropertyAcrossRandomInputs(t *testing.T) {
	// Property: for random graphs, random permutations and a relaxed
	// scheduler, the relaxed execution output always equals the sequential
	// output.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(200)
		m := r.Intn(4 * n)
		p := randomDepthProblem(n, m, r)
		labels := RandomLabels(n, r)
		seqRes, err := RunSequential(p, labels)
		if err != nil {
			return false
		}
		want := seqRes.Instance.(*depthInstance).depth
		s := multiqueue.NewSequential(1+r.Intn(16), n, r.Fork())
		res, err := RunRelaxed(p, labels, s)
		if err != nil {
			return false
		}
		got := res.Instance.(*depthInstance).depth
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return res.Processed == int64(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentExecutorIsRaceFreeUnderStress(t *testing.T) {
	// Run several concurrent executions in parallel to give the race
	// detector more scheduling interleavings to examine.
	r := rng.New(55)
	p := randomDepthProblem(800, 3000, r)
	labels := RandomLabels(800, r)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mq := multiqueue.NewConcurrent(8, 800, uint64(i))
			if _, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 4}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}
