package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"relaxsched/internal/sched"
)

// This file implements the second executor family of the package: engines for
// problems whose tasks carry *mutable* priorities and generate work at
// runtime. The framework of core.Problem covers fixed task sets under a
// static priority permutation (MIS, coloring, matching); shortest paths and
// k-core peeling do not fit it — their priorities are tentative quantities
// (distances, degrees) that change during the execution, so tasks are
// re-inserted with updated priorities instead of being processed exactly
// once. The paper contrasts the two regimes: the deterministic framework is
// its contribution, SSSP-style label correcting is the classic application
// of relaxed priority queues it builds on. Both regimes now share one
// batched, contention-aware execution core.

// DynamicProblem describes a workload with mutable task priorities. An
// execution starts from a set of seed items and repeatedly delivers items to
// the problem: stale items (whose priority no longer reflects the current
// state) are dropped, live items are expanded, and expansion may emit
// follow-on items that re-enter the scheduler. The execution terminates when
// every inserted item has been resolved, or as soon as Done reports true.
//
// Implementations used with RunDynamicConcurrent must be safe for concurrent
// calls from multiple goroutines: Stale and Expand race on overlapping
// neighborhoods, and correctness must come from the problem's own monotone
// state updates (CAS-minimum distance labels, CAS-decreasing core estimates).
type DynamicProblem interface {
	// Stale reports whether a delivered item is outdated and should be
	// dropped without expansion. The engine calls Stale exactly once per
	// delivered item, so an implementation may claim the item as a side
	// effect (e.g. clear a dirty bit) when it returns false.
	Stale(task int32, priority uint32) bool
	// Expand processes a live item and emits follow-on items through em.
	// The emitted items are inserted into the scheduler by the engine.
	Expand(task int32, priority uint32, em *Emitter)
	// Done reports whether the execution may stop early, before the
	// scheduler drains. Problems that always run to completion return false.
	Done() bool
}

// Emitter collects the follow-on items produced by DynamicProblem.Expand.
// The engine owns the buffer and flushes it to the scheduler in batches;
// problems only call Emit.
type Emitter struct {
	// Worker is the index of the engine worker running the current Expand
	// call (always 0 in the sequential engine). Problems that need scratch
	// space during expansion index per-worker scratch with it instead of
	// allocating per call.
	Worker int
	items  []sched.Item
}

// Emit adds a follow-on item.
func (e *Emitter) Emit(task int32, priority uint32) {
	e.items = append(e.items, sched.Item{Task: task, Priority: priority})
}

// Len returns the number of emitted items not yet flushed by the engine.
func (e *Emitter) Len() int { return len(e.items) }

// Items returns the buffered items. The slice aliases the emitter's storage
// and is invalidated by the next Emit or Reset.
func (e *Emitter) Items() []sched.Item { return e.items }

// Reset discards the buffered items, retaining capacity.
func (e *Emitter) Reset() { e.items = e.items[:0] }

// DynamicStats counts the work performed by a dynamic-priority execution.
type DynamicStats struct {
	// Pops is the number of items delivered by the scheduler.
	Pops int64
	// StalePops is the number of delivered items dropped as stale — the
	// dynamic analogue of the static framework's wasted iterations.
	StalePops int64
	// Emitted is the number of follow-on items emitted by expansions.
	Emitted int64
	// EmptyPolls is the number of scheduler polls that found nothing while
	// work remained (concurrent executions only).
	EmptyPolls int64
}

func (s *DynamicStats) add(o DynamicStats) {
	s.Pops += o.Pops
	s.StalePops += o.StalePops
	s.Emitted += o.Emitted
	s.EmptyPolls += o.EmptyPolls
}

// DynamicResult extends DynamicStats with per-worker detail.
type DynamicResult struct {
	DynamicStats
	Workers []DynamicStats
}

// DynamicOptions configures RunDynamicConcurrent.
type DynamicOptions struct {
	// Workers is the number of goroutines processing items. It must be at
	// least 1.
	Workers int
	// BatchSize is the number of items a worker requests from the scheduler
	// per acquisition; emitted items are flushed back in batches of at least
	// the same size. Zero selects DefaultBatchSize; 1 reproduces the
	// single-item delivery discipline.
	BatchSize int
	// Cancel, when non-nil, aborts the execution as soon as the channel is
	// closed (a context's Done channel fits directly): workers stop at their
	// next batch boundary and RunDynamicConcurrent returns ErrCanceled. The
	// problem's state is then partial and must be discarded. A nil channel
	// disables cancellation at no cost to the hot loop.
	Cancel <-chan struct{}
	// Tunable, when non-nil, supplies the batch size dynamically: workers
	// re-read it at every batch episode, so an external controller
	// (internal/control) can retune a running execution. It overrides
	// BatchSize; its value at start seeds the workers' buffers. Nil keeps
	// the static BatchSize path at no cost.
	Tunable *TunableOptions
}

// ErrNilProblem indicates a nil DynamicProblem.
var ErrNilProblem = fmt.Errorf("core: problem must not be nil")

// RunDynamic executes a dynamic-priority problem with a (possibly relaxed)
// sequential-model scheduler: items are delivered one at a time, stale items
// are dropped, and emitted items re-enter the scheduler. The execution ends
// when the scheduler drains or Done reports true.
func RunDynamic(p DynamicProblem, seeds []sched.Item, s sched.Scheduler) (DynamicStats, error) {
	if p == nil {
		return DynamicStats{}, ErrNilProblem
	}
	if s == nil {
		return DynamicStats{}, ErrNilScheduler
	}
	for _, it := range seeds {
		s.Insert(it)
	}
	var st DynamicStats
	em := getEmitter()
	defer putEmitter(em)
	for !p.Done() {
		it, ok := s.ApproxGetMin()
		if !ok {
			break
		}
		st.Pops++
		if p.Stale(it.Task, it.Priority) {
			st.StalePops++
			continue
		}
		p.Expand(it.Task, it.Priority, em)
		st.Emitted += int64(len(em.items))
		for _, e := range em.items {
			s.Insert(e)
		}
		em.Reset()
	}
	return st, nil
}

// dynWorkerState is one dynamic-engine worker's execution-time state, laid
// out as two 64-byte cache lines exactly like the static engine's
// workerState: the first line holds the counters only the owning worker
// writes, the second the cross-worker-read published balance. See
// workerState for why both the padding and the split matter.
type dynWorkerState struct {
	DynamicStats               // 32 bytes, written only by the owning worker
	_            [64 - 32]byte // rest of the owner-private cache line
	// balance is the worker's published (emitted - resolved) item count.
	// Every inserted item is either a seed or counted by exactly one
	// worker's balance before it becomes poppable, and every resolved item
	// is subtracted after it has been fully handled, so
	// len(seeds) + sum(balances) is an upper bound on the number of live
	// items at all times and exact whenever all workers have published.
	balance atomic.Int64
	_       [64 - 8]byte
}

// Compile-time guard: dynWorkerState must stay exactly two 64-byte cache
// lines. Adding a counter to DynamicStats without re-padding breaks this
// assignment instead of silently re-introducing false sharing.
var _ [128]byte = [unsafe.Sizeof(dynWorkerState{})]byte{}

// sumBalances returns the total published item balance.
func sumBalances(states []dynWorkerState) int64 {
	var total int64
	for i := range states {
		total += states[i].balance.Load()
	}
	return total
}

// RunDynamicConcurrent executes a dynamic-priority problem with worker
// goroutines sharing a concurrent scheduler. Workers drain the scheduler in
// batches and flush emitted items back in batches (see
// DynamicOptions.BatchSize), with the same idle backoff as the static
// engine.
//
// Termination uses per-worker balance counters — the pending-item protocol
// formerly private to the sssp package, lifted here and de-contended: a
// worker publishes +1 for every item it emits *before* inserting it and -1
// for every item it resolves *after* handling it, batched into one atomic
// add per episode on the worker's own cache line. The published sum plus the
// seed count therefore never undercounts live items, and a worker exits only
// when it finds the scheduler empty and the exact sum reports zero.
func RunDynamicConcurrent(p DynamicProblem, seeds []sched.Item, s sched.Concurrent, opts DynamicOptions) (DynamicResult, error) {
	if p == nil {
		return DynamicResult{}, ErrNilProblem
	}
	if s == nil {
		return DynamicResult{}, ErrNilScheduler
	}
	if opts.Workers < 1 {
		return DynamicResult{}, fmt.Errorf("%w: got %d", ErrNoWorkers, opts.Workers)
	}
	if opts.BatchSize < 0 {
		return DynamicResult{}, fmt.Errorf("%w: got %d", ErrBadBatch, opts.BatchSize)
	}
	batch := opts.BatchSize
	if batch == 0 {
		batch = DefaultBatchSize
	}
	if opts.Tunable != nil {
		batch = opts.Tunable.Batch()
	}

	s.InsertBatch(seeds)
	seeded := int64(len(seeds))

	states := make([]dynWorkerState, opts.Workers)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runDynamicWorker(p, s, batch, opts.Tunable, seeded, states, w, opts.Cancel, &canceled)
		}(w)
	}
	wg.Wait()

	if canceled.Load() {
		return DynamicResult{}, fmt.Errorf("%w with %d items outstanding", ErrCanceled, seeded+sumBalances(states))
	}
	if remaining := seeded + sumBalances(states); remaining != 0 && !p.Done() {
		return DynamicResult{}, fmt.Errorf("%w: %d items unresolved", ErrStuck, remaining)
	}

	res := DynamicResult{Workers: make([]DynamicStats, opts.Workers)}
	for w := range states {
		res.Workers[w] = states[w].DynamicStats
		res.DynamicStats.add(states[w].DynamicStats)
	}
	return res, nil
}

func runDynamicWorker(p DynamicProblem, s sched.Concurrent, batch int, tun *TunableOptions, seeded int64, states []dynWorkerState, self int, cancel <-chan struct{}, canceled *atomic.Bool) {
	ws := &states[self]
	// The worker's view of the scheduler: the worker-affine handle when the
	// scheduler keeps per-worker state (the MultiQueue's home shards and
	// private random streams), the shared scheduler otherwise.
	s = sched.ForWorker(s, self, len(states))
	// Pop buffer and emitter come from the cross-run scratch pool, so a
	// steady stream of executions reuses warm buffers instead of re-making
	// them per run.
	sc := getScratch(batch)
	buf := sc.buf
	em := &sc.em
	em.Worker = self
	defer func() {
		sc.buf = buf
		putScratch(sc)
	}()
	var backoff idleBackoff
	// resolved counts items handled (expanded or dropped as stale) whose -1
	// has not been published yet. Unpublished resolutions only make the
	// global balance sum overcount live items, which is always safe.
	var resolved int64

	// flush publishes the emitted items and then inserts them. The order
	// matters: publishing first keeps the balance sum from undercounting
	// live items in the window where they are already poppable, which is
	// what makes a zero sum a safe termination signal. The worker's pending
	// resolutions ride along in the same atomic add.
	flush := func() {
		if len(em.items) == 0 && resolved == 0 {
			return
		}
		ws.Emitted += int64(len(em.items))
		ws.balance.Add(int64(len(em.items)) - resolved)
		resolved = 0
		if len(em.items) > 0 {
			s.InsertBatch(em.items)
			em.Reset()
		}
	}

	for {
		// Pick up a retuned batch size at the episode boundary; the flush
		// threshold follows the buffer (no-op without a tunable).
		buf = episodeBatch(tun, buf)
		batch = len(buf)
		if p.Done() {
			flush()
			return
		}
		// One non-blocking cancellation check per batch episode; flush
		// publishes the worker's balance so the outstanding-item count stays
		// meaningful for the abort report. A nil channel is never ready.
		select {
		case <-cancel:
			flush()
			canceled.Store(true)
			return
		default:
		}
		n := s.ApproxPopBatch(buf)
		if n == 0 {
			ws.EmptyPolls++
			if resolved != 0 {
				ws.balance.Add(-resolved)
				resolved = 0
			}
			if seeded+sumBalances(states) == 0 {
				return
			}
			backoff.wait()
			continue
		}
		backoff.reset()

		items := buf[:n]
		sortBatch(items)
		for _, it := range items {
			ws.Pops++
			if p.Stale(it.Task, it.Priority) {
				ws.StalePops++
				resolved++
				continue
			}
			p.Expand(it.Task, it.Priority, em)
			resolved++
			if len(em.items) >= batch {
				flush()
			}
		}
		flush()
	}
}
