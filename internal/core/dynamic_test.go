package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
)

// countdownProblem is a deterministic dynamic workload for engine tests:
// every item (task, p) with p > 0 emits (task, p-1), so a seed at priority p
// resolves after exactly p+1 deliveries and the execution performs
// seeds + sum(p_i) pops in total. Counters are atomic so the same problem
// drives the concurrent engine.
type countdownProblem struct {
	expanded atomic.Int64
}

func (p *countdownProblem) Stale(task int32, priority uint32) bool { return false }

func (p *countdownProblem) Expand(task int32, priority uint32, em *Emitter) {
	p.expanded.Add(1)
	if priority > 0 {
		em.Emit(task, priority-1)
	}
}

func (p *countdownProblem) Done() bool { return false }

func countdownSeeds(n int, priority uint32) []sched.Item {
	seeds := make([]sched.Item, n)
	for i := range seeds {
		seeds[i] = sched.Item{Task: int32(i), Priority: priority}
	}
	return seeds
}

func TestRunDynamicCountdownAccounting(t *testing.T) {
	const n, p = 50, 7
	schedulers := map[string]sched.Scheduler{
		"exactheap":   exactheap.New(n),
		"multiqueue8": multiqueue.NewSequential(8, n, rng.New(2)),
		"kbounded4":   kbounded.New(4, n),
	}
	for name, s := range schedulers {
		prob := &countdownProblem{}
		st, err := RunDynamic(prob, countdownSeeds(n, p), s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantPops := int64(n * (p + 1))
		if st.Pops != wantPops {
			t.Fatalf("%s: Pops = %d, want %d", name, st.Pops, wantPops)
		}
		if st.Emitted != wantPops-n {
			t.Fatalf("%s: Emitted = %d, want %d", name, st.Emitted, wantPops-n)
		}
		if st.StalePops != 0 {
			t.Fatalf("%s: StalePops = %d, want 0", name, st.StalePops)
		}
		if got := prob.expanded.Load(); got != wantPops {
			t.Fatalf("%s: expanded %d items, want %d", name, got, wantPops)
		}
	}
}

func TestRunDynamicConcurrentCountdownAcrossSchedulers(t *testing.T) {
	const n, p = 200, 9
	wantPops := int64(n * (p + 1))
	factories := map[string]func() sched.Concurrent{
		"multiqueue":      func() sched.Concurrent { return multiqueue.NewConcurrent(8, n, 3) },
		"faaqueue":        func() sched.Concurrent { return faaqueue.New(n) },
		"locked-kbounded": func() sched.Concurrent { return sched.NewLocked(kbounded.New(4, n)) },
	}
	for name, factory := range factories {
		for _, workers := range []int{1, 2, 4} {
			for _, batch := range []int{1, 3, 0} {
				prob := &countdownProblem{}
				res, err := RunDynamicConcurrent(prob, countdownSeeds(n, p), factory(), DynamicOptions{
					Workers:   workers,
					BatchSize: batch,
				})
				if err != nil {
					t.Fatalf("%s workers=%d batch=%d: %v", name, workers, batch, err)
				}
				if res.Pops != wantPops || res.Emitted != wantPops-n {
					t.Fatalf("%s workers=%d batch=%d: stats %+v, want %d pops",
						name, workers, batch, res.DynamicStats, wantPops)
				}
				if got := prob.expanded.Load(); got != wantPops {
					t.Fatalf("%s workers=%d batch=%d: expanded %d, want %d", name, workers, batch, got, wantPops)
				}
				if len(res.Workers) != workers {
					t.Fatalf("%s: %d worker results, want %d", name, len(res.Workers), workers)
				}
				var pops int64
				for _, w := range res.Workers {
					pops += w.Pops
				}
				if pops != res.Pops {
					t.Fatalf("%s: per-worker pops %d do not sum to total %d", name, pops, res.Pops)
				}
			}
		}
	}
}

// onceProblem marks tasks done on first expansion and reports re-deliveries
// as stale — the engine must route them to StalePops.
type onceProblem struct {
	done []atomic.Bool
}

func (p *onceProblem) Stale(task int32, priority uint32) bool {
	return !p.done[task].CompareAndSwap(false, true)
}

func (p *onceProblem) Expand(task int32, priority uint32, em *Emitter) {}

func (p *onceProblem) Done() bool { return false }

func TestDynamicStalePopsCounted(t *testing.T) {
	const n = 40
	// Seed every task twice: the second delivery of each must be stale.
	seeds := append(countdownSeeds(n, 5), countdownSeeds(n, 6)...)

	prob := &onceProblem{done: make([]atomic.Bool, n)}
	st, err := RunDynamic(prob, seeds, exactheap.New(n))
	if err != nil {
		t.Fatal(err)
	}
	if st.Pops != 2*n || st.StalePops != n {
		t.Fatalf("sequential stats %+v, want %d pops with %d stale", st, 2*n, n)
	}

	prob = &onceProblem{done: make([]atomic.Bool, n)}
	res, err := RunDynamicConcurrent(prob, seeds, multiqueue.NewConcurrent(4, n, 7), DynamicOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pops != 2*n || res.StalePops != n {
		t.Fatalf("concurrent stats %+v, want %d pops with %d stale", res.DynamicStats, 2*n, n)
	}
}

// haltingProblem stops the execution via Done after a fixed number of
// expansions, leaving items in the scheduler.
type haltingProblem struct {
	countdownProblem
	limit int64
}

func (p *haltingProblem) Done() bool { return p.expanded.Load() >= p.limit }

func TestDynamicDoneStopsEarly(t *testing.T) {
	prob := &haltingProblem{limit: 5}
	st, err := RunDynamic(prob, countdownSeeds(100, 50), exactheap.New(100))
	if err != nil {
		t.Fatal(err)
	}
	if st.Pops >= 100*51 {
		t.Fatalf("Done did not stop the execution early: %+v", st)
	}

	prob = &haltingProblem{limit: 5}
	res, err := RunDynamicConcurrent(prob, countdownSeeds(100, 50), multiqueue.NewConcurrent(8, 100, 1), DynamicOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pops >= 100*51 {
		t.Fatalf("concurrent Done did not stop the execution early: %+v", res.DynamicStats)
	}
}

func TestDynamicValidation(t *testing.T) {
	prob := &countdownProblem{}
	seeds := countdownSeeds(4, 1)
	if _, err := RunDynamic(nil, seeds, exactheap.New(4)); !errors.Is(err, ErrNilProblem) {
		t.Fatalf("nil problem: err = %v", err)
	}
	if _, err := RunDynamic(prob, seeds, nil); !errors.Is(err, ErrNilScheduler) {
		t.Fatalf("nil scheduler: err = %v", err)
	}
	if _, err := RunDynamicConcurrent(nil, seeds, faaqueue.New(4), DynamicOptions{Workers: 1}); !errors.Is(err, ErrNilProblem) {
		t.Fatalf("nil problem: err = %v", err)
	}
	if _, err := RunDynamicConcurrent(prob, seeds, nil, DynamicOptions{Workers: 1}); !errors.Is(err, ErrNilScheduler) {
		t.Fatalf("nil scheduler: err = %v", err)
	}
	if _, err := RunDynamicConcurrent(prob, seeds, faaqueue.New(4), DynamicOptions{Workers: 0}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("zero workers: err = %v", err)
	}
	if _, err := RunDynamicConcurrent(prob, seeds, faaqueue.New(4), DynamicOptions{Workers: 1, BatchSize: -1}); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("negative batch: err = %v", err)
	}
}

func TestDynamicEmptySeeds(t *testing.T) {
	st, err := RunDynamic(&countdownProblem{}, nil, exactheap.New(1))
	if err != nil || st.Pops != 0 {
		t.Fatalf("empty sequential run: %+v, %v", st, err)
	}
	res, err := RunDynamicConcurrent(&countdownProblem{}, nil, faaqueue.New(1), DynamicOptions{Workers: 4})
	if err != nil || res.Pops != 0 {
		t.Fatalf("empty concurrent run: %+v, %v", res.DynamicStats, err)
	}
}

func TestEmitterReset(t *testing.T) {
	em := &Emitter{}
	em.Emit(1, 2)
	em.Emit(3, 4)
	if em.Len() != 2 || em.Items()[1] != (sched.Item{Task: 3, Priority: 4}) {
		t.Fatalf("unexpected emitter contents %v", em.Items())
	}
	em.Reset()
	if em.Len() != 0 {
		t.Fatalf("Len = %d after Reset", em.Len())
	}
}
