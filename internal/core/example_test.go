package core_test

import (
	"fmt"

	"relaxsched/internal/core"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
)

// chainRelax is a miniature label-correcting shortest-path problem on a
// weighted chain 0 → 1 → 2 → 3 (edge weights 2, 3, 1): distance labels only
// decrease, an item is stale when its priority no longer matches the current
// label, and expansion relaxes the next edge and emits the improved vertex.
type chainRelax struct {
	dist    []uint32
	weights []uint32
}

func (p *chainRelax) Stale(task int32, priority uint32) bool {
	return priority > p.dist[task]
}

func (p *chainRelax) Expand(task int32, _ uint32, em *core.Emitter) {
	v := int(task)
	if v == len(p.dist)-1 {
		return
	}
	if nd := p.dist[v] + p.weights[v]; nd < p.dist[v+1] {
		p.dist[v+1] = nd
		em.Emit(int32(v+1), nd)
	}
}

func (p *chainRelax) Done() bool { return false }

// ExampleRunDynamic executes a dynamic-priority problem to completion with
// an exact sequential scheduler: seeds enter first, expansion emits
// follow-on items with their new priorities, and the engine drains until no
// work remains.
func ExampleRunDynamic() {
	const unreachable = ^uint32(0)
	p := &chainRelax{
		dist:    []uint32{0, unreachable, unreachable, unreachable},
		weights: []uint32{2, 3, 1},
	}
	seeds := []sched.Item{{Task: 0, Priority: 0}}
	stats, err := core.RunDynamic(p, seeds, exactheap.New(len(p.dist)))
	if err != nil {
		panic(err)
	}
	fmt.Println("distances:", p.dist)
	fmt.Printf("pops: %d (stale: %d), emitted: %d\n", stats.Pops, stats.StalePops, stats.Emitted)
	// Output:
	// distances: [0 2 5 6]
	// pops: 4 (stale: 0), emitted: 3
}
