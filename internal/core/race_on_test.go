//go:build race

package core

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops puts at random to expose reuse races, so
// allocation-count assertions on pooled paths are not meaningful.
const raceEnabled = true
