package core

import (
	"fmt"

	"relaxsched/internal/sched"
)

// RunRelaxed executes the problem with a (possibly relaxed) sequential-model
// scheduler, following Algorithm 2 — and, when the problem implements the
// Dead shortcut, Algorithm 4. Tasks delivered while blocked are re-inserted
// and counted as failed deletes; dead tasks are discarded. The output is
// identical to RunSequential with the same labels, no matter how relaxed the
// scheduler is.
func RunRelaxed(p Problem, labels []uint32, s sched.Scheduler) (Result, error) {
	n := p.NumTasks()
	if err := validateLabels(n, labels); err != nil {
		return Result{}, err
	}
	if s == nil {
		return Result{}, ErrNilScheduler
	}
	st := newSeqState(labels)
	inst := p.NewInstance(st)

	// Load every task, in priority order so that exact FIFO schedulers also
	// behave correctly (heap-based schedulers are insensitive to the order).
	for _, task := range TasksByLabel(labels) {
		s.Insert(sched.Item{Task: task, Priority: labels[task]})
	}

	var res Result
	res.Instance = inst
	remaining := int64(n)
	for remaining > 0 {
		it, ok := s.ApproxGetMin()
		if !ok {
			return res, fmt.Errorf("%w: %d tasks unresolved", ErrStuck, remaining)
		}
		v := int(it.Task)
		res.Iterations++
		if inst.Dead(v) {
			res.DeadSkips++
			remaining--
			continue
		}
		if inst.Blocked(v) {
			res.FailedDeletes++
			s.Insert(it)
			continue
		}
		inst.Process(v)
		st.markProcessed(v)
		res.Processed++
		remaining--
	}
	return res, nil
}
