package core

import (
	"testing"

	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/topk"

	"relaxsched/internal/rng"
)

func TestRunSequentialCountsDeadSkips(t *testing.T) {
	// On a chain processed in order, the killer problem skips every odd
	// vertex; RunSequential must account for them as dead skips with zero
	// extra iterations.
	const n = 12
	p := newKillerProblem(n, chainEdges(n))
	res, err := RunSequential(p, IdentityLabels(n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != n/2 || res.DeadSkips != n/2 {
		t.Fatalf("processed=%d deadSkips=%d, want %d each", res.Processed, res.DeadSkips, n/2)
	}
	if res.Iterations != n {
		t.Fatalf("iterations=%d, want %d", res.Iterations, n)
	}
	if res.ExtraIterations() != 0 {
		t.Fatalf("extra iterations = %d, want 0", res.ExtraIterations())
	}
}

func TestExtraIterationsArithmetic(t *testing.T) {
	r := Result{Iterations: 120, Processed: 90, DeadSkips: 10, FailedDeletes: 20}
	if got := r.ExtraIterations(); got != 20 {
		t.Fatalf("ExtraIterations = %d, want 20", got)
	}
}

func TestConcurrentResultWorkerAggregation(t *testing.T) {
	// The per-worker counters must sum to the totals reported in the
	// embedded Result.
	r := rng.New(61)
	p := randomDepthProblem(1500, 6000, r)
	labels := RandomLabels(1500, r)
	mq := multiqueue.NewConcurrent(8, 1500, 3)
	res, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var processed, failed, skips, waits int64
	for _, w := range res.Workers {
		processed += w.Processed
		failed += w.FailedDeletes
		skips += w.DeadSkips
		waits += w.Waits
	}
	if processed != res.Processed || failed != res.FailedDeletes || skips != res.DeadSkips || waits != res.Waits {
		t.Fatalf("worker counters do not sum to totals: %+v vs %+v", res.Workers, res.Result)
	}
	if res.Iterations != res.Processed+res.DeadSkips+res.FailedDeletes {
		t.Fatalf("iteration identity violated: %+v", res.Result)
	}
}

func TestRunRelaxedEmptyProblem(t *testing.T) {
	p := newDepthProblem(0, nil)
	res, err := RunRelaxed(p, nil, topk.New(4, 0, rng.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || res.Processed != 0 {
		t.Fatalf("empty problem produced work: %+v", res)
	}
	cres, err := RunConcurrent(p, nil, multiqueue.NewConcurrent(2, 0, 1), ConcurrentOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Processed != 0 {
		t.Fatalf("empty concurrent problem produced work: %+v", cres.Result)
	}
}

func TestRunSequentialEmptyProblem(t *testing.T) {
	p := newDepthProblem(0, nil)
	res, err := RunSequential(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("empty sequential run produced work: %+v", res)
	}
}
