package core

import (
	"sync"

	"relaxsched/internal/sched"
)

// Every executor worker needs the same small buffer set: a pop buffer sized
// to the batch, an emitter (dynamic family) or re-insert buffer (static
// family), and nothing else. These used to be allocated fresh per worker per
// run, which is invisible for one long execution but is measurable churn for
// callers that run many executions back to back — benchmark trial loops and
// the relaxd worker pool both re-enter the executors at high rate. The
// buffers hold only sched.Item values (no pointers), so pooling them across
// runs is safe and keeps steady-state executions allocation-free: after
// warm-up a run reuses a previous run's buffers at their high-water
// capacity. scratch_test.go pins the zero-alloc property for both families.

// workerScratch is one executor worker's pooled buffer set.
type workerScratch struct {
	// buf is the pop buffer; its length is the worker's current batch size.
	buf []sched.Item
	// aux is the static family's re-insert buffer (length 0, capacity
	// retained). The dynamic family leaves it untouched.
	aux []sched.Item
	// em is the dynamic family's emitter; its storage capacity is retained
	// across runs.
	em Emitter
}

var scratchPool = sync.Pool{New: func() any { return new(workerScratch) }}

// getScratch returns a worker scratch whose pop buffer has length batch.
// Buffers retain the capacity they reached in previous runs; the emitter's
// Worker index and contents are left for the caller to set.
func getScratch(batch int) *workerScratch {
	sc := scratchPool.Get().(*workerScratch)
	if cap(sc.buf) < batch {
		sc.buf = make([]sched.Item, batch)
	}
	sc.buf = sc.buf[:batch]
	return sc
}

// putScratch returns a scratch to the pool. The caller must be done with
// every slice that aliases it (including the emitter's storage).
func putScratch(sc *workerScratch) {
	sc.em.Reset()
	sc.aux = sc.aux[:0]
	scratchPool.Put(sc)
}

// emitterPool recycles the sequential engine's emitter across RunDynamic
// calls, for the same reason as workerScratch: one sequential execution
// allocates one emitter, but sweep harnesses and the job service run
// sequential executions in tight loops.
var emitterPool = sync.Pool{New: func() any { return new(Emitter) }}

func getEmitter() *Emitter {
	em := emitterPool.Get().(*Emitter)
	em.Worker = 0
	em.Reset()
	return em
}

func putEmitter(em *Emitter) { emitterPool.Put(em) }
