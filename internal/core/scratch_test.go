package core

import (
	"sync/atomic"
	"testing"

	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
)

// TestScratchCycleDoesNotAllocate pins the pooled buffer set itself: after
// warm-up, a get/use/put cycle at a stable batch size performs zero
// allocations, including emitter traffic and re-insert appends within the
// warmed capacity.
func TestScratchCycleDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomly bypasses sync.Pool; alloc counts are not meaningful")
	}
	const batch = 64
	// Warm one scratch to the high-water capacity the loop will need.
	sc := getScratch(batch)
	for i := 0; i < batch; i++ {
		sc.em.Emit(int32(i), uint32(i))
		sc.aux = append(sc.aux, sched.Item{Task: int32(i)})
	}
	putScratch(sc)
	if allocs := testing.AllocsPerRun(100, func() {
		sc := getScratch(batch)
		sc.em.Worker = 1
		for i := 0; i < batch; i++ {
			sc.buf[i] = sched.Item{Task: int32(i), Priority: uint32(i)}
			sc.em.Emit(int32(i), uint32(i))
			sc.aux = append(sc.aux, sc.buf[i])
		}
		putScratch(sc)
	}); allocs > 0 {
		t.Fatalf("warm scratch cycle allocates %.1f per run, want 0", allocs)
	}
}

// TestEmitterCycleDoesNotAllocate pins the sequential engine's emitter pool.
func TestEmitterCycleDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomly bypasses sync.Pool; alloc counts are not meaningful")
	}
	em := getEmitter()
	for i := 0; i < 32; i++ {
		em.Emit(int32(i), uint32(i))
	}
	putEmitter(em)
	if allocs := testing.AllocsPerRun(100, func() {
		em := getEmitter()
		for i := 0; i < 32; i++ {
			em.Emit(int32(i), uint32(i))
		}
		putEmitter(em)
	}); allocs > 0 {
		t.Fatalf("warm emitter cycle allocates %.1f per run, want 0", allocs)
	}
}

// TestRunDynamicSteadyStateZeroAllocs runs the full sequential dynamic engine
// back to back, the way sweep harnesses and the job service do, and requires
// the steady state to be allocation-free: the emitter comes from the pool and
// a drained exact heap retains its storage.
func TestRunDynamicSteadyStateZeroAllocs(t *testing.T) {
	const n, p = 32, 7
	heap := exactheap.New(n * 2)
	seeds := countdownSeeds(n, p)
	prob := &countdownProblem{}
	run := func() {
		if _, err := RunDynamic(prob, seeds, heap); err != nil {
			t.Fatal(err)
		}
	}
	if raceEnabled {
		t.Skip("race mode randomly bypasses sync.Pool; alloc counts are not meaningful")
	}
	run() // warm the pools and the heap's storage
	if allocs := testing.AllocsPerRun(50, run); allocs > 0 {
		t.Fatalf("steady-state RunDynamic allocates %.1f per run, want 0", allocs)
	}
}

// workerRecorder records every Emitter.Worker value observed during Expand.
// Pooled emitters migrate between runs with different worker counts, so a
// stale Worker index from a previous run would show up here.
type workerRecorder struct {
	countdownProblem
	seen [64]atomic.Int64
}

func (p *workerRecorder) Expand(task int32, priority uint32, em *Emitter) {
	p.seen[em.Worker].Add(1)
	p.countdownProblem.Expand(task, priority, em)
}

// TestPooledEmitterWorkerIndexReset guards against pooled scratch leaking a
// previous run's worker index: after a 4-worker run has populated the pool, a
// 1-worker run must only ever observe Worker 0, and the sequential engine
// likewise.
func TestPooledEmitterWorkerIndexReset(t *testing.T) {
	const n, p = 64, 5
	wide := &workerRecorder{}
	if _, err := RunDynamicConcurrent(wide, countdownSeeds(n, p), sched.NewLocked(exactheap.New(n)), DynamicOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	narrow := &workerRecorder{}
	if _, err := RunDynamicConcurrent(narrow, countdownSeeds(n, p), sched.NewLocked(exactheap.New(n)), DynamicOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for w := 1; w < len(narrow.seen); w++ {
		if c := narrow.seen[w].Load(); c != 0 {
			t.Fatalf("1-worker run observed pooled emitter with stale Worker=%d (%d expansions)", w, c)
		}
	}
	if narrow.seen[0].Load() == 0 {
		t.Fatal("1-worker run recorded no expansions")
	}
	seq := &workerRecorder{}
	if _, err := RunDynamic(seq, countdownSeeds(n, p), exactheap.New(n)); err != nil {
		t.Fatal(err)
	}
	for w := 1; w < len(seq.seen); w++ {
		if c := seq.seen[w].Load(); c != 0 {
			t.Fatalf("sequential run observed pooled emitter with stale Worker=%d (%d expansions)", w, c)
		}
	}
}
