package core

// RunSequential executes the problem exactly as Algorithm 1 does: tasks are
// handled in strict priority order, dead tasks are skipped, and every other
// task is processed. It is both the correctness oracle for the relaxed
// executors (their outputs must be identical) and the sequential baseline of
// the paper's speedup plots.
func RunSequential(p Problem, labels []uint32) (Result, error) {
	n := p.NumTasks()
	if err := validateLabels(n, labels); err != nil {
		return Result{}, err
	}
	st := newSeqState(labels)
	inst := p.NewInstance(st)
	order := TasksByLabel(labels)

	var res Result
	res.Instance = inst
	for _, task := range order {
		v := int(task)
		res.Iterations++
		if inst.Dead(v) {
			res.DeadSkips++
			continue
		}
		// In strict priority order a task can never be blocked: all of its
		// higher-priority dependencies have already been handled.
		inst.Process(v)
		st.markProcessed(v)
		res.Processed++
	}
	return res, nil
}
