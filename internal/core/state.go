package core

import "relaxsched/internal/bitset"

// seqState is the State implementation used by the single-threaded executors.
type seqState struct {
	labels    []uint32
	processed *bitset.Set
}

var _ State = (*seqState)(nil)

func newSeqState(labels []uint32) *seqState {
	return &seqState{labels: labels, processed: bitset.New(len(labels))}
}

func (s *seqState) NumTasks() int        { return len(s.labels) }
func (s *seqState) Processed(v int) bool { return s.processed.Get(v) }
func (s *seqState) Label(v int) uint32   { return s.labels[v] }
func (s *seqState) Labels() []uint32     { return s.labels }
func (s *seqState) markProcessed(v int)  { s.processed.Set(v) }

// concState is the State implementation used by RunConcurrent. Processed
// bits are set with sequentially consistent atomics, so a task that observes
// a dependency as processed also observes every write its Process performed.
type concState struct {
	labels    []uint32
	processed *bitset.Atomic
}

var _ State = (*concState)(nil)

func newConcState(labels []uint32) *concState {
	return &concState{labels: labels, processed: bitset.NewAtomic(len(labels))}
}

func (s *concState) NumTasks() int        { return len(s.labels) }
func (s *concState) Processed(v int) bool { return s.processed.Get(v) }
func (s *concState) Label(v int) uint32   { return s.labels[v] }
func (s *concState) Labels() []uint32     { return s.labels }
func (s *concState) markProcessed(v int)  { s.processed.Set(v) }
