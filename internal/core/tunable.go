package core

import (
	"sync/atomic"

	"relaxsched/internal/sched"
)

// TunableOptions is the executor-level hook of the adaptive relaxation
// controller (internal/control): a shared, atomically updated batch-size
// target that a running execution re-reads at every batch episode. Batch
// size is itself a relaxation knob — popping B items per scheduler
// acquisition behaves like growing the scheduler's rank bound by B — so the
// controller widens and tightens it alongside the job-queue k.
//
// A single TunableOptions may be shared by any number of concurrent
// executions (relaxd shares one across its whole worker pool): Batch and
// SetBatch are lock-free and safe from any goroutine. Workers pick the new
// size up at their next episode boundary; no synchronization with in-flight
// batches is attempted or needed, since a batch that started at the old
// size is indistinguishable from one that raced the update.
type TunableOptions struct {
	batch atomic.Int32
}

// NewTunable returns a TunableOptions starting at the given batch size
// (values below 1 are clamped to 1).
func NewTunable(batch int) *TunableOptions {
	t := &TunableOptions{}
	t.SetBatch(batch)
	return t
}

// SetBatch publishes a new batch-size target. Values below 1 are clamped to
// 1 (a zero would stall workers forever on empty pop buffers).
func (t *TunableOptions) SetBatch(batch int) {
	if batch < 1 {
		batch = 1
	}
	if batch > int(int32(^uint32(0)>>1)) {
		batch = int(int32(^uint32(0) >> 1))
	}
	t.batch.Store(int32(batch))
}

// Batch returns the current batch-size target.
func (t *TunableOptions) Batch() int { return int(t.batch.Load()) }

// episodeBatch is the per-episode re-read both executor families perform:
// it returns the worker's pop buffer, re-sized only when the tunable target
// actually moved (the common case is no change, costing one atomic load).
// A nil tunable returns the buffer unchanged, keeping the static
// configuration path untouched.
func episodeBatch(tun *TunableOptions, buf []sched.Item) []sched.Item {
	if tun == nil {
		return buf
	}
	if b := tun.Batch(); b != len(buf) {
		return make([]sched.Item, b)
	}
	return buf
}
