package core

import (
	"sync/atomic"
	"testing"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/multiqueue"
)

func TestTunableClampsBatch(t *testing.T) {
	if b := NewTunable(0).Batch(); b != 1 {
		t.Errorf("NewTunable(0).Batch() = %d, want clamp to 1", b)
	}
	tun := NewTunable(16)
	if b := tun.Batch(); b != 16 {
		t.Errorf("Batch() = %d, want 16", b)
	}
	tun.SetBatch(-5)
	if b := tun.Batch(); b != 1 {
		t.Errorf("Batch() after SetBatch(-5) = %d, want 1", b)
	}
	tun.SetBatch(64)
	if b := tun.Batch(); b != 64 {
		t.Errorf("Batch() after SetBatch(64) = %d, want 64", b)
	}
}

func TestEpisodeBatchResizesOnlyOnChange(t *testing.T) {
	buf := make([]sched.Item, 8)
	if got := episodeBatch(nil, buf); len(got) != 8 || &got[0] != &buf[0] {
		t.Error("nil tunable must return the buffer unchanged")
	}
	tun := NewTunable(8)
	if got := episodeBatch(tun, buf); &got[0] != &buf[0] {
		t.Error("unchanged target must not reallocate")
	}
	tun.SetBatch(3)
	got := episodeBatch(tun, buf)
	if len(got) != 3 {
		t.Errorf("len after retune = %d, want 3", len(got))
	}
}

// TestRunConcurrentTunableRetunedMidRun retunes the batch size while a
// static execution is in flight: the output must still equal the sequential
// one (batch size affects performance and relaxation, never correctness)
// and the engine must resolve every task exactly once.
func TestRunConcurrentTunableRetunedMidRun(t *testing.T) {
	r := rng.New(91)
	const n = 4000
	p := randomDepthProblem(n, 16000, r)
	labels := RandomLabels(n, r)
	seqRes, err := RunSequential(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := seqRes.Instance.(*depthInstance).depth

	tun := NewTunable(1)
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		sizes := []int{1, 7, 32, 2, 16}
		for i := 0; !stop.Load(); i++ {
			tun.SetBatch(sizes[i%len(sizes)])
		}
	}()

	mq := multiqueue.NewConcurrent(8, n, 7)
	res, err := RunConcurrent(p, labels, mq, ConcurrentOptions{Workers: 4, Tunable: tun})
	stop.Store(true)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != n {
		t.Fatalf("processed %d tasks, want %d", res.Processed, n)
	}
	got := res.Instance.(*depthInstance).depth
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// TestRunDynamicConcurrentTunableRetunedMidRun does the same for the
// dynamic engine, checking the exact pop-accounting identity that holds
// regardless of batch size.
func TestRunDynamicConcurrentTunableRetunedMidRun(t *testing.T) {
	const n, prio = 300, 9
	prob := &countdownProblem{}
	tun := NewTunable(1)
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 2; !stop.Load(); i++ {
			tun.SetBatch(1 + i%24)
		}
	}()

	mq := multiqueue.NewConcurrent(8, n, 3)
	res, err := RunDynamicConcurrent(prob, countdownSeeds(n, prio), mq, DynamicOptions{Workers: 4, Tunable: tun})
	stop.Store(true)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	wantPops := int64(n * (prio + 1))
	if res.Pops != wantPops {
		t.Fatalf("Pops = %d, want %d", res.Pops, wantPops)
	}
	if got := prob.expanded.Load(); got != wantPops {
		t.Fatalf("expanded %d items, want %d", got, wantPops)
	}
}
