package faultinject

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"relaxsched/internal/api"
	"relaxsched/internal/service"
	"relaxsched/internal/wal"
)

// crashLedger is the ground truth accumulated across kill rounds: every id
// whose 202 the client observed, the subset the client saw done before a
// kill, and the ids the log itself has durably marked terminal (per
// wal.Inspect between a kill and the restart). knownTerminal matters
// because compaction erases the history of fully-terminal jobs — a 404
// after restart is legitimate exactly for those ids and a lost acceptance
// for any other.
type crashLedger struct {
	accepted      map[int64]bool
	observedDone  map[int64]bool
	knownTerminal map[int64]bool
}

func newCrashLedger() *crashLedger {
	return &crashLedger{
		accepted:      make(map[int64]bool),
		observedDone:  make(map[int64]bool),
		knownTerminal: make(map[int64]bool),
	}
}

// runKillRound drives a closed-loop workload against d, SIGKILLs the
// daemon after killAfter, and folds the partial run into the ledger.
func runKillRound(t *testing.T, d *daemon, led *crashLedger, killAfter time.Duration, seed int64) (acceptedNow, doneNow int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resCh := make(chan service.LoadResult, 1)
	go func() {
		// The run is expected to die with the daemon; the partial result's
		// Accepted/Terminal ledgers are what matter.
		res, _ := service.RunLoad(ctx, service.LoadConfig{
			BaseURL:    d.BaseURL,
			Clients:    6,
			Jobs:       100000,
			Mode:       "concurrent",
			Graph:      api.GraphSpec{Model: api.ModelGNP, N: 500, Edges: 2000, Seed: uint64(seed + 1)},
			GraphSeeds: 2,
			Verify:     true,
		})
		resCh <- res
	}()
	time.Sleep(killAfter)
	d.kill()
	cancel()
	res := <-resCh
	for _, id := range res.Accepted {
		led.accepted[id] = true
	}
	for id, st := range res.Terminal {
		if st == api.StateDone {
			led.observedDone[id] = true
			doneNow++
		}
	}
	return len(res.Accepted), doneNow
}

// inspectLog reads the crashed daemon's log directory directly (read-only,
// before the next boot compacts it) and checks it against the ledger:
//
//   - a job the client observed done must never sit in the log as
//     unfinished — its terminal mark was fsynced before the client could
//     see done;
//   - in strict mode, every accepted job must appear in the log as
//     unfinished or terminal, unless an earlier inspection already saw it
//     durably terminal (its records were then compacted legitimately).
//     Strict mode is sound only when segments are large enough that a job
//     cannot be accepted, finished, and compacted between two inspections.
//
// Every terminal id the log holds is folded into led.knownTerminal.
func inspectLog(t *testing.T, walDir string, led *crashLedger, strict bool) {
	t.Helper()
	rep, err := wal.Inspect(walDir)
	if err != nil {
		t.Fatalf("inspecting log after kill: %v", err)
	}
	unfinished := make(map[int64]bool, len(rep.Unfinished))
	for _, j := range rep.Unfinished {
		unfinished[j.ID] = true
	}
	for _, j := range rep.Terminal {
		led.knownTerminal[j.ID] = true
	}
	// An orphan mark (accept compacted, mark surviving) still proves the
	// job finished durably.
	for _, id := range rep.Orphans {
		led.knownTerminal[id] = true
	}
	lost := 0
	for id := range led.accepted {
		if led.observedDone[id] && unfinished[id] {
			t.Errorf("job %d was observed done but the log holds no terminal mark for it", id)
		}
		if strict && !unfinished[id] && !led.knownTerminal[id] {
			t.Errorf("accepted job %d has no trace in the log and was never durably terminal", id)
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d accepted jobs missing from the log (torn_tail=%v)", lost, len(led.accepted), rep.TornTail)
	}
}

// verifyRecovery checks a freshly restarted daemon against the ledger.
// Every accepted job must be queryable unless the log durably marked it
// terminal before its history was compacted away (strict mode requires
// knownTerminal for a 404; loose mode, used when tiny segments make
// within-boot compaction possible, tolerates any 404 — inspectLog and the
// wal unit tests carry the loss checks there). A job the client observed
// done must never show signs of re-execution: if present it is done,
// flagged recovered, with no freshly-computed result.
func verifyRecovery(t *testing.T, d *daemon, led *crashLedger, strict bool) {
	t.Helper()
	lost := 0
	for id := range led.accepted {
		st, err := d.status(id)
		if err != nil {
			if api.IsCode(err, api.CodeUnknownJob) {
				if !strict || led.knownTerminal[id] {
					continue
				}
				t.Errorf("accepted job %d lost across restart", id)
				lost++
				continue
			}
			t.Fatalf("status of accepted job %d: %v", id, err)
		}
		if led.observedDone[id] {
			if st.State != api.StateDone {
				t.Fatalf("job %d observed done before the crash is now %q — it was re-run or lost", id, st.State)
			}
			if !st.Recovered {
				t.Fatalf("job %d observed done before the crash is not flagged recovered: %+v", id, st)
			}
			if st.Result != nil {
				t.Fatalf("job %d observed done before the crash carries a fresh result — it was re-executed: %+v", id, st.Result)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d accepted jobs lost across restart\ndaemon output:\n%s", lost, len(led.accepted), d.output())
	}
}

// drainSurvivors polls every accepted job the client never saw finish
// until it reaches a terminal state, asserting it ends done (the specs are
// valid and verified; nothing should fail). Jobs whose history was
// legitimately compacted away are skipped.
func drainSurvivors(t *testing.T, d *daemon, led *crashLedger, strict bool) {
	t.Helper()
	var pending []int64
	for id := range led.accepted {
		if !led.observedDone[id] {
			pending = append(pending, id)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, id := range pending {
		if _, err := d.status(id); api.IsCode(err, api.CodeUnknownJob) {
			if strict && !led.knownTerminal[id] {
				t.Fatalf("accepted job %d vanished before draining", id)
			}
			continue
		}
		st := d.waitTerminal(id)
		if st.State != api.StateDone {
			t.Fatalf("accepted job %d ended %q (error %q), want done", id, st.State, st.Error)
		}
	}
}

// TestCrashReplaySmokeBinary is the crash-injection scenario CI runs via
// `make crash-smoke` (gated behind RELAXSCHED_SMOKE_CRASH=1 because it
// builds and execs the real binary). The kill schedule is pinned by
// RELAXSCHED_CRASH_SEED, so a CI failure reproduces locally.
//
// Each round: start relaxd over the shared -wal-dir, check everything the
// previous rounds established survived the last SIGKILL, drive a mixed
// closed-loop workload, SIGKILL the daemon at a seeded random point
// mid-flight, then read the log directly (wal.Inspect) before the next
// boot. Default segment size keeps within-boot compaction impossible at
// this volume, so the checks are strict: a single lost acceptance fails.
// The final phase drains every surviving job to done, exits cleanly via
// SIGTERM, then corrupts the log tail and checks the next boot stops
// cleanly at the torn record with every prior record intact.
func TestCrashReplaySmokeBinary(t *testing.T) {
	if os.Getenv("RELAXSCHED_SMOKE_CRASH") == "" {
		t.Skip("set RELAXSCHED_SMOKE_CRASH=1 to run the relaxd crash-injection smoke test")
	}
	seed := envInt("RELAXSCHED_CRASH_SEED", 1)
	rounds := int(envInt("RELAXSCHED_CRASH_ROUNDS", 4))
	rng := rand.New(rand.NewSource(seed))

	bin := buildRelaxd(t)
	walDir := filepath.Join(t.TempDir(), "wal")
	args := []string{
		"-addr", "127.0.0.1:0", "-workers", "2", "-queue-depth", "64",
		"-jobsched", "multiqueue", "-jobsched-k", "4",
		"-wal-dir", walDir,
	}
	led := newCrashLedger()

	for round := 0; round < rounds; round++ {
		d := startDaemon(t, bin, args...)
		verifyRecovery(t, d, led, true)
		killAfter := time.Duration(150+rng.Intn(400)) * time.Millisecond
		acc, done := runKillRound(t, d, led, killAfter, seed)
		inspectLog(t, walDir, led, true)
		t.Logf("round %d: killed after %v; %d accepted, %d observed done (totals: %d accepted, %d done, %d durably terminal)",
			round, killAfter, acc, done, len(led.accepted), len(led.observedDone), len(led.knownTerminal))
	}
	if len(led.accepted) == 0 {
		t.Fatal("no job was ever accepted; the kill schedule left nothing to test")
	}

	// Final phase: boot once more, re-verify, drain everything to done.
	d := startDaemon(t, bin, args...)
	verifyRecovery(t, d, led, true)
	drainSurvivors(t, d, led, true)
	m := d.metrics()
	if m.WAL == nil {
		t.Fatal("daemon running with -wal-dir reports no wal metrics section")
	}
	if m.WAL.Appends == 0 || m.WAL.Segments < 1 {
		t.Fatalf("implausible wal metrics: %+v", m.WAL)
	}
	t.Logf("final wal state: %+v", m.WAL)
	d.term()
	// The clean drain marked every remaining job terminal; fold those marks
	// into the ledger so the torn-tail boot (which may compact them) still
	// verifies strictly.
	inspectLog(t, walDir, led, true)

	// Torn-tail phase: garbage appended to the tail segment simulates a
	// write torn mid-crash. The next boot must stop cleanly at the last
	// valid record — every real record still replays (and every job is
	// already durably terminal, so nothing re-enters the queue), with the
	// torn tail flagged in metrics.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments after run: %v (%v)", segs, err)
	}
	sort.Strings(segs)
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if rep, err := wal.Inspect(walDir); err != nil || !rep.TornTail {
		t.Fatalf("Inspect did not flag the torn tail: %+v (%v)", rep, err)
	}

	d2 := startDaemon(t, bin, args...)
	m2 := d2.metrics()
	if m2.WAL == nil || !m2.WAL.TornTail {
		t.Fatalf("boot over torn tail did not flag it: %+v", m2.WAL)
	}
	if m2.WAL.ReplayedJobs != 0 {
		t.Fatalf("clean-drained log replayed %d jobs", m2.WAL.ReplayedJobs)
	}
	verifyRecovery(t, d2, led, true)
	d2.term()

	// The torn-tail boot truncated the tear away before sealing the
	// segment. A second restart sees that segment as sealed — where
	// corruption is a hard boot error — so it must come up clean: daemon
	// boots, nothing flagged torn, nothing replayed, history intact.
	d3 := startDaemon(t, bin, args...)
	m3 := d3.metrics()
	if m3.WAL == nil || m3.WAL.TornTail {
		t.Fatalf("torn tail still flagged two boots after the tear: %+v", m3.WAL)
	}
	if m3.WAL.ReplayedJobs != 0 {
		t.Fatalf("repaired log replayed %d jobs", m3.WAL.ReplayedJobs)
	}
	verifyRecovery(t, d3, led, true)
	d3.term()
}

// TestCrashCompactionChurnBinary repeats the kill loop with tiny segments
// (-wal-segment-bytes 4096), keeping rotation and compaction constantly in
// flight so kills land mid-rotation and mid-compaction. A job can now be
// accepted, finished, and compacted away between two inspections, so the
// existence checks drop to loose mode; what must still hold is that no
// observed-done job is ever re-executed or sits unfinished in the log, and
// that every surviving job drains to done. The run asserts compaction
// actually happened — otherwise it proved nothing beyond the strict test.
func TestCrashCompactionChurnBinary(t *testing.T) {
	if os.Getenv("RELAXSCHED_SMOKE_CRASH") == "" {
		t.Skip("set RELAXSCHED_SMOKE_CRASH=1 to run the relaxd crash-injection smoke test")
	}
	seed := envInt("RELAXSCHED_CRASH_SEED", 1) + 17
	rounds := int(envInt("RELAXSCHED_CRASH_ROUNDS", 4))
	rng := rand.New(rand.NewSource(seed))

	bin := buildRelaxd(t)
	walDir := filepath.Join(t.TempDir(), "wal")
	args := []string{
		"-addr", "127.0.0.1:0", "-workers", "2", "-queue-depth", "64",
		"-jobsched", "multiqueue", "-jobsched-k", "4",
		"-wal-dir", walDir, "-wal-segment-bytes", "4096",
	}
	led := newCrashLedger()

	for round := 0; round < rounds; round++ {
		d := startDaemon(t, bin, args...)
		verifyRecovery(t, d, led, false)
		killAfter := time.Duration(150+rng.Intn(400)) * time.Millisecond
		acc, done := runKillRound(t, d, led, killAfter, seed)
		inspectLog(t, walDir, led, false)
		t.Logf("round %d: killed after %v; %d accepted, %d observed done (totals: %d accepted, %d done, %d durably terminal)",
			round, killAfter, acc, done, len(led.accepted), len(led.observedDone), len(led.knownTerminal))
	}
	if len(led.accepted) == 0 {
		t.Fatal("no job was ever accepted; the kill schedule left nothing to test")
	}

	d := startDaemon(t, bin, args...)
	verifyRecovery(t, d, led, false)
	drainSurvivors(t, d, led, false)
	m := d.metrics()
	if m.WAL == nil || m.WAL.Appends == 0 {
		t.Fatalf("implausible wal metrics: %+v", m.WAL)
	}
	t.Logf("final wal state: %+v", m.WAL)
	d.term()

	if m.WAL.Compacted == 0 {
		t.Fatal("compaction never ran: the churn phase did not exercise it (segments too large for the workload?)")
	}
}
