// Package faultinject is the crash-injection harness behind `make
// crash-smoke`: it proves relaxd's write-ahead log durability claims
// against the real binary rather than in-process fakes.
//
// The harness builds cmd/relaxd, starts it with -wal-dir, drives a mixed
// closed-loop workload through the HTTP API, and delivers SIGKILL at
// seeded random points mid-flight. Between each kill and the next boot it
// reads the log directory directly with wal.Inspect — ground truth for
// what the log durably holds — and after each restart it checks the two
// halves of the durability contract from the client's point of view:
//
//   - zero lost acceptances: every job whose 202 the client observed is
//     either queryable on the restarted daemon (queued, running, or
//     terminal — and eventually done) or was durably marked terminal
//     before compaction erased its history;
//   - zero duplicate executions: every job the client observed done
//     before the kill comes back done, flagged recovered, with no
//     freshly-computed result — it was never re-run.
//
// TestCrashReplaySmokeBinary runs with default-size segments, where
// within-boot compaction is impossible at test volumes, so every check is
// strict; it finishes by draining all survivors to done, exiting cleanly
// via SIGTERM, and booting once more over a deliberately torn tail
// (torn_tail=true in /v1/metrics, zero replays). TestCrashCompactionChurnBinary
// repeats the kill loop with -wal-segment-bytes 4096 so kills land
// mid-rotation and mid-compaction, keeping the no-re-execution checks and
// asserting compaction actually ran.
//
// Everything is gated behind RELAXSCHED_SMOKE_CRASH=1 (the tests build
// and exec a real binary); RELAXSCHED_CRASH_SEED pins the kill schedule
// (default 1) and RELAXSCHED_CRASH_ROUNDS the number of kill rounds
// (default 4).
package faultinject
