package faultinject

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"relaxsched/internal/api"
)

var listenRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

// buildRelaxd compiles cmd/relaxd once into the test's temp dir.
func buildRelaxd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "relaxd")
	build := exec.Command("go", "build", "-o", bin, "relaxsched/cmd/relaxd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building relaxd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running relaxd process under harness control.
type daemon struct {
	t       *testing.T
	cmd     *exec.Cmd
	BaseURL string
	stderr  *bytes.Buffer

	mu     sync.Mutex
	stdout []string
	waited bool
}

// startDaemon execs the binary and blocks until it announces its listen
// address. The process keeps running until kill or term.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{t: t, cmd: exec.Command(bin, args...), stderr: &bytes.Buffer{}}
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.kill() })

	scanner := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for scanner.Scan() {
			line := scanner.Text()
			d.mu.Lock()
			d.stdout = append(d.stdout, line)
			d.mu.Unlock()
			select {
			case lines <- line:
			default: // nobody waiting anymore; keep draining the pipe
			}
		}
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("relaxd exited before announcing its address; stderr: %s", d.stderr.String())
			}
			if m := listenRE.FindStringSubmatch(line); m != nil {
				d.BaseURL = m[1]
				return d
			}
		case <-deadline:
			t.Fatalf("relaxd printed no listen line; stderr: %s", d.stderr.String())
		}
	}
}

// output returns everything the daemon has written to stdout so far.
func (d *daemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var b bytes.Buffer
	for _, line := range d.stdout {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// kill delivers SIGKILL — the crash under test: no drain, no flush, no
// goodbye — and reaps the process. Idempotent.
func (d *daemon) kill() {
	d.mu.Lock()
	waited := d.waited
	d.waited = true
	d.mu.Unlock()
	if waited || d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Kill()
	_, _ = d.cmd.Process.Wait()
}

// term delivers SIGTERM and waits for the graceful drain, failing the test
// on a non-zero exit or a hang.
func (d *daemon) term() {
	d.t.Helper()
	d.mu.Lock()
	if d.waited {
		d.mu.Unlock()
		return
	}
	d.waited = true
	d.mu.Unlock()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			d.t.Fatalf("relaxd exited non-zero after SIGTERM: %v\nstderr: %s", err, d.stderr.String())
		}
	case <-time.After(60 * time.Second):
		d.t.Fatal("relaxd did not exit after SIGTERM")
	}
}

// client returns a typed API client for the daemon.
func (d *daemon) client() *api.Client {
	return api.NewClient(d.BaseURL)
}

// status fetches one job's status, failing the test on transport errors
// (an unknown_job envelope is returned to the caller, not fatal).
func (d *daemon) status(id int64) (api.JobStatus, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return d.client().Status(ctx, id)
}

// metrics fetches the daemon's /v1/metrics snapshot.
func (d *daemon) metrics() api.Metrics {
	d.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m, err := d.client().Metrics(ctx)
	if err != nil {
		d.t.Fatalf("fetching metrics: %v", err)
	}
	return m
}

// waitTerminal polls a job until it leaves queued/running.
func (d *daemon) waitTerminal(id int64) api.JobStatus {
	d.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := d.status(id)
		if err != nil {
			d.t.Fatalf("polling job %d: %v", id, err)
		}
		if st.State != api.StateQueued && st.State != api.StateRunning {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	d.t.Fatalf("job %d did not reach a terminal state", id)
	return api.JobStatus{}
}

// envInt reads an integer environment override.
func envInt(name string, def int64) int64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}
