// Package gateway implements relaxgw: a cluster front for N relaxd
// backends that speaks the exact same wire API as a single node
// (api.Dispatcher over HTTP), so clients cannot tell one node from a
// cluster.
//
// Jobs route by consistent hash of their canonical graph key
// (GraphSpec.Key), which keeps each backend's LRU graph cache hot: every
// job asking for the same generated graph lands on the node that already
// built it. The cluster as a whole is then a relaxed scheduler in the
// paper's sense — each node dispenses the best job *it* holds, not the
// best job pending anywhere — and the gateway measures exactly that
// relaxation: a cluster-wide rank tracker, fed from submission order,
// reports the global rank error alongside each node's local one.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relaxsched/internal/api"
	"relaxsched/internal/metricsexport"
	"relaxsched/internal/ranktrack"
	"relaxsched/internal/sched"
	"relaxsched/internal/trace"
)

const (
	// maxBackends bounds the cluster size: a job's global id carries its
	// owning backend index in the low 8 bits (globalID = localID*idStride
	// + index), so ids stay well inside int64 for any realistic local id.
	maxBackends = 256
	idStride    = 256

	defaultReplicas       = 128
	defaultHealthInterval = 2 * time.Second

	// hopCapacity bounds the ring of recorded submit hops (the gateway's
	// own span on each routed job's trace); oldest first, like the
	// backends' trace rings.
	hopCapacity = 4096
)

// Options configures a Gateway.
type Options struct {
	// Backends are the relaxd base URLs in routing order, e.g.
	// ["http://localhost:8081", "http://localhost:8082"]. At most 256.
	Backends []string
	// Replicas is the number of virtual ring points per backend
	// (default 128).
	Replicas int
	// HealthInterval is the period of the background health checker
	// (default 2s). Zero or negative selects the default.
	HealthInterval time.Duration
	// HTTPClient overrides the backend clients' *http.Client (default:
	// the api package's shared timed client).
	HTTPClient *http.Client
	// Logger receives the gateway's structured log lines (default:
	// discard). Backend health transitions and routed submissions are
	// logged here.
	Logger *slog.Logger
}

type backend struct {
	url      string
	client   *api.Client
	healthy  atomic.Bool
	draining atomic.Bool
}

// hopRecord is the gateway's own span on one routed job: when the submit
// hop started, how long the backend round trip took, and where it landed.
type hopRecord struct {
	start    time.Time
	durNanos int64
	backend  string
}

// Gateway fronts a fleet of relaxd backends behind the single-node wire
// API. It implements api.Dispatcher; serve it with Handler.
type Gateway struct {
	backends []*backend
	ring     *ring
	start    time.Time
	logger   *slog.Logger

	stopHealth chan struct{}
	healthDone chan struct{}

	mu       sync.Mutex
	seq      int32
	pending  map[int64]sched.Item // global job id -> its tracker item
	tracker  ranktrack.Tracker
	rank     ranktrack.Stats
	draining bool
	hops     map[int64]hopRecord // global job id -> gateway submit hop
	hopOrder []int64             // FIFO eviction order for hops
}

var _ api.Dispatcher = (*Gateway)(nil)

// New builds a gateway over opts.Backends and starts its background
// health checker; Close stops it. Backends start optimistically healthy —
// the first failed request or health probe marks them down, the next
// passing probe brings them back.
func New(opts Options) (*Gateway, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("gateway: at least one backend is required")
	}
	if len(opts.Backends) > maxBackends {
		return nil, fmt.Errorf("gateway: %d backends exceeds the limit of %d", len(opts.Backends), maxBackends)
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	interval := opts.HealthInterval
	if interval <= 0 {
		interval = defaultHealthInterval
	}

	logger := opts.Logger
	if logger == nil {
		logger = trace.DiscardLogger()
	}

	urls := make([]string, len(opts.Backends))
	seen := make(map[string]bool, len(opts.Backends))
	g := &Gateway{
		backends:   make([]*backend, len(opts.Backends)),
		start:      time.Now(),
		logger:     logger,
		stopHealth: make(chan struct{}),
		healthDone: make(chan struct{}),
		pending:    make(map[int64]sched.Item),
		hops:       make(map[int64]hopRecord),
	}
	for i, raw := range opts.Backends {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("gateway: backend %d has an empty URL", i)
		}
		if seen[u] {
			return nil, fmt.Errorf("gateway: duplicate backend %s", u)
		}
		seen[u] = true
		urls[i] = u
		cli := api.NewClient(u)
		if opts.HTTPClient != nil {
			cli.HTTP = opts.HTTPClient
		}
		b := &backend{url: u, client: cli}
		b.healthy.Store(true)
		g.backends[i] = b
	}
	g.ring = newRing(urls, replicas)
	go g.healthLoop(interval)
	return g, nil
}

// Close stops the health checker. It does not touch the backends.
func (g *Gateway) Close() {
	close(g.stopHealth)
	<-g.healthDone
}

func (g *Gateway) healthLoop(interval time.Duration) {
	defer close(g.healthDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.stopHealth:
			return
		case <-t.C:
			g.checkHealth(interval)
		}
	}
}

// checkHealth probes every backend concurrently. A "ok" /healthz flips a
// backend (back) to healthy; a "draining" answer takes it out of the
// submit rotation but marks it alive (status polls and traces still
// route to it), and a transport failure marks it down. Transitions are
// logged so an operator can tell a drain from an outage.
func (g *Gateway) checkHealth(timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			status, err := b.client.Health(ctx)
			accepting := err == nil && status == api.StatusOK
			draining := err == nil && status == api.StatusDraining
			wasDraining := b.draining.Swap(draining)
			wasAccepting := b.healthy.Swap(accepting)
			if wasAccepting == accepting && wasDraining == draining {
				return
			}
			switch {
			case accepting:
				g.logger.Info("backend healthy", "backend", b.url)
			case draining:
				g.logger.Info("backend draining", "backend", b.url)
			default:
				g.logger.Warn("backend down", "backend", b.url, "status", status, "err", err)
			}
		}(b)
	}
	wg.Wait()
}

// Submit routes the job to the backend owning its graph key, walking the
// ring's failover sequence past unhealthy backends (availability over
// affinity). A backend's own rejection (queue full, invalid spec) is
// authoritative and returned as-is — spilling a queue-full rejection onto
// a non-owner would trade the graph-cache hit for a cold build, and the
// retry_after_ms hint already routes the retry back to the owner. Only
// transport failures fail over; with no reachable backend the gateway
// answers 502 backend_down.
func (g *Gateway) Submit(ctx context.Context, spec api.JobSpec) (api.JobStatus, error) {
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	if draining {
		return api.JobStatus{}, &api.Error{Code: api.CodeDraining, Message: "gateway: draining, not accepting jobs"}
	}
	key := spec.Graph.Key()
	for _, idx := range g.ring.sequence(key) {
		b := g.backends[idx]
		if !b.healthy.Load() {
			continue
		}
		hopStart := time.Now()
		st, err := b.client.Submit(ctx, spec)
		if err != nil {
			var e *api.Error
			if errors.As(err, &e) {
				return api.JobStatus{}, e
			}
			b.healthy.Store(false)
			g.logger.Warn("backend down", "backend", b.url, "err", err)
			continue
		}
		st.ID = g.admit(st.ID, idx, spec.Priority)
		g.recordHop(st.ID, hopRecord{
			start:    hopStart,
			durNanos: time.Since(hopStart).Nanoseconds(),
			backend:  b.url,
		})
		g.logger.Debug("job routed",
			"job_id", st.ID,
			"trace_id", trace.IDFromContext(ctx),
			"backend", b.url,
			"workload", spec.Workload)
		return st, nil
	}
	return api.JobStatus{}, &api.Error{Code: api.CodeBackendDown, Message: "gateway: no healthy backend"}
}

// recordHop remembers the gateway's submit hop for a routed job so a
// later trace poll can prepend it to the backend's span timeline. The
// ring is bounded at hopCapacity; oldest hops are evicted first, after
// which the job's trace simply lacks the gateway span.
func (g *Gateway) recordHop(globalID int64, h hopRecord) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, exists := g.hops[globalID]; !exists {
		if len(g.hopOrder) >= hopCapacity {
			oldest := g.hopOrder[0]
			g.hopOrder = g.hopOrder[1:]
			delete(g.hops, oldest)
		}
		g.hopOrder = append(g.hopOrder, globalID)
	}
	g.hops[globalID] = h
}

// admit records a successfully placed job in the cluster-wide rank
// tracker and returns its global id. Tracker items are keyed by global
// submission sequence, so ties between equal-priority jobs break in
// submission order — the same total order a single node's queue uses.
func (g *Gateway) admit(localID int64, idx int, priority uint32) int64 {
	globalID := localID*idStride + int64(idx)
	g.mu.Lock()
	defer g.mu.Unlock()
	it := sched.Item{Task: g.seq, Priority: priority}
	g.seq++
	g.pending[globalID] = it
	g.tracker.Insert(it)
	return globalID
}

// observeDeparture measures a job's global rank the first time it is seen
// out of the queued state. Dispatch happens inside a backend, so the
// gateway observes it at the next status poll — the measured global rank
// error is therefore an upper bound as of poll time, documented in
// EXPERIMENTS.md.
func (g *Gateway) observeDeparture(globalID int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	it, ok := g.pending[globalID]
	if !ok {
		return
	}
	delete(g.pending, globalID)
	g.rank.Observe(g.tracker.Remove(it))
}

// Status polls the backend owning the job's global id. The owner is
// always tried — even when marked unhealthy — so status polls keep
// working while a backend drains; only a transport failure answers 502.
func (g *Gateway) Status(ctx context.Context, id int64) (api.JobStatus, error) {
	if id < 0 || int(id%idStride) >= len(g.backends) {
		return api.JobStatus{}, &api.Error{Code: api.CodeUnknownJob, Message: fmt.Sprintf("unknown job %d", id)}
	}
	b := g.backends[id%idStride]
	st, err := b.client.Status(ctx, id/idStride)
	if err != nil {
		var e *api.Error
		if errors.As(err, &e) {
			return api.JobStatus{}, e
		}
		b.healthy.Store(false)
		return api.JobStatus{}, &api.Error{Code: api.CodeBackendDown, Message: fmt.Sprintf("gateway: backend %s unreachable: %v", b.url, err)}
	}
	st.ID = id
	if st.State != api.StateQueued {
		g.observeDeparture(id)
	}
	return st, nil
}

// JobTrace polls the owning backend for the job's span timeline and
// prepends the gateway's own submit hop as a "gateway.submit" span. Hop
// offsets are rebased against the backend's timeline origin, so the
// gateway span usually starts at a negative offset — the hop began
// before the backend accepted the job. Like Status, the owner is always
// tried even when marked unhealthy, so traces stay fetchable during a
// drain.
func (g *Gateway) JobTrace(ctx context.Context, id int64) (api.JobTrace, error) {
	if id < 0 || int(id%idStride) >= len(g.backends) {
		return api.JobTrace{}, &api.Error{Code: api.CodeUnknownJob, Message: fmt.Sprintf("unknown job %d", id)}
	}
	b := g.backends[id%idStride]
	tr, err := b.client.JobTrace(ctx, id/idStride)
	if err != nil {
		var e *api.Error
		if errors.As(err, &e) {
			return api.JobTrace{}, e
		}
		b.healthy.Store(false)
		return api.JobTrace{}, &api.Error{Code: api.CodeBackendDown, Message: fmt.Sprintf("gateway: backend %s unreachable: %v", b.url, err)}
	}
	tr.ID = id
	g.mu.Lock()
	hop, ok := g.hops[id]
	g.mu.Unlock()
	if ok {
		off := hop.start.Sub(tr.StartedAt).Nanoseconds()
		span := api.TraceSpan{
			Name:       "gateway.submit",
			StartNanos: off,
			EndNanos:   off + hop.durNanos,
			Detail:     "backend=" + hop.backend,
		}
		tr.Spans = append([]api.TraceSpan{span}, tr.Spans...)
	}
	return tr, nil
}

// Workloads lists the registry from the first reachable backend — every
// relaxd build serves the same registry.
func (g *Gateway) Workloads(ctx context.Context) ([]api.WorkloadInfo, error) {
	for _, b := range g.backends {
		infos, err := b.client.Workloads(ctx)
		if err != nil {
			var e *api.Error
			if errors.As(err, &e) {
				return nil, e
			}
			b.healthy.Store(false)
			continue
		}
		return infos, nil
	}
	return nil, &api.Error{Code: api.CodeBackendDown, Message: "gateway: no healthy backend"}
}

// Metrics returns the cluster aggregate in single-node shape; use
// ClusterMetrics (or GET /v1/metrics, which serves it) for the
// per-backend breakdown.
func (g *Gateway) Metrics(ctx context.Context) (api.Metrics, error) {
	return g.ClusterMetrics(ctx).Metrics, nil
}

// ClusterMetrics snapshots every backend concurrently and aggregates:
// capacities and counters sum, the scheduler label collapses to "mixed"
// when backends disagree, latency percentiles merge count-weighted (an
// approximation — exact merging would need the raw samples), and
// RankError is the gateway's own global measurement. Fetch success and
// failure double as health observations.
func (g *Gateway) ClusterMetrics(ctx context.Context) api.ClusterMetrics {
	rows := make([]api.BackendMetrics, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			m, err := b.client.Metrics(ctx)
			if err != nil {
				b.healthy.Store(false)
				rows[i] = api.BackendMetrics{URL: b.url, Error: err.Error()}
				return
			}
			b.healthy.Store(true)
			rows[i] = api.BackendMetrics{URL: b.url, Healthy: true, Metrics: &m}
		}(i, b)
	}
	wg.Wait()

	g.mu.Lock()
	cm := api.ClusterMetrics{
		Metrics: api.Metrics{
			UptimeSeconds: time.Since(g.start).Seconds(),
			Draining:      g.draining,
			RankError: api.RankErrorStats{
				Count: g.rank.Count,
				Mean:  g.rank.Mean(),
				Max:   g.rank.Max,
			},
		},
		Backends: rows,
	}
	g.mu.Unlock()

	controllers := 0
	for _, row := range rows {
		if row.Metrics == nil {
			continue
		}
		m := row.Metrics
		cm.HealthyBackends++
		if cm.JobSched == "" {
			cm.JobSched = m.JobSched
			cm.JobSchedK = m.JobSchedK
		} else if cm.JobSched != m.JobSched || cm.JobSchedK != m.JobSchedK {
			cm.JobSched = "mixed"
			cm.JobSchedK = 0
		}
		cm.Workers += m.Workers
		cm.QueueCapacity += m.QueueCapacity
		addJobCounts(&cm.Jobs, m.Jobs)
		addCacheStats(&cm.Cache, m.Cache)
		cm.Cost.Pops += m.Cost.Pops
		cm.Cost.StalePops += m.Cost.StalePops
		cm.Cost.Wasted += m.Cost.Wasted
		cm.Cost.Steals += m.Cost.Steals
		cm.Cost.GlobalFallbacks += m.Cost.GlobalFallbacks
		cm.Cost.EmptyPolls += m.Cost.EmptyPolls
		mergeLatency(&cm.QueueLatency, m.QueueLatency)
		mergeLatency(&cm.ExecLatency, m.ExecLatency)
		cm.QueueLatencyHist = metricsexport.MergeHistograms(cm.QueueLatencyHist, m.QueueLatencyHist)
		cm.ExecLatencyHist = metricsexport.MergeHistograms(cm.ExecLatencyHist, m.ExecLatencyHist)
		if m.Controller != nil {
			mergeController(&cm.Controller, m.Controller)
			controllers++
		}
		mergeWAL(&cm.WAL, m.WAL)
	}
	finishLatency(&cm.QueueLatency)
	finishLatency(&cm.ExecLatency)
	finishController(cm.Controller, controllers)
	return cm
}

func addJobCounts(dst *api.JobCounts, src api.JobCounts) {
	dst.Submitted += src.Submitted
	dst.Queued += src.Queued
	dst.Running += src.Running
	dst.Done += src.Done
	dst.Failed += src.Failed
	dst.Canceled += src.Canceled
	dst.Rejected += src.Rejected
}

func addCacheStats(dst *api.CacheStats, src api.CacheStats) {
	dst.Entries += src.Entries
	dst.Capacity += src.Capacity
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Evictions += src.Evictions
}

// mergeController folds one backend's controller section into the cluster
// aggregate; finishController turns the K/Batch sums into means. Backends
// on static schedulers report no section and are simply absent from the
// aggregate (a fleet with no controllers omits the section entirely).
// Counters sum; the SLO echo survives only while every reporting backend
// agrees, zeroing on heterogeneous fleets exactly as JobSchedK does; the
// per-node LastAdjustment is dropped — a cluster has no single "last".
func mergeController(dst **api.ControllerStats, src *api.ControllerStats) {
	if src == nil {
		return
	}
	if *dst == nil {
		*dst = &api.ControllerStats{
			Enabled:  true,
			RankSLO:  src.RankSLO,
			P99SLOMs: src.P99SLOMs,
		}
	}
	d := *dst
	if d.RankSLO != src.RankSLO {
		d.RankSLO = 0
	}
	if d.P99SLOMs != src.P99SLOMs {
		d.P99SLOMs = 0
	}
	d.K += src.K
	d.Batch += src.Batch
	d.Steps += src.Steps
	d.Widened += src.Widened
	d.Tightened += src.Tightened
	d.RankViolations += src.RankViolations
	d.P99Violations += src.P99Violations
}

// finishController divides the summed K/Batch back into per-backend means
// (rounded to nearest), given how many backends reported a controller.
func finishController(c *api.ControllerStats, controllers int) {
	if c == nil || controllers == 0 {
		return
	}
	c.K = (c.K + controllers/2) / controllers
	c.Batch = (c.Batch + controllers/2) / controllers
}

// mergeWAL folds one backend's write-ahead-log section into the cluster
// aggregate. Backends without a log report no section and are absent; a
// fleet with no logs omits the section entirely. Counters and gauges sum
// (Segments is a fleet-wide total, not a mean), and TornTail is true if
// any backend recovered past a torn tail.
func mergeWAL(dst **api.WALStats, src *api.WALStats) {
	if src == nil {
		return
	}
	if *dst == nil {
		*dst = &api.WALStats{}
	}
	d := *dst
	d.Appends += src.Appends
	d.Fsyncs += src.Fsyncs
	d.ReplayedJobs += src.ReplayedJobs
	d.Segments += src.Segments
	d.Compacted += src.Compacted
	d.Bytes += src.Bytes
	d.TornTail = d.TornTail || src.TornTail
}

// mergeLatency accumulates count-weighted sums into dst; finishLatency
// divides them back into means once every backend is folded in.
func mergeLatency(dst *api.LatencySummary, src api.LatencySummary) {
	w := float64(src.Count)
	dst.Count += src.Count
	dst.MeanMs += w * src.MeanMs
	dst.P50Ms += w * src.P50Ms
	dst.P95Ms += w * src.P95Ms
	dst.P99Ms += w * src.P99Ms
	if src.MaxMs > dst.MaxMs {
		dst.MaxMs = src.MaxMs
	}
}

func finishLatency(l *api.LatencySummary) {
	if l.Count == 0 {
		return
	}
	w := float64(l.Count)
	l.MeanMs /= w
	l.P50Ms /= w
	l.P95Ms /= w
	l.P99Ms /= w
}

// Drain stops gateway admission and fans the drain out to every backend.
// Unreachable backends are reported but do not abort the fan-out.
func (g *Gateway) Drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()

	errs := make([]error, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			if err := b.client.Drain(ctx); err != nil {
				errs[i] = fmt.Errorf("draining %s: %w", b.url, err)
			}
		}(i, b)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return api.WrapError(err, api.CodeBackendDown)
	}
	return nil
}

// HealthyBackends counts backends whose last probe or request succeeded.
func (g *Gateway) HealthyBackends() int {
	n := 0
	for _, b := range g.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// Handler serves the gateway over the same versioned wire API as a
// single node (api.NewHandler), with the metrics and health routes
// overridden: GET /v1/metrics serves the full ClusterMetrics payload,
// GET /v1/metrics/prom renders it as Prometheus text with per-backend
// labels, and /healthz answers 200 with status "ok" while accepting,
// 200 with status "draining" during a drain (alive, finishing work),
// and 503 only when no backend is reachable. (The deprecated
// unversioned /metrics alias is gone, like the node-level aliases.)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	metrics := func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, g.ClusterMetrics(r.Context()))
	}
	mux.HandleFunc("GET /v1/metrics", metrics)
	mux.HandleFunc("GET /v1/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		cm := g.ClusterMetrics(r.Context())
		w.Header().Set("Content-Type", metricsexport.ContentType)
		w.Write(metricsexport.RenderCluster(&cm))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		draining := g.draining
		g.mu.Unlock()
		healthy := g.HealthyBackends()
		body := map[string]any{"status": api.StatusOK, "healthy_backends": healthy}
		switch {
		case draining:
			body["status"] = api.StatusDraining
			api.WriteJSON(w, http.StatusOK, body)
		case healthy == 0:
			body["status"] = "no healthy backends"
			api.WriteJSON(w, http.StatusServiceUnavailable, body)
		default:
			api.WriteJSON(w, http.StatusOK, body)
		}
	})
	mux.Handle("/", api.NewHandler(g))
	return api.WithTrace(mux)
}
