package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relaxsched/internal/api"
	"relaxsched/internal/metricsexport"
	"relaxsched/internal/service"
	"relaxsched/internal/trace"
)

// testBackend is one in-process relaxd: a real service.Manager behind a
// real HTTP server, so the gateway's client stack is exercised end to end.
type testBackend struct {
	mgr *service.Manager
	srv *httptest.Server
}

func startBackend(t *testing.T) *testBackend {
	t.Helper()
	mgr, err := service.NewManager(service.Options{Workers: 1, QueueDepth: 64, JobSched: service.JobSchedExact, CacheCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return &testBackend{mgr: mgr, srv: srv}
}

func newTestGateway(t *testing.T, urls ...string) *Gateway {
	t.Helper()
	g, err := New(Options{Backends: urls, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// deadBackendURL returns a URL nothing listens on.
func deadBackendURL(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	return url
}

func misSpec(seed uint64) api.JobSpec {
	spec := api.DefaultJobSpec()
	spec.Workload = "mis"
	spec.Graph = api.GraphSpec{N: 500, Edges: 2000, Seed: seed}
	return spec
}

func waitDone(t *testing.T, d api.Dispatcher, id int64) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := d.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status %d: %v", id, err)
		}
		switch st.State {
		case api.StateDone:
			return st
		case api.StateFailed, api.StateCanceled:
			t.Fatalf("job %d ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %d did not finish", id)
	return api.JobStatus{}
}

// TestGatewayGraphAffinity: identical graph specs route to one backend,
// so the second submission hits that backend's graph cache; a different
// spec may land anywhere but must still round-trip.
func TestGatewayGraphAffinity(t *testing.T) {
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, b1.srv.URL, b2.srv.URL)
	ctx := context.Background()

	first, err := g.Submit(ctx, misSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, g, first.ID)
	second, err := g.Submit(ctx, misSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if first.ID%idStride != second.ID%idStride {
		t.Fatalf("identical specs routed to backends %d and %d", first.ID%idStride, second.ID%idStride)
	}
	st := waitDone(t, g, second.ID)
	if st.Result == nil || !st.Result.GraphCacheHit {
		t.Fatalf("repeat submit missed the owner's graph cache: %+v", st.Result)
	}
	if st.Result.Verified != true {
		t.Fatalf("job not verified: %+v", st.Result)
	}

	// Many distinct specs must use both backends — affinity, not pinning.
	used := map[int64]bool{}
	for seed := uint64(1); seed <= 32; seed++ {
		spec := misSpec(seed)
		spec.Graph.N = 100 + int(seed)
		spec.Graph.Edges = 200
		st, err := g.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		used[st.ID%idStride] = true
		waitDone(t, g, st.ID)
	}
	if len(used) != 2 {
		t.Fatalf("32 distinct graph keys all routed to backends %v", used)
	}
}

// TestGatewayFailover: submissions walk past an unreachable owner to the
// next backend; with every backend down the gateway answers backend_down.
func TestGatewayFailover(t *testing.T) {
	live := startBackend(t)
	dead := deadBackendURL(t)
	g := newTestGateway(t, dead, live.srv.URL)
	ctx := context.Background()

	// Whatever the ring says, every submission must end up on the live
	// backend (the dead one fails its first attempt and is marked down).
	for seed := uint64(1); seed <= 8; seed++ {
		st, err := g.Submit(ctx, misSpec(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		waitDone(t, g, st.ID)
	}
	if g.HealthyBackends() != 1 {
		t.Fatalf("healthy backends = %d, want 1", g.HealthyBackends())
	}

	allDead := newTestGateway(t, deadBackendURL(t), deadBackendURL(t))
	if _, err := allDead.Submit(ctx, misSpec(1)); !api.IsCode(err, api.CodeBackendDown) {
		t.Fatalf("submit with no live backend: %v, want %s", err, api.CodeBackendDown)
	}
}

// TestGatewayHandler502: over HTTP, a dead-backend submission is a 502
// carrying the shared error envelope.
func TestGatewayHandler502(t *testing.T) {
	g := newTestGateway(t, deadBackendURL(t))
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"workload":"mis","graph":{"n":100,"edges":200}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %s, want 502", resp.Status)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeBackendDown || e.Message == "" {
		t.Fatalf("envelope = %+v", e)
	}

	// /healthz reflects the dead fleet after the failed submission.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %s with all backends down, want 503", hresp.Status)
	}
}

// TestGatewayStatusRouting: unknown and malformed global ids are 404s,
// and a backend's own unknown-job answer passes through.
func TestGatewayStatusRouting(t *testing.T) {
	b := startBackend(t)
	g := newTestGateway(t, b.srv.URL)
	ctx := context.Background()

	if _, err := g.Status(ctx, -1); !api.IsCode(err, api.CodeUnknownJob) {
		t.Fatalf("negative id: %v", err)
	}
	// Backend index 7 does not exist in a 1-backend cluster.
	if _, err := g.Status(ctx, 3*idStride+7); !api.IsCode(err, api.CodeUnknownJob) {
		t.Fatalf("bad backend index: %v", err)
	}
	// Valid index, id the backend never issued.
	if _, err := g.Status(ctx, 999999*idStride); !api.IsCode(err, api.CodeUnknownJob) {
		t.Fatalf("unknown local id: %v", err)
	}
}

// TestGatewayClusterMetricsAndRankError: the aggregate sums backend
// counters, reports both backends healthy, and carries the gateway's
// global rank-error measurement (one observation per job seen leaving
// the queued state).
func TestGatewayClusterMetricsAndRankError(t *testing.T) {
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, b1.srv.URL, b2.srv.URL)
	ctx := context.Background()

	const jobs = 6
	for seed := uint64(1); seed <= jobs; seed++ {
		spec := misSpec(seed)
		spec.Priority = uint32(seed * 10)
		st, err := g.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, g, st.ID)
	}

	cm := g.ClusterMetrics(ctx)
	if cm.HealthyBackends != 2 || len(cm.Backends) != 2 {
		t.Fatalf("healthy=%d backends=%d", cm.HealthyBackends, len(cm.Backends))
	}
	if cm.Jobs.Done != jobs {
		t.Fatalf("aggregate done = %d, want %d", cm.Jobs.Done, jobs)
	}
	var perNode int64
	for _, row := range cm.Backends {
		if row.Metrics == nil {
			t.Fatalf("backend %s has no metrics: %s", row.URL, row.Error)
		}
		perNode += row.Metrics.Jobs.Done
	}
	if perNode != jobs {
		t.Fatalf("per-backend done sums to %d, want %d", perNode, jobs)
	}
	if cm.Workers != 2 || cm.QueueCapacity != 128 {
		t.Fatalf("workers=%d queue=%d, want sums 2 and 128", cm.Workers, cm.QueueCapacity)
	}
	if cm.JobSched != service.JobSchedExact {
		t.Fatalf("job_sched = %q, want %q (homogeneous fleet)", cm.JobSched, service.JobSchedExact)
	}
	// Every job was polled out of queued, so the global tracker observed
	// every departure and the live set is empty again.
	if cm.RankError.Count != jobs {
		t.Fatalf("global rank-error count = %d, want %d", cm.RankError.Count, jobs)
	}
	g.mu.Lock()
	liveLen, pendingLen := g.tracker.Len(), len(g.pending)
	g.mu.Unlock()
	if liveLen != 0 || pendingLen != 0 {
		t.Fatalf("tracker leaked: live=%d pending=%d", liveLen, pendingLen)
	}
}

// TestGatewayDrain: draining stops gateway admission with the draining
// envelope and fans out to the backends.
func TestGatewayDrain(t *testing.T) {
	b := startBackend(t)
	g := newTestGateway(t, b.srv.URL)
	ctx := context.Background()

	if err := g.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit(ctx, misSpec(1)); !api.IsCode(err, api.CodeDraining) {
		t.Fatalf("submit after drain: %v", err)
	}
	m, err := api.NewClient(b.srv.URL).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Draining {
		t.Fatal("backend did not receive the drain fan-out")
	}
}

// cannedMetricsBackend serves a fixed /v1/metrics snapshot (plus a healthy
// /healthz), so aggregation tests can assemble arbitrary heterogeneous
// fleets without spinning up real managers.
func cannedMetricsBackend(t *testing.T, m api.Metrics) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(m)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestGatewayControllerAggregation: the cluster controller section sums the
// violation/adjustment counters, averages the live k and batch over the
// backends that actually run a controller, keeps the SLO echo only while
// every controller agrees, and drops the per-node LastAdjustment. Static
// backends (no controller section) don't dilute the averages, and a fleet
// with no controllers reports no section at all.
func TestGatewayControllerAggregation(t *testing.T) {
	autoA := api.Metrics{JobSched: service.JobSchedAuto, Controller: &api.ControllerStats{
		Enabled: true, K: 2, Batch: 16, RankSLO: 2, P99SLOMs: 5000,
		Steps: 100, Widened: 10, Tightened: 4, RankViolations: 3, P99Violations: 7,
		LastAdjustment: "tighten: window rank error 2.50 > SLO 2.00; k=2 batch=16",
	}}
	autoB := api.Metrics{JobSched: service.JobSchedAuto, Controller: &api.ControllerStats{
		Enabled: true, K: 6, Batch: 48, RankSLO: 2, P99SLOMs: 5000,
		Steps: 80, Widened: 25, Tightened: 1, RankViolations: 1, P99Violations: 30,
		LastAdjustment: "widen: queue p99 6000ms > SLO 5000ms; k=6 batch=48",
	}}
	static := api.Metrics{JobSched: service.JobSchedExact}

	g := newTestGateway(t,
		cannedMetricsBackend(t, autoA),
		cannedMetricsBackend(t, autoB),
		cannedMetricsBackend(t, static))
	cm := g.ClusterMetrics(context.Background())

	c := cm.Controller
	if c == nil || !c.Enabled {
		t.Fatalf("controller section = %+v", c)
	}
	// Means over the two reporting controllers, rounded: (2+6)/2, (16+48)/2.
	if c.K != 4 || c.Batch != 32 {
		t.Fatalf("k=%d batch=%d, want means 4 and 32", c.K, c.Batch)
	}
	if c.Steps != 180 || c.Widened != 35 || c.Tightened != 5 {
		t.Fatalf("steps=%d widened=%d tightened=%d, want sums 180/35/5", c.Steps, c.Widened, c.Tightened)
	}
	if c.RankViolations != 4 || c.P99Violations != 37 {
		t.Fatalf("violations rank=%d p99=%d, want sums 4/37", c.RankViolations, c.P99Violations)
	}
	if c.RankSLO != 2 || c.P99SLOMs != 5000 {
		t.Fatalf("agreeing SLO echo lost: rank=%v p99=%v", c.RankSLO, c.P99SLOMs)
	}
	if c.LastAdjustment != "" {
		t.Fatalf("cluster aggregate kept a per-node LastAdjustment: %q", c.LastAdjustment)
	}

	// Disagreeing SLOs zero the echo — same convention as JobSchedK under a
	// mixed fleet — while the counters still sum.
	autoC := api.Metrics{JobSched: service.JobSchedAuto, Controller: &api.ControllerStats{
		Enabled: true, K: 1, Batch: 1, RankSLO: 8, P99SLOMs: 250, Steps: 5,
	}}
	g2 := newTestGateway(t,
		cannedMetricsBackend(t, autoA),
		cannedMetricsBackend(t, autoC))
	c2 := g2.ClusterMetrics(context.Background()).Controller
	if c2 == nil || c2.RankSLO != 0 || c2.P99SLOMs != 0 {
		t.Fatalf("disagreeing SLO echo = %+v, want zeroed", c2)
	}
	if c2.Steps != 105 {
		t.Fatalf("steps = %d, want 105", c2.Steps)
	}

	// A fleet with no controllers omits the section entirely.
	g3 := newTestGateway(t, cannedMetricsBackend(t, static))
	if cm3 := g3.ClusterMetrics(context.Background()); cm3.Controller != nil {
		t.Fatalf("static fleet grew a controller section: %+v", cm3.Controller)
	}
}

// TestGatewayWALAggregation: the cluster WAL section sums every counter
// over the backends that run a log, ORs the torn-tail flag, leaves
// log-less backends out, and omits the section for a fleet with no logs.
func TestGatewayWALAggregation(t *testing.T) {
	durableA := api.Metrics{JobSched: service.JobSchedExact, WAL: &api.WALStats{
		Appends: 100, Fsyncs: 40, ReplayedJobs: 3, Segments: 2, Compacted: 5, Bytes: 4096,
	}}
	durableB := api.Metrics{JobSched: service.JobSchedExact, WAL: &api.WALStats{
		Appends: 50, Fsyncs: 9, ReplayedJobs: 0, Segments: 1, Compacted: 0, Bytes: 512, TornTail: true,
	}}
	ephemeral := api.Metrics{JobSched: service.JobSchedExact}

	g := newTestGateway(t,
		cannedMetricsBackend(t, durableA),
		cannedMetricsBackend(t, durableB),
		cannedMetricsBackend(t, ephemeral))
	w := g.ClusterMetrics(context.Background()).WAL
	if w == nil {
		t.Fatal("cluster aggregate has no WAL section")
	}
	if w.Appends != 150 || w.Fsyncs != 49 || w.ReplayedJobs != 3 {
		t.Fatalf("appends=%d fsyncs=%d replayed=%d, want sums 150/49/3", w.Appends, w.Fsyncs, w.ReplayedJobs)
	}
	if w.Segments != 3 || w.Compacted != 5 || w.Bytes != 4608 {
		t.Fatalf("segments=%d compacted=%d bytes=%d, want sums 3/5/4608", w.Segments, w.Compacted, w.Bytes)
	}
	if !w.TornTail {
		t.Fatal("torn-tail flag lost in aggregation")
	}

	// A fleet with no logs omits the section entirely.
	g2 := newTestGateway(t, cannedMetricsBackend(t, ephemeral))
	if cm := g2.ClusterMetrics(context.Background()); cm.WAL != nil {
		t.Fatalf("log-less fleet grew a WAL section: %+v", cm.WAL)
	}
}

// TestGatewayJobTrace: a trace fetched through the gateway routes to the
// owning backend, comes back under the job's global id and the caller's
// trace id, and is prefixed with the gateway's own submit hop span.
func TestGatewayJobTrace(t *testing.T) {
	b := startBackend(t)
	g := newTestGateway(t, b.srv.URL)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	cli := api.NewClient(srv.URL)

	ctx := trace.ContextWithID(context.Background(), "trace-gw-e2e")
	st, err := cli.Submit(ctx, misSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, g, st.ID)

	tr, err := cli.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != st.ID {
		t.Fatalf("trace reports job %d, want global id %d", tr.ID, st.ID)
	}
	if tr.TraceID != "trace-gw-e2e" {
		t.Fatalf("trace carries trace_id %q, want trace-gw-e2e", tr.TraceID)
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "gateway.submit" {
		t.Fatalf("first span = %+v, want gateway.submit", tr.Spans)
	}
	hop := tr.Spans[0]
	if hop.StartNanos > 0 {
		t.Fatalf("gateway hop starts at +%dns — the hop begins before the backend accepts", hop.StartNanos)
	}
	if hop.EndNanos <= hop.StartNanos {
		t.Fatalf("gateway hop has non-positive duration: %+v", hop)
	}
	if !strings.Contains(hop.Detail, b.srv.URL) {
		t.Fatalf("hop detail %q does not name the backend %s", hop.Detail, b.srv.URL)
	}
	want := []string{"accepted", "queued", "dispatched", "executing", "done"}
	i := 0
	for _, s := range tr.Spans[1:] {
		if i < len(want) && s.Name == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("backend spans %v missing lifecycle subsequence %v (matched %d)", tr.Spans, want, i)
	}

	// Unknown global ids answer unknown_job without touching a backend.
	if _, err := g.JobTrace(ctx, int64(len(g.backends))+idStride*999999); !api.IsCode(err, api.CodeUnknownJob) {
		t.Fatalf("unknown trace: %v", err)
	}
}

// TestGatewayHealthDrainingVsDead: the health checker separates a
// draining backend (alive, finishing work, out of the submit rotation)
// from a dead one, using the explicit healthz status body instead of
// inferring from a 503.
func TestGatewayHealthDrainingVsDead(t *testing.T) {
	b := startBackend(t)
	dead := deadBackendURL(t)
	g := newTestGateway(t, b.srv.URL, dead)
	ctx := context.Background()

	if err := api.NewClient(b.srv.URL).Drain(ctx); err != nil {
		t.Fatal(err)
	}
	g.checkHealth(5 * time.Second)

	if g.backends[0].healthy.Load() {
		t.Fatal("draining backend still in the submit rotation")
	}
	if !g.backends[0].draining.Load() {
		t.Fatal("draining backend not recognized as draining")
	}
	if g.backends[1].healthy.Load() || g.backends[1].draining.Load() {
		t.Fatal("dead backend classified as alive")
	}
}

// TestGatewayHealthzDraining: a draining gateway reports it explicitly
// with a 200 — it is alive and finishing work — while a gateway with no
// reachable backend stays 503 (covered by TestGatewayHandler502).
func TestGatewayHealthzDraining(t *testing.T) {
	b := startBackend(t)
	g := newTestGateway(t, b.srv.URL)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)

	if err := g.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %s, want 200", resp.Status)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != api.StatusDraining {
		t.Fatalf("healthz status = %v, want %q", body["status"], api.StatusDraining)
	}
}

// TestGatewayPromScrape: the gateway's Prometheus exposition passes the
// parser-style lint and labels each backend's series with its URL, so a
// two-backend fleet scrapes as two distinct label sets.
func TestGatewayPromScrape(t *testing.T) {
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, b1.srv.URL, b2.srv.URL)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)

	// Give the fleet some numbers to render.
	st, err := g.Submit(context.Background(), misSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, g, st.ID)

	resp, err := http.Get(srv.URL + "/v1/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom scrape: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metricsexport.ContentType {
		t.Fatalf("content type %q, want %q", ct, metricsexport.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metricsexport.Lint(body); err != nil {
		t.Fatalf("gateway exposition failed lint: %v\n%s", err, body)
	}
	for _, u := range []string{b1.srv.URL, b2.srv.URL} {
		want := `backend="` + u + `"`
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing label %s:\n%s", want, body)
		}
	}
}
