package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indexes. Each backend owns
// Replicas virtual points on a 64-bit circle; a key is owned by the
// backend whose next point clockwise from the key's hash comes first.
// Virtual points smooth the load split, and consistency is the property
// the graph cache needs: adding or removing one backend remaps only the
// keys whose arcs it gains or loses (~1/N of them), so every other
// backend's LRU graph cache stays hot.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // number of backends
}

type ringPoint struct {
	hash    uint64
	backend int
}

// newRing builds a ring over n backends identified by ids (typically
// their URLs), with replicas virtual points each. The ids — not the
// indexes — are hashed, so the key→backend mapping survives reordering
// and reconfiguration of the backend list.
func newRing(ids []string, replicas int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(ids)*replicas), n: len(ids)}
	for i, id := range ids {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", id, v)), backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// hash64 is fnv64a with a murmur-style finalizer: fnv alone leaves the
// near-identical replica strings ("url#0", "url#1", ...) correlated
// enough to visibly skew arc lengths; the avalanche mix restores the
// uniform point placement the balance bound relies on.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner returns the backend owning key.
func (r *ring) owner(key string) int {
	return r.points[r.search(key)].backend
}

// sequence returns all backends in ring order starting at key's owner —
// the failover order: if the owner is down, the next distinct backend on
// the circle takes the key (and, on the owner's recovery, gives it back).
func (r *ring) sequence(key string) []int {
	seq := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	start := r.search(key)
	for i := 0; len(seq) < r.n; i++ {
		b := r.points[(start+i)%len(r.points)].backend
		if !seen[b] {
			seen[b] = true
			seq = append(seq, b)
		}
	}
	return seq
}

// search returns the index of the first point at or clockwise of key's
// hash, wrapping past the top of the circle.
func (r *ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
