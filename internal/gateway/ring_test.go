package gateway

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return ids
}

// TestRingDeterminism: two independently built rings over the same ids
// agree on every key — routing must be a pure function of configuration.
func TestRingDeterminism(t *testing.T) {
	a := newRing(ringIDs(4), 128)
	b := newRing(ringIDs(4), 128)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("graph-key-%d", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("key %q owned by %d and %d in identical rings", key, a.owner(key), b.owner(key))
		}
	}
}

// TestRingSequence: the failover sequence starts at the owner and visits
// every backend exactly once.
func TestRingSequence(t *testing.T) {
	r := newRing(ringIDs(4), 128)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("graph-key-%d", i)
		seq := r.sequence(key)
		if len(seq) != 4 {
			t.Fatalf("sequence(%q) = %v, want 4 distinct backends", key, seq)
		}
		if seq[0] != r.owner(key) {
			t.Fatalf("sequence(%q) starts at %d, owner is %d", key, seq[0], r.owner(key))
		}
		seen := make(map[int]bool)
		for _, b := range seq {
			if seen[b] {
				t.Fatalf("sequence(%q) repeats backend %d: %v", key, b, seq)
			}
			seen[b] = true
		}
	}
}

// TestRingBalance: with 128 virtual points per backend, 4 backends split
// many keys within 2x of the even share.
func TestRingBalance(t *testing.T) {
	const backends, keys = 4, 20000
	r := newRing(ringIDs(backends), 128)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("gnp/n=%d/m=%d/seed=%d", 1000+i, 4000+i, i))]++
	}
	avg := float64(keys) / backends
	for b, c := range counts {
		if float64(c) > 2*avg || float64(c) < avg/2 {
			t.Fatalf("backend %d owns %d of %d keys (avg %.0f, counts %v) — outside the 2x balance bound", b, c, keys, avg, counts)
		}
	}
}

// TestRingRemapOnGrowth: adding a fifth backend to a four-backend ring
// must remap only around 1/5 of the keys — the consistency property that
// keeps the surviving backends' graph caches hot through reconfiguration.
func TestRingRemapOnGrowth(t *testing.T) {
	const keys = 20000
	before := newRing(ringIDs(4), 128)
	after := newRing(ringIDs(5), 128)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("graph-key-%d", i)
		if before.owner(key) != after.owner(key) {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 0.3 {
		t.Fatalf("%.1f%% of keys remapped adding 1 backend to 4; a consistent ring moves ~20%%", 100*frac)
	}
	if frac < 0.05 {
		t.Fatalf("only %.1f%% of keys remapped — the new backend got almost no load", 100*frac)
	}
}
