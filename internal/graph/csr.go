package graph

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
)

// FromEdgeParts builds the CSR graph for n vertices from several edge-list
// shards in parallel. It is the construction path behind the parallel
// generators: each generator worker emits its own shard and no global edge
// sort or concatenation ever happens. Self-loops and duplicate edges (in
// either orientation, within or across shards) are dropped. Endpoints must
// be in [0, n).
//
// The build runs in four passes, all parallel across shards or vertex
// ranges: (1) per-shard degree counting, (2) a prefix sum that turns the
// counts into per-shard write cursors, (3) a scatter of both edge endpoints
// into the flat adjacency array, and (4) a per-vertex sort + dedup, with a
// compaction pass only when duplicates were actually present.
func FromEdgeParts(n int, parts [][]Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > MaxVertices {
		return nil, ErrTooManyVertices
	}
	var total int64
	for _, part := range parts {
		total += int64(len(part))
	}
	if 2*total > MaxAdjEntries {
		return nil, ErrTooManyEdges
	}
	return buildCSR(n, parts), nil
}

// buildCSR is the shared CSR construction core behind FromEdges and
// FromEdgeParts. Inputs must already satisfy the size limits.
func buildCSR(n int, parts [][]Edge) *Graph {
	chunks := splitEdgeChunks(parts, csrChunkCount(n, parts))
	nc := len(chunks)

	// Pass 1: one degree-counting array per chunk, so no chunk ever touches
	// another chunk's counters (no atomics, deterministic layout).
	counts := make([][]uint32, nc)
	parallelDo(nc, func(c int) {
		cnt := make([]uint32, n)
		for _, span := range chunks[c] {
			for _, e := range span {
				if e.U == e.V {
					continue
				}
				cnt[e.U]++
				cnt[e.V]++
			}
		}
		counts[c] = cnt
	})

	// Prefix sum: offsets over total (pre-dedup) degrees, and in the same
	// walk turn each chunk's count into the absolute cursor where that chunk
	// starts writing vertex v's entries.
	off := make([]uint32, n+1)
	var run uint64
	for v := 0; v < n; v++ {
		off[v] = uint32(run)
		for c := 0; c < nc; c++ {
			d := uint64(counts[c][v])
			counts[c][v] = uint32(run)
			run += d
		}
	}
	off[n] = uint32(run)

	// Pass 2: scatter both endpoints of every edge; chunks write disjoint
	// per-vertex regions, so this is race-free without synchronization.
	adj := make([]int32, run)
	parallelDo(nc, func(c int) {
		cur := counts[c]
		for _, span := range chunks[c] {
			for _, e := range span {
				if e.U == e.V {
					continue
				}
				adj[cur[e.U]] = e.V
				cur[e.U]++
				adj[cur[e.V]] = e.U
				cur[e.V]++
			}
		}
	})

	// Pass 3: sort each adjacency list and dedup it in place, over vertex
	// ranges balanced by adjacency mass.
	newDeg := make([]uint32, n)
	ranges := vertexRanges(off, runtime.GOMAXPROCS(0))
	parallelDo(len(ranges), func(i int) {
		for v := ranges[i].lo; v < ranges[i].hi; v++ {
			nbrs := adj[off[v]:off[v+1]]
			slices.Sort(nbrs)
			w := 0
			for j, u := range nbrs {
				if j > 0 && u == nbrs[j-1] {
					continue
				}
				nbrs[w] = u
				w++
			}
			newDeg[v] = uint32(w)
		}
	})

	// Pass 4: if nothing was deduplicated the arrays are already final;
	// otherwise compact into fresh arrays using the post-dedup offsets.
	fin := make([]uint32, n+1)
	var run2 uint64
	for v := 0; v < n; v++ {
		fin[v] = uint32(run2)
		run2 += uint64(newDeg[v])
	}
	fin[n] = uint32(run2)
	if run2 == run {
		return &Graph{offsets: off, neighbors: adj, n: n, m: int64(run / 2)}
	}
	neighbors := make([]int32, run2)
	parallelDo(len(ranges), func(i int) {
		for v := ranges[i].lo; v < ranges[i].hi; v++ {
			copy(neighbors[fin[v]:fin[v+1]], adj[off[v]:off[v]+newDeg[v]])
		}
	})
	return &Graph{offsets: fin, neighbors: neighbors, n: n, m: int64(run2 / 2)}
}

// csrChunkCount picks how many counting chunks to use: one per available
// CPU, but never so many that the per-chunk count arrays outweigh the graph
// itself (each chunk costs 4*n bytes), and never more than one per 16k edges
// so tiny builds stay single-pass.
func csrChunkCount(n int, parts [][]Edge) int {
	var total int
	for _, part := range parts {
		total += len(part)
	}
	chunks := runtime.GOMAXPROCS(0)
	if byEdges := total / 16384; chunks > byEdges {
		chunks = byEdges
	}
	const countBudget = 1 << 27 // at most 512 MiB of uint32 counters
	if n > 0 {
		if byMem := countBudget / n; chunks > byMem {
			chunks = byMem
		}
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// splitEdgeChunks regroups the input shards into at most target chunks of
// roughly equal edge count, without copying any edges. A chunk is a list of
// shard subslices, so a chunk can span shard boundaries and the chunk count
// never exceeds target (each chunk costs a 4*n-byte counter array in the
// degree-counting pass, so the bound is a memory budget, not a style
// preference).
func splitEdgeChunks(parts [][]Edge, target int) [][][]Edge {
	var total int
	for _, part := range parts {
		total += len(part)
	}
	if target < 1 {
		target = 1
	}
	per := (total + target - 1) / target
	if per < 1 {
		per = 1
	}
	chunks := make([][][]Edge, 0, target)
	var current [][]Edge
	room := per
	for _, part := range parts {
		for len(part) > 0 {
			k := room
			if k > len(part) {
				k = len(part)
			}
			current = append(current, part[:k])
			part = part[k:]
			room -= k
			if room == 0 && len(chunks)+1 < target {
				chunks = append(chunks, current)
				current = nil
				room = per
			}
		}
	}
	chunks = append(chunks, current)
	return chunks
}

// vertexRange is a half-open range of vertex ids assigned to one worker.
type vertexRange struct {
	lo, hi int
}

// vertexRanges splits [0, n) into at most workers ranges of roughly equal
// adjacency mass, so high-degree regions do not serialize on one goroutine.
func vertexRanges(off []uint32, workers int) []vertexRange {
	n := len(off) - 1
	if workers < 1 {
		workers = 1
	}
	total := uint64(off[n])
	per := total/uint64(workers) + 1
	ranges := make([]vertexRange, 0, workers)
	lo := 0
	var mass uint64
	for v := 0; v < n; v++ {
		mass += uint64(off[v+1] - off[v])
		if mass >= per || v == n-1 {
			ranges = append(ranges, vertexRange{lo: lo, hi: v + 1})
			lo = v + 1
			mass = 0
		}
	}
	if lo < n {
		ranges = append(ranges, vertexRange{lo: lo, hi: n})
	}
	if len(ranges) == 0 {
		ranges = append(ranges, vertexRange{lo: 0, hi: n})
	}
	return ranges
}

// parallelDo runs fn(0..jobs-1) on separate goroutines and waits for all of
// them. The single-job case runs inline to keep small builds allocation-lean.
func parallelDo(jobs int, fn func(job int)) {
	if jobs <= 1 {
		if jobs == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(jobs)
	for j := 0; j < jobs; j++ {
		go func(j int) {
			defer wg.Done()
			fn(j)
		}(j)
	}
	wg.Wait()
}
