package graph

import (
	"runtime"
	"testing"

	"relaxsched/internal/rng"
)

// benchEdges generates a reproducible G(n,p) edge list (not the graph) so
// construction benchmarks measure only the CSR build.
func benchEdges(b *testing.B, n int, m int64) []Edge {
	b.Helper()
	p := float64(2*m) / (float64(n) * float64(n-1))
	r := rng.New(0xc5f)
	edges := gnpEdgeRange(n, p, 0, n, r)
	if len(edges) == 0 {
		b.Fatal("no edges generated")
	}
	return edges
}

// BenchmarkCSRBuild measures CSR construction from a flat edge list — the
// path every generator and the edge-list reader go through.
func BenchmarkCSRBuild(b *testing.B) {
	const n = 100_000
	edges := benchEdges(b, n, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromEdges(n, edges)
		if g.NumVertices() != n {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkParallelGNP measures end-to-end parallel generation of the sweep's
// 100k-vertex G(n,p) input.
func BenchmarkParallelGNP(b *testing.B) {
	const n = 100_000
	p := float64(2*1_000_000) / (float64(n) * float64(n-1))
	r := rng.New(0xc5f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := ParallelGNP(n, p, runtime.GOMAXPROCS(0), r)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumVertices() != n {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkNeighborScan measures the MIS/coloring hot loop shape: a full
// sweep over every vertex's adjacency list reading neighbor ids.
func BenchmarkNeighborScan(b *testing.B) {
	const n = 100_000
	g := FromEdges(n, benchEdges(b, n, 1_000_000))
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(v) {
				sink += int64(u)
			}
		}
	}
	if sink == 42 {
		b.Fatal("impossible")
	}
}
