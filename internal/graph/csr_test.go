package graph

import (
	"testing"

	"relaxsched/internal/rng"
)

// graphsEqual reports whether two graphs have identical CSR content.
func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		x, y := a.Neighbors(v), b.Neighbors(v)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

func TestFromEdgePartsMatchesFromEdges(t *testing.T) {
	r := rng.New(31)
	const n = 500
	var all []Edge
	parts := make([][]Edge, 4)
	for i := 0; i < 3000; i++ {
		e := Edge{U: int32(r.Intn(n)), V: int32(r.Intn(n))}
		all = append(all, e)
		parts[i%len(parts)] = append(parts[i%len(parts)], e)
	}
	// Duplicate some edges across different shards and inject self-loops.
	for i := 0; i < 200; i++ {
		e := all[r.Intn(len(all))]
		p := r.Intn(len(parts))
		parts[p] = append(parts[p], e, Edge{U: e.V, V: e.U})
		all = append(all, e, Edge{U: e.V, V: e.U})
	}
	parts[0] = append(parts[0], Edge{U: 7, V: 7})
	all = append(all, Edge{U: 7, V: 7})

	got, err := FromEdgeParts(n, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := FromEdges(n, all)
	if !graphsEqual(got, want) {
		t.Fatalf("FromEdgeParts disagrees with FromEdges: %v vs %v", got, want)
	}
}

func TestFromEdgePartsEmpty(t *testing.T) {
	g, err := FromEdgeParts(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty build produced %v", g)
	}
	g, err = FromEdgeParts(5, [][]Edge{nil, {}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("edgeless build produced %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgePartsErrors(t *testing.T) {
	if _, err := FromEdgeParts(-1, nil); err == nil {
		t.Fatal("negative vertex count accepted")
	}
}

func TestFromEdgesDedupAcrossManyChunks(t *testing.T) {
	// Force the same edge into every chunk position: the dedup pass must
	// collapse all copies no matter which chunk counted them.
	const n = 100
	edges := make([]Edge, 0, 100_000)
	for i := 0; i < 100_000; i++ {
		edges = append(edges, Edge{U: int32(i % n), V: int32((i + 1) % n)})
	}
	g := FromEdges(n, edges)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != n {
		t.Fatalf("cycle multigraph deduped to %d edges, want %d", g.NumEdges(), n)
	}
}

func TestSplitEdgeChunksRespectsTarget(t *testing.T) {
	// Many small shards must not inflate the chunk count past the target:
	// every chunk costs a vertex-sized counter array during construction.
	parts := make([][]Edge, 16)
	for i := range parts {
		parts[i] = make([]Edge, 5)
	}
	for _, target := range []int{1, 2, 3, 8, 40} {
		chunks := splitEdgeChunks(parts, target)
		if len(chunks) > target {
			t.Fatalf("target %d produced %d chunks", target, len(chunks))
		}
		total := 0
		for _, chunk := range chunks {
			for _, span := range chunk {
				total += len(span)
			}
		}
		if total != 80 {
			t.Fatalf("target %d chunks cover %d edges, want 80", target, total)
		}
	}
}

func TestVertexRangesCoverAllVertices(t *testing.T) {
	g := FromEdges(50, []Edge{{U: 0, V: 49}, {U: 1, V: 2}, {U: 10, V: 20}})
	for _, workers := range []int{1, 2, 7, 64} {
		ranges := vertexRanges(g.offsets, workers)
		next := 0
		for _, rg := range ranges {
			if rg.lo != next || rg.hi < rg.lo {
				t.Fatalf("workers=%d: ranges %v do not tile [0,50)", workers, ranges)
			}
			next = rg.hi
		}
		if next != 50 {
			t.Fatalf("workers=%d: ranges %v end at %d, want 50", workers, ranges, next)
		}
	}
}
