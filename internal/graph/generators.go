package graph

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"relaxsched/internal/rng"
)

// GNP generates an Erdős–Rényi G(n, p) random graph: every unordered vertex
// pair is an edge independently with probability p. Generation uses
// geometric skip sampling so the cost is proportional to the number of edges
// rather than n^2.
func GNP(n int, p float64, r *rng.Rand) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: edge probability %v out of [0,1]", p)
	}
	edges := gnpEdgeRange(n, p, 0, n, r)
	return FromEdges(n, edges), nil
}

// ParallelGNP generates a G(n, p) graph using workers goroutines, mirroring
// the paper's parallel graph generation (the paper generates its inputs with
// all 144 hardware threads regardless of the thread count under test).
// Each worker owns a contiguous range of source vertices and an independent
// random stream forked from r, and its edge shard feeds the parallel CSR
// builder directly — no global edge concatenation or sort.
func ParallelGNP(n int, p float64, workers int, r *rng.Rand) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: edge probability %v out of [0,1]", p)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return GNP(n, p, r)
	}
	parts := make([][]Edge, workers)
	rands := make([]*rng.Rand, workers)
	for i := range rands {
		rands[i] = r.Fork()
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = gnpEdgeRange(n, p, lo, hi, rands[w])
		}(w, lo, hi)
	}
	wg.Wait()
	return FromEdgeParts(n, parts)
}

// gnpEdgeRange samples G(n,p) edges (u, v) with u in [lo, hi) and v > u using
// geometric skips over the upper-triangular pair sequence.
func gnpEdgeRange(n int, p float64, lo, hi int, r *rng.Rand) []Edge {
	if p == 0 || n < 2 {
		return nil
	}
	var edges []Edge
	if p == 1 {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, Edge{U: int32(u), V: int32(v)})
			}
		}
		return edges
	}
	logq := math.Log1p(-p)
	for u := lo; u < hi; u++ {
		v := u // candidate neighbor cursor; next edge is at v + skip
		for {
			skip := 1 + int(math.Floor(math.Log(1-r.Float64())/logq))
			if skip < 1 {
				skip = 1
			}
			v += skip
			if v >= n {
				break
			}
			edges = append(edges, Edge{U: int32(u), V: int32(v)})
		}
	}
	return edges
}

// GNM generates a uniform random graph with exactly n vertices and m distinct
// edges (a G(n, m) graph), matching the |V|/|E| grid of the paper's Table 1.
// It returns an error if m exceeds the number of distinct vertex pairs.
func GNM(n int, m int64, r *rng.Rand) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if m < 0 || m > maxEdges {
		return nil, fmt.Errorf("graph: cannot place %d edges in a simple graph on %d vertices (max %d)", m, n, maxEdges)
	}
	if 2*m > MaxAdjEntries {
		return nil, ErrTooManyEdges
	}
	// For sparse requests sample pairs with rejection; for dense requests
	// (more than half of all pairs) sample the complement instead so the
	// rejection loop stays fast.
	if m > maxEdges/2 && maxEdges > 0 {
		exclude := sampleDistinctPairs(n, maxEdges-m, r)
		edges := make([]Edge, 0, m)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !exclude[pairKey(u, v)] {
					edges = append(edges, Edge{U: int32(u), V: int32(v)})
				}
			}
		}
		return FromEdges(n, edges), nil
	}
	chosen := sampleDistinctPairs(n, m, r)
	edges := make([]Edge, 0, m)
	for key := range chosen {
		u, v := pairFromKey(key)
		edges = append(edges, Edge{U: int32(u), V: int32(v)})
	}
	return FromEdges(n, edges), nil
}

func pairKey(u, v int) uint64 {
	return uint64(u)<<32 | uint64(uint32(v))
}

func pairFromKey(key uint64) (int, int) {
	return int(key >> 32), int(uint32(key))
}

func sampleDistinctPairs(n int, count int64, r *rng.Rand) map[uint64]bool {
	chosen := make(map[uint64]bool, count)
	for int64(len(chosen)) < count {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		chosen[pairKey(u, v)] = true
	}
	return chosen
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: int32(u), V: int32(v)})
		}
	}
	return FromEdges(n, edges)
}

// Path returns the path graph 0-1-2-...-(n-1).
func Path(n int) *Graph {
	edges := make([]Edge, 0, n)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{U: int32(v), V: int32(v + 1)})
	}
	return FromEdges(n, edges)
}

// Cycle returns the cycle graph on n vertices (n >= 3 for a proper cycle;
// smaller n degrades to a path).
func Cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{U: int32(v), V: int32(v + 1)})
	}
	if n >= 3 {
		edges = append(edges, Edge{U: 0, V: int32(n - 1)})
	}
	return FromEdges(n, edges)
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: 0, V: int32(v)})
	}
	return FromEdges(n, edges)
}

// Grid returns the rows x cols 2D grid graph (4-neighborhood), a common
// road-network-like workload for shortest paths.
func Grid(rows, cols int) *Graph {
	n := rows * cols
	id := func(r, c int) int32 { return int32(r*cols + c) }
	edges := make([]Edge, 0, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return FromEdges(n, edges)
}

// RMAT generates a recursive-matrix (R-MAT) style power-law graph with
// 2^scale vertices and approximately edgeFactor * 2^scale undirected edges.
// Probabilities (a, b, c) describe the recursive quadrant split (d = 1-a-b-c).
// Duplicate edges and self-loops generated by the process are dropped, so the
// final edge count can be slightly lower than requested.
func RMAT(scale int, edgeFactor int, a, b, c float64, r *rng.Rand) (*Graph, error) {
	if scale < 0 || scale > 30 {
		return nil, fmt.Errorf("graph: RMAT scale %d out of [0,30]", scale)
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < -1e-9 {
		return nil, fmt.Errorf("graph: invalid RMAT probabilities a=%v b=%v c=%v", a, b, c)
	}
	n := 1 << uint(scale)
	target := int64(edgeFactor) * int64(n)
	if target < 0 || 2*target > MaxAdjEntries {
		return nil, fmt.Errorf("graph: RMAT edge factor %d requests %d edges: %w", edgeFactor, target, ErrTooManyEdges)
	}
	edges := make([]Edge, 0, target)
	for i := int64(0); i < target; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			x := r.Float64()
			switch {
			case x < a:
				// top-left quadrant: no bits set
			case x < a+b:
				v |= 1 << uint(bit)
			case x < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u != v {
			edges = append(edges, Edge{U: int32(u), V: int32(v)})
		}
	}
	return FromEdges(n, edges), nil
}

// RandomBipartite returns a random bipartite graph with left and right
// vertices and approximately the requested number of edges; vertex ids
// [0,left) are the left side and [left, left+right) the right side.
func RandomBipartite(left, right int, edges int64, r *rng.Rand) (*Graph, error) {
	if left < 0 || right < 0 {
		return nil, fmt.Errorf("graph: negative side size")
	}
	maxEdges := int64(left) * int64(right)
	if edges < 0 || edges > maxEdges {
		return nil, fmt.Errorf("graph: cannot place %d edges in a %dx%d bipartite graph", edges, left, right)
	}
	if 2*edges > MaxAdjEntries {
		return nil, ErrTooManyEdges
	}
	chosen := make(map[uint64]bool, edges)
	for int64(len(chosen)) < edges {
		u := r.Intn(left)
		v := left + r.Intn(right)
		chosen[pairKey(u, v)] = true
	}
	list := make([]Edge, 0, edges)
	for key := range chosen {
		u, v := pairFromKey(key)
		list = append(list, Edge{U: int32(u), V: int32(v)})
	}
	return FromEdges(left+right, list), nil
}
