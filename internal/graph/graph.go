// Package graph provides the graph substrate used by every algorithm in this
// library: a compact CSR (compressed sparse row) representation of undirected
// graphs, parallel builders, random and structured generators, the line-graph
// transformation used to reduce maximal matching to MIS, edge-list I/O, and
// deterministic edge weights for shortest-path workloads.
//
// Vertices are dense integers in [0, N). Graphs are simple (no self-loops,
// no parallel edges) and undirected; each undirected edge {u, v} appears in
// the adjacency of both endpoints.
//
// The CSR core is a single flat offsets []uint32 / neighbors []int32 pair:
// the adjacency of v is neighbors[offsets[v]:offsets[v+1]], sorted. The
// 32-bit offsets halve the index-array footprint relative to 64-bit offsets,
// which keeps more of the hot index data in cache on million-vertex graphs,
// at the cost of capping the adjacency array at MaxAdjEntries entries.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// MaxVertices is the largest supported vertex count. Vertex ids are stored as
// int32 in adjacency arrays to halve memory traffic on large graphs.
const MaxVertices = 1 << 31

// MaxAdjEntries is the largest supported length of the flat adjacency array
// (twice the number of undirected edges), imposed by the 32-bit offsets.
const MaxAdjEntries = 1<<32 - 1

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int32
}

// Graph is an immutable undirected graph in CSR form.
type Graph struct {
	offsets   []uint32 // len n+1; adjacency of v is neighbors[offsets[v]:offsets[v+1]]
	neighbors []int32  // concatenated sorted adjacency lists, length 2*m
	n         int
	m         int64
}

// ErrTooManyVertices is returned when a requested graph exceeds MaxVertices.
var ErrTooManyVertices = errors.New("graph: vertex count exceeds MaxVertices")

// ErrTooManyEdges is returned when a graph would need more than MaxAdjEntries
// adjacency entries.
var ErrTooManyEdges = errors.New("graph: adjacency entries exceed MaxAdjEntries")

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// AdjOffset returns the index into the flat adjacency/weight arrays at which
// v's adjacency list begins. It is used by weighted algorithms to look up the
// weight aligned with a neighbor entry.
func (g *Graph) AdjOffset(v int) int { return int(g.offsets[v]) }

// NumAdjEntries returns the length of the flat adjacency array (2 * NumEdges
// for a simple undirected graph).
func (g *Graph) NumAdjEntries() int { return len(g.neighbors) }

// HasEdge reports whether {u, v} is an edge, using binary search on the
// sorted adjacency list of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// Edges returns all undirected edges with U < V, in sorted order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for v := 0; v < g.n; v++ {
		for _, u := range g.Neighbors(v) {
			if int32(v) < u {
				edges = append(edges, Edge{U: int32(v), V: u})
			}
		}
	}
	return edges
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// AverageDegree returns the average vertex degree.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(2*g.m) / float64(g.n)
}

// String returns a short human-readable description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d avgdeg=%.2f}", g.n, g.m, g.AverageDegree())
}

// Validate checks internal CSR invariants: monotone offsets, sorted adjacency
// lists without duplicates or self-loops, and symmetry (u in adj(v) iff v in
// adj(u)). It is used by tests and by ReadEdgeList on untrusted input.
func (g *Graph) Validate() error {
	if len(g.offsets) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), g.n+1)
	}
	if g.offsets[0] != 0 || int(g.offsets[g.n]) != len(g.neighbors) {
		return fmt.Errorf("graph: offsets endpoints [%d,%d] do not match adjacency length %d",
			g.offsets[0], g.offsets[g.n], len(g.neighbors))
	}
	if int64(len(g.neighbors)) != 2*g.m {
		return fmt.Errorf("graph: adjacency length %d, want 2*m = %d", len(g.neighbors), 2*g.m)
	}
	for v := 0; v < g.n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		nbrs := g.Neighbors(v)
		for i, u := range nbrs {
			if int(u) < 0 || int(u) >= g.n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at position %d", v, i)
			}
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Self-loops and
// duplicate edges are dropped during Build. The zero value is not usable; use
// NewBuilder.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) (*Builder, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > MaxVertices {
		return nil, ErrTooManyVertices
	}
	return &Builder{n: n}, nil
}

// AddEdge records the undirected edge {u, v}. Out-of-range endpoints are
// rejected; self-loops are silently ignored (they are meaningless for the
// algorithms in this library).
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return nil
	}
	b.edges = append(b.edges, Edge{U: int32(u), V: int32(v)})
	return nil
}

// AddEdges records a batch of edges, stopping at the first invalid one.
func (b *Builder) AddEdges(edges []Edge) error {
	for _, e := range edges {
		if err := b.AddEdge(int(e.U), int(e.V)); err != nil {
			return err
		}
	}
	return nil
}

// NumPendingEdges returns the number of edge records added so far (before
// deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph. The builder can be reused after
// Build; its pending edges are retained.
func (b *Builder) Build() *Graph {
	return FromEdges(b.n, b.edges)
}

// FromEdges builds a graph on n vertices from an edge list. Self-loops,
// duplicates, and reversed duplicates are removed. Endpoints are assumed to
// be in range (use Builder for validated construction). It panics if the
// graph would exceed MaxAdjEntries; use FromEdgeParts for a checked build.
func FromEdges(n int, edges []Edge) *Graph {
	if 2*int64(len(edges)) > MaxAdjEntries {
		panic(ErrTooManyEdges)
	}
	return buildCSR(n, [][]Edge{edges})
}

// Subgraph returns the subgraph induced by keep (a vertex predicate), with
// vertices renumbered densely in increasing original order. It also returns
// the mapping from new vertex ids to original ids.
func (g *Graph) Subgraph(keep func(v int) bool) (*Graph, []int32) {
	remap := make([]int32, g.n)
	orig := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if keep(v) {
			remap[v] = int32(len(orig))
			orig = append(orig, int32(v))
		} else {
			remap[v] = -1
		}
	}
	var edges []Edge
	for v := 0; v < g.n; v++ {
		if remap[v] < 0 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if int32(v) < u && remap[u] >= 0 {
				edges = append(edges, Edge{U: remap[v], V: remap[u]})
			}
		}
	}
	return FromEdges(len(orig), edges), orig
}
