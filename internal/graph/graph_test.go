package graph

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b, err := NewBuilder(5)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd := func(u, v int) {
		t.Helper()
		if err := b.AddEdge(u, v); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
		}
	}
	mustAdd(0, 1)
	mustAdd(1, 2)
	mustAdd(2, 0)
	mustAdd(3, 4)
	mustAdd(4, 3) // duplicate (reversed)
	mustAdd(1, 1) // self-loop, silently dropped
	g := b.Build()
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(3, 4) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(0, 3) || g.HasEdge(2, 2) {
		t.Fatal("unexpected edges present")
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d, want 2", d)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Fatalf("MaxDegree = %d, want 2", got)
	}
	if got := g.AverageDegree(); got != 8.0/5.0 {
		t.Fatalf("AverageDegree = %v, want 1.6", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(-1); err == nil {
		t.Fatal("NewBuilder(-1) did not error")
	}
	b, err := NewBuilder(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Fatal("AddEdge out of range did not error")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("AddEdge negative did not error")
	}
	if err := b.AddEdges([]Edge{{0, 1}, {1, 5}}); err == nil {
		t.Fatal("AddEdges with invalid edge did not error")
	}
}

func TestFromEdgesDedupAndSort(t *testing.T) {
	edges := []Edge{{2, 1}, {1, 2}, {0, 2}, {2, 0}, {0, 1}, {3, 3}}
	g := FromEdges(4, edges)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	nbrs := g.Neighbors(2)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 1 {
		t.Fatalf("Neighbors(2) = %v, want [0 1]", nbrs)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(3) != 0 {
		t.Fatalf("isolated vertex has degree %d", g.Degree(3))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	r := rng.New(11)
	g, err := GNM(50, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	if int64(len(edges)) != g.NumEdges() {
		t.Fatalf("Edges() returned %d edges, want %d", len(edges), g.NumEdges())
	}
	g2 := FromEdges(g.NumVertices(), edges)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("rebuilding from Edges() changed edge count")
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch after round trip", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency mismatch after round trip", v)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AverageDegree() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph degree stats not zero")
	}
	if g.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSubgraph(t *testing.T) {
	g := Complete(6)
	sub, orig := g.Subgraph(func(v int) bool { return v%2 == 0 })
	if sub.NumVertices() != 3 {
		t.Fatalf("subgraph has %d vertices, want 3", sub.NumVertices())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("subgraph has %d edges, want 3 (triangle)", sub.NumEdges())
	}
	want := []int32{0, 2, 4}
	for i, v := range orig {
		if v != want[i] {
			t.Fatalf("orig mapping = %v, want %v", orig, want)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStructuredGenerators(t *testing.T) {
	cases := []struct {
		name      string
		g         *Graph
		wantN     int
		wantM     int64
		wantMaxDg int
	}{
		{"complete5", Complete(5), 5, 10, 4},
		{"path4", Path(4), 4, 3, 2},
		{"cycle5", Cycle(5), 5, 5, 2},
		{"cycle2", Cycle(2), 2, 1, 1},
		{"star6", Star(6), 6, 5, 5},
		{"grid3x4", Grid(3, 4), 12, 17, 4},
		{"path1", Path(1), 1, 0, 0},
		{"complete0", Complete(0), 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.NumVertices(); got != tc.wantN {
				t.Fatalf("n = %d, want %d", got, tc.wantN)
			}
			if got := tc.g.NumEdges(); got != tc.wantM {
				t.Fatalf("m = %d, want %d", got, tc.wantM)
			}
			if got := tc.g.MaxDegree(); got != tc.wantMaxDg {
				t.Fatalf("max degree = %d, want %d", got, tc.wantMaxDg)
			}
			if err := tc.g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGNPEdgeCountNearExpectation(t *testing.T) {
	r := rng.New(42)
	const n = 2000
	const p = 0.01
	g, err := GNP(n, p, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	expected := float64(n) * float64(n-1) / 2 * p
	got := float64(g.NumEdges())
	if got < expected*0.9 || got > expected*1.1 {
		t.Fatalf("GNP edge count %v deviates more than 10%% from expectation %v", got, expected)
	}
}

func TestGNPEdgeCases(t *testing.T) {
	r := rng.New(1)
	g, err := GNP(10, 0, r)
	if err != nil || g.NumEdges() != 0 {
		t.Fatalf("GNP(p=0) = %v edges, err=%v", g.NumEdges(), err)
	}
	g, err = GNP(6, 1, r)
	if err != nil || g.NumEdges() != 15 {
		t.Fatalf("GNP(p=1) = %v edges, err=%v; want complete graph", g.NumEdges(), err)
	}
	if _, err := GNP(-1, 0.5, r); err == nil {
		t.Fatal("GNP with negative n did not error")
	}
	if _, err := GNP(10, 1.5, r); err == nil {
		t.Fatal("GNP with p>1 did not error")
	}
	if _, err := GNP(10, -0.5, r); err == nil {
		t.Fatal("GNP with p<0 did not error")
	}
}

func TestParallelGNPMatchesExpectation(t *testing.T) {
	r := rng.New(7)
	const n = 3000
	const p = 0.005
	g, err := ParallelGNP(n, p, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	expected := float64(n) * float64(n-1) / 2 * p
	got := float64(g.NumEdges())
	if got < expected*0.9 || got > expected*1.1 {
		t.Fatalf("ParallelGNP edge count %v deviates more than 10%% from expectation %v", got, expected)
	}
}

func TestParallelGNPWorkerEdgeCases(t *testing.T) {
	r := rng.New(8)
	// workers <= 0 means "use GOMAXPROCS"; workers > n is clamped; both must
	// still produce valid graphs.
	for _, workers := range []int{0, 1, 100} {
		g, err := ParallelGNP(50, 0.1, workers, r)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	if _, err := ParallelGNP(-1, 0.1, 2, r); err == nil {
		t.Fatal("negative n did not error")
	}
	if _, err := ParallelGNP(10, 2, 2, r); err == nil {
		t.Fatal("p>1 did not error")
	}
}

func TestGNMExactEdgeCount(t *testing.T) {
	r := rng.New(3)
	cases := []struct {
		n int
		m int64
	}{
		{10, 0}, {10, 45}, {100, 50}, {100, 2000}, {50, 1000}, {1000, 10000},
	}
	for _, tc := range cases {
		g, err := GNM(tc.n, tc.m, r)
		if err != nil {
			t.Fatalf("GNM(%d,%d): %v", tc.n, tc.m, err)
		}
		if g.NumEdges() != tc.m {
			t.Fatalf("GNM(%d,%d) produced %d edges", tc.n, tc.m, g.NumEdges())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("GNM(%d,%d): %v", tc.n, tc.m, err)
		}
	}
}

func TestGNMErrors(t *testing.T) {
	r := rng.New(3)
	if _, err := GNM(10, 46, r); err == nil {
		t.Fatal("GNM with too many edges did not error")
	}
	if _, err := GNM(10, -1, r); err == nil {
		t.Fatal("GNM with negative edges did not error")
	}
	if _, err := GNM(-1, 0, r); err == nil {
		t.Fatal("GNM with negative n did not error")
	}
}

func TestRMAT(t *testing.T) {
	r := rng.New(5)
	g, err := RMAT(10, 8, 0.57, 0.19, 0.19, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("RMAT vertices = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8*1024 {
		t.Fatalf("RMAT edges = %d out of expected range", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := RMAT(-1, 8, 0.5, 0.2, 0.2, r); err == nil {
		t.Fatal("RMAT with negative scale did not error")
	}
	if _, err := RMAT(5, 8, 0.8, 0.3, 0.2, r); err == nil {
		t.Fatal("RMAT with invalid probabilities did not error")
	}
}

func TestRandomBipartite(t *testing.T) {
	r := rng.New(6)
	g, err := RandomBipartite(20, 30, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 50 || g.NumEdges() != 100 {
		t.Fatalf("bipartite n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// No edge may connect two left or two right vertices.
	for v := 0; v < 20; v++ {
		for _, u := range g.Neighbors(v) {
			if u < 20 {
				t.Fatalf("left-left edge (%d,%d)", v, u)
			}
		}
	}
	if _, err := RandomBipartite(2, 2, 5, r); err == nil {
		t.Fatal("too many bipartite edges did not error")
	}
	if _, err := RandomBipartite(-1, 2, 0, r); err == nil {
		t.Fatal("negative side did not error")
	}
}

func TestGeneratedGraphsAlwaysValid(t *testing.T) {
	// Property: every generator output passes Validate for random parameters.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(200)
		maxM := int64(n) * int64(n-1) / 2
		m := int64(r.Intn(int(maxM + 1)))
		gm, err := GNM(n, m, r)
		if err != nil || gm.Validate() != nil || gm.NumEdges() != m {
			return false
		}
		p := r.Float64()
		gp, err := GNP(n, p, r)
		if err != nil || gp.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGNP100kAvgDeg10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		g, err := GNP(100000, 10.0/100000, r)
		if err != nil {
			b.Fatal(err)
		}
		_ = g
	}
}

func BenchmarkFromEdges(b *testing.B) {
	r := rng.New(1)
	const n = 100000
	edges := make([]Edge, 0, 500000)
	for i := 0; i < 500000; i++ {
		edges = append(edges, Edge{U: int32(r.Intn(n)), V: int32(r.Intn(n))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromEdges(n, edges)
	}
}
