package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a simple text format: a header line
// "# nodes <n> edges <m>" followed by one "u v" pair per undirected edge
// (u < v). The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	buf := make([]byte, 0, 32)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if int32(v) >= u {
				continue
			}
			buf = buf[:0]
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(u), 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return fmt.Errorf("graph: writing edge: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' other than the header are treated as comments; blank lines are
// ignored. If no header is present, the vertex count is inferred as one plus
// the largest endpoint seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var edges []Edge
	maxVertex := -1
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn int
			var hm int64
			if _, err := fmt.Sscanf(line, "# nodes %d edges %d", &hn, &hm); err == nil {
				n = hn
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected 'u v', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		if u >= MaxVertices || v >= MaxVertices {
			return nil, fmt.Errorf("graph: line %d: vertex id exceeds MaxVertices", lineNo)
		}
		if u > maxVertex {
			maxVertex = u
		}
		if v > maxVertex {
			maxVertex = v
		}
		edges = append(edges, Edge{U: int32(u), V: int32(v)})
		if 2*int64(len(edges)) > MaxAdjEntries {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, ErrTooManyEdges)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if n < 0 {
		n = maxVertex + 1
	}
	if n > MaxVertices {
		return nil, fmt.Errorf("graph: declared node count %d exceeds MaxVertices", n)
	}
	if maxVertex >= n {
		return nil, fmt.Errorf("graph: vertex %d exceeds declared node count %d", maxVertex, n)
	}
	g := FromEdges(n, edges)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: parsed graph invalid: %w", err)
	}
	return g, nil
}
