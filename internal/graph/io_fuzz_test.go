package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList drives the edge-list parser with arbitrary input:
// malformed lines, duplicate edges, out-of-range vertex ids, hostile
// headers. The parser must either reject the input with an error or produce
// a graph that passes full CSR validation and survives a write/read round
// trip unchanged.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("# nodes 4 edges 2\n0 1\n2 3\n"))
	f.Add([]byte("0 1\n1 2\n\n# comment\n2 3\n"))
	f.Add([]byte("0 1\n0 1\n1 0\n"))          // duplicate and reversed edges
	f.Add([]byte("# nodes 2 edges 1\n0 5\n")) // out-of-range vertex
	f.Add([]byte("0 1 2\n"))                  // malformed line
	f.Add([]byte("a b\n"))                    // non-numeric
	f.Add([]byte("0 -1\n"))                   // negative id
	f.Add([]byte("7\n"))                      // single field
	f.Add([]byte("# nodes 9999999999 edges 1\n0 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Skip only inputs that could make the parser allocate gigabytes for
		// a *valid* sparse graph: numeric tokens in [10^7, MaxVertices).
		// Larger values stay in play — the parser rejects them before any
		// vertex-sized allocation, and that rejection path is under test.
		var run uint64
		digits := 0
		flush := func() {
			if digits >= 8 && digits <= 10 && run >= 10_000_000 && run < MaxVertices {
				t.Skip("vertex count in the gigabyte-allocation range")
			}
			run, digits = 0, 0
		}
		for _, b := range data {
			if b >= '0' && b <= '9' {
				if digits < 11 {
					run = run*10 + uint64(b-'0')
				}
				digits++
			} else {
				flush()
			}
		}
		flush()
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written graph: %v\noutput: %q", err, buf.Bytes())
		}
		if !graphsEqual(g, g2) {
			t.Fatalf("round trip changed the graph: %v vs %v\ninput: %q", g, g2, data)
		}
	})
}
