package graph

import (
	"bytes"
	"strings"
	"testing"

	"relaxsched/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.New(9)
	g, err := GNM(100, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %v -> %v", g, g2)
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency changed", v)
			}
		}
	}
}

func TestReadEdgeListWithoutHeader(t *testing.T) {
	in := "0 1\n1 2\n\n# a comment\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("parsed n=%d m=%d, want 4/3", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListIsolatedTrailingVertices(t *testing.T) {
	// Header declares more vertices than appear in edges; they must survive.
	in := "# nodes 10 edges 1\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 || g.NumEdges() != 1 {
		t.Fatalf("parsed n=%d m=%d, want 10/1", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"malformed line", "0 1 2\n"},
		{"non-numeric", "a b\n"},
		{"negative", "0 -1\n"},
		{"exceeds header", "# nodes 2 edges 1\n0 5\n"},
		{"single field", "7\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("input %q parsed without error", tc.in)
			}
		})
	}
}

func TestReadEdgeListEmptyInput(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty input parsed as n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}
