package graph

// LineGraph returns the line graph L(g) of g: one vertex per undirected edge
// of g, with two line-graph vertices adjacent whenever the corresponding
// edges of g share an endpoint. It also returns the edge list of g indexed by
// line-graph vertex id, so callers can translate an independent set of L(g)
// back into a matching of g.
//
// This is exactly the reduction the paper uses to solve maximal matching with
// the MIS algorithm: "one can view matching as an independent set of edges,
// no two of which are incident to the same vertex."
func LineGraph(g *Graph) (*Graph, []Edge) {
	edges := g.Edges()
	// edgeIDs[i] lists the ids of edges incident to vertex i.
	edgeIDs := make([][]int32, g.NumVertices())
	for id, e := range edges {
		edgeIDs[e.U] = append(edgeIDs[e.U], int32(id))
		edgeIDs[e.V] = append(edgeIDs[e.V], int32(id))
	}
	var lineEdges []Edge
	for _, ids := range edgeIDs {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				lineEdges = append(lineEdges, Edge{U: ids[i], V: ids[j]})
			}
		}
	}
	return FromEdges(len(edges), lineEdges), edges
}
