package graph

// LineGraph returns the line graph L(g) of g: one vertex per undirected edge
// of g, with two line-graph vertices adjacent whenever the corresponding
// edges of g share an endpoint. It also returns the edge list of g indexed by
// line-graph vertex id, so callers can translate an independent set of L(g)
// back into a matching of g.
//
// This is exactly the reduction the paper uses to solve maximal matching with
// the MIS algorithm: "one can view matching as an independent set of edges,
// no two of which are incident to the same vertex."
//
// The incidence index is built as a flat CSR pair (offset + id arrays)
// rather than a slice of slices, mirroring the graph core's layout: the edge
// ids incident to vertex v are incIDs[incOff[v]:incOff[v+1]].
func LineGraph(g *Graph) (*Graph, []Edge) {
	edges := g.Edges()
	incOff, incIDs := IncidenceCSR(g, edges)
	var lineEdges []Edge
	for v := 0; v < g.NumVertices(); v++ {
		ids := incIDs[incOff[v]:incOff[v+1]]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				lineEdges = append(lineEdges, Edge{U: ids[i], V: ids[j]})
			}
		}
	}
	return FromEdges(len(edges), lineEdges), edges
}

// IncidenceCSR builds the flat edge-incidence index of g for the given edge
// list (as returned by g.Edges()): the ids of the edges incident to vertex v
// are ids[off[v]:off[v+1]], in increasing id order. The per-vertex counts are
// exactly the vertex degrees, so the offsets are the graph's own CSR offsets.
func IncidenceCSR(g *Graph, edges []Edge) (off []uint32, ids []int32) {
	n := g.NumVertices()
	off = make([]uint32, n+1)
	copy(off, g.offsets)
	cursor := make([]uint32, n)
	copy(cursor, off[:n])
	ids = make([]int32, g.NumAdjEntries())
	for id, e := range edges {
		ids[cursor[e.U]] = int32(id)
		cursor[e.U]++
		ids[cursor[e.V]] = int32(id)
		cursor[e.V]++
	}
	return off, ids
}
