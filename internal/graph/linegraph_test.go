package graph

import (
	"testing"

	"relaxsched/internal/rng"
)

func TestLineGraphTriangle(t *testing.T) {
	// The line graph of a triangle is again a triangle.
	g := Complete(3)
	lg, edges := LineGraph(g)
	if lg.NumVertices() != 3 {
		t.Fatalf("line graph vertices = %d, want 3", lg.NumVertices())
	}
	if lg.NumEdges() != 3 {
		t.Fatalf("line graph edges = %d, want 3", lg.NumEdges())
	}
	if len(edges) != 3 {
		t.Fatalf("edge index length = %d, want 3", len(edges))
	}
	if err := lg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLineGraphPath(t *testing.T) {
	// The line graph of a path on n vertices is a path on n-1 vertices.
	g := Path(6)
	lg, _ := LineGraph(g)
	if lg.NumVertices() != 5 {
		t.Fatalf("line graph vertices = %d, want 5", lg.NumVertices())
	}
	if lg.NumEdges() != 4 {
		t.Fatalf("line graph edges = %d, want 4", lg.NumEdges())
	}
}

func TestLineGraphStar(t *testing.T) {
	// The line graph of a star K_{1,n} is the complete graph K_n.
	g := Star(6) // 5 leaves
	lg, _ := LineGraph(g)
	if lg.NumVertices() != 5 {
		t.Fatalf("line graph vertices = %d, want 5", lg.NumVertices())
	}
	if lg.NumEdges() != 10 {
		t.Fatalf("line graph edges = %d, want 10 (K_5)", lg.NumEdges())
	}
}

func TestLineGraphEdgeCountFormula(t *testing.T) {
	// |E(L(G))| = sum_v deg(v)*(deg(v)-1)/2.
	r := rng.New(21)
	g, err := GNM(60, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	lg, edges := LineGraph(g)
	if int64(len(edges)) != g.NumEdges() {
		t.Fatalf("edge index has %d entries, want %d", len(edges), g.NumEdges())
	}
	var want int64
	for v := 0; v < g.NumVertices(); v++ {
		d := int64(g.Degree(v))
		want += d * (d - 1) / 2
	}
	if lg.NumEdges() != want {
		t.Fatalf("line graph edges = %d, want %d", lg.NumEdges(), want)
	}
	if err := lg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Adjacency in the line graph must correspond to incident edges in g.
	for lv := 0; lv < lg.NumVertices(); lv++ {
		for _, lu := range lg.Neighbors(lv) {
			a, b := edges[lv], edges[lu]
			if a.U != b.U && a.U != b.V && a.V != b.U && a.V != b.V {
				t.Fatalf("line graph edge (%d,%d) corresponds to non-incident edges %v %v", lv, lu, a, b)
			}
		}
	}
}

func TestLineGraphEmptyAndEdgeless(t *testing.T) {
	lg, edges := LineGraph(FromEdges(5, nil))
	if lg.NumVertices() != 0 || len(edges) != 0 {
		t.Fatal("line graph of edgeless graph should be empty")
	}
}
