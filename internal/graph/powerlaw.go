package graph

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"relaxsched/internal/rng"
)

// PowerLaw generates a Chung–Lu random graph whose expected degree sequence
// follows a power law with the given exponent (typically in (2, 3] for web
// and social graphs): vertex v is assigned weight (v+1)^(-1/(exponent-1)),
// and each sampled edge picks both endpoints with probability proportional
// to their weights. The result has a few very high-degree hubs and a heavy
// tail of low-degree vertices — the degree profile the scalable-broadcast
// systems in the related work are built for, and a much harsher scheduler
// stress test than G(n, p): hub vertices create long dependency chains for
// MIS and coloring.
//
// avgDegree fixes the number of sampled edges at n*avgDegree/2. Self-loops
// are dropped and duplicate samples are collapsed by the CSR builder, so the
// realized average degree is slightly lower than requested. Sampling runs on
// workers goroutines (0 selects GOMAXPROCS), each with an independent stream
// forked from r and its own edge shard feeding the parallel CSR builder.
func PowerLaw(n int, avgDegree, exponent float64, workers int, r *rng.Rand) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > MaxVertices {
		return nil, ErrTooManyVertices
	}
	if avgDegree < 0 {
		return nil, fmt.Errorf("graph: negative average degree %v", avgDegree)
	}
	if exponent <= 1 {
		return nil, fmt.Errorf("graph: power-law exponent %v must exceed 1", exponent)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	target := int64(avgDegree * float64(n) / 2)
	if 2*target > MaxAdjEntries {
		return nil, ErrTooManyEdges
	}
	if n < 2 || target == 0 {
		return FromEdges(n, nil), nil
	}

	// cum[v] is the cumulative weight mass up to and including vertex v;
	// sampling an endpoint is a binary search for a uniform point in the
	// total mass. The weights are a pure function of the vertex id, so the
	// cumulative array is built in parallel chunks and stitched together.
	cum := make([]float64, n)
	alpha := -1 / (exponent - 1)
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	parallelDo(nchunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		run := 0.0
		for v := lo; v < hi; v++ {
			run += math.Pow(float64(v+1), alpha)
			cum[v] = run
		}
	})
	// Stitch: add each chunk's closing mass to every later chunk.
	base := 0.0
	for c := 0; c < nchunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if base != 0 {
			for v := lo; v < hi; v++ {
				cum[v] += base
			}
		}
		base = cum[hi-1]
	}
	total := cum[n-1]

	if workers > int(target) {
		workers = int(target)
	}
	parts := make([][]Edge, workers)
	rands := make([]*rng.Rand, workers)
	for i := range rands {
		rands[i] = r.Fork()
	}
	per := (target + int64(workers) - 1) / int64(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		count := per
		if rem := target - int64(w)*per; rem < count {
			count = rem
		}
		if count <= 0 {
			continue
		}
		wg.Add(1)
		go func(w int, count int64) {
			defer wg.Done()
			wr := rands[w]
			part := make([]Edge, 0, count)
			for i := int64(0); i < count; i++ {
				u := sampleByWeight(cum, total, wr)
				v := sampleByWeight(cum, total, wr)
				if u == v {
					continue
				}
				part = append(part, Edge{U: u, V: v})
			}
			parts[w] = part
		}(w, count)
	}
	wg.Wait()
	return FromEdgeParts(n, parts)
}

// sampleByWeight draws a vertex with probability proportional to its weight
// via binary search on the cumulative mass array.
func sampleByWeight(cum []float64, total float64, r *rng.Rand) int32 {
	x := r.Float64() * total
	i := sort.SearchFloat64s(cum, x)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return int32(i)
}
