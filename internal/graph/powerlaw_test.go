package graph

import (
	"testing"

	"relaxsched/internal/rng"
)

func TestPowerLawBasic(t *testing.T) {
	const n = 5000
	g, err := PowerLaw(n, 8, 2.5, 4, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != n {
		t.Fatalf("NumVertices = %d, want %d", g.NumVertices(), n)
	}
	// Dedup and self-loop drops shrink the edge count, but not by much.
	if avg := g.AverageDegree(); avg < 4 || avg > 8 {
		t.Fatalf("average degree %.2f far from requested 8", avg)
	}
	// The defining power-law property: hubs. The largest degree must dwarf
	// the average (for G(n,p) of the same density it would be within a small
	// constant factor).
	if maxDeg := g.MaxDegree(); float64(maxDeg) < 8*g.AverageDegree() {
		t.Fatalf("max degree %d too small for a power-law graph (avg %.2f)", maxDeg, g.AverageDegree())
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a, err := PowerLaw(800, 6, 2.2, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLaw(800, 6, 2.2, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(a, b) {
		t.Fatal("same seed and worker count produced different graphs")
	}
}

func TestPowerLawEdgeCases(t *testing.T) {
	if _, err := PowerLaw(-1, 4, 2.5, 1, rng.New(1)); err == nil {
		t.Fatal("negative vertex count accepted")
	}
	if _, err := PowerLaw(100, -4, 2.5, 1, rng.New(1)); err == nil {
		t.Fatal("negative degree accepted")
	}
	if _, err := PowerLaw(100, 4, 1.0, 1, rng.New(1)); err == nil {
		t.Fatal("exponent 1.0 accepted")
	}
	g, err := PowerLaw(0, 4, 2.5, 1, rng.New(1))
	if err != nil || g.NumVertices() != 0 {
		t.Fatalf("empty graph: %v, %v", g, err)
	}
	g, err = PowerLaw(1, 4, 2.5, 1, rng.New(1))
	if err != nil || g.NumEdges() != 0 {
		t.Fatalf("single vertex: %v, %v", g, err)
	}
	g, err = PowerLaw(100, 0, 2.5, 1, rng.New(1))
	if err != nil || g.NumEdges() != 0 {
		t.Fatalf("zero degree: %v, %v", g, err)
	}
}
