package graph

import (
	"fmt"
	"runtime"
	"sync"

	"relaxsched/internal/rng"
)

// BarabasiAlbert generates a preferential-attachment graph: starting from a
// small clique of m0 = attach vertices, every new vertex attaches to `attach`
// distinct existing vertices chosen with probability proportional to their
// current degree. The result has the heavy-tailed degree distribution typical
// of web and social graphs, which is a useful stress input for the MIS and
// coloring workloads (a few very high-degree hubs create many dependencies).
func BarabasiAlbert(n, attach int, r *rng.Rand) (*Graph, error) {
	if attach < 1 {
		return nil, fmt.Errorf("graph: attachment count must be at least 1, got %d", attach)
	}
	if n < attach+1 {
		return nil, fmt.Errorf("graph: need at least %d vertices for attachment count %d, got %d", attach+1, attach, n)
	}
	edges := make([]Edge, 0, n*attach)
	// repeated holds every edge endpoint once per incidence, so sampling a
	// uniform element of it is sampling a vertex proportionally to degree.
	repeated := make([]int32, 0, 2*n*attach)

	// Seed graph: a clique on the first attach+1 vertices.
	for u := 0; u <= attach; u++ {
		for v := u + 1; v <= attach; v++ {
			edges = append(edges, Edge{U: int32(u), V: int32(v)})
			repeated = append(repeated, int32(u), int32(v))
		}
	}
	chosen := make(map[int32]bool, attach)
	for v := attach + 1; v < n; v++ {
		for key := range chosen {
			delete(chosen, key)
		}
		for len(chosen) < attach {
			var target int32
			// With probability proportional to degree; fall back to uniform
			// if the repeated list is somehow empty (cannot happen after the
			// seed clique, but keeps the loop total).
			if len(repeated) > 0 {
				target = repeated[r.Intn(len(repeated))]
			} else {
				target = int32(r.Intn(v))
			}
			if int(target) == v || chosen[target] {
				continue
			}
			chosen[target] = true
		}
		for target := range chosen {
			edges = append(edges, Edge{U: int32(v), V: target})
			repeated = append(repeated, int32(v), target)
		}
	}
	return FromEdges(n, edges), nil
}

// WattsStrogatz generates a small-world graph: a ring lattice where every
// vertex is connected to its k nearest neighbors (k must be even), with each
// lattice edge rewired to a uniformly random endpoint with probability beta.
// Rewired edges that would create self-loops or duplicates are kept in place,
// matching the usual formulation. Small-world graphs combine high clustering
// with short paths and are a standard "road-network-plus-shortcuts" workload
// for the SSSP example.
func WattsStrogatz(n, k int, beta float64, r *rng.Rand) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("graph: lattice degree must be a positive even number, got %d", k)
	}
	if k >= n {
		return nil, fmt.Errorf("graph: lattice degree %d must be smaller than vertex count %d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: rewiring probability %v out of [0,1]", beta)
	}
	type pair struct{ u, v int32 }
	present := make(map[pair]bool, n*k/2)
	has := func(u, v int32) bool {
		if u > v {
			u, v = v, u
		}
		return present[pair{u, v}]
	}
	add := func(u, v int32) {
		if u > v {
			u, v = v, u
		}
		present[pair{u, v}] = true
	}

	// Ring lattice.
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			add(int32(u), int32(v))
		}
	}
	// Rewire each lattice edge (u, u+j) with probability beta.
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := int32((u + j) % n)
			if r.Float64() >= beta {
				continue
			}
			// Pick a new endpoint; keep the original edge if no valid
			// endpoint is found quickly (dense corner cases).
			for attempt := 0; attempt < 16; attempt++ {
				w := int32(r.Intn(n))
				if int(w) == u || has(int32(u), w) {
					continue
				}
				delete(present, pair{min32(int32(u), v), max32(int32(u), v)})
				add(int32(u), w)
				break
			}
		}
	}
	edges := make([]Edge, 0, len(present))
	for p := range present {
		edges = append(edges, Edge{U: p.u, V: p.v})
	}
	return FromEdges(n, edges), nil
}

// ParallelWattsStrogatz generates a small-world graph with workers
// goroutines, each owning a contiguous range of lattice vertices and an
// independent random stream forked from r. Every worker emits the lattice
// edges (u, u+j mod n) for its range, independently rewiring each one to a
// uniformly random endpoint with probability beta, and the shards feed the
// parallel CSR builder directly.
//
// Unlike the sequential WattsStrogatz, rewiring decisions are made per edge
// without consulting a global edge set (which would serialize the workers);
// rewired edges that collide with an existing edge are collapsed by the CSR
// builder's deduplication instead of being redrawn, so the realized edge
// count can be slightly below n*k/2. The degree distribution and small-world
// structure are unaffected for the beta values the workloads use.
func ParallelWattsStrogatz(n, k int, beta float64, workers int, r *rng.Rand) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("graph: lattice degree must be a positive even number, got %d", k)
	}
	if k >= n {
		return nil, fmt.Errorf("graph: lattice degree %d must be smaller than vertex count %d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: rewiring probability %v out of [0,1]", beta)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	parts := make([][]Edge, workers)
	rands := make([]*rng.Rand, workers)
	for i := range rands {
		rands[i] = r.Fork()
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wr := rands[w]
			part := make([]Edge, 0, (hi-lo)*k/2)
			for u := lo; u < hi; u++ {
				for j := 1; j <= k/2; j++ {
					v := int32((u + j) % n)
					if beta > 0 && wr.Float64() < beta {
						for attempt := 0; attempt < 16; attempt++ {
							cand := int32(wr.Intn(n))
							if int(cand) != u {
								v = cand
								break
							}
						}
					}
					part = append(part, Edge{U: int32(u), V: v})
				}
			}
			parts[w] = part
		}(w, lo, hi)
	}
	wg.Wait()
	return FromEdgeParts(n, parts)
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
