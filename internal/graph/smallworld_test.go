package graph

import (
	"sort"
	"testing"

	"relaxsched/internal/rng"
)

func TestBarabasiAlbertBasics(t *testing.T) {
	r := rng.New(5)
	const n = 2000
	const attach = 3
	g, err := BarabasiAlbert(n, attach, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Fatalf("n = %d, want %d", g.NumVertices(), n)
	}
	// Seed clique has attach*(attach+1)/2 edges; every later vertex adds
	// exactly attach edges (duplicates impossible since targets are distinct
	// per new vertex).
	wantEdges := int64(attach*(attach+1)/2 + (n-attach-1)*attach)
	if g.NumEdges() != wantEdges {
		t.Fatalf("m = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Every vertex must have degree at least attach (newcomers add attach
	// edges; seed vertices are in the clique and attract attachments).
	for v := 0; v < n; v++ {
		if g.Degree(v) < attach {
			t.Fatalf("vertex %d has degree %d < %d", v, g.Degree(v), attach)
		}
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	r := rng.New(11)
	const n = 5000
	g, err := BarabasiAlbert(n, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	degrees := make([]int, n)
	for v := 0; v < n; v++ {
		degrees[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	// Preferential attachment produces hubs: the largest degree should be
	// many times the average degree (4 here). A uniform random graph with
	// the same density would have max degree ~15.
	if degrees[0] < 30 {
		t.Fatalf("max degree %d too small for preferential attachment", degrees[0])
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := BarabasiAlbert(10, 0, r); err == nil {
		t.Fatal("attach=0 accepted")
	}
	if _, err := BarabasiAlbert(3, 3, r); err == nil {
		t.Fatal("n <= attach accepted")
	}
}

func TestWattsStrogatzNoRewiring(t *testing.T) {
	r := rng.New(2)
	const n = 100
	const k = 6
	g, err := WattsStrogatz(n, k, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != int64(n*k/2) {
		t.Fatalf("m = %d, want %d", g.NumEdges(), n*k/2)
	}
	// With beta = 0 the graph is the exact ring lattice: every vertex has
	// degree k.
	for v := 0; v < n; v++ {
		if g.Degree(v) != k {
			t.Fatalf("vertex %d has degree %d, want %d", v, g.Degree(v), k)
		}
	}
}

func TestWattsStrogatzRewiringKeepsEdgeCount(t *testing.T) {
	r := rng.New(3)
	const n = 500
	const k = 8
	g, err := WattsStrogatz(n, k, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rewiring replaces edges one-for-one (keeping the original when no
	// valid target is found), so the count never exceeds the lattice count
	// and only rarely drops below it.
	if g.NumEdges() > int64(n*k/2) {
		t.Fatalf("m = %d exceeds lattice edge count %d", g.NumEdges(), n*k/2)
	}
	if g.NumEdges() < int64(n*k/2)*95/100 {
		t.Fatalf("m = %d lost more than 5%% of lattice edges", g.NumEdges())
	}
	// Full rewiring must still produce a valid graph.
	g2, err := WattsStrogatz(200, 4, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	r := rng.New(4)
	cases := []struct {
		n    int
		k    int
		beta float64
	}{
		{10, 3, 0.1},  // odd k
		{10, 0, 0.1},  // zero k
		{10, 10, 0.1}, // k >= n
		{10, 4, -0.5}, // bad beta
		{10, 4, 1.5},  // bad beta
	}
	for _, tc := range cases {
		if _, err := WattsStrogatz(tc.n, tc.k, tc.beta, r); err == nil {
			t.Fatalf("WattsStrogatz(%d,%d,%v) accepted", tc.n, tc.k, tc.beta)
		}
	}
}

func TestParallelWattsStrogatzBasic(t *testing.T) {
	const n, k = 2000, 6
	g, err := ParallelWattsStrogatz(n, k, 0.1, 4, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != n {
		t.Fatalf("NumVertices = %d, want %d", g.NumVertices(), n)
	}
	// Rewiring collisions collapse a few edges, never add any.
	if g.NumEdges() > int64(n*k/2) {
		t.Fatalf("edge count %d exceeds lattice size %d", g.NumEdges(), n*k/2)
	}
	if g.NumEdges() < int64(n*k/2*9/10) {
		t.Fatalf("edge count %d lost more than 10%% of the lattice %d", g.NumEdges(), n*k/2)
	}
}

func TestParallelWattsStrogatzZeroBetaIsLattice(t *testing.T) {
	const n, k = 500, 4
	g, err := ParallelWattsStrogatz(n, k, 0, 3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != int64(n*k/2) {
		t.Fatalf("beta=0 lattice has %d edges, want %d", g.NumEdges(), n*k/2)
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != k {
			t.Fatalf("beta=0 lattice vertex %d has degree %d, want %d", v, g.Degree(v), k)
		}
	}
}

func TestParallelWattsStrogatzErrors(t *testing.T) {
	if _, err := ParallelWattsStrogatz(10, 3, 0.1, 2, rng.New(1)); err == nil {
		t.Fatal("odd lattice degree accepted")
	}
	if _, err := ParallelWattsStrogatz(4, 6, 0.1, 2, rng.New(1)); err == nil {
		t.Fatal("lattice degree >= n accepted")
	}
	if _, err := ParallelWattsStrogatz(10, 4, 1.5, 2, rng.New(1)); err == nil {
		t.Fatal("beta out of range accepted")
	}
}
