package graph

import (
	"fmt"
	"runtime"

	"relaxsched/internal/rng"
)

// Weights stores a positive integer weight for every adjacency entry of a
// graph, aligned with the flat neighbors array: the weight of the adjacency
// entry at flat index i (Graph.AdjOffset(v) plus the neighbor position) is
// At(i). Weights are symmetric: the weight seen from u for neighbor v equals
// the weight seen from v for neighbor u. They are used by the shortest-path
// workloads.
type Weights struct {
	w []uint32
}

// RandomWeights returns symmetric uniform random weights in [1, maxWeight]
// for every edge of g. Symmetry is guaranteed by deriving each edge's weight
// from a hash of its canonical (min, max) endpoint pair and the seed, so both
// directions compute the same value. Because every entry is a pure function
// of the endpoints and the seed, the fill runs in parallel over vertex
// ranges.
func RandomWeights(g *Graph, maxWeight uint32, seed uint64) (*Weights, error) {
	if maxWeight == 0 {
		return nil, fmt.Errorf("graph: maxWeight must be positive")
	}
	w := make([]uint32, g.NumAdjEntries())
	ranges := vertexRanges(g.offsets, runtime.GOMAXPROCS(0))
	parallelDo(len(ranges), func(i int) {
		for v := ranges[i].lo; v < ranges[i].hi; v++ {
			base := g.AdjOffset(v)
			for j, u := range g.Neighbors(v) {
				lo, hi := int32(v), u
				if lo > hi {
					lo, hi = hi, lo
				}
				h := rng.NewSplitMix64(seed ^ uint64(uint32(lo))<<32 ^ uint64(uint32(hi)))
				w[base+j] = uint32(h.Next()%uint64(maxWeight)) + 1
			}
		}
	})
	return &Weights{w: w}, nil
}

// UnitWeights returns weights of 1 for every edge of g, which makes shortest
// paths equivalent to BFS distances — a useful oracle in tests.
func UnitWeights(g *Graph) *Weights {
	w := make([]uint32, g.NumAdjEntries())
	for i := range w {
		w[i] = 1
	}
	return &Weights{w: w}
}

// At returns the weight of the adjacency entry at flat index i (as produced
// by Graph.AdjOffset plus the neighbor position).
func (ws *Weights) At(i int) uint32 { return ws.w[i] }

// Range returns the weight entries of the adjacency run starting at flat
// index base with n entries — aligned index-for-index with
// Graph.Neighbors(v) when base is Graph.AdjOffset(v) and n its degree. Hot
// loops use it to scan one vertex's weights as a single bounds-checked
// slice alongside the neighbors slice instead of calling At per edge. The
// returned slice aliases the weight storage and must not be modified.
func (ws *Weights) Range(base, n int) []uint32 { return ws.w[base : base+n] }

// Len returns the number of weight entries (equal to the graph's
// NumAdjEntries).
func (ws *Weights) Len() int { return len(ws.w) }
