package graph

import (
	"testing"

	"relaxsched/internal/rng"
)

func TestRandomWeightsSymmetricAndInRange(t *testing.T) {
	r := rng.New(13)
	g, err := GNM(80, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	const maxW = 100
	ws, err := RandomWeights(g, maxW, 777)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != g.NumAdjEntries() {
		t.Fatalf("weights length %d, want %d", ws.Len(), g.NumAdjEntries())
	}
	// Build a map of weights seen from each direction and verify symmetry and
	// range.
	weightOf := make(map[[2]int32]uint32)
	for v := 0; v < g.NumVertices(); v++ {
		base := g.AdjOffset(v)
		for i, u := range g.Neighbors(v) {
			w := ws.At(base + i)
			if w < 1 || w > maxW {
				t.Fatalf("weight %d out of [1,%d]", w, maxW)
			}
			weightOf[[2]int32{int32(v), u}] = w
		}
	}
	for key, w := range weightOf {
		if other, ok := weightOf[[2]int32{key[1], key[0]}]; !ok || other != w {
			t.Fatalf("asymmetric weights for edge %v: %d vs %d", key, w, other)
		}
	}
}

func TestRandomWeightsDeterministicInSeed(t *testing.T) {
	r := rng.New(13)
	g, err := GNM(40, 150, r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RandomWeights(g, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomWeights(g, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RandomWeights(g, 50, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	differ := false
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			same = false
		}
		if a.At(i) != c.At(i) {
			differ = true
		}
	}
	if !same {
		t.Fatal("same seed produced different weights")
	}
	if !differ && a.Len() > 0 {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestRandomWeightsErrors(t *testing.T) {
	g := Path(3)
	if _, err := RandomWeights(g, 0, 1); err == nil {
		t.Fatal("maxWeight=0 did not error")
	}
}

func TestUnitWeights(t *testing.T) {
	g := Grid(4, 4)
	ws := UnitWeights(g)
	for i := 0; i < ws.Len(); i++ {
		if ws.At(i) != 1 {
			t.Fatalf("unit weight at %d is %d", i, ws.At(i))
		}
	}
}
