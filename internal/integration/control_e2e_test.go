package integration

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"relaxsched/internal/service"
)

// burstyLoad is the shared closed-loop workload for the controller e2e: a
// handful of clients hammering a single-worker node with a wide priority
// spread. Under the exact scheduler a job that drew a bad priority keeps
// losing to the newcomers the other clients submit — the starvation tail the
// adaptive controller exists to cut.
func burstyLoad(baseURL string) service.LoadConfig {
	return service.LoadConfig{
		BaseURL:        baseURL,
		Clients:        32,
		Jobs:           320,
		Workloads:      []string{"mis"},
		Mode:           "concurrent",
		Threads:        1,
		Graph:          service.GraphSpec{Model: service.ModelGNP, N: 20000, Edges: 80000, Seed: 7},
		PrioritySpread: 1000,
		PollInterval:   time.Millisecond,
	}
}

func runBursty(t *testing.T, opts service.Options) service.LoadResult {
	t.Helper()
	mgr, err := service.NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	defer func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Close(ctx)
	}()
	res, err := service.RunLoad(context.Background(), burstyLoad(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("jobsched=%s: %d jobs failed", opts.JobSched, res.Failed)
	}
	return res
}

// TestAdaptiveControllerBurstyLoadE2E drives the same bursty closed-loop
// load through a real HTTP stack against an exact node and an adaptive
// (-jobsched auto) node, and checks the controller's contract end to end:
// the auto node's mean rank error stays within the operator's -rank-slo,
// its p99 queue latency beats exact's (the whole point of widening), and
// the k/batch trajectory is visible in the /v1/metrics controller section.
func TestAdaptiveControllerBurstyLoadE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("bursty controller e2e is slow")
	}
	const rankSLO = 16

	exact := runBursty(t, service.Options{
		Workers: 1, QueueDepth: 24, JobSched: service.JobSchedExact,
	})
	auto := runBursty(t, service.Options{
		Workers: 1, QueueDepth: 24, JobSched: service.JobSchedAuto,
		RankSLO:         rankSLO,
		P99SLO:          25 * time.Millisecond,
		ControlInterval: 3 * time.Millisecond,
	})

	if exact.Metrics.Controller != nil {
		t.Fatalf("exact node grew a controller section: %+v", exact.Metrics.Controller)
	}
	c := auto.Metrics.Controller
	if c == nil || !c.Enabled {
		t.Fatalf("auto node reported no controller section: %+v", auto.Metrics)
	}
	if auto.Metrics.JobSched != service.JobSchedAuto || auto.Metrics.JobSchedK != 0 {
		t.Fatalf("auto node identity: sched=%q k=%d, want auto/0 (live k belongs to the controller)",
			auto.Metrics.JobSched, auto.Metrics.JobSchedK)
	}
	if c.RankSLO != rankSLO || c.Steps == 0 {
		t.Fatalf("controller echo: %+v", c)
	}
	// The single worker cannot keep 16 closed-loop clients under the 25ms
	// p99 target, so the controller must have widened past its exact start.
	if c.Widened == 0 || c.K <= 1 {
		t.Fatalf("controller never widened under sustained pressure: %+v", c)
	}
	if c.P99Violations == 0 {
		t.Fatalf("no p99 violations counted under overload: %+v", c)
	}

	// The SLO the controller is chartered to hold: mean job rank error at or
	// under -rank-slo. (It holds with slack — 16 closed-loop clients keep at
	// most 16 jobs pending, so even near-FIFO dispatch averages about half
	// that in rank error — but the assertion is on the measured wire value,
	// end to end.)
	if mean := auto.Metrics.RankError.Mean; mean > rankSLO {
		t.Fatalf("auto mean rank error %.2f exceeds SLO %d", mean, rankSLO)
	}
	// And the payoff for relaxing: the starvation tail the exact heap builds
	// under this load must shrink. Exact's p99 is many service times (the
	// unluckiest job keeps losing to fresh higher-priority arrivals); the
	// widened queue dispatches near-FIFO, bounding every job's wait.
	if auto.Metrics.QueueLatency.P99Ms >= exact.Metrics.QueueLatency.P99Ms {
		t.Fatalf("auto p99 %.1fms did not beat exact p99 %.1fms",
			auto.Metrics.QueueLatency.P99Ms, exact.Metrics.QueueLatency.P99Ms)
	}
	t.Logf("p99 queue latency: exact=%.1fms auto=%.1fms; auto rank mean=%.2f k=%d batch=%d widened=%d tightened=%d",
		exact.Metrics.QueueLatency.P99Ms, auto.Metrics.QueueLatency.P99Ms,
		auto.Metrics.RankError.Mean, c.K, c.Batch, c.Widened, c.Tightened)
}
