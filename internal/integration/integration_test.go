// Package integration contains cross-cutting tests that exercise the whole
// pipeline — graph generation, priority permutations, every scheduler family,
// every algorithm, and both executors — against the sequential oracles. These
// are the repository's end-to-end determinism and correctness guarantees.
package integration

import (
	"bytes"
	"fmt"
	"testing"

	"relaxsched/internal/algos/coloring"
	"relaxsched/internal/algos/listcontract"
	"relaxsched/internal/algos/matching"
	"relaxsched/internal/algos/mis"
	"relaxsched/internal/algos/shuffle"
	"relaxsched/internal/algos/sssp"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
)

// sequentialSchedulers returns one instance of every sequential-model
// scheduler family at the given relaxation factor.
func sequentialSchedulers(k, capacity int, seed uint64) map[string]sched.Scheduler {
	r := rng.New(seed)
	return map[string]sched.Scheduler{
		"exactheap":  exactheap.New(capacity),
		"topk":       topk.New(k, capacity, r.Fork()),
		"multiqueue": multiqueue.NewSequential(k, capacity, r.Fork()),
		"spraylist":  spraylist.New(k, r.Fork()),
		"kbounded":   kbounded.New(k, capacity),
	}
}

// concurrentSchedulers returns one instance of every concurrent scheduler
// configuration used in the experiments.
func concurrentSchedulers(capacity, workers int, seed uint64) map[string]sched.Concurrent {
	r := rng.New(seed)
	return map[string]sched.Concurrent{
		"multiqueue":        multiqueue.NewConcurrent(4*workers, capacity, seed),
		"faaqueue":          faaqueue.New(capacity),
		"locked-topk":       sched.NewLocked(topk.New(16, capacity, r.Fork())),
		"locked-exact-heap": sched.NewLocked(exactheap.New(capacity)),
	}
}

func TestFullMatrixGraphAlgorithmsSequentialModel(t *testing.T) {
	// Every graph algorithm × every sequential-model scheduler family must
	// reproduce the sequential greedy output on several random graphs.
	r := rng.New(1234)
	for trial := 0; trial < 3; trial++ {
		n := 150 + r.Intn(250)
		maxM := int64(n) * int64(n-1) / 2
		m := int64(r.Intn(int(maxM / 3)))
		g, err := graph.GNM(n, m, r)
		if err != nil {
			t.Fatal(err)
		}
		vertexLabels := core.RandomLabels(n, r)
		edgeLabels := core.RandomLabels(int(g.NumEdges()), r)

		wantMIS := mis.Sequential(g, vertexLabels)
		wantColors := coloring.Sequential(g, vertexLabels)
		wantMatching := matching.Sequential(g, edgeLabels)

		for name, s := range sequentialSchedulers(8, n, uint64(trial)) {
			gotMIS, _, err := mis.RunRelaxed(g, vertexLabels, s)
			if err != nil {
				t.Fatalf("trial %d mis/%s: %v", trial, name, err)
			}
			if !mis.Equal(gotMIS, wantMIS) {
				t.Fatalf("trial %d mis/%s: output differs from sequential", trial, name)
			}
		}
		for name, s := range sequentialSchedulers(8, n, uint64(trial)+100) {
			gotColors, _, err := coloring.RunRelaxed(g, vertexLabels, s)
			if err != nil {
				t.Fatalf("trial %d coloring/%s: %v", trial, name, err)
			}
			if !coloring.Equal(gotColors, wantColors) {
				t.Fatalf("trial %d coloring/%s: output differs from sequential", trial, name)
			}
		}
		for name, s := range sequentialSchedulers(8, int(g.NumEdges())+1, uint64(trial)+200) {
			gotMatching, _, err := matching.RunRelaxed(g, edgeLabels, s)
			if err != nil {
				t.Fatalf("trial %d matching/%s: %v", trial, name, err)
			}
			if !matching.Equal(gotMatching, wantMatching) {
				t.Fatalf("trial %d matching/%s: output differs from sequential", trial, name)
			}
		}
	}
}

func TestFullMatrixConcurrentSchedulers(t *testing.T) {
	// MIS under every concurrent scheduler configuration and several worker
	// counts must reproduce the sequential output, with the appropriate
	// blocked-task policy for exact FIFOs.
	r := rng.New(99)
	const n = 1200
	g, err := graph.GNM(n, 7000, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(n, r)
	want := mis.Sequential(g, labels)

	for _, workers := range []int{1, 3, 8} {
		for name, s := range concurrentSchedulers(n, workers, uint64(workers)) {
			policy := core.Reinsert
			if name == "faaqueue" {
				policy = core.Wait
			}
			got, res, err := mis.RunConcurrent(g, labels, s, core.ConcurrentOptions{Workers: workers, BlockedPolicy: policy})
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			if !mis.Equal(got, want) {
				t.Fatalf("%s/workers=%d: concurrent MIS differs from sequential", name, workers)
			}
			if err := mis.Verify(g, got); err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			if res.Processed+res.DeadSkips != int64(n) {
				t.Fatalf("%s/workers=%d: task accounting off: %+v", name, workers, res.Result)
			}
		}
	}
}

func TestBatchedExecutionMatchesSequential(t *testing.T) {
	// The regression net for the batched executor: MIS, coloring and
	// matching, executed with batched deliveries over both a natively
	// batched scheduler (MultiQueue) and the coarse-locked Batcher path
	// (k-bounded), must reproduce the sequential output bit for bit at
	// every batch size.
	r := rng.New(4242)
	const n = 1000
	g, err := graph.GNM(n, 6000, r)
	if err != nil {
		t.Fatal(err)
	}
	vertexLabels := core.RandomLabels(n, r)
	edgeLabels := core.RandomLabels(int(g.NumEdges()), r)

	wantMIS := mis.Sequential(g, vertexLabels)
	wantColors := coloring.Sequential(g, vertexLabels)
	wantMatching := matching.Sequential(g, edgeLabels)

	schedulers := func(capacity int, seed uint64) map[string]sched.Concurrent {
		return map[string]sched.Concurrent{
			"multiqueue":      multiqueue.NewConcurrent(16, capacity, seed),
			"locked-kbounded": sched.NewLocked(kbounded.New(16, capacity)),
		}
	}

	for _, batch := range []int{1, 16, 64} {
		opts := core.ConcurrentOptions{Workers: 4, BatchSize: batch}
		for name, s := range schedulers(n, uint64(batch)) {
			got, _, err := mis.RunConcurrent(g, vertexLabels, s, opts)
			if err != nil {
				t.Fatalf("mis/%s batch=%d: %v", name, batch, err)
			}
			if !mis.Equal(got, wantMIS) {
				t.Fatalf("mis/%s batch=%d: output differs from sequential", name, batch)
			}
		}
		for name, s := range schedulers(n, uint64(batch)+50) {
			got, _, err := coloring.RunConcurrent(g, vertexLabels, s, opts)
			if err != nil {
				t.Fatalf("coloring/%s batch=%d: %v", name, batch, err)
			}
			if !coloring.Equal(got, wantColors) {
				t.Fatalf("coloring/%s batch=%d: output differs from sequential", name, batch)
			}
		}
		for name, s := range schedulers(int(g.NumEdges()), uint64(batch)+100) {
			got, _, err := matching.RunConcurrent(g, edgeLabels, s, opts)
			if err != nil {
				t.Fatalf("matching/%s batch=%d: %v", name, batch, err)
			}
			if !matching.Equal(got, wantMatching) {
				t.Fatalf("matching/%s batch=%d: output differs from sequential", name, batch)
			}
		}
	}
}

func TestEndToEndFileRoundTripPipeline(t *testing.T) {
	// Generate -> serialize -> parse -> solve (all algorithms) -> verify:
	// the full path a user of the CLI tools takes.
	r := rng.New(777)
	g, err := graph.BarabasiAlbert(600, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	parsed, err := graph.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumVertices() != g.NumVertices() || parsed.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}

	labels := core.RandomLabels(parsed.NumVertices(), r)
	inSet, _, err := mis.RunRelaxed(parsed, labels, multiqueue.NewSequential(8, parsed.NumVertices(), r.Fork()))
	if err != nil {
		t.Fatal(err)
	}
	if err := mis.Verify(parsed, inSet); err != nil {
		t.Fatal(err)
	}

	colors, _, err := coloring.RunRelaxed(parsed, labels, spraylist.New(8, r.Fork()))
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(parsed, colors); err != nil {
		t.Fatal(err)
	}

	edgeLabels := core.RandomLabels(int(parsed.NumEdges()), r)
	matched, _, err := matching.RunRelaxed(parsed, edgeLabels, kbounded.New(8, int(parsed.NumEdges())))
	if err != nil {
		t.Fatal(err)
	}
	if err := matching.Verify(parsed, matched); err != nil {
		t.Fatal(err)
	}

	weights, err := graph.RandomWeights(parsed, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := sssp.RunConcurrent(parsed, weights, 0, multiqueue.NewConcurrent(8, parsed.NumVertices(), 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sssp.Verify(parsed, weights, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestDefinitionOneHoldsForConcurrentMultiQueue(t *testing.T) {
	// Drive a real concurrent MIS execution through an instrumented
	// MultiQueue and check that the observed relaxation looks like the
	// (k, φ)-relaxed model: with single-item deliveries (BatchSize 1) the
	// scheduler's intrinsic relaxation must satisfy k = O(#queues) as in the
	// paper's reference [2]; with the executor's batched deliveries the
	// effective relaxation grows to k = O(#queues + batch), because a batch
	// removal returns up to B items of one sub-queue in one episode. Both
	// regimes keep mean rank and inversions far below n.
	r := rng.New(31)
	const n = 4000
	const workers = 4
	const queues = 4 * workers
	g, err := graph.GNM(n, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(n, r)
	want := mis.Sequential(g, labels)

	// The max-rank caps differ by regime: single-item two-choice keeps the
	// worst rank near O(#queues·log n); a batched removal drains up to B
	// items from one sub-queue per sampling round, so a queue that stays
	// unsampled for a while ages ~B times faster and the worst-case outlier
	// grows to ~B·#queues·ln n (≈1300 here, observed under the race
	// detector's adversarial interleavings) — still well below n.
	for _, tc := range []struct {
		name     string
		batch    int
		meanCap  float64
		maxShare int
	}{
		{name: "single-item", batch: 1, meanCap: 8 * queues, maxShare: n / 4},
		{name: "batched", batch: core.DefaultBatchSize,
			meanCap: 8*queues + 4*core.DefaultBatchSize, maxShare: n / 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inner := multiqueue.NewConcurrent(queues, n, 17)
			instrumented := sched.NewConcurrentInstrumented(inner, n)
			got, _, err := mis.RunConcurrent(g, labels, instrumented,
				core.ConcurrentOptions{Workers: workers, BatchSize: tc.batch})
			if err != nil {
				t.Fatal(err)
			}
			if !mis.Equal(got, want) {
				t.Fatal("instrumented concurrent MIS differs from sequential")
			}
			m := instrumented.Metrics()
			if m.Removals < int64(n) {
				t.Fatalf("instrumented scheduler saw only %d removals for %d tasks", m.Removals, n)
			}
			if m.MeanRank > tc.meanCap {
				t.Fatalf("mean rank %.1f too large for %d queues at batch %d", m.MeanRank, queues, tc.batch)
			}
			if m.MaxRank > tc.maxShare {
				t.Fatalf("max rank %d is a large fraction of n=%d", m.MaxRank, n)
			}
			if m.MeanInversions > float64(32*queues+8*tc.batch) {
				t.Fatalf("mean inversions %.1f too large for %d queues at batch %d", m.MeanInversions, queues, tc.batch)
			}
		})
	}
}

func TestTheoremScalingShapes(t *testing.T) {
	// A coarse end-to-end restatement of the two theorem-validation
	// experiments in EXPERIMENTS.md: MIS overhead does not scale with n
	// (Theorem 2) while generic-framework overhead grows with density
	// (Theorem 1).
	if testing.Short() {
		t.Skip("scaling test is slow")
	}
	misExtra := func(n int) float64 {
		r := rng.New(uint64(n))
		g, err := graph.GNM(n, int64(10*n), r)
		if err != nil {
			t.Fatal(err)
		}
		labels := core.RandomLabels(n, r)
		total := 0.0
		const trials = 3
		for trial := 0; trial < trials; trial++ {
			_, res, err := mis.RunRelaxed(g, labels, multiqueue.NewSequential(16, n, rng.New(uint64(trial))))
			if err != nil {
				t.Fatal(err)
			}
			total += float64(res.ExtraIterations())
		}
		return total / trials
	}
	small := misExtra(1000)
	large := misExtra(32000)
	if large > 10*(small+30) {
		t.Fatalf("Theorem 2 shape violated: extra iterations grew from %.1f (n=1000) to %.1f (n=32000)", small, large)
	}

	coloringExtra := func(m int64) float64 {
		r := rng.New(uint64(m))
		const n = 1500
		g, err := graph.GNM(n, m, r)
		if err != nil {
			t.Fatal(err)
		}
		labels := core.RandomLabels(n, r)
		_, res, err := coloring.RunRelaxed(g, labels, multiqueue.NewSequential(16, n, r.Fork()))
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.ExtraIterations())
	}
	sparse := coloringExtra(1500)
	dense := coloringExtra(60000)
	if dense < 3*sparse {
		t.Fatalf("Theorem 1 shape violated: extra iterations did not grow with density (%.1f at m=n vs %.1f at m=40n)", sparse, dense)
	}
}

func TestNonGraphWorkloadsEndToEnd(t *testing.T) {
	// List contraction and Knuth shuffle through every scheduler family and
	// the concurrent executor.
	r := rng.New(2020)
	const n = 800
	lcProblem := listcontract.NewRandomList(n, r)
	lcLabels := core.RandomLabels(n, r)
	wantPrev, wantNext := listcontract.Sequential(lcProblem, lcLabels)

	targets := shuffle.RandomTargets(n, r)
	wantPerm := shuffle.Sequential(targets)

	for name, s := range sequentialSchedulers(8, n, 55) {
		gotPrev, gotNext, _, err := listcontract.RunRelaxed(lcProblem, lcLabels, s)
		if err != nil {
			t.Fatalf("listcontract/%s: %v", name, err)
		}
		if !listcontract.Equal(gotPrev, gotNext, wantPrev, wantNext) {
			t.Fatalf("listcontract/%s: output differs", name)
		}
	}
	for name, s := range sequentialSchedulers(8, n, 56) {
		gotPerm, _, err := shuffle.RunRelaxed(targets, s)
		if err != nil {
			t.Fatalf("shuffle/%s: %v", name, err)
		}
		if !shuffle.Equal(gotPerm, wantPerm) {
			t.Fatalf("shuffle/%s: output differs", name)
		}
	}

	mq := multiqueue.NewConcurrent(8, n, 3)
	gotPrev, gotNext, _, err := listcontract.RunConcurrent(lcProblem, lcLabels, mq, core.ConcurrentOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !listcontract.Equal(gotPrev, gotNext, wantPrev, wantNext) {
		t.Fatal("concurrent list contraction differs from sequential")
	}
	gotPerm, _, err := shuffle.RunConcurrent(targets, faaqueue.New(n), core.ConcurrentOptions{Workers: 4, BlockedPolicy: core.Wait})
	if err != nil {
		t.Fatal(err)
	}
	if !shuffle.Equal(gotPerm, wantPerm) {
		t.Fatal("concurrent shuffle differs from sequential")
	}
}

func TestRepeatedConcurrentRunsAreStable(t *testing.T) {
	// The same configuration run many times must always give the same
	// answer — a regression net for subtle scheduling races.
	r := rng.New(404)
	const n = 900
	g, err := graph.GNM(n, 5400, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(n, r)
	want := mis.Sequential(g, labels)
	for i := 0; i < 10; i++ {
		mq := multiqueue.NewConcurrent(8, n, uint64(i))
		got, _, err := mis.RunConcurrent(g, labels, mq, core.ConcurrentOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !mis.Equal(got, want) {
			t.Fatalf("run %d differs from sequential MIS", i)
		}
	}
}

func TestLabelsReuseAcrossAlgorithmsIsIndependent(t *testing.T) {
	// Sanity check that algorithms do not mutate shared inputs: running MIS
	// must not change the labels or the graph used afterwards by coloring.
	r := rng.New(606)
	const n = 500
	g, err := graph.GNM(n, 2500, r)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.RandomLabels(n, r)
	labelsCopy := append([]uint32(nil), labels...)

	if _, _, err := mis.RunRelaxed(g, labels, topk.New(8, n, r.Fork())); err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if labels[i] != labelsCopy[i] {
			t.Fatal("MIS execution mutated the shared label slice")
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("MIS execution corrupted the graph: %v", err)
	}
	colors := coloring.Sequential(g, labels)
	if err := coloring.Verify(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestVerifiersRejectCrossAlgorithmOutputs(t *testing.T) {
	// Feeding one algorithm's output into another's verifier must fail —
	// guards against verifiers that accept anything.
	g := graph.Complete(6)
	labels := core.IdentityLabels(6)
	inSet := mis.Sequential(g, labels)
	asColors := make([]int32, len(inSet))
	for i, in := range inSet {
		if in {
			asColors[i] = 0
		} else {
			asColors[i] = 0 // deliberately improper: clique needs 6 colors
		}
	}
	if err := coloring.Verify(g, asColors); err == nil {
		t.Fatal("coloring verifier accepted a constant coloring of a clique")
	}
}

func TestTinyDeterministicEndToEnd(t *testing.T) {
	// A tiny fully deterministic end-to-end run with a known answer,
	// doubling as an example of the API surface.
	g := graph.Path(5)
	labels := core.IdentityLabels(5)
	set, res, err := mis.RunRelaxed(g, labels, topk.New(2, 5, rng.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(set, res.Processed); got != "[true false true false true] 3" {
		t.Fatalf("unexpected result %q", got)
	}
}
