package metricsexport

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler is the -debug-addr surface: net/http/pprof under
// /debug/pprof/ and the expvar dump at /debug/vars. The daemons serve it
// on its own listener, never on the public API port — profiles expose
// memory contents and a profile run costs real CPU, so the listener
// should bind a loopback or otherwise firewalled address.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
