package metricsexport

import (
	"math"
	"sync"

	"relaxsched/internal/api"
)

// Latency histogram buckets: power-of-two (HDR-style) upper bounds in
// seconds, from 0.25 ms doubling up to ~262 s, plus the implicit +Inf
// overflow bucket. Logarithmic buckets hold the relative quantile error
// to a factor of two at every scale, which is the right trade for a
// distribution spanning sub-millisecond cache hits and multi-minute
// million-vertex builds. Every node of a release shares these bounds, so
// the gateway's cluster aggregation is a lossless bucket-wise sum.
const (
	minBucketSec = 0.00025
	numBounds    = 21
)

// bucketBoundsMs are the wire-form (millisecond) bounds, built once.
var bucketBoundsMs = func() []float64 {
	bounds := make([]float64, numBounds)
	b := minBucketSec
	for i := range bounds {
		bounds[i] = b * 1000
		b *= 2
	}
	return bounds
}()

// Histogram is a concurrency-safe log-bucketed latency histogram, the
// live accumulator behind the api.LatencyHistogram wire type. The zero
// value is not usable; construct with NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	counts [numBounds + 1]int64
	sumSec float64
}

// NewHistogram returns an empty histogram on the package's shared
// power-of-two bounds.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Observe records one latency in seconds. Negative observations clamp to
// zero (they land in the first bucket) rather than corrupting the sum.
func (h *Histogram) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	idx := 0
	for b := minBucketSec; idx < numBounds && seconds > b; idx++ {
		b *= 2
	}
	h.mu.Lock()
	h.counts[idx]++
	h.sumSec += seconds
	h.mu.Unlock()
}

// Snapshot returns the histogram's current state in wire form.
func (h *Histogram) Snapshot() *api.LatencyHistogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return &api.LatencyHistogram{
		BoundsMs: bucketBoundsMs,
		Counts:   append([]int64(nil), h.counts[:]...),
		SumMs:    h.sumSec * 1000,
	}
}

// HistogramCount returns the total number of observations in a wire
// histogram (nil counts as empty).
func HistogramCount(h *api.LatencyHistogram) int64 {
	if h == nil {
		return 0
	}
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// HistogramQuantile returns the q-quantile (0 < q ≤ 1) of a wire
// histogram in milliseconds, resolved to the upper bound of the bucket
// the quantile falls in — the same "within one bucket" resolution the
// exposition gives any Prometheus consumer. An empty or nil histogram
// returns 0; a quantile landing in the +Inf overflow bucket returns +Inf.
func HistogramQuantile(h *api.LatencyHistogram, q float64) float64 {
	total := HistogramCount(h)
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.BoundsMs) {
				return h.BoundsMs[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// MergeHistograms adds src into dst bucket-wise and returns dst. A nil
// dst starts from a copy of src; a nil src is a no-op. Histograms with
// different bounds (a version-skewed backend) cannot be merged — src is
// dropped rather than summed into the wrong buckets.
func MergeHistograms(dst, src *api.LatencyHistogram) *api.LatencyHistogram {
	if src == nil {
		return dst
	}
	if dst == nil {
		return &api.LatencyHistogram{
			BoundsMs: append([]float64(nil), src.BoundsMs...),
			Counts:   append([]int64(nil), src.Counts...),
			SumMs:    src.SumMs,
		}
	}
	if len(dst.BoundsMs) != len(src.BoundsMs) || len(dst.Counts) != len(src.Counts) {
		return dst
	}
	for i := range dst.BoundsMs {
		if dst.BoundsMs[i] != src.BoundsMs[i] {
			return dst
		}
	}
	for i, c := range src.Counts {
		dst.Counts[i] += c
	}
	dst.SumMs += src.SumMs
	return dst
}
