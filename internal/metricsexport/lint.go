package metricsexport

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Lint semantics, shared by the exposition table test and the CI smoke
// scrape: a scrape body passes when every family is declared with HELP
// and TYPE before its samples, names match the conservative
// ^[a-z_][a-z0-9_]*$ charset, every sample value parses, and every
// histogram series has strictly increasing le bounds, cumulative
// (non-decreasing) bucket values, a final le="+Inf" bucket, and a _count
// equal to it.

var (
	lintNameRE   = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
	lintSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (\S+)$`)
	lintLeRE     = regexp.MustCompile(`(?:^|,)le="([^"]*)"`)
	lintTypes    = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
)

// bucketSeries accumulates one histogram series' buckets in emission
// order for the end-of-scrape cumulativity checks.
type bucketSeries struct {
	les    []float64
	counts []float64
}

// Lint validates a Prometheus text-exposition body and returns the first
// violation found, or nil for a clean scrape.
func Lint(body []byte) error {
	help := map[string]bool{}
	typ := map[string]string{}
	sampled := map[string]bool{}
	buckets := map[string]*bucketSeries{}
	counts := map[string]float64{}

	for i, line := range strings.Split(string(body), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !lintNameRE.MatchString(name) {
				return fmt.Errorf("line %d: metric name %q outside ^[a-z_][a-z0-9_]*$", lineNo, name)
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					return fmt.Errorf("line %d: empty HELP for %s", lineNo, name)
				}
				if help[name] {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				help[name] = true
			case "TYPE":
				if len(fields) < 4 || !lintTypes[fields[3]] {
					return fmt.Errorf("line %d: invalid TYPE for %s", lineNo, line)
				}
				if _, dup := typ[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %s after its first sample", lineNo, name)
				}
				typ[name] = fields[3]
			}
			continue
		}

		m := lintSampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: unparsable sample line %q", lineNo, line)
		}
		name, labels, valueStr := m[1], m[2], m[3]
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: unparsable value %q: %v", lineNo, valueStr, err)
		}
		family, suffix := familyOf(name, typ)
		if !lintNameRE.MatchString(family) {
			return fmt.Errorf("line %d: metric name %q outside ^[a-z_][a-z0-9_]*$", lineNo, family)
		}
		if !help[family] || typ[family] == "" {
			return fmt.Errorf("line %d: sample %s without prior HELP+TYPE for family %s", lineNo, name, family)
		}
		sampled[family] = true

		if typ[family] == "histogram" {
			key := family + "|" + lintLeRE.ReplaceAllString(labels, "")
			switch suffix {
			case "_bucket":
				le := lintLeRE.FindStringSubmatch(labels)
				if le == nil {
					return fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, name)
				}
				bound, err := strconv.ParseFloat(le[1], 64)
				if err != nil {
					return fmt.Errorf("line %d: unparsable le %q: %v", lineNo, le[1], err)
				}
				s := buckets[key]
				if s == nil {
					s = &bucketSeries{}
					buckets[key] = s
				}
				s.les = append(s.les, bound)
				s.counts = append(s.counts, value)
			case "_count":
				counts[key] = value
			}
		}
	}

	for key, s := range buckets {
		for i := 1; i < len(s.les); i++ {
			if s.les[i] <= s.les[i-1] {
				return fmt.Errorf("histogram %s: le bounds not increasing (%v after %v)", key, s.les[i], s.les[i-1])
			}
			if s.counts[i] < s.counts[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative (%v after %v at le=%v)", key, s.counts[i], s.counts[i-1], s.les[i])
			}
		}
		if len(s.les) == 0 || !math.IsInf(s.les[len(s.les)-1], 1) {
			return fmt.Errorf("histogram %s: bucket series does not end in le=\"+Inf\"", key)
		}
		if c, ok := counts[key]; ok && c != s.counts[len(s.counts)-1] {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", key, c, s.counts[len(s.counts)-1])
		}
	}
	return nil
}

// familyOf strips the conventional _bucket/_sum/_count suffix off a
// histogram or summary series name to recover its declared family.
func familyOf(name string, typ map[string]string) (family, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if t := typ[base]; t == "histogram" || t == "summary" {
			return base, suf
		}
	}
	return name, ""
}
