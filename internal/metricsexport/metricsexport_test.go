package metricsexport

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"testing"

	"relaxsched/internal/api"
)

func sampleMetrics() *api.Metrics {
	qh := NewHistogram()
	eh := NewHistogram()
	for i := 0; i < 100; i++ {
		qh.Observe(float64(i) * 0.001)
		eh.Observe(float64(i) * 0.01)
	}
	return &api.Metrics{
		UptimeSeconds: 12.5,
		JobSched:      "kbounded",
		JobSchedK:     16,
		Workers:       4,
		QueueCapacity: 256,
		Jobs:          api.JobCounts{Submitted: 10, Queued: 1, Running: 2, Done: 6, Failed: 1, Rejected: 3},
		Cache:         api.CacheStats{Entries: 2, Capacity: 8, Hits: 5, Misses: 3, Evictions: 1},
		Cost:          api.CostTotals{Pops: 1000, StalePops: 10, Wasted: 20, Steals: 7, GlobalFallbacks: 2, EmptyPolls: 40},
		RankError:     api.RankErrorStats{Count: 9, Mean: 0.5, Max: 3},
		QueueLatency:  api.LatencySummary{Count: 9, MeanMs: 1.5, P50Ms: 1, P95Ms: 4, P99Ms: 6, MaxMs: 7},
		ExecLatency:   api.LatencySummary{Count: 9, MeanMs: 20, P50Ms: 18, P95Ms: 60, P99Ms: 80, MaxMs: 90},
		Controller: &api.ControllerStats{
			Enabled: true, K: 16, Batch: 32, RankSLO: 2, P99SLOMs: 500,
			Steps: 12, Widened: 3, Tightened: 1, RankViolations: 2, P99Violations: 1,
		},
		WAL: &api.WALStats{
			Appends: 20, Fsyncs: 8, ReplayedJobs: 1, Segments: 2, Compacted: 1, Bytes: 4096, TornTail: true,
		},
		QueueLatencyHist: qh.Snapshot(),
		ExecLatencyHist:  eh.Snapshot(),
	}
}

// TestRenderNodeExposition is the parser-style table test over a node
// scrape: the shared Lint accepts it, and spot-checked families from
// every section (scheduler cost, cache, WAL, controller, rank error,
// histograms) are present exactly once with HELP and TYPE.
func TestRenderNodeExposition(t *testing.T) {
	body := Render(sampleMetrics())
	if err := Lint(body); err != nil {
		t.Fatalf("Lint rejected node exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, family := range []string{
		"relax_uptime_seconds",
		"relax_jobs_submitted_total",
		"relax_jobs_rejected_total",
		"relax_cache_hits_total",
		"relax_sched_pops_total",
		"relax_sched_steals_total",
		"relax_sched_global_fallbacks_total",
		"relax_rank_error_mean",
		"relax_queue_latency_ring_p99_seconds",
		"relax_controller_k",
		"relax_controller_rank_violations_total",
		"relax_wal_fsyncs_total",
		"relax_queue_latency_seconds",
		"relax_exec_latency_seconds",
	} {
		if got := strings.Count(text, "# HELP "+family+" "); got != 1 {
			t.Errorf("family %s: %d HELP lines, want 1", family, got)
		}
		if got := strings.Count(text, "# TYPE "+family+" "); got != 1 {
			t.Errorf("family %s: %d TYPE lines, want 1", family, got)
		}
	}
	if !strings.Contains(text, `relax_queue_latency_seconds_bucket{le="+Inf"} 100`) {
		t.Errorf("missing +Inf bucket with full count:\n%s", text)
	}
	if !strings.Contains(text, "relax_queue_latency_seconds_count 100") {
		t.Errorf("missing histogram _count")
	}
}

// TestRenderOmitsAbsentSections: a node without controller, WAL or
// histograms must not emit those families at all (no zero-filled fakes).
func TestRenderOmitsAbsentSections(t *testing.T) {
	m := sampleMetrics()
	m.Controller = nil
	m.WAL = nil
	m.QueueLatencyHist = nil
	m.ExecLatencyHist = nil
	body := Render(m)
	if err := Lint(body); err != nil {
		t.Fatalf("Lint rejected exposition: %v", err)
	}
	for _, absent := range []string{"relax_controller_", "relax_wal_", "relax_queue_latency_seconds_bucket"} {
		if strings.Contains(string(body), absent) {
			t.Errorf("family %s emitted for a node without the section", absent)
		}
	}
}

// TestRenderClusterExposition checks the gateway scrape: lints clean,
// carries a distinct backend label per reachable backend, emits
// gateway-own families, and never emits an unlabeled node sample that
// would double-count the labeled ones.
func TestRenderClusterExposition(t *testing.T) {
	m1, m2 := sampleMetrics(), sampleMetrics()
	m2.Controller = nil // heterogeneous fleet: only one backend runs -jobsched auto
	cm := &api.ClusterMetrics{
		Metrics:         api.Metrics{UptimeSeconds: 99, RankError: api.RankErrorStats{Count: 18, Mean: 0.4, Max: 3}},
		HealthyBackends: 2,
		Backends: []api.BackendMetrics{
			{URL: "http://b1:8081", Healthy: true, Metrics: m1},
			{URL: "http://b2:8082", Healthy: true, Metrics: m2},
			{URL: "http://b3:8083", Healthy: false, Error: "dial refused"},
		},
	}
	body := RenderCluster(cm)
	if err := Lint(body); err != nil {
		t.Fatalf("Lint rejected cluster exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		`relax_gateway_healthy_backends 2`,
		`relax_gateway_backend_up{backend="http://b1:8081"} 1`,
		`relax_gateway_backend_up{backend="http://b3:8083"} 0`,
		`relax_jobs_submitted_total{backend="http://b1:8081"} 10`,
		`relax_jobs_submitted_total{backend="http://b2:8082"} 10`,
		`relax_queue_latency_seconds_count{backend="http://b2:8082"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("cluster exposition missing %q", want)
		}
	}
	// The controller family must carry only the backend that has one.
	if strings.Contains(text, `relax_controller_k{backend="http://b2:8082"}`) {
		t.Error("controller family rendered for a backend without a controller")
	}
	if !strings.Contains(text, `relax_controller_k{backend="http://b1:8081"}`) {
		t.Error("controller family missing for the backend that has one")
	}
	// No unlabeled node samples: every relax_ (non-gateway) sample line
	// must carry a backend label.
	unlabeled := regexp.MustCompile(`(?m)^relax_(?:[a-z0-9_]+) `)
	for _, line := range unlabeled.FindAllString(text, -1) {
		if !strings.HasPrefix(line, "relax_gateway_") {
			t.Errorf("unlabeled node sample in cluster exposition: %q", line)
		}
	}
	// The unreachable backend contributes no node samples.
	if strings.Contains(text, `backend="http://b3:8083"} `) && strings.Contains(text, `relax_jobs_submitted_total{backend="http://b3:8083"}`) {
		t.Error("unreachable backend contributed node samples")
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without HELP/TYPE": "relax_x 1\n",
		"bad family name":          "# HELP relax_Bad x\n# TYPE relax_Bad gauge\nrelax_Bad 1\n",
		"bad TYPE value":           "# HELP relax_x x\n# TYPE relax_x histo\nrelax_x 1\n",
		"TYPE after sample":        "# HELP relax_x x\nrelax_x 1\n# TYPE relax_x gauge\n",
		"unparsable value":         "# HELP relax_x x\n# TYPE relax_x gauge\nrelax_x one\n",
		"non-cumulative buckets": "# HELP relax_h x\n# TYPE relax_h histogram\n" +
			"relax_h_bucket{le=\"1\"} 5\nrelax_h_bucket{le=\"2\"} 3\nrelax_h_bucket{le=\"+Inf\"} 5\n",
		"no +Inf bucket": "# HELP relax_h x\n# TYPE relax_h histogram\n" +
			"relax_h_bucket{le=\"1\"} 5\nrelax_h_bucket{le=\"2\"} 6\n",
		"count mismatch": "# HELP relax_h x\n# TYPE relax_h histogram\n" +
			"relax_h_bucket{le=\"+Inf\"} 5\nrelax_h_count 4\n",
		"decreasing le": "# HELP relax_h x\n# TYPE relax_h histogram\n" +
			"relax_h_bucket{le=\"2\"} 5\nrelax_h_bucket{le=\"1\"} 6\nrelax_h_bucket{le=\"+Inf\"} 6\n",
	}
	for name, body := range cases {
		if err := Lint([]byte(body)); err == nil {
			t.Errorf("Lint accepted %s:\n%s", name, body)
		}
	}
	if err := Lint([]byte("")); err != nil {
		t.Errorf("Lint rejected empty body: %v", err)
	}
}

func TestHistogramSnapshotAndMerge(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.0001) // first bucket (≤ 0.25 ms)
	h.Observe(0.0003) // second bucket
	h.Observe(1000)   // overflow
	h.Observe(-1)     // clamps to first bucket
	snap := h.Snapshot()
	if got := HistogramCount(snap); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if snap.Counts[0] != 2 || snap.Counts[1] != 1 || snap.Counts[len(snap.Counts)-1] != 1 {
		t.Fatalf("bucket spread = %v", snap.Counts)
	}
	if want := (0.0001 + 0.0003 + 1000) * 1000; math.Abs(snap.SumMs-want) > 1e-6 {
		t.Fatalf("SumMs = %v, want %v", snap.SumMs, want)
	}

	merged := MergeHistograms(nil, snap)
	merged = MergeHistograms(merged, snap)
	if got := HistogramCount(merged); got != 8 {
		t.Fatalf("merged count = %d, want 8", got)
	}
	// Merging must not have aliased or mutated the source.
	if got := HistogramCount(snap); got != 4 {
		t.Fatalf("source histogram mutated by merge: count = %d", got)
	}
	// Bounds mismatch: src dropped, dst unchanged.
	skewed := &api.LatencyHistogram{BoundsMs: []float64{1}, Counts: []int64{1, 1}, SumMs: 2}
	if got := HistogramCount(MergeHistograms(merged, skewed)); got != 8 {
		t.Fatalf("version-skewed merge changed dst: count = %d", got)
	}
}

// TestHistogramQuantileWithinOneBucket is the acceptance bound: against
// an exact percentile over the raw samples, the histogram-derived p99
// must land in the same or an adjacent bucket.
func TestHistogramQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var samples []float64
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~0.3 ms .. 5 s, the service's realistic span.
		v := math.Exp(rng.Float64()*math.Log(16000)) * 0.0003
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	exactP99 := samples[int(math.Ceil(0.99*float64(len(samples))))-1] * 1000 // ms
	got := HistogramQuantile(h.Snapshot(), 0.99)
	bucketOf := func(ms float64) int {
		for i, b := range bucketBoundsMs {
			if ms <= b {
				return i
			}
		}
		return len(bucketBoundsMs)
	}
	if d := bucketOf(got) - bucketOf(exactP99); d < -1 || d > 1 {
		t.Fatalf("histogram p99 %v ms in bucket %d, exact p99 %v ms in bucket %d — more than one bucket apart",
			got, bucketOf(got), exactP99, bucketOf(exactP99))
	}
	if HistogramQuantile(nil, 0.99) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
}

func TestDebugHandler(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	for path, wantType := range map[string]string{
		"/debug/vars":   "application/json",
		"/debug/pprof/": "text/html",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, wantType) {
			t.Errorf("GET %s content-type = %q, want %q", path, ct, wantType)
		}
	}
}
