// Package metricsexport turns the service's JSON metrics snapshots into
// Prometheus text exposition, dependency-free: the live log-bucketed
// latency Histogram and its api.LatencyHistogram wire form, the
// /v1/metrics/prom renderers for a single node (Render) and a gateway's
// per-backend cluster view (RenderCluster), a Lint checker the tests and
// CI smoke share to reject malformed exposition, and the -debug-addr
// pprof/expvar handler (DebugHandler).
//
// Naming follows the Prometheus conventions: every family is prefixed
// relax_ (gateway-level families relax_gateway_), counters end in _total,
// durations are in seconds, and each family carries HELP and TYPE lines.
// A gateway scrape renders node families once per reachable backend with
// a backend="<url>" label and no unlabeled aggregate, so a sum() over
// backends never double-counts.
package metricsexport

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"

	"relaxsched/internal/api"
)

// ContentType is the Content-Type header value of the Prometheus text
// exposition format the renderers emit.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// numFamily is one numeric metric family: how it is declared and where
// its value sits in a node's Metrics snapshot. get returns ok=false when
// the node does not expose the section (no controller, no WAL), which
// drops the sample — and, if no node has one, the family.
type numFamily struct {
	name string
	typ  string // "gauge" or "counter"
	help string
	get  func(m *api.Metrics) (float64, bool)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ctrl lifts a controller-section field, absent without -jobsched auto.
func ctrl(f func(c *api.ControllerStats) float64) func(*api.Metrics) (float64, bool) {
	return func(m *api.Metrics) (float64, bool) {
		if m.Controller == nil {
			return 0, false
		}
		return f(m.Controller), true
	}
}

// wal lifts a WAL-section field, absent without -wal-dir.
func wal(f func(w *api.WALStats) float64) func(*api.Metrics) (float64, bool) {
	return func(m *api.Metrics) (float64, bool) {
		if m.WAL == nil {
			return 0, false
		}
		return f(m.WAL), true
	}
}

func always(f func(m *api.Metrics) float64) func(*api.Metrics) (float64, bool) {
	return func(m *api.Metrics) (float64, bool) { return f(m), true }
}

// ring declares the six exposition families of one ring-windowed
// LatencySummary (count/mean/max exact over the lifetime, percentiles
// over the ring window — see api.LatencySummary).
func ring(prefix, what string, get func(m *api.Metrics) api.LatencySummary) []numFamily {
	g := func(f func(s api.LatencySummary) float64) func(*api.Metrics) (float64, bool) {
		return always(func(m *api.Metrics) float64 { return f(get(m)) })
	}
	return []numFamily{
		{prefix + "_ring_count_total", "counter", "Samples of " + what + " observed over the service lifetime.",
			g(func(s api.LatencySummary) float64 { return float64(s.Count) })},
		{prefix + "_ring_mean_seconds", "gauge", "Lifetime mean " + what + ".",
			g(func(s api.LatencySummary) float64 { return s.MeanMs / 1000 })},
		{prefix + "_ring_p50_seconds", "gauge", "p50 " + what + " over the recent-sample ring window.",
			g(func(s api.LatencySummary) float64 { return s.P50Ms / 1000 })},
		{prefix + "_ring_p95_seconds", "gauge", "p95 " + what + " over the recent-sample ring window.",
			g(func(s api.LatencySummary) float64 { return s.P95Ms / 1000 })},
		{prefix + "_ring_p99_seconds", "gauge", "p99 " + what + " over the recent-sample ring window.",
			g(func(s api.LatencySummary) float64 { return s.P99Ms / 1000 })},
		{prefix + "_ring_max_seconds", "gauge", "Lifetime maximum " + what + ".",
			g(func(s api.LatencySummary) float64 { return s.MaxMs / 1000 })},
	}
}

// nodeFamilies is every numeric family a node snapshot exposes, in
// exposition order.
var nodeFamilies = func() []numFamily {
	fams := []numFamily{
		{"relax_uptime_seconds", "gauge", "Time since the service started.",
			always(func(m *api.Metrics) float64 { return m.UptimeSeconds })},
		{"relax_workers", "gauge", "Size of the job worker pool.",
			always(func(m *api.Metrics) float64 { return float64(m.Workers) })},
		{"relax_queue_capacity", "gauge", "Admission bound of the pending-job queue.",
			always(func(m *api.Metrics) float64 { return float64(m.QueueCapacity) })},
		{"relax_job_sched_k", "gauge", "Relaxation factor of the pending-job scheduler (0 when not k-bounded).",
			always(func(m *api.Metrics) float64 { return float64(m.JobSchedK) })},
		{"relax_draining", "gauge", "1 when the service has stopped admitting jobs.",
			always(func(m *api.Metrics) float64 { return b2f(m.Draining) })},
		{"relax_jobs_queued", "gauge", "Jobs currently pending dispatch.",
			always(func(m *api.Metrics) float64 { return float64(m.Jobs.Queued) })},
		{"relax_jobs_running", "gauge", "Jobs currently executing.",
			always(func(m *api.Metrics) float64 { return float64(m.Jobs.Running) })},
		{"relax_jobs_submitted_total", "counter", "Jobs accepted by admission control.",
			always(func(m *api.Metrics) float64 { return float64(m.Jobs.Submitted) })},
		{"relax_jobs_done_total", "counter", "Jobs finished successfully.",
			always(func(m *api.Metrics) float64 { return float64(m.Jobs.Done) })},
		{"relax_jobs_failed_total", "counter", "Jobs whose execution or verification failed.",
			always(func(m *api.Metrics) float64 { return float64(m.Jobs.Failed) })},
		{"relax_jobs_canceled_total", "counter", "Jobs aborted by a forced shutdown.",
			always(func(m *api.Metrics) float64 { return float64(m.Jobs.Canceled) })},
		{"relax_jobs_rejected_total", "counter", "Submissions refused by admission control (queue full or draining).",
			always(func(m *api.Metrics) float64 { return float64(m.Jobs.Rejected) })},
		{"relax_cache_entries", "gauge", "Graphs currently resident in the graph cache.",
			always(func(m *api.Metrics) float64 { return float64(m.Cache.Entries) })},
		{"relax_cache_capacity", "gauge", "Entry bound of the graph cache.",
			always(func(m *api.Metrics) float64 { return float64(m.Cache.Capacity) })},
		{"relax_cache_hits_total", "counter", "Graph-cache lookups served by an existing or in-flight entry.",
			always(func(m *api.Metrics) float64 { return float64(m.Cache.Hits) })},
		{"relax_cache_misses_total", "counter", "Graph-cache lookups that initiated a CSR build.",
			always(func(m *api.Metrics) float64 { return float64(m.Cache.Misses) })},
		{"relax_cache_evictions_total", "counter", "Graph-cache entries displaced by the LRU bound.",
			always(func(m *api.Metrics) float64 { return float64(m.Cache.Evictions) })},
		{"relax_sched_pops_total", "counter", "Scheduler pops across all finished jobs (workload work accounting).",
			always(func(m *api.Metrics) float64 { return float64(m.Cost.Pops) })},
		{"relax_sched_stale_pops_total", "counter", "Stale scheduler pops across all finished jobs.",
			always(func(m *api.Metrics) float64 { return float64(m.Cost.StalePops) })},
		{"relax_sched_wasted_total", "counter", "Wasted work units across all finished jobs (per-workload metric, see /v1/workloads).",
			always(func(m *api.Metrics) float64 { return float64(m.Cost.Wasted) })},
		{"relax_sched_steals_total", "counter", "Concurrent-scheduler pops served from another worker's lane.",
			always(func(m *api.Metrics) float64 { return float64(m.Cost.Steals) })},
		{"relax_sched_global_fallbacks_total", "counter", "Concurrent-scheduler pops that fell through to a global scan.",
			always(func(m *api.Metrics) float64 { return float64(m.Cost.GlobalFallbacks) })},
		{"relax_sched_empty_polls_total", "counter", "Concurrent-scheduler polls that found every probed lane empty.",
			always(func(m *api.Metrics) float64 { return float64(m.Cost.EmptyPolls) })},
		{"relax_rank_error_jobs_total", "counter", "Jobs whose dispatch rank error was measured.",
			always(func(m *api.Metrics) float64 { return float64(m.RankError.Count) })},
		{"relax_rank_error_mean", "gauge", "Mean per-dispatch scheduling rank error (0 = exact priority order).",
			always(func(m *api.Metrics) float64 { return m.RankError.Mean })},
		{"relax_rank_error_max", "gauge", "Maximum observed per-dispatch scheduling rank error.",
			always(func(m *api.Metrics) float64 { return float64(m.RankError.Max) })},
	}
	fams = append(fams, ring("relax_queue_latency", "submit-to-dispatch latency",
		func(m *api.Metrics) api.LatencySummary { return m.QueueLatency })...)
	fams = append(fams, ring("relax_exec_latency", "job execution latency",
		func(m *api.Metrics) api.LatencySummary { return m.ExecLatency })...)
	fams = append(fams, []numFamily{
		{"relax_controller_enabled", "gauge", "1 when the adaptive relaxation controller (-jobsched auto) is active.",
			ctrl(func(c *api.ControllerStats) float64 { return b2f(c.Enabled) })},
		{"relax_controller_k", "gauge", "Job-queue relaxation currently in force by the controller.",
			ctrl(func(c *api.ControllerStats) float64 { return float64(c.K) })},
		{"relax_controller_batch", "gauge", "Executor batch-size target currently in force by the controller.",
			ctrl(func(c *api.ControllerStats) float64 { return float64(c.Batch) })},
		{"relax_controller_rank_slo", "gauge", "Operator mean-rank-error SLO target.",
			ctrl(func(c *api.ControllerStats) float64 { return c.RankSLO })},
		{"relax_controller_p99_slo_seconds", "gauge", "Operator queue-latency p99 SLO target.",
			ctrl(func(c *api.ControllerStats) float64 { return c.P99SLOMs / 1000 })},
		{"relax_controller_steps_total", "counter", "Control windows evaluated.",
			ctrl(func(c *api.ControllerStats) float64 { return float64(c.Steps) })},
		{"relax_controller_widened_total", "counter", "Control windows that widened a knob.",
			ctrl(func(c *api.ControllerStats) float64 { return float64(c.Widened) })},
		{"relax_controller_tightened_total", "counter", "Control windows that tightened a knob.",
			ctrl(func(c *api.ControllerStats) float64 { return float64(c.Tightened) })},
		{"relax_controller_rank_violations_total", "counter", "Control windows whose sample breached the rank SLO.",
			ctrl(func(c *api.ControllerStats) float64 { return float64(c.RankViolations) })},
		{"relax_controller_p99_violations_total", "counter", "Control windows whose sample breached the p99 SLO.",
			ctrl(func(c *api.ControllerStats) float64 { return float64(c.P99Violations) })},
		{"relax_wal_appends_total", "counter", "Write-ahead log records appended (acceptances plus terminal marks).",
			wal(func(w *api.WALStats) float64 { return float64(w.Appends) })},
		{"relax_wal_fsyncs_total", "counter", "Write-ahead log fsyncs issued (group commit keeps this under appends).",
			wal(func(w *api.WALStats) float64 { return float64(w.Fsyncs) })},
		{"relax_wal_replayed_jobs", "gauge", "Accepted-but-unfinished jobs re-enqueued from the log at the last boot.",
			wal(func(w *api.WALStats) float64 { return float64(w.ReplayedJobs) })},
		{"relax_wal_segments", "gauge", "Live write-ahead log segments.",
			wal(func(w *api.WALStats) float64 { return float64(w.Segments) })},
		{"relax_wal_compacted_total", "counter", "Write-ahead log segments deleted by compaction since boot.",
			wal(func(w *api.WALStats) float64 { return float64(w.Compacted) })},
		{"relax_wal_bytes_total", "counter", "Bytes appended to the write-ahead log since boot.",
			wal(func(w *api.WALStats) float64 { return float64(w.Bytes) })},
		{"relax_wal_torn_tail", "gauge", "1 when the last boot's replay stopped at a torn record.",
			wal(func(w *api.WALStats) float64 { return b2f(w.TornTail) })},
	}...)
	return fams
}()

// histFamily is one histogram family and where its wire snapshot sits in
// a node's Metrics.
type histFamily struct {
	name string
	help string
	get  func(m *api.Metrics) *api.LatencyHistogram
}

var histFamilies = []histFamily{
	{"relax_queue_latency_seconds", "Submit-to-dispatch latency (log-bucketed, lifetime).",
		func(m *api.Metrics) *api.LatencyHistogram { return m.QueueLatencyHist }},
	{"relax_exec_latency_seconds", "Job execution latency (log-bucketed, lifetime).",
		func(m *api.Metrics) *api.LatencyHistogram { return m.ExecLatencyHist }},
}

// labeledMetrics is one node snapshot plus the label set its samples
// carry (empty on a node's own scrape, backend="url" at the gateway).
type labeledMetrics struct {
	labels string
	m      *api.Metrics
}

// Render produces a single node's /v1/metrics/prom body.
func Render(m *api.Metrics) []byte {
	w := &promWriter{}
	renderNodes(w, []labeledMetrics{{m: m}})
	return w.buf.Bytes()
}

// RenderCluster produces a gateway's /v1/metrics/prom body: the gateway's
// own families (uptime, drain state, backend health, the gateway-measured
// global rank error) unlabeled, then every node family once per reachable
// backend under a distinct backend="<url>" label. There is deliberately
// no unlabeled cluster aggregate of the node families — sum() or avg()
// over the backend label is the consumer's choice, and an aggregate
// alongside the labeled samples would double-count it.
func RenderCluster(cm *api.ClusterMetrics) []byte {
	w := &promWriter{}
	w.family("relax_gateway_uptime_seconds", "gauge", "Time since the gateway started.")
	w.sample("relax_gateway_uptime_seconds", "", cm.UptimeSeconds)
	w.family("relax_gateway_draining", "gauge", "1 when the gateway has stopped admitting jobs.")
	w.sample("relax_gateway_draining", "", b2f(cm.Draining))
	w.family("relax_gateway_backends", "gauge", "Configured backends.")
	w.sample("relax_gateway_backends", "", float64(len(cm.Backends)))
	w.family("relax_gateway_healthy_backends", "gauge", "Backends whose last health check passed.")
	w.sample("relax_gateway_healthy_backends", "", float64(cm.HealthyBackends))
	if len(cm.Backends) > 0 {
		w.family("relax_gateway_backend_up", "gauge", "1 when the labeled backend's last health check passed.")
		for _, b := range cm.Backends {
			w.sample("relax_gateway_backend_up", backendLabel(b.URL), b2f(b.Healthy))
		}
	}
	w.family("relax_gateway_rank_error_jobs_total", "counter", "Jobs whose cluster-global dispatch rank error was measured at the gateway.")
	w.sample("relax_gateway_rank_error_jobs_total", "", float64(cm.RankError.Count))
	w.family("relax_gateway_rank_error_mean", "gauge", "Mean cluster-global scheduling rank error measured at the gateway.")
	w.sample("relax_gateway_rank_error_mean", "", cm.RankError.Mean)
	w.family("relax_gateway_rank_error_max", "gauge", "Maximum cluster-global scheduling rank error measured at the gateway.")
	w.sample("relax_gateway_rank_error_max", "", float64(cm.RankError.Max))

	nodes := make([]labeledMetrics, 0, len(cm.Backends))
	for _, b := range cm.Backends {
		if b.Metrics != nil {
			nodes = append(nodes, labeledMetrics{labels: backendLabel(b.URL), m: b.Metrics})
		}
	}
	renderNodes(w, nodes)
	return w.buf.Bytes()
}

// renderNodes emits every node family, family-major so HELP/TYPE appear
// exactly once even with many labeled backends. Families no node exposes
// (controller, WAL, pre-observability histograms) are dropped entirely.
func renderNodes(w *promWriter, nodes []labeledMetrics) {
	for _, f := range nodeFamilies {
		declared := false
		for _, n := range nodes {
			v, ok := f.get(n.m)
			if !ok {
				continue
			}
			if !declared {
				w.family(f.name, f.typ, f.help)
				declared = true
			}
			w.sample(f.name, n.labels, v)
		}
	}
	for _, f := range histFamilies {
		declared := false
		for _, n := range nodes {
			h := f.get(n.m)
			if h == nil {
				continue
			}
			if !declared {
				w.family(f.name, "histogram", f.help)
				declared = true
			}
			w.histogram(f.name, n.labels, h)
		}
	}
}

func backendLabel(url string) string {
	return `backend="` + escapeLabel(url) + `"`
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// promWriter accumulates Prometheus text exposition format (version
// 0.0.4, the format every Prometheus scraper speaks).
type promWriter struct {
	buf bytes.Buffer
}

func (w *promWriter) family(name, typ, help string) {
	fmt.Fprintf(&w.buf, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&w.buf, "# TYPE %s %s\n", name, typ)
}

func (w *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&w.buf, "%s%s %s\n", name, labels, formatValue(v))
}

// histogram emits the conventional _bucket/_sum/_count series: buckets
// are cumulative, in seconds, and always end with le="+Inf".
func (w *promWriter) histogram(name, labels string, h *api.LatencyHistogram) {
	var cum int64
	for i, bound := range h.BoundsMs {
		cum += h.Counts[i]
		w.sample(name+"_bucket", joinLabels(labels, `le="`+formatValue(bound/1000)+`"`), float64(cum))
	}
	if len(h.Counts) > len(h.BoundsMs) {
		cum += h.Counts[len(h.Counts)-1]
	}
	w.sample(name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	w.sample(name+"_sum", labels, h.SumMs/1000)
	w.sample(name+"_count", labels, float64(cum))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
