// Package orderstat provides order-statistic structures over a dense key
// universe [0, n).
//
// The scheduler instrumentation uses these structures to measure, for every
// ApproxGetMin call, the rank of the returned element among all live elements
// and the number of priority inversions suffered by each element — the two
// quantities the paper's (k, φ)-relaxed scheduler definition bounds. Both are
// implemented on top of Fenwick (binary indexed) trees so that rank queries,
// membership updates, and prefix-range inversion accounting all run in
// O(log n).
package orderstat

import "fmt"

// Fenwick is a Fenwick tree (binary indexed tree) over [0, n) supporting
// point updates and prefix sums in O(log n).
type Fenwick struct {
	tree []int64
	n    int
}

// NewFenwick returns a Fenwick tree of size n with all values zero.
func NewFenwick(n int) *Fenwick {
	if n < 0 {
		n = 0
	}
	return &Fenwick{tree: make([]int64, n+1), n: n}
}

// Len returns the size of the key universe.
func (f *Fenwick) Len() int { return f.n }

// Add adds delta to position i.
func (f *Fenwick) Add(i int, delta int64) {
	if i < 0 || i >= f.n {
		panic(fmt.Sprintf("orderstat: index %d out of range [0,%d)", i, f.n))
	}
	for i++; i <= f.n; i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum of positions [0, i]. It returns 0 for i < 0 and
// the total sum for i >= n-1.
func (f *Fenwick) PrefixSum(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= f.n {
		i = f.n - 1
	}
	var s int64
	for j := i + 1; j > 0; j -= j & (-j) {
		s += f.tree[j]
	}
	return s
}

// RangeSum returns the sum of positions [lo, hi] (inclusive).
func (f *Fenwick) RangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	return f.PrefixSum(hi) - f.PrefixSum(lo-1)
}

// Total returns the sum over all positions.
func (f *Fenwick) Total() int64 {
	return f.PrefixSum(f.n - 1)
}

// Set is an order-statistic set over keys in [0, n). Keys can be inserted and
// removed; Rank returns the 1-based rank of a key among the keys currently in
// the set. It is used to compute the rank error of relaxed schedulers.
type Set struct {
	f       *Fenwick
	present []bool
	size    int
}

// NewSet returns an empty order-statistic set over [0, n).
func NewSet(n int) *Set {
	return &Set{f: NewFenwick(n), present: make([]bool, n)}
}

// Len returns the number of keys currently in the set.
func (s *Set) Len() int { return s.size }

// Contains reports whether key is in the set.
func (s *Set) Contains(key int) bool {
	s.check(key)
	return s.present[key]
}

// Insert adds key to the set. Inserting a key that is already present is a
// no-op and returns false.
func (s *Set) Insert(key int) bool {
	s.check(key)
	if s.present[key] {
		return false
	}
	s.present[key] = true
	s.size++
	s.f.Add(key, 1)
	return true
}

// Remove deletes key from the set. Removing an absent key is a no-op and
// returns false.
func (s *Set) Remove(key int) bool {
	s.check(key)
	if !s.present[key] {
		return false
	}
	s.present[key] = false
	s.size--
	s.f.Add(key, -1)
	return true
}

// Rank returns the 1-based rank of key among the keys currently in the set:
// 1 + the number of present keys strictly smaller than key. The key itself
// need not be present (the result is then the rank it would have).
func (s *Set) Rank(key int) int {
	s.check(key)
	return int(s.f.PrefixSum(key-1)) + 1
}

// CountLess returns the number of present keys strictly smaller than key.
func (s *Set) CountLess(key int) int {
	s.check(key)
	return int(s.f.PrefixSum(key - 1))
}

// Min returns the smallest key in the set, or -1 if the set is empty.
// It runs in O(log^2 n) via binary search on prefix sums.
func (s *Set) Min() int {
	if s.size == 0 {
		return -1
	}
	return s.Select(1)
}

// Select returns the key with 1-based rank r, or -1 if r is out of range.
func (s *Set) Select(r int) int {
	if r < 1 || r > s.size {
		return -1
	}
	// Binary search over the Fenwick tree: find the smallest index i such
	// that PrefixSum(i) >= r.
	lo, hi := 0, s.f.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.f.PrefixSum(mid) >= int64(r) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (s *Set) check(key int) {
	if key < 0 || key >= len(s.present) {
		panic(fmt.Sprintf("orderstat: key %d out of range [0,%d)", key, len(s.present)))
	}
}

// RangeAdder supports range-add / point-query over [0, n) in O(log n), used
// to account priority inversions: when an element of priority p is removed,
// every live element with priority < p suffers one inversion, which is a
// range add on the prefix [0, p).
type RangeAdder struct {
	f *Fenwick
}

// NewRangeAdder returns a RangeAdder over [0, n) with all values zero.
func NewRangeAdder(n int) *RangeAdder {
	return &RangeAdder{f: NewFenwick(n + 1)}
}

// AddRange adds delta to every position in [lo, hi] (inclusive). Out-of-range
// bounds are clamped; an empty range is a no-op.
func (r *RangeAdder) AddRange(lo, hi int, delta int64) {
	n := r.f.n - 1
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if hi < lo {
		return
	}
	r.f.Add(lo, delta)
	r.f.Add(hi+1, -delta)
}

// Get returns the accumulated value at position i.
func (r *RangeAdder) Get(i int) int64 {
	n := r.f.n - 1
	if i < 0 || i >= n {
		panic(fmt.Sprintf("orderstat: index %d out of range [0,%d)", i, n))
	}
	return r.f.PrefixSum(i)
}
