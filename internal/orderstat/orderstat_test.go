package orderstat

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestFenwickPrefixSums(t *testing.T) {
	f := NewFenwick(10)
	vals := []int64{3, 0, -2, 7, 1, 0, 5, 2, 0, 4}
	for i, v := range vals {
		f.Add(i, v)
	}
	var want int64
	for i, v := range vals {
		want += v
		if got := f.PrefixSum(i); got != want {
			t.Fatalf("PrefixSum(%d) = %d, want %d", i, got, want)
		}
	}
	if got := f.PrefixSum(-1); got != 0 {
		t.Fatalf("PrefixSum(-1) = %d, want 0", got)
	}
	if got := f.PrefixSum(100); got != f.Total() {
		t.Fatalf("PrefixSum beyond range = %d, want total %d", got, f.Total())
	}
	if got := f.RangeSum(2, 4); got != -2+7+1 {
		t.Fatalf("RangeSum(2,4) = %d, want 6", got)
	}
	if got := f.RangeSum(5, 4); got != 0 {
		t.Fatalf("RangeSum on empty range = %d, want 0", got)
	}
}

func TestFenwickOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	NewFenwick(5).Add(5, 1)
}

func TestFenwickMatchesNaiveModel(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 64
		f := NewFenwick(n)
		model := make([]int64, n)
		for op := 0; op < 300; op++ {
			i := r.Intn(n)
			switch r.Intn(2) {
			case 0:
				d := int64(r.Intn(21) - 10)
				f.Add(i, d)
				model[i] += d
			case 1:
				var want int64
				for j := 0; j <= i; j++ {
					want += model[j]
				}
				if f.PrefixSum(i) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSetInsertRemoveContains(t *testing.T) {
	s := NewSet(20)
	if s.Len() != 0 {
		t.Fatalf("new set Len = %d", s.Len())
	}
	if !s.Insert(5) || !s.Insert(10) || !s.Insert(3) {
		t.Fatal("Insert of new key returned false")
	}
	if s.Insert(5) {
		t.Fatal("duplicate Insert returned true")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Fatal("Contains misreports membership")
	}
	if !s.Remove(5) {
		t.Fatal("Remove of present key returned false")
	}
	if s.Remove(5) {
		t.Fatal("Remove of absent key returned true")
	}
	if s.Len() != 2 {
		t.Fatalf("Len after remove = %d, want 2", s.Len())
	}
}

func TestSetRankAndSelect(t *testing.T) {
	s := NewSet(100)
	keys := []int{7, 3, 50, 99, 0, 42}
	for _, k := range keys {
		s.Insert(k)
	}
	sorted := append([]int(nil), keys...)
	sort.Ints(sorted)
	for r, k := range sorted {
		if got := s.Rank(k); got != r+1 {
			t.Fatalf("Rank(%d) = %d, want %d", k, got, r+1)
		}
		if got := s.Select(r + 1); got != k {
			t.Fatalf("Select(%d) = %d, want %d", r+1, got, k)
		}
	}
	if got := s.Min(); got != 0 {
		t.Fatalf("Min = %d, want 0", got)
	}
	if got := s.Select(0); got != -1 {
		t.Fatalf("Select(0) = %d, want -1", got)
	}
	if got := s.Select(len(keys) + 1); got != -1 {
		t.Fatalf("Select(too large) = %d, want -1", got)
	}
	// Rank of an absent key.
	if got := s.Rank(10); got != 4 {
		t.Fatalf("Rank(absent 10) = %d, want 4", got)
	}
	if got := s.CountLess(10); got != 3 {
		t.Fatalf("CountLess(10) = %d, want 3", got)
	}
}

func TestSetMinEmpty(t *testing.T) {
	s := NewSet(10)
	if got := s.Min(); got != -1 {
		t.Fatalf("Min of empty set = %d, want -1", got)
	}
}

func TestSetMatchesSortedSliceModel(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 128
		s := NewSet(n)
		model := make(map[int]bool)
		for op := 0; op < 400; op++ {
			k := r.Intn(n)
			switch r.Intn(3) {
			case 0:
				s.Insert(k)
				model[k] = true
			case 1:
				s.Remove(k)
				delete(model, k)
			case 2:
				// Compare rank and min against the model.
				keys := make([]int, 0, len(model))
				for mk := range model {
					keys = append(keys, mk)
				}
				sort.Ints(keys)
				wantRank := 1
				for _, mk := range keys {
					if mk < k {
						wantRank++
					}
				}
				if s.Rank(k) != wantRank {
					return false
				}
				wantMin := -1
				if len(keys) > 0 {
					wantMin = keys[0]
				}
				if s.Min() != wantMin {
					return false
				}
				if s.Len() != len(keys) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeAdder(t *testing.T) {
	ra := NewRangeAdder(10)
	ra.AddRange(2, 5, 3)
	ra.AddRange(4, 9, 1)
	ra.AddRange(0, 0, 7)
	want := []int64{7, 0, 3, 3, 4, 4, 1, 1, 1, 1}
	for i, w := range want {
		if got := ra.Get(i); got != w {
			t.Fatalf("Get(%d) = %d, want %d", i, got, w)
		}
	}
	// Clamping and empty ranges.
	ra.AddRange(-5, 100, 1)
	if got := ra.Get(0); got != 8 {
		t.Fatalf("after clamped range add, Get(0) = %d, want 8", got)
	}
	ra.AddRange(5, 2, 100) // empty, no-op
	if got := ra.Get(3); got != 4 {
		t.Fatalf("after empty range add, Get(3) = %d, want 4", got)
	}
}

func TestRangeAdderMatchesNaive(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 50
		ra := NewRangeAdder(n)
		model := make([]int64, n)
		for op := 0; op < 200; op++ {
			lo := r.Intn(n)
			hi := r.Intn(n)
			if lo > hi {
				lo, hi = hi, lo
			}
			d := int64(r.Intn(11) - 5)
			ra.AddRange(lo, hi, d)
			for i := lo; i <= hi; i++ {
				model[i] += d
			}
			probe := r.Intn(n)
			if ra.Get(probe) != model[probe] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetInsertRemove(b *testing.B) {
	const n = 1 << 16
	s := NewSet(n)
	for i := 0; i < b.N; i++ {
		k := i & (n - 1)
		s.Insert(k)
		s.Remove(k)
	}
}

func BenchmarkSetRank(b *testing.B) {
	const n = 1 << 16
	s := NewSet(n)
	for i := 0; i < n; i += 2 {
		s.Insert(i)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Rank(i & (n - 1))
	}
	_ = sink
}
