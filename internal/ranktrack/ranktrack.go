// Package ranktrack measures observed scheduling rank error: a Tracker
// mirrors the live contents of a (possibly relaxed) queue as a sorted
// multiset, so each removal's rank among the pending items — the paper's
// rank error — can be computed exactly.
//
// It is the measurement instrument behind relaxd's per-node job rank
// error and, fed from submission order at the gateway, behind the
// cluster-wide global rank error: the same statistic at both levels is
// what lets EXPERIMENTS.md compare a node's MultiQueue relaxation with
// the relaxation that emerges from sharding jobs across nodes.
package ranktrack

import (
	"sort"

	"relaxsched/internal/sched"
)

// Tracker is a sorted multiset of live items. The zero value is ready to
// use. Callers synchronize: queue depths are bounded by admission
// control, so the O(depth) insertion and removal are noise next to the
// work each item represents.
type Tracker struct {
	live []sched.Item // sorted by Item.Less
}

// Insert adds an item to the live set.
func (t *Tracker) Insert(it sched.Item) {
	i := sort.Search(len(t.live), func(i int) bool { return it.Less(t.live[i]) })
	t.live = append(t.live, sched.Item{})
	copy(t.live[i+1:], t.live[i:])
	t.live[i] = it
}

// Remove deletes it from the multiset and returns its rank (1 = the true
// minimum) among the items live just before removal. An unknown item
// returns 0 — the scheduler invented it, which is a bug elsewhere.
func (t *Tracker) Remove(it sched.Item) int {
	i := sort.Search(len(t.live), func(i int) bool { return !t.live[i].Less(it) })
	if i >= len(t.live) || t.live[i] != it {
		return 0
	}
	copy(t.live[i:], t.live[i+1:])
	t.live = t.live[:len(t.live)-1]
	return i + 1
}

// Len reports the number of live items.
func (t *Tracker) Len() int { return len(t.live) }

// Stats accumulates rank-error observations (rank-1 per removal) into the
// wire-facing mean/max summary. The zero value is ready to use.
type Stats struct {
	Count int64
	Sum   float64
	Max   int64
}

// Observe records one dispatch's rank (as returned by Remove).
func (s *Stats) Observe(rank int) {
	if rank < 1 {
		return
	}
	s.Count++
	s.Sum += float64(rank - 1)
	if int64(rank-1) > s.Max {
		s.Max = int64(rank - 1)
	}
}

// Mean returns the mean observed rank error (0 with no observations).
func (s *Stats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
