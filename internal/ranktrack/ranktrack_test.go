package ranktrack

import (
	"math/rand"
	"sort"
	"testing"

	"relaxsched/internal/sched"
)

// TestTrackerRanks: ranks are positions in the sorted live set at removal
// time, 1-based, with ties broken by task id (Item.Less total order).
func TestTrackerRanks(t *testing.T) {
	var tr Tracker
	items := []sched.Item{
		{Task: 1, Priority: 50},
		{Task: 2, Priority: 10},
		{Task: 3, Priority: 30},
		{Task: 4, Priority: 10},
	}
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	// Sorted order: (10,2), (10,4), (30,3), (50,1).
	if got := tr.Remove(sched.Item{Task: 3, Priority: 30}); got != 3 {
		t.Fatalf("rank of (30,3) = %d, want 3", got)
	}
	if got := tr.Remove(sched.Item{Task: 4, Priority: 10}); got != 2 {
		t.Fatalf("rank of (10,4) after one removal = %d, want 2", got)
	}
	if got := tr.Remove(sched.Item{Task: 2, Priority: 10}); got != 1 {
		t.Fatalf("rank of (10,2) = %d, want 1", got)
	}
	if got := tr.Remove(sched.Item{Task: 1, Priority: 50}); got != 1 {
		t.Fatalf("rank of the last item = %d, want 1", got)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after draining = %d", tr.Len())
	}
	// Unknown items report rank 0 rather than corrupting the set.
	if got := tr.Remove(sched.Item{Task: 99, Priority: 1}); got != 0 {
		t.Fatalf("unknown item rank = %d, want 0", got)
	}
}

// TestTrackerAgainstSort cross-checks random workloads against a naive
// sorted-slice oracle.
func TestTrackerAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var tr Tracker
	var oracle []sched.Item
	for task := int32(0); task < 500; task++ {
		it := sched.Item{Task: task, Priority: uint32(r.Intn(40))}
		tr.Insert(it)
		oracle = append(oracle, it)
		if r.Intn(3) == 0 && len(oracle) > 0 {
			victim := oracle[r.Intn(len(oracle))]
			sort.Slice(oracle, func(i, j int) bool { return oracle[i].Less(oracle[j]) })
			want := sort.Search(len(oracle), func(i int) bool { return !oracle[i].Less(victim) }) + 1
			if got := tr.Remove(victim); got != want {
				t.Fatalf("rank of %+v = %d, oracle says %d", victim, got, want)
			}
			for i, it := range oracle {
				if it == victim {
					oracle = append(oracle[:i], oracle[i+1:]...)
					break
				}
			}
		}
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Observe(0) // unknown item: ignored
	if s.Count != 0 {
		t.Fatalf("rank 0 counted: %+v", s)
	}
	for _, rank := range []int{1, 1, 4, 2} {
		s.Observe(rank)
	}
	if s.Count != 4 || s.Max != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.Mean(); got != 1.0 {
		t.Fatalf("mean = %v, want 1.0 ((0+0+3+1)/4)", got)
	}
}
