// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the library.
//
// The library needs reproducible randomness in three places: generating
// input graphs, generating priority permutations, and driving the random
// choices inside relaxed schedulers (e.g. the two-choice queue selection in a
// MultiQueue). Using a self-contained generator rather than math/rand keeps
// results bit-for-bit reproducible across Go versions and lets every worker
// goroutine own an independent, unsynchronized stream.
package rng

// SplitMix64 is a tiny 64-bit generator with a 64-bit state. It is primarily
// used to seed other generators and to derive independent streams from a
// single user-provided seed.
//
// The zero value is a valid generator (it behaves as if seeded with 0).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator: fast, high quality, and cheap to fork
// into independent streams. It is NOT safe for concurrent use; give each
// goroutine its own Rand (see Fork).
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded deterministically from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Fork derives a new, statistically independent generator from r.
// The parent generator advances, so successive forks are distinct.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)

	return result
}

// Uint32 returns the next pseudo-random 32-bit value.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring the
// contract of math/rand.Intn; callers are expected to validate n.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It returns 0 when n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire's nearly-divisionless method with a rejection loop to remove
	// modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random in place (Fisher-Yates).
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Perm32 returns a uniformly random permutation of [0, n) as uint32 values.
// It is used for priority permutations, which the rest of the library stores
// as compact 32-bit labels.
func (r *Rand) Perm32(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
