package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequenceDeterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Next(), b.Next(); got != want {
			t.Fatalf("step %d: streams diverged: %d vs %d", i, got, want)
		}
	}
}

func TestSplitMix64DifferentSeedsDiffer(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide %d/100 times", same)
	}
}

func TestNewZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded generator produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestRandDeterministicForSeed(t *testing.T) {
	a := New(123)
	b := New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	f1 := parent.Fork()
	f2 := parent.Fork()
	equal := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("forked streams coincide %d/1000 times; expected near 0", equal)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRange(t *testing.T) {
	r := New(99)
	for _, n := range []int{1, 2, 3, 7, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nZero(t *testing.T) {
	r := New(5)
	if got := r.Uint64n(0); got != 0 {
		t.Fatalf("Uint64n(0) = %d, want 0", got)
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Uint64n(64)
		if v >= 64 {
			t.Fatalf("Uint64n(64) = %d out of range", v)
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish sanity check on a small modulus.
	r := New(2024)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(draws) / n
	for b, c := range counts {
		dev := math.Abs(float64(c)-expected) / expected
		if dev > 0.05 {
			t.Fatalf("bucket %d has count %d, deviates %.1f%% from expected %.0f", b, c, dev*100, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(77)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(88)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniform draws = %v, want ~0.5", draws, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 5, 100, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n {
				t.Fatalf("Perm(%d) contains out-of-range %d", n, v)
			}
			if seen[v] {
				t.Fatalf("Perm(%d) contains duplicate %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPerm32IsPermutation(t *testing.T) {
	r := New(4)
	for _, n := range []int{0, 1, 3, 64, 500} {
		p := r.Perm32(n)
		if len(p) != n {
			t.Fatalf("Perm32(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if int(v) >= n || seen[v] {
				t.Fatalf("Perm32(%d): invalid or duplicate value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformityOverSmallN(t *testing.T) {
	// All 6 permutations of 3 elements should appear with roughly equal
	// frequency.
	r := New(2718)
	counts := make(map[[3]int]int)
	const trials = 60000
	for i := 0; i < trials; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations of 3 elements, want 6", len(counts))
	}
	expected := float64(trials) / 6
	for perm, c := range counts {
		dev := math.Abs(float64(c)-expected) / expected
		if dev > 0.05 {
			t.Fatalf("permutation %v occurred %d times, deviates %.1f%% from %v", perm, c, dev*100, expected)
		}
	}
}

func TestShuffleEmptyAndSingleton(t *testing.T) {
	r := New(1)
	var empty []int
	r.Shuffle(empty) // must not panic
	one := []int{42}
	r.Shuffle(one)
	if one[0] != 42 {
		t.Fatalf("shuffling a singleton changed its value to %d", one[0])
	}
}

func TestMul64AgainstBigComputation(t *testing.T) {
	check := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Verify via decomposition into 32-bit halves computed independently.
		x0, x1 := x&0xffffffff, x>>32
		y0, y1 := y&0xffffffff, y>>32
		// lo must equal x*y mod 2^64 by definition of Go multiplication.
		if lo != x*y {
			return false
		}
		// hi computed by schoolbook method.
		w0 := x0 * y0
		t1 := x1*y0 + w0>>32
		w1 := t1 & 0xffffffff
		w2 := t1 >> 32
		w1 += x0 * y1
		wantHi := x1*y1 + w2 + w1>>32
		return hi == wantHi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nNeverExceedsBound(t *testing.T) {
	r := New(31337)
	check := func(bound uint64) bool {
		if bound == 0 {
			return r.Uint64n(0) == 0
		}
		return r.Uint64n(bound) < bound
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn1024(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1024)
	}
	_ = sink
}
