package sched

import (
	"sync"
	"testing"
)

// minBatcher is a fakeScheduler (LIFO) that additionally counts native batch
// calls, to verify Locked routes through the Batcher fast path.
type minBatcher struct {
	fakeScheduler
	insertBatches int
	popBatches    int
}

func (b *minBatcher) InsertBatch(items []Item) {
	b.insertBatches++
	for _, it := range items {
		b.Insert(it)
	}
}

func (b *minBatcher) ApproxPopBatch(out []Item) int {
	b.popBatches++
	n := 0
	for n < len(out) {
		it, ok := b.ApproxGetMin()
		if !ok {
			break
		}
		out[n] = it
		n++
	}
	return n
}

func TestWithDefaultBatchAdapter(t *testing.T) {
	// A Single scheduler gains loop-based batch operations; a scheduler that
	// is already Concurrent is passed through unchanged.
	inner := &lifoConcurrent{}
	c := WithDefaultBatch(inner)
	items := []Item{{Task: 1, Priority: 1}, {Task: 2, Priority: 2}, {Task: 3, Priority: 3}}
	c.InsertBatch(items)
	out := make([]Item, 2)
	if n := c.ApproxPopBatch(out); n != 2 {
		t.Fatalf("popped %d, want 2", n)
	}
	// LIFO: last inserted first.
	if out[0].Task != 3 || out[1].Task != 2 {
		t.Fatalf("unexpected order %v", out)
	}
	if n := c.ApproxPopBatch(out); n != 1 || out[0].Task != 1 {
		t.Fatalf("drain = %d %v", n, out[0])
	}
	if n := c.ApproxPopBatch(out); n != 0 {
		t.Fatalf("empty pop returned %d", n)
	}

	l := NewLocked(&fakeScheduler{})
	if WithDefaultBatch(l) != Concurrent(l) {
		t.Fatal("WithDefaultBatch wrapped a scheduler that is already Concurrent")
	}
}

func TestLockedBatchFallbackLoop(t *testing.T) {
	// An inner scheduler without native batch support is looped over under
	// one lock acquisition.
	l := NewLocked(&fakeScheduler{})
	l.InsertBatch([]Item{{Task: 1, Priority: 1}, {Task: 2, Priority: 2}})
	if l.Len() != 2 {
		t.Fatalf("Len = %d after batch insert", l.Len())
	}
	out := make([]Item, 4)
	if n := l.ApproxPopBatch(out); n != 2 {
		t.Fatalf("popped %d, want 2", n)
	}
	if !l.Empty() {
		t.Fatal("scheduler not empty after batch drain")
	}
	l.InsertBatch(nil) // must not panic
	if n := l.ApproxPopBatch(nil); n != 0 {
		t.Fatalf("nil pop returned %d", n)
	}
}

func TestLockedBatchUsesNativeBatcher(t *testing.T) {
	inner := &minBatcher{}
	l := NewLocked(inner)
	l.InsertBatch([]Item{{Task: 1, Priority: 1}, {Task: 2, Priority: 2}, {Task: 3, Priority: 3}})
	out := make([]Item, 3)
	if n := l.ApproxPopBatch(out); n != 3 {
		t.Fatalf("popped %d, want 3", n)
	}
	if inner.insertBatches != 1 || inner.popBatches != 1 {
		t.Fatalf("native batch calls = (%d, %d), want (1, 1)", inner.insertBatches, inner.popBatches)
	}
}

func TestLockedBatchConcurrentConservation(t *testing.T) {
	// Concurrent batch producers and consumers over a Locked scheduler must
	// conserve the item count.
	l := NewLocked(&fakeScheduler{})
	const producers = 4
	const consumers = 4
	const perProducer = 2500
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]Item, 0, 16)
			for i := 0; i < perProducer; i++ {
				batch = append(batch, Item{Task: int32(w*perProducer + i), Priority: uint32(i)})
				if len(batch) == cap(batch) {
					l.InsertBatch(batch)
					batch = batch[:0]
				}
			}
			l.InsertBatch(batch)
		}(w)
	}
	wg.Wait()

	counts := make([]int64, consumers)
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]Item, 16)
			for {
				n := l.ApproxPopBatch(out)
				if n == 0 {
					return
				}
				counts[w] += int64(n)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != producers*perProducer {
		t.Fatalf("drained %d items, want %d", total, producers*perProducer)
	}
}

func TestConcurrentInstrumentedBatchMetrics(t *testing.T) {
	// Batch operations through the instrumented wrapper must record every
	// item exactly once, with the same rank semantics as single removals.
	m := NewConcurrentInstrumented(&lifoConcurrent{}, 16)
	items := make([]Item, 8)
	for i := range items {
		items[i] = Item{Task: int32(i), Priority: uint32(i)}
	}
	m.InsertBatch(items)
	out := make([]Item, 8)
	if n := m.ApproxPopBatch(out); n != 8 {
		t.Fatalf("popped %d, want 8", n)
	}
	metrics := m.Metrics()
	if metrics.Removals != 8 {
		t.Fatalf("removals = %d, want 8", metrics.Removals)
	}
	// LIFO: the first removal is the worst item, rank 8.
	if metrics.MaxRank != 8 {
		t.Fatalf("MaxRank = %d, want 8", metrics.MaxRank)
	}
}
