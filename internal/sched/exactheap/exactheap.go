// Package exactheap implements an exact (non-relaxed) priority scheduler as a
// binary min-heap. It is the k = 1 reference point of the paper: GetMin always
// returns the live item of smallest priority, so the framework built on it
// behaves exactly like Algorithm 1 and incurs zero wasted work — at the cost
// of having no concurrency whatsoever (wrap it in sched.Locked to share it
// between goroutines).
package exactheap

import "relaxsched/internal/sched"

// Heap is a binary min-heap over sched.Item ordered by Item.Less. The zero
// value is an empty heap ready for use; New pre-allocates capacity.
type Heap struct {
	items []sched.Item
}

var _ sched.Scheduler = (*Heap)(nil)

// New returns an empty heap with room for capacity items before reallocating.
func New(capacity int) *Heap {
	if capacity < 0 {
		capacity = 0
	}
	return &Heap{items: make([]sched.Item, 0, capacity)}
}

// Factory returns a sched.Factory producing exact heaps.
func Factory() sched.Factory {
	return func(capacity int) sched.Scheduler { return New(capacity) }
}

// Insert adds an item to the heap.
func (h *Heap) Insert(it sched.Item) {
	h.items = append(h.items, it)
	h.siftUp(len(h.items) - 1)
}

// ApproxGetMin removes and returns the minimum item. Despite the name
// (shared with relaxed schedulers through the Scheduler interface), the
// result is always exact.
func (h *Heap) ApproxGetMin() (sched.Item, bool) {
	if len(h.items) == 0 {
		return sched.Item{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top, true
}

// Peek returns the minimum item without removing it.
func (h *Heap) Peek() (sched.Item, bool) {
	if len(h.items) == 0 {
		return sched.Item{}, false
	}
	return h.items[0], true
}

// Len returns the number of items in the heap.
func (h *Heap) Len() int { return len(h.items) }

// Empty reports whether the heap is empty.
func (h *Heap) Empty() bool { return len(h.items) == 0 }

// Both sift directions move a "hole" through the array and write the sifted
// item once at its final position, instead of swapping at every level — half
// the stores of the textbook swap formulation, which is measurable because
// these loops sit under every scheduler operation of the heap-backed
// families (including each MultiQueue sub-queue).

func (h *Heap) siftUp(i int) {
	it := h.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !it.Less(h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = it
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	it := h.items[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.items[right].Less(h.items[left]) {
			smallest = right
		}
		if !h.items[smallest].Less(it) {
			break
		}
		h.items[i] = h.items[smallest]
		i = smallest
	}
	h.items[i] = it
}
