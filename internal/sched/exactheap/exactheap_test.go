package exactheap

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestEmptyHeap(t *testing.T) {
	h := New(0)
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	if _, ok := h.ApproxGetMin(); ok {
		t.Fatal("ApproxGetMin on empty heap returned an item")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned an item")
	}
	// Negative capacity must not panic.
	_ = New(-1)
}

func TestHeapSortedDrain(t *testing.T) {
	h := New(16)
	priorities := []uint32{5, 1, 9, 3, 7, 0, 2, 8, 6, 4}
	for i, p := range priorities {
		h.Insert(sched.Item{Task: int32(i), Priority: p})
	}
	if h.Len() != len(priorities) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(priorities))
	}
	if top, ok := h.Peek(); !ok || top.Priority != 0 {
		t.Fatalf("Peek = %v, %v", top, ok)
	}
	var drained []uint32
	for !h.Empty() {
		it, ok := h.ApproxGetMin()
		if !ok {
			t.Fatal("ApproxGetMin returned false on non-empty heap")
		}
		drained = append(drained, it.Priority)
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i] < drained[j] }) {
		t.Fatalf("heap did not drain in sorted order: %v", drained)
	}
	if len(drained) != len(priorities) {
		t.Fatalf("drained %d items, inserted %d", len(drained), len(priorities))
	}
}

func TestHeapTiesBrokenByTask(t *testing.T) {
	h := New(4)
	h.Insert(sched.Item{Task: 9, Priority: 5})
	h.Insert(sched.Item{Task: 2, Priority: 5})
	h.Insert(sched.Item{Task: 4, Priority: 5})
	first, _ := h.ApproxGetMin()
	if first.Task != 2 {
		t.Fatalf("expected lowest task id to win ties, got task %d", first.Task)
	}
}

func TestHeapInterleavedInsertRemove(t *testing.T) {
	h := New(0)
	h.Insert(sched.Item{Task: 1, Priority: 10})
	h.Insert(sched.Item{Task: 2, Priority: 5})
	if it, _ := h.ApproxGetMin(); it.Priority != 5 {
		t.Fatalf("got priority %d, want 5", it.Priority)
	}
	h.Insert(sched.Item{Task: 3, Priority: 1})
	h.Insert(sched.Item{Task: 4, Priority: 20})
	if it, _ := h.ApproxGetMin(); it.Priority != 1 {
		t.Fatalf("got priority %d, want 1", it.Priority)
	}
	if it, _ := h.ApproxGetMin(); it.Priority != 10 {
		t.Fatalf("got priority %d, want 10", it.Priority)
	}
	if it, _ := h.ApproxGetMin(); it.Priority != 20 {
		t.Fatalf("got priority %d, want 20", it.Priority)
	}
	if !h.Empty() {
		t.Fatal("heap should be empty")
	}
}

func TestHeapMatchesSortModel(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(500)
		h := New(n)
		want := make([]uint32, n)
		for i := 0; i < n; i++ {
			p := r.Uint32() % 1000
			want[i] = p
			h.Insert(sched.Item{Task: int32(i), Priority: p})
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, w := range want {
			it, ok := h.ApproxGetMin()
			if !ok || it.Priority != w {
				return false
			}
		}
		return h.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFactory(t *testing.T) {
	f := Factory()
	s := f(10)
	s.Insert(sched.Item{Task: 0, Priority: 3})
	if s.Len() != 1 {
		t.Fatal("factory-produced heap broken")
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	h := New(1024)
	r := rng.New(1)
	for i := 0; i < 1024; i++ {
		h.Insert(sched.Item{Task: int32(i), Priority: r.Uint32()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, _ := h.ApproxGetMin()
		it.Priority = r.Uint32()
		h.Insert(it)
	}
}
