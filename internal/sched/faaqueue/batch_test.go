package faaqueue

import (
	"sync"
	"sync/atomic"
	"testing"

	"relaxsched/internal/sched"
)

func TestBatchFIFOOrderSequential(t *testing.T) {
	// Batch inserts claim contiguous ticket ranges, so a single-threaded
	// mix of batch and single operations must preserve exact FIFO order —
	// the property that makes the FAA queue an exact scheduler for
	// priority-ordered preloads.
	q := New(0)
	next := int32(0)
	push := func(batch int) {
		items := make([]sched.Item, batch)
		for i := range items {
			items[i] = sched.Item{Task: next, Priority: uint32(next)}
			next++
		}
		q.InsertBatch(items)
	}
	push(5)
	q.Insert(sched.Item{Task: next, Priority: uint32(next)})
	next++
	push(3)

	want := int32(0)
	out := make([]sched.Item, 4)
	for {
		n := q.ApproxPopBatch(out)
		if n == 0 {
			break
		}
		for _, it := range out[:n] {
			if it.Task != want {
				t.Fatalf("got task %d, want %d", it.Task, want)
			}
			want++
		}
	}
	if want != next {
		t.Fatalf("drained %d items, want %d", want, next)
	}
}

func TestBatchPopClampedToSize(t *testing.T) {
	// A batch pop larger than the queue must return only what is there and
	// must not run the head past the tail (which would invalidate future
	// enqueue tickets).
	q := New(0)
	q.InsertBatch([]sched.Item{{Task: 1, Priority: 1}, {Task: 2, Priority: 2}})
	out := make([]sched.Item, 16)
	if n := q.ApproxPopBatch(out); n != 2 {
		t.Fatalf("popped %d, want 2", n)
	}
	if n := q.ApproxPopBatch(out); n != 0 {
		t.Fatalf("empty batch pop returned %d", n)
	}
	// The queue must still work after draining.
	q.Insert(sched.Item{Task: 9, Priority: 9})
	if it, ok := q.ApproxGetMin(); !ok || it.Task != 9 {
		t.Fatalf("queue broken after batch drain: %v %v", it, ok)
	}
}

func TestBatchSpansSegments(t *testing.T) {
	// Batches larger than a segment must land correctly across the segment
	// boundary.
	q := New(0)
	const n = 3 * segmentSize
	items := make([]sched.Item, n)
	for i := range items {
		items[i] = sched.Item{Task: int32(i), Priority: uint32(i)}
	}
	q.InsertBatch(items)
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	out := make([]sched.Item, 100)
	want := int32(0)
	for {
		got := q.ApproxPopBatch(out)
		if got == 0 {
			break
		}
		for _, it := range out[:got] {
			if it.Task != want {
				t.Fatalf("got task %d, want %d", it.Task, want)
			}
			want++
		}
	}
	if want != n {
		t.Fatalf("drained %d, want %d", want, n)
	}
}

func TestBatchConcurrentProducersConsumers(t *testing.T) {
	const producers = 4
	const consumers = 4
	const perProducer = 5000
	const total = producers * perProducer
	q := New(0)
	var wg sync.WaitGroup
	var done atomic.Int64
	var consumed sync.Map

	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]sched.Item, 32)
			misses := 0
			for {
				n := q.ApproxPopBatch(out)
				if n == 0 {
					if done.Load() == total {
						return
					}
					misses++
					if misses > 1000000 {
						return
					}
					continue
				}
				misses = 0
				for _, it := range out[:n] {
					if _, dup := consumed.LoadOrStore(it.Task, w); dup {
						t.Errorf("task %d consumed twice", it.Task)
						return
					}
				}
				if done.Add(int64(n)) == total {
					return
				}
			}
		}(w)
	}
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]sched.Item, 0, 16)
			for i := 0; i < perProducer; i++ {
				batch = append(batch, sched.Item{Task: int32(w*perProducer + i), Priority: uint32(i)})
				if len(batch) == cap(batch) {
					q.InsertBatch(batch)
					batch = batch[:0]
				}
			}
			q.InsertBatch(batch)
		}(w)
	}
	wg.Wait()

	var seen int
	consumed.Range(func(any, any) bool { seen++; return true })
	remaining := 0
	out := make([]sched.Item, 64)
	for {
		n := q.ApproxPopBatch(out)
		if n == 0 {
			break
		}
		remaining += n
	}
	if seen+remaining != total {
		t.Fatalf("consumed %d + leftover %d != produced %d", seen, remaining, total)
	}
}
