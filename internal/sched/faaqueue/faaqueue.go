// Package faaqueue implements a fetch-and-add based MPMC FIFO queue, standing
// in for the "Wait-Free Queue as Fast as Fetch-and-Add" of Yang and
// Mellor-Crummey (reference [27]) that the paper uses as its *exact*
// concurrent scheduler baseline.
//
// In the paper's exact framework the task permutation is loaded into the
// queue up front in priority order, so a FIFO dispenses tasks in exactly the
// sequential order while costing just one fetch-and-add per dequeue. This
// implementation keeps that property: enqueues claim a ticket with a single
// atomic add on the tail counter and publish the item into the ticket's cell;
// dequeues claim a ticket from the head counter and consume the corresponding
// cell. Cells live in dynamically allocated fixed-size segments linked by
// atomic pointers, so the queue is unbounded.
//
// Dequeues reserve their claims out of the published-item counter before
// touching the head, so poppers collectively never claim more tickets than
// there are published items and the head cannot overtake the tail. The
// queue is therefore lock-free rather than wait-free on both sides: a
// popper whose reserved ticket belongs to an enqueuer that has claimed but
// not yet published its cell briefly spins (then yields) until the publish
// lands. A zero result means the published count was (momentarily) zero;
// the execution framework tolerates such spurious empties because it
// tracks outstanding work separately.
package faaqueue

import (
	"runtime"
	"sync/atomic"

	"relaxsched/internal/sched"
)

const (
	segmentSize = 1024

	cellEmpty = 0 // no value published yet
	cellTaken = 1 // invalidated by a dequeuer that overtook the enqueuer
	cellBias  = 2 // published values are stored as packed+cellBias
)

type segment struct {
	id    int64
	cells [segmentSize]atomic.Uint64
	next  atomic.Pointer[segment]
}

// Queue is an unbounded MPMC FIFO queue of sched.Item values. Items are
// returned in (approximately, under contention exactly per-ticket) the order
// they were enqueued. The zero value is not usable; use New.
type Queue struct {
	head    atomic.Int64
	tail    atomic.Int64
	size    atomic.Int64
	first   *segment // segment 0; anchor for lagging ticket holders
	headSeg atomic.Pointer[segment]
	tailSeg atomic.Pointer[segment]
}

var _ sched.Concurrent = (*Queue)(nil)

// New returns an empty queue. The capacity hint is accepted for interface
// symmetry with other schedulers but segments are allocated on demand.
func New(capacity int) *Queue {
	first := &segment{id: 0}
	q := &Queue{first: first}
	q.headSeg.Store(first)
	q.tailSeg.Store(first)
	return q
}

// ConcurrentFactory returns a sched.ConcurrentFactory producing FIFO queues.
func ConcurrentFactory() sched.ConcurrentFactory {
	return func(capacity, workers int) sched.Concurrent { return New(capacity) }
}

func pack(it sched.Item) uint64 {
	return uint64(it.Priority)<<32 | uint64(uint32(it.Task))
}

func unpack(v uint64) sched.Item {
	return sched.Item{Task: int32(uint32(v)), Priority: uint32(v >> 32)}
}

// findSegment walks (and extends) the segment list until it reaches the
// segment with the given id, updating the hint pointer if it advanced. The
// hint can legitimately be ahead of id (another goroutine with a later ticket
// advanced it first); in that case the walk restarts from the first segment,
// which is retained for the lifetime of the queue precisely so that lagging
// ticket holders can always find their cell.
func (q *Queue) findSegment(hint *atomic.Pointer[segment], id int64) *segment {
	seg := hint.Load()
	if seg.id > id {
		seg = q.first
	}
	for seg.id < id {
		next := seg.next.Load()
		if next == nil {
			candidate := &segment{id: seg.id + 1}
			if seg.next.CompareAndSwap(nil, candidate) {
				next = candidate
			} else {
				next = seg.next.Load()
			}
		}
		seg = next
	}
	// Advance the hint so later calls start closer; harmless if it races.
	if cur := hint.Load(); cur.id < seg.id {
		hint.CompareAndSwap(cur, seg)
	}
	return seg
}

// Insert enqueues an item at the tail.
func (q *Queue) Insert(it sched.Item) {
	v := pack(it) + cellBias
	for {
		t := q.tail.Add(1) - 1
		seg := q.findSegment(&q.tailSeg, t/segmentSize)
		cell := &seg.cells[t%segmentSize]
		if cell.CompareAndSwap(cellEmpty, v) {
			q.size.Add(1)
			return
		}
		// The cell was invalidated by a dequeuer that overtook us; retry with
		// a fresh ticket.
	}
}

// consumeTicket resolves dequeue ticket h: it waits for the owning
// enqueuer's publish and returns the item, or — when no enqueuer has claimed
// the ticket yet — invalidates the cell so the eventual owner retries
// elsewhere and reports false.
//
// Because every pop path reserves its claims from the size counter first,
// reserved claims ≤ published items ≤ tail claims and the h >= tail branch
// is not reachable from this package's own methods; it is kept (with the
// matching enqueue retry) as defense in depth so the ticket protocol stays
// correct even for a claim made without a reservation.
func (q *Queue) consumeTicket(h int64) (sched.Item, bool) {
	seg := q.findSegment(&q.headSeg, h/segmentSize)
	cell := &seg.cells[h%segmentSize]
	if h >= q.tail.Load() {
		if cell.CompareAndSwap(cellEmpty, cellTaken) {
			return sched.Item{}, false
		}
		// An enqueuer published concurrently after all; consume it below.
	}
	// The enqueuer owning this ticket has performed (or will imminently
	// perform) its publish; wait for the value.
	for spin := 0; ; spin++ {
		v := cell.Load()
		if v >= cellBias {
			return unpack(v - cellBias), true
		}
		if v == cellTaken {
			// Defensive: nobody else invalidates our ticket, but treat a
			// taken cell as an empty slot rather than spinning on it.
			return sched.Item{}, false
		}
		if spin > 128 {
			runtime.Gosched()
		}
	}
}

// ApproxGetMin dequeues the item at the head of the FIFO. A false result
// means the queue was (momentarily) empty; under concurrent enqueues it may
// be spurious.
func (q *Queue) ApproxGetMin() (sched.Item, bool) {
	var one [1]sched.Item
	if q.ApproxPopBatch(one[:]) == 1 {
		return one[0], true
	}
	return sched.Item{}, false
}

// InsertBatch enqueues all items with a single fetch-and-add on the tail
// counter: the batch claims a contiguous ticket range, so FIFO order within
// the batch is the items' order and the per-item cost is one CAS publish
// instead of one FAA plus one CAS. Items whose cells were invalidated by an
// overtaking dequeuer (a rare near-empty race) are retried with fresh
// tickets, preserving their relative order.
func (q *Queue) InsertBatch(items []sched.Item) {
	pending := items
	for len(pending) > 0 {
		b := int64(len(pending))
		t := q.tail.Add(b) - b
		published := int64(0)
		var failed []sched.Item
		for i, it := range pending {
			ticket := t + int64(i)
			seg := q.findSegment(&q.tailSeg, ticket/segmentSize)
			cell := &seg.cells[ticket%segmentSize]
			if cell.CompareAndSwap(cellEmpty, pack(it)+cellBias) {
				published++
			} else {
				failed = append(failed, it)
			}
		}
		if published > 0 {
			q.size.Add(published)
		}
		pending = failed
	}
}

// ApproxPopBatch dequeues up to len(out) items with a single fetch-and-add
// on the head counter. Claims are first *reserved* out of the published-item
// counter with a CAS, so concurrent poppers collectively never claim more
// head tickets than there are published items: the head cannot run past the
// tail, no cells are invalidated and no segments burned by idle polling.
// Items are returned in FIFO (ticket) order, so a priority-ordered preload
// dispenses exactly as the sequential algorithm would, batch or no batch.
func (q *Queue) ApproxPopBatch(out []sched.Item) int {
	if len(out) == 0 {
		return 0
	}
	var want int64
	for {
		avail := q.size.Load()
		if avail <= 0 {
			return 0
		}
		want = int64(len(out))
		if avail < want {
			want = avail
		}
		if q.size.CompareAndSwap(avail, avail-want) {
			break
		}
	}
	h := q.head.Add(want) - want
	n := 0
	for i := int64(0); i < want; i++ {
		if it, ok := q.consumeTicket(h + i); ok {
			out[n] = it
			n++
		}
	}
	if int64(n) < want {
		// A ticket was invalidated (only possible through historic races);
		// the published items it missed are at later tickets, so return the
		// unused reservations for other poppers to claim.
		q.size.Add(want - int64(n))
	}
	return n
}

// Len returns the approximate number of items currently in the queue.
func (q *Queue) Len() int { return int(q.size.Load()) }

// Empty reports whether the queue is (approximately) empty.
func (q *Queue) Empty() bool { return q.size.Load() <= 0 }
