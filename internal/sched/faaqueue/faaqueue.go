// Package faaqueue implements a fetch-and-add based MPMC FIFO queue, standing
// in for the "Wait-Free Queue as Fast as Fetch-and-Add" of Yang and
// Mellor-Crummey (reference [27]) that the paper uses as its *exact*
// concurrent scheduler baseline.
//
// In the paper's exact framework the task permutation is loaded into the
// queue up front in priority order, so a FIFO dispenses tasks in exactly the
// sequential order while costing just one fetch-and-add per dequeue. This
// implementation keeps that property: enqueues claim a ticket with a single
// atomic add on the tail counter and publish the item into the ticket's cell;
// dequeues claim a ticket from the head counter and consume the corresponding
// cell. Cells live in dynamically allocated fixed-size segments linked by
// atomic pointers, so the queue is unbounded.
//
// The implementation is lock-free rather than wait-free: a dequeuer that
// overtakes a slow enqueuer invalidates the cell and reports "nothing found",
// and the enqueuer simply retries with a fresh ticket. The execution
// framework tolerates such spurious empty results because it tracks
// outstanding work separately.
package faaqueue

import (
	"runtime"
	"sync/atomic"

	"relaxsched/internal/sched"
)

const (
	segmentSize = 1024

	cellEmpty = 0 // no value published yet
	cellTaken = 1 // invalidated by a dequeuer that overtook the enqueuer
	cellBias  = 2 // published values are stored as packed+cellBias
)

type segment struct {
	id    int64
	cells [segmentSize]atomic.Uint64
	next  atomic.Pointer[segment]
}

// Queue is an unbounded MPMC FIFO queue of sched.Item values. Items are
// returned in (approximately, under contention exactly per-ticket) the order
// they were enqueued. The zero value is not usable; use New.
type Queue struct {
	head    atomic.Int64
	tail    atomic.Int64
	size    atomic.Int64
	first   *segment // segment 0; anchor for lagging ticket holders
	headSeg atomic.Pointer[segment]
	tailSeg atomic.Pointer[segment]
}

var _ sched.Concurrent = (*Queue)(nil)

// New returns an empty queue. The capacity hint is accepted for interface
// symmetry with other schedulers but segments are allocated on demand.
func New(capacity int) *Queue {
	first := &segment{id: 0}
	q := &Queue{first: first}
	q.headSeg.Store(first)
	q.tailSeg.Store(first)
	return q
}

// ConcurrentFactory returns a sched.ConcurrentFactory producing FIFO queues.
func ConcurrentFactory() sched.ConcurrentFactory {
	return func(capacity, workers int) sched.Concurrent { return New(capacity) }
}

func pack(it sched.Item) uint64 {
	return uint64(it.Priority)<<32 | uint64(uint32(it.Task))
}

func unpack(v uint64) sched.Item {
	return sched.Item{Task: int32(uint32(v)), Priority: uint32(v >> 32)}
}

// findSegment walks (and extends) the segment list until it reaches the
// segment with the given id, updating the hint pointer if it advanced. The
// hint can legitimately be ahead of id (another goroutine with a later ticket
// advanced it first); in that case the walk restarts from the first segment,
// which is retained for the lifetime of the queue precisely so that lagging
// ticket holders can always find their cell.
func (q *Queue) findSegment(hint *atomic.Pointer[segment], id int64) *segment {
	seg := hint.Load()
	if seg.id > id {
		seg = q.first
	}
	for seg.id < id {
		next := seg.next.Load()
		if next == nil {
			candidate := &segment{id: seg.id + 1}
			if seg.next.CompareAndSwap(nil, candidate) {
				next = candidate
			} else {
				next = seg.next.Load()
			}
		}
		seg = next
	}
	// Advance the hint so later calls start closer; harmless if it races.
	if cur := hint.Load(); cur.id < seg.id {
		hint.CompareAndSwap(cur, seg)
	}
	return seg
}

// Insert enqueues an item at the tail.
func (q *Queue) Insert(it sched.Item) {
	v := pack(it) + cellBias
	for {
		t := q.tail.Add(1) - 1
		seg := q.findSegment(&q.tailSeg, t/segmentSize)
		cell := &seg.cells[t%segmentSize]
		if cell.CompareAndSwap(cellEmpty, v) {
			q.size.Add(1)
			return
		}
		// The cell was invalidated by a dequeuer that overtook us; retry with
		// a fresh ticket.
	}
}

// ApproxGetMin dequeues the item at the head of the FIFO. A false result
// means the queue was (momentarily) empty; under concurrent enqueues it may
// be spurious.
func (q *Queue) ApproxGetMin() (sched.Item, bool) {
	for {
		if q.size.Load() <= 0 {
			return sched.Item{}, false
		}
		h := q.head.Add(1) - 1
		seg := q.findSegment(&q.headSeg, h/segmentSize)
		cell := &seg.cells[h%segmentSize]
		if h >= q.tail.Load() {
			// No enqueuer has claimed this ticket yet: invalidate the cell so
			// the eventual owner retries elsewhere, then report empty.
			if cell.CompareAndSwap(cellEmpty, cellTaken) {
				return sched.Item{}, false
			}
			// An enqueuer published concurrently after all; consume it below.
		}
		// The enqueuer owning this ticket has performed (or will imminently
		// perform) its publish; wait for the value.
		for spin := 0; ; spin++ {
			v := cell.Load()
			if v >= cellBias {
				q.size.Add(-1)
				return unpack(v - cellBias), true
			}
			if v == cellTaken {
				// Only reachable via the race above; treat as empty slot and
				// try the next ticket.
				break
			}
			if spin > 128 {
				runtime.Gosched()
			}
		}
	}
}

// Len returns the approximate number of items currently in the queue.
func (q *Queue) Len() int { return int(q.size.Load()) }

// Empty reports whether the queue is (approximately) empty.
func (q *Queue) Empty() bool { return q.size.Load() <= 0 }
