package faaqueue

import (
	"sync"
	"testing"

	"relaxsched/internal/sched"
)

func TestFIFOOrderSequential(t *testing.T) {
	q := New(0)
	const n = 5000 // spans multiple segments
	for i := 0; i < n; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		it, ok := q.ApproxGetMin()
		if !ok {
			t.Fatalf("queue empty after %d dequeues, want %d items", i, n)
		}
		if it.Task != int32(i) || it.Priority != uint32(i) {
			t.Fatalf("dequeue %d returned %+v, want task %d", i, it, i)
		}
	}
	if _, ok := q.ApproxGetMin(); ok {
		t.Fatal("drained queue returned an item")
	}
	if !q.Empty() {
		t.Fatal("drained queue not empty")
	}
}

func TestEmptyQueue(t *testing.T) {
	q := New(10)
	if _, ok := q.ApproxGetMin(); ok {
		t.Fatal("empty queue returned an item")
	}
	if q.Len() != 0 || !q.Empty() {
		t.Fatal("empty queue misreports size")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []sched.Item{
		{Task: 0, Priority: 0},
		{Task: 1, Priority: 2},
		{Task: 1<<31 - 1, Priority: 1<<32 - 10},
		{Task: 123456, Priority: 654321},
	}
	for _, it := range cases {
		if got := unpack(pack(it)); got != it {
			t.Fatalf("round trip changed %+v to %+v", it, got)
		}
	}
}

func TestInterleavedInsertDequeue(t *testing.T) {
	q := New(0)
	next := int32(0)
	for round := 0; round < 200; round++ {
		for i := 0; i < 7; i++ {
			q.Insert(sched.Item{Task: next, Priority: uint32(next)})
			next++
		}
		for i := 0; i < 5; i++ {
			if _, ok := q.ApproxGetMin(); !ok {
				t.Fatal("unexpected empty during interleaving")
			}
		}
	}
	remaining := 0
	for {
		if _, ok := q.ApproxGetMin(); !ok {
			break
		}
		remaining++
	}
	if remaining != 200*2 {
		t.Fatalf("remaining = %d, want %d", remaining, 400)
	}
}

func TestConcurrentDrainDeliversEachItemOnce(t *testing.T) {
	const n = 50000
	const workers = 8
	q := New(n)
	for i := 0; i < n; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	var mu sync.Mutex
	delivered := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int32, 0, n/workers)
			for {
				it, ok := q.ApproxGetMin()
				if !ok {
					if q.Len() > 0 {
						continue // spurious empty under contention
					}
					break
				}
				local = append(local, it.Task)
			}
			mu.Lock()
			for _, task := range local {
				delivered[task]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for task, c := range delivered {
		if c != 1 {
			t.Fatalf("task %d delivered %d times", task, c)
		}
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const perProducer = 10000
	const producers = 4
	const consumers = 4
	q := New(0)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Insert(sched.Item{Task: int32(p*perProducer + i), Priority: 1})
			}
		}(p)
	}
	var consumed atomic64
	done := make(chan struct{})
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if _, ok := q.ApproxGetMin(); ok {
					consumed.add(1)
					continue
				}
				select {
				case <-done:
					// Producers finished; drain whatever is left.
					for {
						if _, ok := q.ApproxGetMin(); !ok {
							return
						}
						consumed.add(1)
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	if got := consumed.load(); got != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", got, producers*perProducer)
	}
}

// atomic64 is a tiny helper avoiding an import of sync/atomic in the test's
// hot loop signature.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) {
	a.mu.Lock()
	a.v += d
	a.mu.Unlock()
}

func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

func TestFactory(t *testing.T) {
	f := ConcurrentFactory()
	q := f(100, 4)
	q.Insert(sched.Item{Task: 7, Priority: 3})
	it, ok := q.ApproxGetMin()
	if !ok || it.Task != 7 {
		t.Fatalf("factory queue returned %v, %v", it, ok)
	}
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	q := New(0)
	for i := 0; i < 1024; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if it, ok := q.ApproxGetMin(); ok {
				q.Insert(it)
			}
		}
	})
}
