package sched

import (
	"relaxsched/internal/orderstat"
	"relaxsched/internal/stats"
)

// Instrumented wraps a sequential Scheduler and measures, for every
// ApproxGetMin, the rank of the returned item among all live items and the
// number of priority inversions the item suffered since it was (last)
// inserted. These are exactly the two quantities bounded by the paper's
// (k, φ)-relaxed scheduler definition, so tests use Instrumented to validate
// that the concrete schedulers empirically satisfy their claimed relaxation.
//
// Instrumented assumes priorities are dense labels in [0, universe), which is
// how the execution framework assigns them (the position of each task in the
// priority permutation).
type Instrumented struct {
	inner    Scheduler
	live     *orderstat.Set        // priorities currently inside the scheduler
	invAcc   *orderstat.RangeAdder // accumulated inversion counts by priority
	baseline []int64               // inversion count at the time of last insert

	ranks      stats.Accumulator
	inversions stats.Accumulator
	maxRank    int
	maxInv     int64
	removals   int64
}

var _ Scheduler = (*Instrumented)(nil)

// NewInstrumented wraps inner. universe must be strictly greater than any
// priority that will be inserted.
func NewInstrumented(inner Scheduler, universe int) *Instrumented {
	return &Instrumented{
		inner:    inner,
		live:     orderstat.NewSet(universe),
		invAcc:   orderstat.NewRangeAdder(universe),
		baseline: make([]int64, universe),
	}
}

// Insert adds an item and starts tracking its inversions.
func (m *Instrumented) Insert(it Item) {
	p := int(it.Priority)
	m.live.Insert(p)
	m.baseline[p] = m.invAcc.Get(p)
	m.inner.Insert(it)
}

// ApproxGetMin removes an item, recording its rank among live items and the
// inversions it suffered while live.
func (m *Instrumented) ApproxGetMin() (Item, bool) {
	it, ok := m.inner.ApproxGetMin()
	if !ok {
		return it, false
	}
	p := int(it.Priority)
	rank := m.live.Rank(p)
	m.live.Remove(p)
	inv := m.invAcc.Get(p) - m.baseline[p]

	m.ranks.Add(float64(rank))
	m.inversions.Add(float64(inv))
	if rank > m.maxRank {
		m.maxRank = rank
	}
	if inv > m.maxInv {
		m.maxInv = inv
	}
	m.removals++

	// Every live item with a smaller priority label suffers one inversion
	// unless the removed item was the true minimum.
	if p > 0 && rank > 1 {
		m.invAcc.AddRange(0, p-1, 1)
	}
	return it, true
}

// Len returns the number of held items.
func (m *Instrumented) Len() int { return m.inner.Len() }

// Empty reports whether the scheduler holds no items.
func (m *Instrumented) Empty() bool { return m.inner.Empty() }

// Metrics summarizes the relaxation observed so far.
type Metrics struct {
	// Removals is the number of successful ApproxGetMin calls.
	Removals int64
	// MeanRank and MaxRank describe the rank of removed items among live
	// items (1 = exact behaviour).
	MeanRank float64
	MaxRank  int
	// MeanInversions and MaxInversions describe the priority inversions
	// suffered by items between insertion and removal.
	MeanInversions float64
	MaxInversions  int64
}

// Metrics returns the relaxation statistics accumulated so far.
func (m *Instrumented) Metrics() Metrics {
	return Metrics{
		Removals:       m.removals,
		MeanRank:       m.ranks.Mean(),
		MaxRank:        m.maxRank,
		MeanInversions: m.inversions.Mean(),
		MaxInversions:  m.maxInv,
	}
}
