package sched

import (
	"sync"

	"relaxsched/internal/orderstat"
	"relaxsched/internal/stats"
)

// ConcurrentInstrumented wraps a Concurrent scheduler and measures the same
// relaxation quantities as Instrumented — rank of removed elements and
// priority inversions — for multi-threaded executions. It is how the
// repository validates empirically that the concurrent MultiQueue still
// satisfies the (k, φ)-relaxed model of Definition 1 when accessed by many
// goroutines, which is the assumption (supported by the paper's reference
// [1]) under which the paper's bounds transfer to concurrent executions.
//
// Measurement serializes every operation behind a mutex, so it perturbs
// timing; use it to study relaxation distributions, not performance.
type ConcurrentInstrumented struct {
	mu       sync.Mutex
	inner    Concurrent
	live     *orderstat.Set
	invAcc   *orderstat.RangeAdder
	baseline []int64

	ranks      stats.Accumulator
	inversions stats.Accumulator
	maxRank    int
	maxInv     int64
	removals   int64
}

var _ Concurrent = (*ConcurrentInstrumented)(nil)

// NewConcurrentInstrumented wraps inner. universe must be strictly greater
// than any priority that will be inserted. Schedulers without native batch
// operations are adapted with WithDefaultBatch.
func NewConcurrentInstrumented(inner Single, universe int) *ConcurrentInstrumented {
	return &ConcurrentInstrumented{
		inner:    WithDefaultBatch(inner),
		live:     orderstat.NewSet(universe),
		invAcc:   orderstat.NewRangeAdder(universe),
		baseline: make([]int64, universe),
	}
}

// recordInsert starts tracking an inserted item. Callers hold m.mu.
func (m *ConcurrentInstrumented) recordInsert(it Item) {
	p := int(it.Priority)
	m.live.Insert(p)
	m.baseline[p] = m.invAcc.Get(p)
}

// recordRemoval records the rank and inversions of a removed item. Callers
// hold m.mu.
func (m *ConcurrentInstrumented) recordRemoval(it Item) {
	p := int(it.Priority)
	rank := m.live.Rank(p)
	m.live.Remove(p)
	inv := m.invAcc.Get(p) - m.baseline[p]

	m.ranks.Add(float64(rank))
	m.inversions.Add(float64(inv))
	if rank > m.maxRank {
		m.maxRank = rank
	}
	if inv > m.maxInv {
		m.maxInv = inv
	}
	m.removals++
	if p > 0 && rank > 1 {
		m.invAcc.AddRange(0, p-1, 1)
	}
}

// Insert adds an item and starts tracking its inversions.
func (m *ConcurrentInstrumented) Insert(it Item) {
	m.mu.Lock()
	m.recordInsert(it)
	m.inner.Insert(it)
	m.mu.Unlock()
}

// ApproxGetMin removes an item, recording its rank among live items and the
// inversions it suffered while live.
func (m *ConcurrentInstrumented) ApproxGetMin() (Item, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	it, ok := m.inner.ApproxGetMin()
	if !ok {
		return it, false
	}
	m.recordRemoval(it)
	return it, true
}

// InsertBatch adds a batch through the inner scheduler's batch path,
// recording every item under a single measurement lock acquisition.
func (m *ConcurrentInstrumented) InsertBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	m.mu.Lock()
	for _, it := range items {
		m.recordInsert(it)
	}
	m.inner.InsertBatch(items)
	m.mu.Unlock()
}

// ApproxPopBatch removes a batch through the inner scheduler's batch path
// and records each removal in delivery order, exactly as a sequence of
// single removals would have been measured.
func (m *ConcurrentInstrumented) ApproxPopBatch(out []Item) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.inner.ApproxPopBatch(out)
	for _, it := range out[:n] {
		m.recordRemoval(it)
	}
	return n
}

// WorkerHandle forwards worker affinity to the inner scheduler when it
// supports it, so measured executions exercise the same affine insert, pop
// and steal paths as production ones; measurement still serializes behind
// the shared instrumentation lock. An inner scheduler without worker-affine
// state gets the wrapper itself back, exactly like sched.ForWorker.
func (m *ConcurrentInstrumented) WorkerHandle(worker, workers int) Concurrent {
	pw, ok := m.inner.(PerWorker)
	if !ok {
		return m
	}
	return &instrumentedHandle{parent: m, inner: pw.WorkerHandle(worker, workers)}
}

var _ PerWorker = (*ConcurrentInstrumented)(nil)

// instrumentedHandle records a worker's affine operations through the parent
// wrapper's measurement state. Like every worker handle it must only be used
// by its one worker, but the measurement lock makes the recording itself
// safe alongside other workers' handles.
type instrumentedHandle struct {
	parent *ConcurrentInstrumented
	inner  Concurrent
}

func (h *instrumentedHandle) Insert(it Item) {
	m := h.parent
	m.mu.Lock()
	m.recordInsert(it)
	h.inner.Insert(it)
	m.mu.Unlock()
}

func (h *instrumentedHandle) InsertBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	m := h.parent
	m.mu.Lock()
	for _, it := range items {
		m.recordInsert(it)
	}
	h.inner.InsertBatch(items)
	m.mu.Unlock()
}

func (h *instrumentedHandle) ApproxGetMin() (Item, bool) {
	m := h.parent
	m.mu.Lock()
	defer m.mu.Unlock()
	it, ok := h.inner.ApproxGetMin()
	if !ok {
		return it, false
	}
	m.recordRemoval(it)
	return it, true
}

func (h *instrumentedHandle) ApproxPopBatch(out []Item) int {
	m := h.parent
	m.mu.Lock()
	defer m.mu.Unlock()
	n := h.inner.ApproxPopBatch(out)
	for _, it := range out[:n] {
		m.recordRemoval(it)
	}
	return n
}

// Metrics returns the relaxation statistics accumulated so far. It is safe
// to call concurrently with operations, but the snapshot is only fully
// consistent once the execution has finished.
func (m *ConcurrentInstrumented) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Removals:       m.removals,
		MeanRank:       m.ranks.Mean(),
		MaxRank:        m.maxRank,
		MeanInversions: m.inversions.Mean(),
		MaxInversions:  m.maxInv,
	}
}
