package sched

import (
	"sync"
	"testing"
)

// lifoConcurrent is a mutex-protected LIFO used to exercise the concurrent
// instrumentation without importing the scheduler sub-packages.
type lifoConcurrent struct {
	mu    sync.Mutex
	items []Item
}

func (l *lifoConcurrent) Insert(it Item) {
	l.mu.Lock()
	l.items = append(l.items, it)
	l.mu.Unlock()
}

func (l *lifoConcurrent) ApproxGetMin() (Item, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.items) == 0 {
		return Item{}, false
	}
	it := l.items[len(l.items)-1]
	l.items = l.items[:len(l.items)-1]
	return it, true
}

func TestConcurrentInstrumentedSequentialUse(t *testing.T) {
	const n = 10
	m := NewConcurrentInstrumented(&lifoConcurrent{}, n)
	for i := 0; i < n; i++ {
		m.Insert(Item{Task: int32(i), Priority: uint32(i)})
	}
	// LIFO: first removal has rank n, last item suffers n-1 inversions.
	if it, ok := m.ApproxGetMin(); !ok || it.Priority != n-1 {
		t.Fatalf("first removal = %v, %v", it, ok)
	}
	for {
		if _, ok := m.ApproxGetMin(); !ok {
			break
		}
	}
	metrics := m.Metrics()
	if metrics.Removals != n {
		t.Fatalf("removals = %d, want %d", metrics.Removals, n)
	}
	if metrics.MaxRank != n {
		t.Fatalf("MaxRank = %d, want %d", metrics.MaxRank, n)
	}
	if metrics.MaxInversions != n-1 {
		t.Fatalf("MaxInversions = %d, want %d", metrics.MaxInversions, n-1)
	}
}

func TestConcurrentInstrumentedParallelDrainConsistency(t *testing.T) {
	// Parallel inserts and drains: the wrapper must never lose or duplicate
	// accounting (total removals equals total inserts) and never deadlock.
	const n = 20000
	const workers = 8
	m := NewConcurrentInstrumented(&lifoConcurrent{}, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				m.Insert(Item{Task: int32(i), Priority: uint32(i)})
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := m.ApproxGetMin(); !ok {
					return
				}
			}
		}()
	}
	wg.Wait()
	metrics := m.Metrics()
	if metrics.Removals != n {
		t.Fatalf("removals = %d, want %d", metrics.Removals, n)
	}
	if metrics.MaxRank < 1 || metrics.MaxRank > n {
		t.Fatalf("implausible MaxRank %d", metrics.MaxRank)
	}
}

func TestConcurrentInstrumentedEmpty(t *testing.T) {
	m := NewConcurrentInstrumented(&lifoConcurrent{}, 4)
	if _, ok := m.ApproxGetMin(); ok {
		t.Fatal("empty scheduler returned an item")
	}
	if m.Metrics().Removals != 0 {
		t.Fatal("failed gets recorded as removals")
	}
}
