package kbounded

import (
	"testing"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestBatchPopEquivalentToSingles(t *testing.T) {
	// ApproxPopBatch must return exactly the sequence a loop of
	// ApproxGetMin calls would, for random interleavings of inserts and
	// pops of varying batch sizes.
	r := rng.New(21)
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(8)
		single := New(k, 64)
		batched := New(k, 64)
		next := int32(0)
		for step := 0; step < 40; step++ {
			if r.Intn(2) == 0 {
				count := 1 + r.Intn(6)
				items := make([]sched.Item, count)
				for i := range items {
					items[i] = sched.Item{Task: next, Priority: uint32(r.Intn(100))}
					next++
				}
				for _, it := range items {
					single.Insert(it)
				}
				batched.InsertBatch(items)
			} else {
				want := 1 + r.Intn(6)
				out := make([]sched.Item, want)
				n := batched.ApproxPopBatch(out)
				for i := 0; i < n; i++ {
					it, ok := single.ApproxGetMin()
					if !ok {
						t.Fatalf("trial %d: batched returned %d items, single ran dry at %d", trial, n, i)
					}
					if it != out[i] {
						t.Fatalf("trial %d: batch item %d = %v, single pop = %v", trial, i, out[i], it)
					}
				}
				if n < want {
					if it, ok := single.ApproxGetMin(); ok {
						t.Fatalf("trial %d: batched stopped at %d but single still has %v", trial, n, it)
					}
				}
			}
			if single.Len() != batched.Len() {
				t.Fatalf("trial %d: Len diverged: %d vs %d", trial, single.Len(), batched.Len())
			}
		}
	}
}

func TestBatchPopRankStaysBounded(t *testing.T) {
	// Every item a batch pop returns must still be among the k smallest
	// live items at the moment it is (logically) removed.
	const k = 4
	q := New(k, 64)
	for i := 63; i >= 0; i-- {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	live := make(map[uint32]bool, 64)
	for i := 0; i < 64; i++ {
		live[uint32(i)] = true
	}
	out := make([]sched.Item, 6)
	for {
		n := q.ApproxPopBatch(out)
		if n == 0 {
			break
		}
		for _, it := range out[:n] {
			rank := 1
			for p := range live {
				if p < it.Priority {
					rank++
				}
			}
			if rank > k {
				t.Fatalf("item %v had rank %d > k=%d", it, rank, k)
			}
			delete(live, it.Priority)
		}
	}
	if len(live) != 0 {
		t.Fatalf("%d items never delivered", len(live))
	}
}
