// Package kbounded implements a deterministic k-relaxed scheduler in the
// spirit of the k-LSM of Wimmer et al. (reference [26] of the paper): every
// returned item is guaranteed to be among the k smallest live items, and an
// item can be overtaken by at most k-1 lower-priority items before it is
// returned. As the paper notes, such deterministic structures trivially
// satisfy the (k, φ)-relaxed scheduler definition.
//
// The structure keeps an exact heap plus a FIFO dispatch buffer of at most k
// items and maintains the invariant that every buffered item is no larger
// than every heap item (so the buffer always holds the |buffer| smallest live
// items):
//
//   - ApproxGetMin tops the buffer up from the heap (heap minima, so the
//     invariant is preserved) and returns the buffer's FIFO front. Because
//     the buffer holds at most k of the smallest items, the returned rank is
//     at most k.
//   - Insert places the new item directly into the buffer when it is smaller
//     than the current buffer maximum, evicting that maximum back to the
//     heap; otherwise it goes to the heap. This keeps the invariant under
//     arbitrary interleavings of inserts and deletes.
//
// An item suffers inversions only from the at most k-1 items that were ahead
// of it in the dispatch buffer when it was inserted, so the fairness bound is
// deterministic as well.
package kbounded

import (
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
)

// Queue is a deterministic k-relaxed scheduler.
type Queue struct {
	heap   *exactheap.Heap
	buffer []sched.Item // FIFO dispatch buffer, len <= k, subset of k smallest
	k      int
}

var (
	_ sched.Scheduler = (*Queue)(nil)
	_ sched.Batcher   = (*Queue)(nil)
)

// New returns a k-bounded queue. Values of k below 1 are treated as 1, which
// degenerates to an exact scheduler.
func New(k, capacity int) *Queue {
	if k < 1 {
		k = 1
	}
	return &Queue{
		heap:   exactheap.New(capacity),
		buffer: make([]sched.Item, 0, k),
		k:      k,
	}
}

// Factory returns a sched.Factory producing k-bounded queues.
func Factory(k int) sched.Factory {
	return func(capacity int) sched.Scheduler { return New(k, capacity) }
}

// K returns the relaxation bound.
func (q *Queue) K() int { return q.k }

// SetK retunes the relaxation bound at runtime (values below 1 are treated
// as 1, as in New). Growing k just lets the dispatch buffer fill further on
// the next ApproxGetMin. Shrinking evicts the buffer's *largest* items back
// to the heap until the buffer fits — evicting maxima (rather than, say,
// trimming the FIFO tail) keeps the invariant that every buffered item is
// no larger than every heap item, so dispatches obey the new, tighter rank
// bound immediately, not after the old buffer drains. relaxd's adaptive
// controller (-jobsched auto) relies on that immediacy when it tightens in
// response to a rank-error SLO violation.
func (q *Queue) SetK(k int) {
	if k < 1 {
		k = 1
	}
	q.k = k
	for len(q.buffer) > k {
		maxIdx := 0
		for i := 1; i < len(q.buffer); i++ {
			if q.buffer[maxIdx].Less(q.buffer[i]) {
				maxIdx = i
			}
		}
		q.heap.Insert(q.buffer[maxIdx])
		// Close the gap with a shift, not a swap: the buffer is a FIFO and
		// the surviving items must keep their dispatch order.
		q.buffer = append(q.buffer[:maxIdx], q.buffer[maxIdx+1:]...)
	}
}

// Insert adds an item. If the item is smaller than the largest buffered item
// it takes that item's place in the dispatch buffer (the displaced item
// returns to the heap), preserving the invariant that the buffer holds the
// smallest live items.
func (q *Queue) Insert(it sched.Item) {
	if len(q.buffer) > 0 {
		maxIdx := 0
		for i := 1; i < len(q.buffer); i++ {
			if q.buffer[maxIdx].Less(q.buffer[i]) {
				maxIdx = i
			}
		}
		if it.Less(q.buffer[maxIdx]) {
			q.heap.Insert(q.buffer[maxIdx])
			q.buffer[maxIdx] = it
			return
		}
	}
	q.heap.Insert(it)
}

// ApproxGetMin returns the front of the dispatch buffer after topping the
// buffer up from the heap. The returned item always has rank at most k among
// live items.
func (q *Queue) ApproxGetMin() (sched.Item, bool) {
	for len(q.buffer) < q.k {
		it, ok := q.heap.ApproxGetMin()
		if !ok {
			break
		}
		q.buffer = append(q.buffer, it)
	}
	if len(q.buffer) == 0 {
		return sched.Item{}, false
	}
	it := q.buffer[0]
	copy(q.buffer, q.buffer[1:])
	q.buffer = q.buffer[:len(q.buffer)-1]
	return it, true
}

// InsertBatch adds every item, maintaining the dispatch-buffer invariant per
// item. Under a sched.Locked wrapper the whole batch costs a single lock
// acquisition, which is where the amortization the concurrent executor
// relies on comes from.
func (q *Queue) InsertBatch(items []sched.Item) {
	for _, it := range items {
		q.Insert(it)
	}
}

// ApproxPopBatch removes up to len(out) items in dispatch order, exactly
// the sequence a loop of ApproxGetMin calls returns. The buffer is
// deliberately topped up between items: skipping the refills would leave
// the dispatch buffer smaller than k, and a later Insert comparing against
// the shrunken buffer maximum would route items differently — the
// deterministic scheduler's delivery order would then depend on the batch
// size, which would be a very surprising property.
func (q *Queue) ApproxPopBatch(out []sched.Item) int {
	n := 0
	for n < len(out) {
		it, ok := q.ApproxGetMin()
		if !ok {
			break
		}
		out[n] = it
		n++
	}
	return n
}

// Len returns the number of held items.
func (q *Queue) Len() int { return q.heap.Len() + len(q.buffer) }

// Empty reports whether the queue holds no items.
func (q *Queue) Empty() bool { return q.Len() == 0 }
