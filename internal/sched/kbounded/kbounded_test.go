package kbounded

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestExactWhenKOne(t *testing.T) {
	q := New(1, 8)
	prios := []uint32{4, 1, 3, 0, 2}
	for i, p := range prios {
		q.Insert(sched.Item{Task: int32(i), Priority: p})
	}
	sorted := append([]uint32(nil), prios...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, want := range sorted {
		it, ok := q.ApproxGetMin()
		if !ok || it.Priority != want {
			t.Fatalf("got %v, want priority %d", it, want)
		}
	}
}

func TestKClamped(t *testing.T) {
	if New(0, 1).K() != 1 || New(-3, 1).K() != 1 {
		t.Fatal("k not clamped to 1")
	}
}

func TestEmpty(t *testing.T) {
	q := New(4, 0)
	if _, ok := q.ApproxGetMin(); ok {
		t.Fatal("empty queue returned item")
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("empty queue misreports size")
	}
}

func TestRankNeverExceedsK(t *testing.T) {
	const n = 300
	const k = 7
	q := New(k, n)
	r := rng.New(5)
	live := make(map[uint32]bool)
	// Interleave inserts and deletes to exercise the buffer/heap interaction.
	next := 0
	for next < n || len(live) > 0 {
		if next < n && (len(live) == 0 || r.Intn(2) == 0) {
			p := uint32(r.Intn(1 << 20))
			for live[p] {
				p++
			}
			q.Insert(sched.Item{Task: int32(next), Priority: p})
			live[p] = true
			next++
			continue
		}
		it, ok := q.ApproxGetMin()
		if !ok {
			t.Fatal("queue empty while model non-empty")
		}
		rank := 1
		for p := range live {
			if p < it.Priority {
				rank++
			}
		}
		if rank > k {
			t.Fatalf("returned rank %d > k=%d", rank, k)
		}
		if !live[it.Priority] {
			t.Fatalf("returned unknown priority %d", it.Priority)
		}
		delete(live, it.Priority)
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestLenCountsBufferAndHeap(t *testing.T) {
	q := New(3, 10)
	for i := 0; i < 10; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	q.ApproxGetMin() // pulls 3 into the buffer, returns 1
	if q.Len() != 9 {
		t.Fatalf("Len = %d after one removal, want 9", q.Len())
	}
}

func TestInversionsBoundedByK(t *testing.T) {
	// Once an item reaches the dispatch buffer it can be overtaken at most
	// k-1 times. We verify via instrumentation that max inversions stays
	// small (it can exceed k-1 slightly only through heap residence, which
	// for monotone priorities here it does not).
	const n = 1000
	const k = 5
	inner := New(k, n)
	q := sched.NewInstrumented(inner, n)
	for i := 0; i < n; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	for {
		if _, ok := q.ApproxGetMin(); !ok {
			break
		}
	}
	m := q.Metrics()
	if m.MaxRank > k {
		t.Fatalf("max rank %d > k=%d", m.MaxRank, k)
	}
	if m.MaxInversions > int64(k-1) {
		t.Fatalf("max inversions %d > k-1=%d", m.MaxInversions, k-1)
	}
}

func TestNoLossNoDuplication(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		k := 1 + r.Intn(10)
		q := New(k, n)
		for i := 0; i < n; i++ {
			q.Insert(sched.Item{Task: int32(i), Priority: uint32(r.Intn(1 << 16))})
		}
		seen := make([]bool, n)
		count := 0
		for {
			it, ok := q.ApproxGetMin()
			if !ok {
				break
			}
			if seen[it.Task] {
				return false
			}
			seen[it.Task] = true
			count++
		}
		return count == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFactory(t *testing.T) {
	f := Factory(4)
	q := f(8)
	q.Insert(sched.Item{Task: 0, Priority: 1})
	if q.Len() != 1 {
		t.Fatal("factory queue broken")
	}
}

func TestSetKShrinkBoundsRankImmediately(t *testing.T) {
	// Run wide, then tighten mid-stream: the very next dispatch must obey
	// the new bound — SetK evicts buffer maxima back to the heap, so the
	// buffer never transiently serves an item of rank > new k.
	const n = 400
	q := New(9, n)
	r := rng.New(11)
	live := make(map[uint32]bool)
	for i := 0; i < n; i++ {
		p := uint32(r.Intn(1 << 20))
		for live[p] {
			p++
		}
		q.Insert(sched.Item{Task: int32(i), Priority: p})
		live[p] = true
	}
	pop := func(bound int) {
		t.Helper()
		it, ok := q.ApproxGetMin()
		if !ok {
			t.Fatal("queue empty while model non-empty")
		}
		rank := 1
		for p := range live {
			if p < it.Priority {
				rank++
			}
		}
		if rank > bound {
			t.Fatalf("returned rank %d > bound %d", rank, bound)
		}
		delete(live, it.Priority)
	}
	for i := 0; i < 50; i++ {
		pop(9) // fills the dispatch buffer to 9
	}
	q.SetK(2)
	if q.K() != 2 {
		t.Fatalf("K = %d after SetK(2), want 2", q.K())
	}
	for len(live) > 0 {
		pop(2)
	}
}

func TestSetKPreservesItemsAndOrderOfSurvivors(t *testing.T) {
	// Shrinking must lose nothing and must keep the surviving buffered
	// items in their FIFO order; the exact construction is traced in the
	// step comments below.
	q := New(5, 16)
	for i := 0; i < 10; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	it, _ := q.ApproxGetMin() // returns 0; buffer is FIFO 1, 2, 3, 4
	q.Insert(it)              // 0 < buffer max 4: 4 to the heap, buffer 1, 2, 3, 0
	q.SetK(2)                 // evict maxima 3 then 2: buffer 1, 0
	if q.Len() != 10 {
		t.Fatalf("Len = %d after SetK, want 10 (nothing lost)", q.Len())
	}
	var got []uint32
	for {
		it, ok := q.ApproxGetMin()
		if !ok {
			break
		}
		got = append(got, it.Priority)
	}
	if len(got) != 10 {
		t.Fatalf("drained %d items, want 10", len(got))
	}
	// Survivors of the k=2 shrink are 1, 2, 0 minus evictions down to two
	// items: maxima 4, 3, then 2 are evicted, leaving FIFO 1, 0.
	want := []uint32{1, 0, 2, 3, 4, 5, 6, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
}

func TestSetKClampsAndGrows(t *testing.T) {
	q := New(4, 8)
	q.SetK(0)
	if q.K() != 1 {
		t.Fatalf("SetK(0) left K = %d, want clamp to 1", q.K())
	}
	q.SetK(16)
	if q.K() != 16 {
		t.Fatalf("SetK(16) left K = %d", q.K())
	}
	for i := 0; i < 8; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	if it, ok := q.ApproxGetMin(); !ok || it.Priority != 0 {
		t.Fatalf("got %v after grow, want priority 0", it)
	}
}
