package kbounded

import (
	"sync"
	"sync/atomic"
	"testing"

	"relaxsched/internal/sched"
)

// TestSetKConcurrentRetune hammers a queue with concurrent Insert /
// ApproxGetMin / batch traffic while a tuner goroutine retunes k, under
// the same discipline the manager's control loop uses in production: one
// external mutex guards every operation including SetK. Run under -race
// (the Makefile race target covers this package) it proves the pattern is
// sound; the conservation and final-drain checks prove SetK's buffer
// evictions never lose or duplicate an item regardless of where a retune
// lands between operations.
func TestSetKConcurrentRetune(t *testing.T) {
	const (
		writers    = 4
		poppers    = 4
		perWriter  = 2000
		totalItems = writers * perWriter
	)
	var (
		mu     sync.Mutex
		q      = New(8, 64)
		popped atomic.Int64
		wg     sync.WaitGroup
	)

	// Writers: deterministic pseudo-random priorities, a mix of single and
	// batch inserts.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []sched.Item
			for i := 0; i < perWriter; i++ {
				it := sched.Item{
					Task:     int32(w*perWriter + i),
					Priority: uint32((i*2654435761 + w*40503) % 10000),
				}
				if i%3 == 0 {
					batch = append(batch, it)
					if len(batch) == 16 {
						mu.Lock()
						q.InsertBatch(batch)
						mu.Unlock()
						batch = batch[:0]
					}
					continue
				}
				mu.Lock()
				q.Insert(it)
				mu.Unlock()
			}
			if len(batch) > 0 {
				mu.Lock()
				q.InsertBatch(batch)
				mu.Unlock()
			}
		}(w)
	}

	// Poppers: single pops and batch pops until every item is out.
	for p := 0; p < poppers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out := make([]sched.Item, 8)
			for popped.Load() < totalItems {
				mu.Lock()
				var n int
				if p%2 == 0 {
					if _, ok := q.ApproxGetMin(); ok {
						n = 1
					}
				} else {
					n = q.ApproxPopBatch(out)
				}
				mu.Unlock()
				if n > 0 {
					popped.Add(int64(n))
				}
			}
		}(p)
	}

	// Tuner: sweep k up and down across the whole traffic burst, the moves
	// the adaptive controller makes when SLOs flap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ks := []int{1, 4, 32, 2, 16, 1, 8, 64, 3}
		for i := 0; popped.Load() < totalItems; i++ {
			mu.Lock()
			q.SetK(ks[i%len(ks)])
			if got := q.K(); got != max(ks[i%len(ks)], 1) {
				mu.Unlock()
				t.Errorf("K() = %d after SetK(%d)", got, ks[i%len(ks)])
				return
			}
			mu.Unlock()
		}
	}()

	wg.Wait()
	if n := popped.Load(); n != totalItems {
		t.Fatalf("popped %d items, inserted %d", n, totalItems)
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("queue not empty after full drain: len %d", q.Len())
	}

	// A second, sequential pass pins the semantic half: retunes mid-stream
	// still never lose items, and after SetK(1) the queue dispatches in
	// exact priority order.
	for i := 0; i < 100; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32((i * 37) % 100)})
		if i%10 == 0 {
			q.SetK(1 + i%5)
		}
	}
	q.SetK(1)
	var prev sched.Item
	for i := 0; i < 100; i++ {
		it, ok := q.ApproxGetMin()
		if !ok {
			t.Fatalf("queue dried up after %d of 100 items", i)
		}
		if i > 0 && it.Less(prev) {
			t.Fatalf("k=1 dispatch out of order: %v after %v", it, prev)
		}
		prev = it
	}
	if !q.Empty() {
		t.Fatalf("queue not empty: len %d", q.Len())
	}
}
