package sched

import "sync"

// Locked wraps a sequential Scheduler with a mutex, producing a scheduler
// that satisfies both Scheduler and Concurrent. It is the classic
// "coarse-grained lock" baseline: semantically identical to the wrapped
// scheduler but with all scalability removed, which is exactly how the paper
// characterizes exact schedulers ("exact but not scalable").
type Locked struct {
	mu    sync.Mutex
	inner Scheduler
}

var (
	_ Scheduler  = (*Locked)(nil)
	_ Concurrent = (*Locked)(nil)
)

// NewLocked returns a Locked wrapper around inner. The wrapper owns inner;
// callers must not use inner directly afterwards.
func NewLocked(inner Scheduler) *Locked {
	return &Locked{inner: inner}
}

// Insert adds an item under the lock.
func (l *Locked) Insert(it Item) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Insert(it)
}

// ApproxGetMin removes an item under the lock.
func (l *Locked) ApproxGetMin() (Item, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.ApproxGetMin()
}

// Len returns the number of held items.
func (l *Locked) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Len()
}

// Empty reports whether the scheduler holds no items.
func (l *Locked) Empty() bool {
	return l.Len() == 0
}
