package sched

import "sync"

// Locked wraps a sequential Scheduler with a mutex, producing a scheduler
// that satisfies both Scheduler and Concurrent. It is the classic
// "coarse-grained lock" baseline: semantically identical to the wrapped
// scheduler but with all scalability removed, which is exactly how the paper
// characterizes exact schedulers ("exact but not scalable").
type Locked struct {
	mu    sync.Mutex
	inner Scheduler
	// batch is inner itself when it natively supports batch operations
	// (skipping per-item virtual calls), or a loop adapter otherwise.
	// Either way it is only invoked while mu is held.
	batch batchOps
}

// batchOps is the batch half of the Concurrent interface, satisfied by both
// Batcher implementations and the loop-based batchAdapter.
type batchOps interface {
	InsertBatch(items []Item)
	ApproxPopBatch(out []Item) int
}

var (
	_ Scheduler  = (*Locked)(nil)
	_ Concurrent = (*Locked)(nil)
)

// NewLocked returns a Locked wrapper around inner. The wrapper owns inner;
// callers must not use inner directly afterwards.
func NewLocked(inner Scheduler) *Locked {
	l := &Locked{inner: inner}
	if b, ok := inner.(Batcher); ok {
		l.batch = b
	} else {
		l.batch = batchAdapter{Single: inner}
	}
	return l
}

// Insert adds an item under the lock.
func (l *Locked) Insert(it Item) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Insert(it)
}

// ApproxGetMin removes an item under the lock.
func (l *Locked) ApproxGetMin() (Item, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.ApproxGetMin()
}

// InsertBatch adds every item under a single lock acquisition — the whole
// point of batching with a coarse-grained lock: the per-item cost drops to a
// plain method call instead of an uncontended (or worse, contended)
// lock/unlock pair.
func (l *Locked) InsertBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.batch.InsertBatch(items)
}

// ApproxPopBatch removes up to len(out) items under a single lock
// acquisition. Popping B items at once from a k-relaxed inner scheduler
// relaxes the rank bound to k + B, which remains within the paper's model.
func (l *Locked) ApproxPopBatch(out []Item) int {
	if len(out) == 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.batch.ApproxPopBatch(out)
}

// Len returns the number of held items.
func (l *Locked) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Len()
}

// Empty reports whether the scheduler holds no items.
func (l *Locked) Empty() bool {
	return l.Len() == 0
}
