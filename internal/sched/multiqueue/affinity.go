package multiqueue

import (
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

// This file implements the worker-affine fast path of the concurrent
// MultiQueue. A plain Concurrent treats every operation as coming from an
// anonymous thread: each insert and each two-choice sample draws from the
// full sub-queue range, and each operation borrows a random generator from a
// sync.Pool. Both choices cost real cross-core traffic in the executor hot
// loop — uniformly random sub-queue choice bounces every worker across every
// sub-queue's cache lines, and the pool get/put is two more shared-memory
// operations per scheduler call.
//
// A Handle gives one executor worker an affine view: a contiguous "home"
// slice of sub-queues that the worker's two-choice pop samples prefer, a
// private random stream (zero pool traffic), and a steal path that visits
// the other workers' shards in ring order — nearest neighbor first — when
// the home shard runs dry, before falling back to the parent's global
// sampling. Because each worker's pops mostly touch its own c/W sub-queues,
// the sub-queue locks and heap storage stay core-local; because a worker
// whose shard empties immediately steals, no items are stranded and the
// load rebalances at exactly the moment imbalance appears.
//
// What happens to the relaxation guarantee: affinity alone would break it.
// If a worker only ever sampled its own shard while the shard had items, the
// minima accumulating in a slow (or descheduled) worker's shard would age
// unboundedly — on a box with fewer cores than workers this is the common
// case, and the integration envelopes catch it immediately. The handle
// therefore keeps the classic MultiQueue coverage property: every pop
// attempt compares the best of two home samples against the best of one
// round of CLASSIC two-choice over the full queue range (the "cross-shard
// glance"), popping whichever hint is smaller with ties kept home. Whenever
// the glance wins, the pop is exactly a uniform two-choice pop — every
// sub-queue keeps its classic >= 1/c-per-pop global sampling coverage — and
// whenever home wins, popping the strictly smaller minimum is rank-optimal
// for that removal; the Definition 1 envelope is preserved with modestly
// larger constants. Inserts likewise stay uniform over the full range
// (shard-confined inserts concentrate a worker's emitted priorities W-fold
// and measurably break the envelope under batched draining). The
// integration suite pins the envelope empirically with affinity enabled,
// and the steal tests in steal_test.go pin the empty-shard drain order
// deterministically.
type Handle struct {
	mq *Concurrent
	r  *rng.Rand
	// The home shard is queues[homeLo : homeLo+homeN].
	homeLo  int
	homeN   int
	worker  int
	workers int
	one     [1]sched.Item
}

var _ sched.Concurrent = (*Handle)(nil)

// WorkerHandle returns worker's affine view of the MultiQueue for an
// execution with the given total worker count: the sub-queue range is
// partitioned into `workers` contiguous, balanced home shards and the handle
// owns the shard of `worker`. Degenerate arguments are clamped (at most one
// worker per sub-queue, worker taken modulo the worker count), so the method
// never fails; a handle is cheap enough to acquire once per worker per run.
// The returned handle is NOT safe for concurrent use — it is the per-worker
// half of sched.PerWorker.
func (m *Concurrent) WorkerHandle(worker, workers int) sched.Concurrent {
	c := len(m.queues)
	if workers < 1 {
		workers = 1
	}
	if workers > c {
		workers = c
	}
	if worker < 0 {
		worker = -worker
	}
	worker %= workers
	lo := worker * c / workers
	hi := (worker + 1) * c / workers
	return &Handle{
		mq:      m,
		r:       rng.New(m.seed.Add(0x9e3779b97f4a7c15)),
		homeLo:  lo,
		homeN:   hi - lo,
		worker:  worker,
		workers: workers,
	}
}

// Insert pushes the item into a uniformly random sub-queue over the FULL
// queue range, exactly like the parent — but drawn from the handle's private
// stream, so the per-operation sync.Pool traffic is gone. Inserts are
// deliberately NOT shard-affine: confining a worker's inserts to its c/W
// home queues concentrates its emitted priorities W-fold, and the
// Definition 1 integration envelopes measurably blow up when the batched
// executor replays that concentration (a batch removal drains one sub-queue
// deep). Uniform insert spreading is what the classic MultiQueue rank
// analysis assumes; the locality win lives on the pop side, where it is
// envelope-safe.
func (h *Handle) Insert(it sched.Item) {
	h.one[0] = it
	h.mq.insertRun(h.r.Intn(len(h.mq.queues)), h.one[:])
	h.mq.size.Add(1)
}

// InsertBatch pushes the items into uniformly random sub-queues over the
// full queue range in runs of insertRunLength — the parent's amortization
// and distribution, driven by the handle's private random stream (no pool
// get/put). See Insert for why handle inserts are not shard-affine.
func (h *Handle) InsertBatch(items []sched.Item) {
	if len(items) == 0 {
		return
	}
	h.mq.insertBatchWith(h.r, 0, len(h.mq.queues), items)
}

// ApproxGetMin removes one item via the affine pop path.
func (h *Handle) ApproxGetMin() (sched.Item, bool) {
	if h.popAffine(h.one[:]) == 1 {
		return h.one[0], true
	}
	return sched.Item{}, false
}

// ApproxPopBatch removes up to len(out) items via the affine pop path: home
// two-choice first, then the neighbor steal ring, then the parent's global
// sampling with its exhaustive-scan backstop — so a zero result carries the
// same "really empty right now" strength as the parent's.
func (h *Handle) ApproxPopBatch(out []sched.Item) int {
	return h.popAffine(out)
}

// popAffine is the worker-affine removal path.
func (h *Handle) popAffine(out []sched.Item) int {
	m := h.mq
	if len(out) == 0 {
		return 0
	}
	if m.size.Load() == 0 {
		m.emptyPolls.Add(1)
		return 0
	}
	// Home-shard two-choice with a bounded number of attempts; a locked
	// sub-queue (the neighbor shard's owner stealing from us) just costs a
	// fresh sample.
	const maxHomeAttempts = 4
	for attempt := 0; attempt < maxHomeAttempts; attempt++ {
		idx := h.sampleHome()
		if idx < 0 {
			break // home hints say the shard is empty: steal
		}
		// Cross-shard glance: run one round of CLASSIC two-choice over the
		// full queue range and take whichever candidate's hint is smaller,
		// ties staying home. When home does not hold the strictly smaller
		// minimum the pop is exactly a uniform two-choice pop, so the classic
		// rank analysis applies unchanged; when home is strictly smaller,
		// popping it is rank-optimal for this removal. A single-sample glance
		// is NOT enough — best-of-two-home versus one global draw is biased
		// toward home even under identical queue distributions, and the
		// integration envelopes catch the resulting cross-shard aging.
		if g := h.sampleGlobal(); g >= 0 && m.queues[g].top.Load() < m.queues[idx].top.Load() {
			idx = g
		}
		q := &m.queues[idx]
		if !q.mu.TryLock() {
			continue
		}
		n := m.popBatchFrom(q, out)
		q.mu.Unlock()
		if n > 0 {
			return n
		}
	}
	if n := h.steal(out); n > 0 {
		m.steals.Add(1)
		return n
	}
	m.globalFallbacks.Add(1)
	return m.popAny(out)
}

// sampleHome runs two-choice sampling restricted to the home shard: it picks
// two distinct home sub-queues (or the single one, for one-queue shards) and
// returns the index of the one with the smaller min-hint, or -1 when every
// sampled hint is empty.
func (h *Handle) sampleHome() int {
	m := h.mq
	if h.homeN == 1 {
		if m.queues[h.homeLo].top.Load() == emptyHint {
			return -1
		}
		return h.homeLo
	}
	ri := h.r.Intn(h.homeN)
	rj := h.r.Intn(h.homeN - 1)
	if rj >= ri {
		rj++
	}
	i, j := h.homeLo+ri, h.homeLo+rj
	ti := m.queues[i].top.Load()
	tj := m.queues[j].top.Load()
	switch {
	case tj < ti:
		return j
	case ti == emptyHint && tj == emptyHint:
		return -1
	default:
		return i
	}
}

// sampleGlobal runs one round of uniform two-choice over the FULL sub-queue
// range using the handle's private stream: two distinct queues, returning the
// index of the one with the smaller hint, or -1 when both sampled hints are
// empty. It is the cross-shard half of the affine pop's comparison.
func (h *Handle) sampleGlobal() int {
	m := h.mq
	c := len(m.queues)
	i := h.r.Intn(c)
	j := h.r.Intn(c - 1)
	if j >= i {
		j++
	}
	ti := m.queues[i].top.Load()
	tj := m.queues[j].top.Load()
	switch {
	case tj < ti:
		return j
	case ti == emptyHint && tj == emptyHint:
		return -1
	default:
		return i
	}
}

// steal visits the other workers' home shards in ring order of distance —
// the nearest neighbor's shard first — and pops from the first sub-queue
// whose hint shows items. Hints are checked before locking, so scanning a
// run of empty shards costs one atomic load per sub-queue and no lock
// traffic.
func (h *Handle) steal(out []sched.Item) int {
	m := h.mq
	c := len(m.queues)
	for d := 1; d < h.workers; d++ {
		w := h.worker + d
		if w >= h.workers {
			w -= h.workers
		}
		lo := w * c / h.workers
		hi := (w + 1) * c / h.workers
		for idx := lo; idx < hi; idx++ {
			q := &m.queues[idx]
			if q.top.Load() == emptyHint {
				continue
			}
			q.mu.Lock()
			n := m.popBatchFrom(q, out)
			q.mu.Unlock()
			if n > 0 {
				return n
			}
		}
	}
	return 0
}
