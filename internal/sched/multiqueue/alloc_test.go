package multiqueue

import (
	"testing"

	"relaxsched/internal/sched"
)

func TestApproxGetMinDoesNotAllocate(t *testing.T) {
	mq := NewConcurrent(4, 1024, 1)
	for i := 0; i < 1024; i++ {
		mq.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	allocs := testing.AllocsPerRun(200, func() {
		mq.ApproxGetMin()
	})
	if allocs > 0 {
		t.Fatalf("ApproxGetMin allocates %.1f per op", allocs)
	}
}
