package multiqueue

import (
	"sync"
	"testing"

	"relaxsched/internal/sched"
)

func TestConcurrentBatchNoLossNoDuplication(t *testing.T) {
	const n = 5000
	mq := NewConcurrent(8, n, 3)
	batch := make([]sched.Item, 0, 16)
	for i := 0; i < n; i++ {
		batch = append(batch, sched.Item{Task: int32(i), Priority: uint32(i)})
		if len(batch) == cap(batch) {
			mq.InsertBatch(batch)
			batch = batch[:0]
		}
	}
	mq.InsertBatch(batch)
	if mq.Len() != n {
		t.Fatalf("Len = %d after batch inserts, want %d", mq.Len(), n)
	}

	seen := make([]bool, n)
	out := make([]sched.Item, 13) // deliberately not a divisor of n
	total := 0
	for {
		got := mq.ApproxPopBatch(out)
		if got == 0 {
			break
		}
		for _, it := range out[:got] {
			if seen[it.Task] {
				t.Fatalf("task %d delivered twice", it.Task)
			}
			seen[it.Task] = true
		}
		total += got
	}
	if total != n {
		t.Fatalf("drained %d items, want %d", total, n)
	}
	if !mq.Empty() {
		t.Fatal("queue not empty after drain")
	}
}

func TestConcurrentBatchPopIsSortedAscending(t *testing.T) {
	// A batch pop returns one sub-queue's minima in increasing priority
	// order — the property the executor's sortBatch relies on being cheap.
	mq := NewConcurrent(4, 256, 11)
	for i := 255; i >= 0; i-- {
		mq.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	out := make([]sched.Item, 32)
	for {
		n := mq.ApproxPopBatch(out)
		if n == 0 {
			break
		}
		for i := 1; i < n; i++ {
			if out[i].Less(out[i-1]) {
				t.Fatalf("batch not ascending at %d: %v", i, out[:n])
			}
		}
	}
}

func TestConcurrentBatchZeroSizedRequests(t *testing.T) {
	mq := NewConcurrent(4, 16, 1)
	mq.InsertBatch(nil)
	if mq.Len() != 0 {
		t.Fatal("nil batch insert changed size")
	}
	mq.Insert(sched.Item{Task: 1, Priority: 1})
	if n := mq.ApproxPopBatch(nil); n != 0 {
		t.Fatalf("nil pop returned %d", n)
	}
	if mq.Len() != 1 {
		t.Fatal("nil pop changed size")
	}
}

func TestConcurrentBatchParallelMixedUse(t *testing.T) {
	// Batch and single operations interleaved across goroutines: every item
	// is delivered exactly once.
	const producers = 4
	const perProducer = 4000
	const total = producers * perProducer
	mq := NewConcurrent(8, total, 5)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]sched.Item, 0, 8)
			for i := 0; i < perProducer; i++ {
				it := sched.Item{Task: int32(w*perProducer + i), Priority: uint32(i)}
				if w%2 == 0 {
					batch = append(batch, it)
					if len(batch) == cap(batch) {
						mq.InsertBatch(batch)
						batch = batch[:0]
					}
				} else {
					mq.Insert(it)
				}
			}
			mq.InsertBatch(batch)
		}(w)
	}
	wg.Wait()

	var mu sync.Mutex
	seen := make([]bool, total)
	var drained int
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]sched.Item, 8)
			for {
				var items []sched.Item
				if w%2 == 0 {
					n := mq.ApproxPopBatch(out)
					if n == 0 {
						return
					}
					items = out[:n]
				} else {
					it, ok := mq.ApproxGetMin()
					if !ok {
						return
					}
					items = []sched.Item{it}
				}
				mu.Lock()
				for _, it := range items {
					if seen[it.Task] {
						mu.Unlock()
						t.Errorf("task %d delivered twice", it.Task)
						return
					}
					seen[it.Task] = true
					drained++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if drained != total {
		t.Fatalf("drained %d items, want %d", drained, total)
	}
}
