package multiqueue

import (
	"sync/atomic"
	"testing"

	"relaxsched/internal/sched"
)

// BenchmarkWorkerHandleBatchCycle times the executor-shaped hot path through
// a worker-affine handle: one batch insert followed by batch pops until the
// batch is drained — the per-episode scheduler traffic of a single engine
// worker. This is a gated benchmark in scripts/benchdiff.sh; the handle path
// must stay allocation-free (see TestWorkerHandleOpsDoNotAllocate).
func BenchmarkWorkerHandleBatchCycle(b *testing.B) {
	m := NewConcurrent(16, 4096, 1)
	h := m.WorkerHandle(0, 4)
	items := make([]sched.Item, 16)
	for i := range items {
		items[i] = sched.Item{Task: int32(i), Priority: uint32(i)}
	}
	out := make([]sched.Item, 16)
	h.InsertBatch(items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.InsertBatch(items)
		for drained := 0; drained < len(items); {
			n := h.ApproxPopBatch(out)
			if n == 0 {
				b.Fatal("lost items")
			}
			drained += n
		}
	}
}

// BenchmarkWorkerHandleInsertDelete is the worker-affine counterpart of
// BenchmarkConcurrentInsertDelete: every goroutine churns through its own
// handle, so inserts and pops stay on home shards and the rng pool is never
// touched.
func BenchmarkWorkerHandleInsertDelete(b *testing.B) {
	m := NewConcurrent(16, 1024, 1)
	for i := 0; i < 1024; i++ {
		m.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	var nextWorker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		h := m.WorkerHandle(int(nextWorker.Add(1)-1), 4)
		for pb.Next() {
			if it, ok := h.ApproxGetMin(); ok {
				h.Insert(it)
			}
		}
	})
}
