// Package multiqueue implements the MultiQueue relaxed priority scheduler of
// Rihani, Sanders and Dementiev (SPAA'15), the scheduler the paper's
// implementation and experiments are built on.
//
// A MultiQueue keeps c independent priority queues. Insert pushes into a
// uniformly random queue; ApproxGetMin samples two distinct random queues and
// pops from the one whose minimum is smaller ("power of two choices").
// Alistarh et al. (PODC'17, reference [2] of the paper) show this yields
// exponential tail bounds on rank and fairness with k = O(c) and
// φ = O(c log c), which is exactly the (k, φ)-relaxed scheduler model this
// library's framework assumes.
//
// Two variants are provided: Sequential, the analytical model used by the
// simulations, and Concurrent, a thread-safe implementation with one mutex
// and one atomic min-priority hint per sub-queue, following the structure of
// the paper's C++ implementation (the paper uses 4x as many queues as
// threads; Concurrent defaults to the same ratio).
package multiqueue

import (
	"math"
	"sync"
	"sync/atomic"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
)

// DefaultQueueFactor is the default ratio of sub-queues to worker threads in
// the concurrent MultiQueue, matching the paper's experimental setup.
const DefaultQueueFactor = 4

// Sequential is the single-threaded MultiQueue model. It is the scheduler the
// paper's synthetic simulations (Table 1) use.
type Sequential struct {
	queues []*exactheap.Heap
	size   int
	r      *rng.Rand
}

var _ sched.Scheduler = (*Sequential)(nil)

// NewSequential returns a MultiQueue model with c sub-queues (values below 1
// are treated as 1) using the given random source.
func NewSequential(c, capacity int, r *rng.Rand) *Sequential {
	if c < 1 {
		c = 1
	}
	per := capacity/c + 1
	queues := make([]*exactheap.Heap, c)
	for i := range queues {
		queues[i] = exactheap.New(per)
	}
	return &Sequential{queues: queues, r: r}
}

// SequentialFactory returns a sched.Factory producing MultiQueue models with
// c sub-queues; each instance gets an independent random stream forked from r.
func SequentialFactory(c int, r *rng.Rand) sched.Factory {
	return func(capacity int) sched.Scheduler { return NewSequential(c, capacity, r.Fork()) }
}

// NumQueues returns the number of sub-queues.
func (m *Sequential) NumQueues() int { return len(m.queues) }

// Insert pushes the item into a uniformly random sub-queue.
func (m *Sequential) Insert(it sched.Item) {
	q := m.queues[m.r.Intn(len(m.queues))]
	q.Insert(it)
	m.size++
}

// ApproxGetMin samples two distinct random sub-queues and pops from the one
// with the smaller minimum. Empty sampled queues fall back to a linear scan
// so the operation only fails when the whole MultiQueue is empty.
func (m *Sequential) ApproxGetMin() (sched.Item, bool) {
	if m.size == 0 {
		return sched.Item{}, false
	}
	c := len(m.queues)
	var chosen *exactheap.Heap
	if c == 1 {
		chosen = m.queues[0]
	} else {
		i := m.r.Intn(c)
		j := m.r.Intn(c - 1)
		if j >= i {
			j++
		}
		qi, qj := m.queues[i], m.queues[j]
		ti, oki := qi.Peek()
		tj, okj := qj.Peek()
		switch {
		case oki && okj:
			if ti.Less(tj) {
				chosen = qi
			} else {
				chosen = qj
			}
		case oki:
			chosen = qi
		case okj:
			chosen = qj
		}
	}
	if chosen == nil || chosen.Empty() {
		// Both sampled queues were empty; scan for any non-empty queue.
		for _, q := range m.queues {
			if !q.Empty() {
				chosen = q
				break
			}
		}
	}
	if chosen == nil {
		return sched.Item{}, false
	}
	it, ok := chosen.ApproxGetMin()
	if ok {
		m.size--
	}
	return it, ok
}

// Len returns the number of held items.
func (m *Sequential) Len() int { return m.size }

// Empty reports whether the MultiQueue is empty.
func (m *Sequential) Empty() bool { return m.size == 0 }

// emptyHint is the atomic min-priority hint of an empty sub-queue. It packs
// (priority, task) so hints are comparable with Item.Less semantics.
const emptyHint = math.MaxUint64

func packItem(it sched.Item) uint64 {
	return uint64(it.Priority)<<32 | uint64(uint32(it.Task))
}

// Concurrent is the thread-safe MultiQueue. Every sub-queue has its own
// mutex-protected heap and an atomic hint of its current minimum so that
// ApproxGetMin can compare two queues without locking either.
type Concurrent struct {
	queues []concurrentSubqueue
	size   atomic.Int64
	seed   atomic.Uint64
	rands  sync.Pool
}

type concurrentSubqueue struct {
	mu   sync.Mutex
	heap *exactheap.Heap
	top  atomic.Uint64 // packed min item, emptyHint when empty
	_    [4]uint64     // padding to keep sub-queues on separate cache lines
}

var _ sched.Concurrent = (*Concurrent)(nil)

// NewConcurrent returns a concurrent MultiQueue with c sub-queues (values
// below 2 are raised to 2, since two-choice sampling needs at least two
// queues to make sense and a single queue would serialize completely).
func NewConcurrent(c, capacity int, seed uint64) *Concurrent {
	if c < 2 {
		c = 2
	}
	mq := &Concurrent{queues: make([]concurrentSubqueue, c)}
	per := capacity/c + 1
	for i := range mq.queues {
		mq.queues[i].heap = exactheap.New(per)
		mq.queues[i].top.Store(emptyHint)
	}
	mq.seed.Store(seed)
	mq.rands.New = func() any {
		s := mq.seed.Add(0x9e3779b97f4a7c15)
		return rng.New(s)
	}
	return mq
}

// ConcurrentFactory returns a sched.ConcurrentFactory producing MultiQueues
// with queueFactor sub-queues per worker (the paper uses 4).
func ConcurrentFactory(queueFactor int, seed uint64) sched.ConcurrentFactory {
	if queueFactor < 1 {
		queueFactor = DefaultQueueFactor
	}
	return func(capacity, workers int) sched.Concurrent {
		if workers < 1 {
			workers = 1
		}
		return NewConcurrent(queueFactor*workers, capacity, seed)
	}
}

// NumQueues returns the number of sub-queues.
func (m *Concurrent) NumQueues() int { return len(m.queues) }

// Insert pushes the item into a uniformly random sub-queue.
func (m *Concurrent) Insert(it sched.Item) {
	r := m.rands.Get().(*rng.Rand)
	idx := r.Intn(len(m.queues))
	m.rands.Put(r)
	q := &m.queues[idx]
	q.mu.Lock()
	q.heap.Insert(it)
	if top, ok := q.heap.Peek(); ok {
		q.top.Store(packItem(top))
	}
	q.mu.Unlock()
	m.size.Add(1)
}

// ApproxGetMin samples two distinct sub-queues, compares their atomic
// min-hints, and pops from the better one. If the chosen queue is locked or
// turns out to be empty it retries with a fresh sample; after enough failed
// attempts it falls back to scanning all queues under their locks, so a false
// return strongly indicates the MultiQueue is (momentarily) empty.
func (m *Concurrent) ApproxGetMin() (sched.Item, bool) {
	if m.size.Load() == 0 {
		return sched.Item{}, false
	}
	r := m.rands.Get().(*rng.Rand)
	defer m.rands.Put(r)

	c := len(m.queues)
	const maxAttempts = 8
	for attempt := 0; attempt < maxAttempts; attempt++ {
		i := r.Intn(c)
		j := r.Intn(c - 1)
		if j >= i {
			j++
		}
		ti := m.queues[i].top.Load()
		tj := m.queues[j].top.Load()
		idx := i
		if tj < ti {
			idx = j
		} else if ti == emptyHint && tj == emptyHint {
			continue
		}
		if it, ok := m.tryPop(idx); ok {
			return it, true
		}
	}
	// Fall back to a full scan so callers only see false when the structure
	// really had nothing to give.
	for idx := range m.queues {
		if it, ok := m.popLocked(idx); ok {
			return it, true
		}
	}
	return sched.Item{}, false
}

func (m *Concurrent) tryPop(idx int) (sched.Item, bool) {
	q := &m.queues[idx]
	if !q.mu.TryLock() {
		return sched.Item{}, false
	}
	defer q.mu.Unlock()
	return m.popFrom(q)
}

func (m *Concurrent) popLocked(idx int) (sched.Item, bool) {
	q := &m.queues[idx]
	q.mu.Lock()
	defer q.mu.Unlock()
	return m.popFrom(q)
}

func (m *Concurrent) popFrom(q *concurrentSubqueue) (sched.Item, bool) {
	it, ok := q.heap.ApproxGetMin()
	if !ok {
		q.top.Store(emptyHint)
		return sched.Item{}, false
	}
	if top, topOK := q.heap.Peek(); topOK {
		q.top.Store(packItem(top))
	} else {
		q.top.Store(emptyHint)
	}
	m.size.Add(-1)
	return it, true
}

// Len returns the approximate number of held items.
func (m *Concurrent) Len() int { return int(m.size.Load()) }

// Empty reports whether the MultiQueue is (approximately) empty.
func (m *Concurrent) Empty() bool { return m.size.Load() == 0 }
