// Package multiqueue implements the MultiQueue relaxed priority scheduler of
// Rihani, Sanders and Dementiev (SPAA'15), the scheduler the paper's
// implementation and experiments are built on.
//
// A MultiQueue keeps c independent priority queues. Insert pushes into a
// uniformly random queue; ApproxGetMin samples two distinct random queues and
// pops from the one whose minimum is smaller ("power of two choices").
// Alistarh et al. (PODC'17, reference [2] of the paper) show this yields
// exponential tail bounds on rank and fairness with k = O(c) and
// φ = O(c log c), which is exactly the (k, φ)-relaxed scheduler model this
// library's framework assumes.
//
// Two variants are provided: Sequential, the analytical model used by the
// simulations, and Concurrent, a thread-safe implementation with one mutex
// and one atomic min-priority hint per sub-queue, following the structure of
// the paper's C++ implementation (the paper uses 4x as many queues as
// threads; Concurrent defaults to the same ratio).
package multiqueue

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
)

// DefaultQueueFactor is the default ratio of sub-queues to worker threads in
// the concurrent MultiQueue, matching the paper's experimental setup.
const DefaultQueueFactor = 4

// Sequential is the single-threaded MultiQueue model. It is the scheduler the
// paper's synthetic simulations (Table 1) use.
type Sequential struct {
	queues []*exactheap.Heap
	size   int
	r      *rng.Rand
}

var _ sched.Scheduler = (*Sequential)(nil)

// NewSequential returns a MultiQueue model with c sub-queues (values below 1
// are treated as 1) using the given random source.
func NewSequential(c, capacity int, r *rng.Rand) *Sequential {
	if c < 1 {
		c = 1
	}
	per := capacity/c + 1
	queues := make([]*exactheap.Heap, c)
	for i := range queues {
		queues[i] = exactheap.New(per)
	}
	return &Sequential{queues: queues, r: r}
}

// SequentialFactory returns a sched.Factory producing MultiQueue models with
// c sub-queues; each instance gets an independent random stream forked from r.
func SequentialFactory(c int, r *rng.Rand) sched.Factory {
	return func(capacity int) sched.Scheduler { return NewSequential(c, capacity, r.Fork()) }
}

// NumQueues returns the number of sub-queues.
func (m *Sequential) NumQueues() int { return len(m.queues) }

// Insert pushes the item into a uniformly random sub-queue.
func (m *Sequential) Insert(it sched.Item) {
	q := m.queues[m.r.Intn(len(m.queues))]
	q.Insert(it)
	m.size++
}

// ApproxGetMin samples two distinct random sub-queues and pops from the one
// with the smaller minimum. Empty sampled queues fall back to a linear scan
// so the operation only fails when the whole MultiQueue is empty.
func (m *Sequential) ApproxGetMin() (sched.Item, bool) {
	if m.size == 0 {
		return sched.Item{}, false
	}
	c := len(m.queues)
	var chosen *exactheap.Heap
	if c == 1 {
		chosen = m.queues[0]
	} else {
		i := m.r.Intn(c)
		j := m.r.Intn(c - 1)
		if j >= i {
			j++
		}
		qi, qj := m.queues[i], m.queues[j]
		ti, oki := qi.Peek()
		tj, okj := qj.Peek()
		switch {
		case oki && okj:
			if ti.Less(tj) {
				chosen = qi
			} else {
				chosen = qj
			}
		case oki:
			chosen = qi
		case okj:
			chosen = qj
		}
	}
	if chosen == nil || chosen.Empty() {
		// Both sampled queues were empty; scan for any non-empty queue.
		for _, q := range m.queues {
			if !q.Empty() {
				chosen = q
				break
			}
		}
	}
	if chosen == nil {
		return sched.Item{}, false
	}
	it, ok := chosen.ApproxGetMin()
	if ok {
		m.size--
	}
	return it, ok
}

// Len returns the number of held items.
func (m *Sequential) Len() int { return m.size }

// Empty reports whether the MultiQueue is empty.
func (m *Sequential) Empty() bool { return m.size == 0 }

// emptyHint is the atomic min-priority hint of an empty sub-queue. It packs
// (priority, task) so hints are comparable with Item.Less semantics.
const emptyHint = math.MaxUint64

func packItem(it sched.Item) uint64 {
	return uint64(it.Priority)<<32 | uint64(uint32(it.Task))
}

// Concurrent is the thread-safe MultiQueue. Every sub-queue has its own
// mutex-protected heap and an atomic hint of its current minimum so that
// ApproxGetMin can compare two queues without locking either.
//
// Concurrent additionally implements sched.PerWorker: an executor worker can
// acquire a worker-affine Handle whose operations prefer a contiguous home
// slice of sub-queues and whose random stream is private (no sync.Pool
// traffic in the hot loop). See WorkerHandle.
type Concurrent struct {
	queues []concurrentSubqueue
	size   atomic.Int64
	seed   atomic.Uint64
	// rands supplies the seeded generators that drive batch inserts and
	// worker handles. Per-operation paths (Insert, ApproxGetMin,
	// ApproxPopBatch) use math/rand/v2's runtime-backed per-P generator
	// instead: queue *choice* needs no seeded stream, and a pool get/put per
	// operation was measurable shared-memory traffic in the pop hot loop.
	rands sync.Pool

	// Slow-path counters behind Stats. They are touched only off the fast
	// path — when a pop finds nothing, leaves its home shard, or falls back
	// to global sampling — so plain atomics do not contend with useful work.
	steals          atomic.Int64
	emptyPolls      atomic.Int64
	globalFallbacks atomic.Int64
}

// Stats is a snapshot of the MultiQueue's slow-path counters. All counters
// are cumulative since construction.
type Stats struct {
	// Steals counts pops served from another worker's shard after the
	// popping worker found its own home shard empty (worker-affine handles
	// only).
	Steals int64
	// EmptyPolls counts removal attempts that found nothing anywhere — the
	// size fast path saw zero, or the exhaustive scan of every sub-queue
	// came up empty.
	EmptyPolls int64
	// GlobalFallbacks counts affine pops that fell through both the home
	// shard and the steal ring into global two-choice sampling.
	GlobalFallbacks int64
}

// Stats returns a snapshot of the scheduler's slow-path counters. It is safe
// to call concurrently with operations.
func (m *Concurrent) Stats() Stats {
	return Stats{
		Steals:          m.steals.Load(),
		EmptyPolls:      m.emptyPolls.Load(),
		GlobalFallbacks: m.globalFallbacks.Load(),
	}
}

type concurrentSubqueue struct {
	mu   sync.Mutex
	heap *exactheap.Heap
	top  atomic.Uint64 // packed min item, emptyHint when empty
	_    [4]uint64     // padding to keep sub-queues on separate cache lines
}

var _ sched.Concurrent = (*Concurrent)(nil)
var _ sched.PerWorker = (*Concurrent)(nil)

// NewConcurrent returns a concurrent MultiQueue with c sub-queues (values
// below 2 are raised to 2, since two-choice sampling needs at least two
// queues to make sense and a single queue would serialize completely).
func NewConcurrent(c, capacity int, seed uint64) *Concurrent {
	if c < 2 {
		c = 2
	}
	mq := &Concurrent{queues: make([]concurrentSubqueue, c)}
	per := capacity/c + 1
	for i := range mq.queues {
		mq.queues[i].heap = exactheap.New(per)
		mq.queues[i].top.Store(emptyHint)
	}
	mq.seed.Store(seed)
	mq.rands.New = func() any {
		s := mq.seed.Add(0x9e3779b97f4a7c15)
		return rng.New(s)
	}
	return mq
}

// ConcurrentFactory returns a sched.ConcurrentFactory producing MultiQueues
// with queueFactor sub-queues per worker (the paper uses 4).
func ConcurrentFactory(queueFactor int, seed uint64) sched.ConcurrentFactory {
	if queueFactor < 1 {
		queueFactor = DefaultQueueFactor
	}
	return func(capacity, workers int) sched.Concurrent {
		if workers < 1 {
			workers = 1
		}
		return NewConcurrent(queueFactor*workers, capacity, seed)
	}
}

// NumQueues returns the number of sub-queues.
func (m *Concurrent) NumQueues() int { return len(m.queues) }

// Insert pushes the item into a uniformly random sub-queue.
func (m *Concurrent) Insert(it sched.Item) {
	q := &m.queues[rand.IntN(len(m.queues))]
	q.mu.Lock()
	q.heap.Insert(it)
	// The hint equals the heap minimum whenever the lock is free, so after an
	// insert it only moves if the new item became that minimum — comparing
	// packed values elides the atomic store (and a heap peek) in the common
	// case of a non-minimal insert.
	if p := packItem(it); p < q.top.Load() {
		q.top.Store(p)
	}
	q.mu.Unlock()
	m.size.Add(1)
}

// insertRun pushes a run of items into sub-queue idx under one lock
// acquisition with one hint update. The shared size counter is NOT updated;
// callers amortize one size.Add over all their runs.
func (m *Concurrent) insertRun(idx int, run []sched.Item) {
	q := &m.queues[idx]
	best := uint64(emptyHint)
	for _, it := range run {
		if p := packItem(it); p < best {
			best = p
		}
	}
	q.mu.Lock()
	for _, it := range run {
		q.heap.Insert(it)
	}
	// Same elision as Insert: the hint only moves if the run's minimum beats
	// the pre-insert heap minimum.
	if best < q.top.Load() {
		q.top.Store(best)
	}
	q.mu.Unlock()
}

// insertRunLength is how many items of a batch share one randomly chosen
// sub-queue (and hence one lock acquisition and one hint update). Longer
// runs amortize better but concentrate consecutive priorities in one queue,
// inflating the MultiQueue's effective rank error by ~c·run; 4 keeps the
// empirical mean rank within the O(c) regime of Definition 1 that the
// integration tests check.
const insertRunLength = 4

// InsertBatch pushes the items into uniformly random sub-queues in runs of
// insertRunLength, amortizing one lock acquisition and one hint update over
// each run and one shared size update over the whole batch. Per-item queue
// choice stays uniform (choices within a run are merely correlated), so the
// exponential tail shape of Definition 1 is preserved with modestly larger
// constants. The size counter is published once after the last run; the
// window in which inserted items are poppable but uncounted can only make
// concurrent removers see a transiently small (even negative) size, which
// the Concurrent contract already treats as an unreliable emptiness hint.
func (m *Concurrent) InsertBatch(items []sched.Item) {
	if len(items) == 0 {
		return
	}
	r := m.rands.Get().(*rng.Rand)
	defer m.rands.Put(r)
	m.insertBatchWith(r, 0, len(m.queues), items)
}

// insertBatchWith is the shared batch-insert loop: runs of insertRunLength
// into random sub-queues drawn from [lo, hi), one size publish at the end.
func (m *Concurrent) insertBatchWith(r *rng.Rand, lo, hi int, items []sched.Item) {
	for start := 0; start < len(items); start += insertRunLength {
		end := start + insertRunLength
		if end > len(items) {
			end = len(items)
		}
		m.insertRun(lo+r.Intn(hi-lo), items[start:end])
	}
	m.size.Add(int64(len(items)))
}

// ApproxPopBatch samples two distinct sub-queues like ApproxGetMin and pops
// up to len(out) items from the better one under a single lock acquisition.
// The removed items are the chosen sub-queue's smallest, in increasing
// priority order. If the sampled queues are empty it retries, then falls
// back to scanning every queue, so a zero result strongly indicates the
// MultiQueue is (momentarily) empty.
func (m *Concurrent) ApproxPopBatch(out []sched.Item) int {
	if len(out) == 0 {
		return 0
	}
	if m.size.Load() == 0 {
		m.emptyPolls.Add(1)
		return 0
	}
	return m.popAny(out)
}

// ApproxGetMin samples two distinct sub-queues, compares their atomic
// min-hints, and pops from the better one. If the chosen queue is locked or
// turns out to be empty it retries with a fresh sample; after enough failed
// attempts it falls back to scanning all queues under their locks, so a false
// return strongly indicates the MultiQueue is (momentarily) empty.
func (m *Concurrent) ApproxGetMin() (sched.Item, bool) {
	if m.size.Load() == 0 {
		m.emptyPolls.Add(1)
		return sched.Item{}, false
	}
	var one [1]sched.Item
	if m.popAny(one[:]) == 1 {
		return one[0], true
	}
	return sched.Item{}, false
}

// popAny is the shared removal path: two-choice sampling over the min-hints
// with a bounded number of attempts (skipping locked or empty-looking
// queues), then a full locked scan so a zero result is only returned when
// every queue really had nothing to give.
func (m *Concurrent) popAny(out []sched.Item) int {
	const maxAttempts = 8
	for attempt := 0; attempt < maxAttempts; attempt++ {
		idx := m.sampleQueue()
		if idx < 0 {
			continue
		}
		q := &m.queues[idx]
		if !q.mu.TryLock() {
			continue
		}
		n := m.popBatchFrom(q, out)
		q.mu.Unlock()
		if n > 0 {
			return n
		}
	}
	for idx := range m.queues {
		q := &m.queues[idx]
		q.mu.Lock()
		n := m.popBatchFrom(q, out)
		q.mu.Unlock()
		if n > 0 {
			return n
		}
	}
	m.emptyPolls.Add(1)
	return 0
}

// sampleQueue picks two distinct sub-queues uniformly at random (via the
// runtime's per-P generator — no shared state) and returns the index of the
// one with the smaller min-hint, or -1 when both sampled hints are empty.
func (m *Concurrent) sampleQueue() int {
	c := len(m.queues)
	// One generator call yields both choices: the halves of a Uint64 are
	// independent, and each is range-reduced with a multiply-shift instead of
	// a modulo (no 64-bit divide). The reduction's bias is immaterial for
	// queue *selection* — c is tiny relative to 2^32 and two-choice only
	// needs approximate uniformity.
	v := rand.Uint64()
	i := int((v >> 32) * uint64(c) >> 32)
	j := int((v & 0xffffffff) * uint64(c-1) >> 32)
	if j >= i {
		j++
	}
	ti := m.queues[i].top.Load()
	tj := m.queues[j].top.Load()
	switch {
	case tj < ti:
		return j
	case ti == emptyHint && tj == emptyHint:
		return -1
	default:
		return i
	}
}

// popBatchFrom pops up to len(out) items from q, whose lock the caller
// holds, and refreshes the min-hint once at the end.
func (m *Concurrent) popBatchFrom(q *concurrentSubqueue, out []sched.Item) int {
	n := 0
	for n < len(out) {
		it, ok := q.heap.ApproxGetMin()
		if !ok {
			break
		}
		out[n] = it
		n++
	}
	if top, ok := q.heap.Peek(); ok {
		q.top.Store(packItem(top))
	} else {
		q.top.Store(emptyHint)
	}
	if n > 0 {
		m.size.Add(int64(-n))
	}
	return n
}

// Len returns the approximate number of held items.
func (m *Concurrent) Len() int { return int(m.size.Load()) }

// Empty reports whether the MultiQueue is (approximately) empty.
func (m *Concurrent) Empty() bool { return m.size.Load() == 0 }
