package multiqueue

import (
	"sort"
	"sync"
	"testing"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestSequentialSingleQueueIsExact(t *testing.T) {
	m := NewSequential(1, 8, rng.New(1))
	prios := []uint32{9, 3, 7, 1, 5}
	for i, p := range prios {
		m.Insert(sched.Item{Task: int32(i), Priority: p})
	}
	sorted := append([]uint32(nil), prios...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, want := range sorted {
		it, ok := m.ApproxGetMin()
		if !ok || it.Priority != want {
			t.Fatalf("single-queue MultiQueue returned %v, want %d", it, want)
		}
	}
}

func TestSequentialClampsQueueCount(t *testing.T) {
	m := NewSequential(0, 4, rng.New(2))
	if m.NumQueues() != 1 {
		t.Fatalf("NumQueues = %d, want 1", m.NumQueues())
	}
}

func TestSequentialNoLossNoDuplication(t *testing.T) {
	const n = 2000
	m := NewSequential(8, n, rng.New(3))
	for i := 0; i < n; i++ {
		m.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	seen := make([]bool, n)
	count := 0
	for {
		it, ok := m.ApproxGetMin()
		if !ok {
			break
		}
		if seen[it.Task] {
			t.Fatalf("task %d returned twice", it.Task)
		}
		seen[it.Task] = true
		count++
	}
	if count != n {
		t.Fatalf("drained %d items, want %d", count, n)
	}
	if !m.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestSequentialEmpty(t *testing.T) {
	m := NewSequential(4, 0, rng.New(4))
	if _, ok := m.ApproxGetMin(); ok {
		t.Fatal("empty MultiQueue returned an item")
	}
}

func TestSequentialRelaxationIsBounded(t *testing.T) {
	// The empirical mean rank of a c-queue MultiQueue should be well below c
	// (two-choice gives ~O(c) worst case but small average), and certainly
	// far below n.
	const n = 5000
	const c = 8
	inner := NewSequential(c, n, rng.New(5))
	m := sched.NewInstrumented(inner, n)
	for i := 0; i < n; i++ {
		m.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	for {
		if _, ok := m.ApproxGetMin(); !ok {
			break
		}
	}
	metrics := m.Metrics()
	if metrics.Removals != n {
		t.Fatalf("removals = %d, want %d", metrics.Removals, n)
	}
	if metrics.MeanRank > 4*c {
		t.Fatalf("mean rank %.2f too large for c=%d", metrics.MeanRank, c)
	}
	if metrics.MaxRank > n/10 {
		t.Fatalf("max rank %d suspiciously large", metrics.MaxRank)
	}
}

func TestSequentialFactory(t *testing.T) {
	f := SequentialFactory(4, rng.New(6))
	a := f(10)
	b := f(10)
	a.Insert(sched.Item{Task: 1, Priority: 1})
	if b.Len() != 0 {
		t.Fatal("factory instances share state")
	}
}

func TestConcurrentMinimumQueueCount(t *testing.T) {
	m := NewConcurrent(0, 10, 1)
	if m.NumQueues() != 2 {
		t.Fatalf("NumQueues = %d, want 2", m.NumQueues())
	}
}

func TestConcurrentSequentialUse(t *testing.T) {
	// Used from a single goroutine the concurrent MultiQueue must behave like
	// a (relaxed) scheduler: no loss, no duplication.
	const n = 1000
	m := NewConcurrent(8, n, 42)
	for i := 0; i < n; i++ {
		m.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	seen := make([]bool, n)
	count := 0
	for {
		it, ok := m.ApproxGetMin()
		if !ok {
			break
		}
		if seen[it.Task] {
			t.Fatalf("task %d returned twice", it.Task)
		}
		seen[it.Task] = true
		count++
	}
	if count != n {
		t.Fatalf("drained %d items, want %d", count, n)
	}
}

func TestConcurrentParallelDrain(t *testing.T) {
	// Multiple goroutines drain concurrently: every item is delivered to
	// exactly one goroutine.
	const n = 20000
	const workers = 8
	m := NewConcurrent(workers*DefaultQueueFactor, n, 7)
	for i := 0; i < n; i++ {
		m.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	var mu sync.Mutex
	seen := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int32, 0, n/workers)
			for {
				it, ok := m.ApproxGetMin()
				if !ok {
					break
				}
				local = append(local, it.Task)
			}
			mu.Lock()
			for _, task := range local {
				seen[task]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for task, c := range seen {
		if c != 1 {
			t.Fatalf("task %d delivered %d times", task, c)
		}
	}
}

func TestConcurrentParallelInsertAndDrain(t *testing.T) {
	const n = 10000
	const workers = 4
	m := NewConcurrent(workers*2, n, 11)
	var wg sync.WaitGroup
	// Insert from several goroutines.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				m.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != n {
		t.Fatalf("Len = %d after parallel inserts, want %d", m.Len(), n)
	}
	// Drain from several goroutines.
	counts := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if _, ok := m.ApproxGetMin(); !ok {
					return
				}
				counts[w]++
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("parallel drain delivered %d items, want %d", total, n)
	}
	if !m.Empty() {
		t.Fatal("not empty after parallel drain")
	}
}

func TestConcurrentFactoryDefaults(t *testing.T) {
	f := ConcurrentFactory(0, 1)
	q := f(100, 3).(*Concurrent)
	if q.NumQueues() != 3*DefaultQueueFactor {
		t.Fatalf("NumQueues = %d, want %d", q.NumQueues(), 3*DefaultQueueFactor)
	}
	q2 := f(100, 0).(*Concurrent)
	if q2.NumQueues() != DefaultQueueFactor {
		t.Fatalf("NumQueues = %d, want %d for zero workers", q2.NumQueues(), DefaultQueueFactor)
	}
}

func BenchmarkConcurrentInsertDelete(b *testing.B) {
	m := NewConcurrent(16, 1024, 1)
	for i := 0; i < 1024; i++ {
		m.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if it, ok := m.ApproxGetMin(); ok {
				m.Insert(it)
			}
		}
	})
}
