package multiqueue

import (
	"sync"
	"testing"

	"relaxsched/internal/sched"
)

// TestWorkerHandleShardPartition pins the home-shard geometry: contiguous,
// balanced, covering, and clamped for degenerate arguments.
func TestWorkerHandleShardPartition(t *testing.T) {
	mq := NewConcurrent(8, 64, 1)
	covered := make([]int, 8)
	for w := 0; w < 4; w++ {
		h := mq.WorkerHandle(w, 4).(*Handle)
		if h.homeN != 2 || h.homeLo != 2*w {
			t.Fatalf("worker %d shard [%d,%d), want [%d,%d)", w, h.homeLo, h.homeLo+h.homeN, 2*w, 2*w+2)
		}
		for i := 0; i < h.homeN; i++ {
			covered[h.homeLo+i]++
		}
	}
	for q, c := range covered {
		if c != 1 {
			t.Fatalf("sub-queue %d owned by %d workers, want 1", q, c)
		}
	}
	// More workers than queues: shards clamp to one queue, worker wraps.
	h := mq.WorkerHandle(9, 16).(*Handle)
	if h.homeN < 1 {
		t.Fatalf("clamped handle has empty home shard")
	}
	// Degenerate worker counts never panic and still cover the queue range.
	if h := mq.WorkerHandle(-3, 0).(*Handle); h.homeN != len(mq.queues) {
		t.Fatalf("single-worker handle owns %d queues, want all %d", h.homeN, len(mq.queues))
	}
}

// placeInQueues deposits items directly into sub-queues [lo, hi) round-robin,
// bypassing the uniform insert spreading — the steal tests need items pinned
// to a specific worker's home shard.
func placeInQueues(mq *Concurrent, lo, hi int, items []sched.Item) {
	for i := range items {
		mq.insertRun(lo+i%(hi-lo), items[i:i+1])
	}
	mq.size.Add(int64(len(items)))
}

// TestStealDrainsNeighborBeforeGlobalSampling is the deterministic steal
// semantics test: a worker whose home shard is empty must drain its nearest
// ring neighbor's shard before any farther shard is touched — even when the
// farther shard holds strictly better (smaller) priorities, which is exactly
// the case where global two-choice sampling would prefer the far shard.
func TestStealDrainsNeighborBeforeGlobalSampling(t *testing.T) {
	mq := NewConcurrent(8, 64, 7)
	const workers = 4
	h0 := mq.WorkerHandle(0, workers).(*Handle)

	// Neighbor shard (worker 1, queues [2,4)) holds tasks [0,8) at WORSE
	// priorities than the far shard (worker 3, queues [6,8)), which holds
	// tasks [100,108) at the global minima. Home shard (worker 0) stays
	// empty.
	neighbor := make([]sched.Item, 8)
	for i := range neighbor {
		neighbor[i] = sched.Item{Task: int32(i), Priority: uint32(1000 + i)}
	}
	placeInQueues(mq, 2, 4, neighbor)
	far := make([]sched.Item, 8)
	for i := range far {
		far[i] = sched.Item{Task: int32(100 + i), Priority: uint32(i)}
	}
	placeInQueues(mq, 6, 8, far)

	for pop := 0; pop < len(neighbor); pop++ {
		it, ok := h0.ApproxGetMin()
		if !ok {
			t.Fatalf("pop %d: scheduler empty with %d items left", pop, 16-pop)
		}
		if it.Task >= 100 {
			t.Fatalf("pop %d drew task %d from the far shard before the neighbor shard drained", pop, it.Task)
		}
	}
	if st := mq.Stats(); st.Steals != int64(len(neighbor)) {
		t.Fatalf("Steals = %d after draining the neighbor shard, want %d", st.Steals, len(neighbor))
	}
	// With the ring ahead empty the handle keeps stealing around it to the
	// far shard; nothing is stranded.
	for pop := 0; pop < len(far); pop++ {
		it, ok := h0.ApproxGetMin()
		if !ok || it.Task < 100 {
			t.Fatalf("pop %d of far shard: got (%v, %v)", pop, it, ok)
		}
	}
	if !mq.Empty() {
		t.Fatal("queue not empty after stealing drain")
	}
}

// TestWorkerHandlePrefersHomeShard: a worker with a non-empty home shard
// whose minima are no worse than the rest of the queue pops from it and
// never steals — the cross-shard glance only redirects a pop when it sees a
// strictly smaller hint elsewhere.
func TestWorkerHandlePrefersHomeShard(t *testing.T) {
	mq := NewConcurrent(8, 64, 3)
	h0 := mq.WorkerHandle(0, 4)
	home := make([]sched.Item, 16)
	for i := range home {
		home[i] = sched.Item{Task: int32(i), Priority: uint32(500 + i)}
	}
	placeInQueues(mq, 0, 2, home)
	other := make([]sched.Item, 16)
	for i := range other {
		other[i] = sched.Item{Task: int32(100 + i), Priority: uint32(1000 + i)}
	}
	placeInQueues(mq, 4, 6, other)

	for pop := 0; pop < len(home); pop++ {
		it, ok := h0.ApproxGetMin()
		if !ok || it.Task >= 100 {
			t.Fatalf("pop %d left the home shard while it held items: got (%v, %v)", pop, it, ok)
		}
	}
	if st := mq.Stats(); st.Steals != 0 {
		t.Fatalf("Steals = %d with a non-empty home shard, want 0", st.Steals)
	}
}

// TestCrossShardGlanceFindsBetterMinima pins the property that keeps the
// affine handle inside the classic MultiQueue rank envelope: a worker whose
// home shard is NON-empty but holds globally poor priorities must still
// drain another shard's superior minima via the per-pop global glance —
// without it, minima aging in an unserviced shard would be invisible until
// the busy worker's own shard emptied. The handle's random stream is seeded,
// so the drain order is deterministic.
func TestCrossShardGlanceFindsBetterMinima(t *testing.T) {
	mq := NewConcurrent(8, 64, 3)
	h0 := mq.WorkerHandle(0, 4)
	home := make([]sched.Item, 16)
	for i := range home {
		home[i] = sched.Item{Task: int32(i), Priority: uint32(500 + i)}
	}
	placeInQueues(mq, 0, 2, home)
	far := make([]sched.Item, 16)
	for i := range far {
		far[i] = sched.Item{Task: int32(100 + i), Priority: uint32(i)} // global minima
	}
	placeInQueues(mq, 4, 6, far)

	farEarly := 0
	seen := make(map[int32]int, 32)
	for pop := 0; pop < 32; pop++ {
		it, ok := h0.ApproxGetMin()
		if !ok {
			t.Fatalf("pop %d: scheduler empty with %d items left", pop, 32-pop)
		}
		seen[it.Task]++
		if pop < len(home) && it.Task >= 100 {
			farEarly++
		}
	}
	if farEarly == 0 {
		t.Fatal("glance never drained the far shard's global minima while the home shard held items")
	}
	for task, c := range seen {
		if c != 1 {
			t.Fatalf("task %d delivered %d times", task, c)
		}
	}
	if !mq.Empty() {
		t.Fatal("queue not empty after glance-assisted drain")
	}
}

// TestStatsEmptyPolls: removal attempts on an empty scheduler are counted.
func TestStatsEmptyPolls(t *testing.T) {
	mq := NewConcurrent(4, 16, 1)
	if _, ok := mq.ApproxGetMin(); ok {
		t.Fatal("empty queue returned an item")
	}
	h := mq.WorkerHandle(0, 2)
	if n := h.ApproxPopBatch(make([]sched.Item, 4)); n != 0 {
		t.Fatalf("empty queue popped %d items", n)
	}
	if st := mq.Stats(); st.EmptyPolls != 2 {
		t.Fatalf("EmptyPolls = %d, want 2", st.EmptyPolls)
	}
}

// TestWorkerHandleNoLossNoDuplication: handle-routed traffic with stealing
// delivers every item exactly once, concurrently, under unbalanced load (all
// items pinned to worker 0's shard — every other worker must steal or
// glance).
func TestWorkerHandleNoLossNoDuplication(t *testing.T) {
	const workers = 4
	const n = 20000
	mq := NewConcurrent(workers*DefaultQueueFactor, n, 11)

	// All items land in worker 0's home shard, so workers 1..3 start empty.
	all := make([]sched.Item, n)
	for i := range all {
		all[i] = sched.Item{Task: int32(i), Priority: uint32(i)}
	}
	placeInQueues(mq, 0, DefaultQueueFactor, all)
	if mq.Len() != n {
		t.Fatalf("Len = %d after shard placement, want %d", mq.Len(), n)
	}

	var mu sync.Mutex
	seen := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := mq.WorkerHandle(w, workers)
			out := make([]sched.Item, 13)
			local := make([]int32, 0, n/workers)
			for {
				got := h.ApproxPopBatch(out)
				if got == 0 {
					break
				}
				for _, it := range out[:got] {
					local = append(local, it.Task)
				}
			}
			mu.Lock()
			for _, task := range local {
				seen[task]++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for task, c := range seen {
		if c != 1 {
			t.Fatalf("task %d delivered %d times", task, c)
		}
	}
	if !mq.Empty() {
		t.Fatal("not empty after handle drain")
	}
	if st := mq.Stats(); st.Steals == 0 {
		t.Fatal("no steals recorded despite three workers with empty home shards")
	}
}

// TestWorkerHandleOpsDoNotAllocate pins the satellite fix: handle operations
// own their random stream, so the hot loop performs zero sync.Pool traffic
// and zero allocations per operation.
func TestWorkerHandleOpsDoNotAllocate(t *testing.T) {
	mq := NewConcurrent(8, 4096, 1)
	h := mq.WorkerHandle(0, 2)
	items := make([]sched.Item, 16)
	for i := range items {
		items[i] = sched.Item{Task: int32(i), Priority: uint32(i)}
	}
	out := make([]sched.Item, 16)
	h.InsertBatch(items) // warm the home heaps
	if allocs := testing.AllocsPerRun(200, func() {
		h.InsertBatch(items)
		for drained := 0; drained < len(items); {
			n := h.ApproxPopBatch(out)
			if n == 0 {
				t.Fatal("lost items mid-run")
			}
			drained += n
		}
	}); allocs > 0 {
		t.Fatalf("handle insert+pop cycle allocates %.1f per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if it, ok := h.ApproxGetMin(); ok {
			h.Insert(it)
		}
	}); allocs > 0 {
		t.Fatalf("handle single-item cycle allocates %.1f per op, want 0", allocs)
	}
}
