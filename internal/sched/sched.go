// Package sched defines the scheduler abstraction at the heart of the paper:
// a priority scheduler holding ⟨task, priority⟩ pairs that supports Insert,
// ApproxGetMin and Empty, where ApproxGetMin may return tasks out of priority
// order ("relaxed" semantics).
//
// The paper models relaxation with two exponential tail bounds (Definition 1):
// a rank bound — Pr[rank(t) ≥ ℓ] ≤ exp(-ℓ/k) — and a fairness bound —
// Pr[inv(u) ≥ ℓ] ≤ exp(-ℓ/φ). Sub-packages provide the concrete schedulers
// the paper discusses: an exact binary heap (k = 1), the canonical
// uniform-top-k queue, the MultiQueue, the SprayList, a deterministic
// k-bounded queue, and a fetch-and-add FIFO used as the exact concurrent
// baseline. This package also provides Instrumented, a wrapper that measures
// empirical rank error and priority inversions so tests can check the model's
// tail bounds, and Locked, an adapter that makes any sequential scheduler
// safe for concurrent use.
package sched

// Item is a ⟨task, priority⟩ pair held by a scheduler. Lower Priority values
// are "better": an exact scheduler always returns the live item with the
// smallest Priority. Task is an opaque id (typically a vertex index).
type Item struct {
	Task     int32
	Priority uint32
}

// Less reports whether i has strictly higher scheduling priority than o
// (i.e. a smaller Priority value, ties broken by Task id so orderings are
// total and deterministic).
func (i Item) Less(o Item) bool {
	if i.Priority != o.Priority {
		return i.Priority < o.Priority
	}
	return i.Task < o.Task
}

// Scheduler is the sequential-model interface of a (possibly relaxed)
// priority scheduler. Implementations need not be safe for concurrent use;
// wrap them in Locked or use a Concurrent implementation for multi-threaded
// executions.
type Scheduler interface {
	// Insert adds an item to the scheduler.
	Insert(Item)
	// ApproxGetMin removes and returns an item. An exact scheduler returns
	// the minimum-priority item; a k-relaxed scheduler may return an item of
	// rank up to ~k. The second result is false if the scheduler is empty.
	ApproxGetMin() (Item, bool)
	// Len returns the number of items currently held.
	Len() int
	// Empty reports whether the scheduler holds no items.
	Empty() bool
}

// Concurrent is the interface of schedulers that are safe for concurrent use
// by multiple goroutines. A false result from ApproxGetMin (or a zero count
// from ApproxPopBatch) means "nothing found right now" and is not a reliable
// emptiness signal under concurrency; executors track outstanding work
// independently.
//
// The batch operations exist so executors can amortize one synchronization
// episode (a lock acquisition, a fetch-and-add) over many items. Batching
// relaxes further: a scheduler whose single-item removals satisfy a rank
// bound of k serves batch removals with rank at most k + B, which still fits
// the paper's (k, φ)-relaxed model with a larger constant. Implementations
// without a native batch path can be adapted with WithDefaultBatch.
type Concurrent interface {
	Insert(Item)
	ApproxGetMin() (Item, bool)
	// InsertBatch adds every item in items. Implementations should perform
	// the insertion under a single synchronization episode where possible.
	// The slice is not retained.
	InsertBatch(items []Item)
	// ApproxPopBatch removes up to len(out) items, stores them in out, and
	// returns how many were removed. A zero result means "nothing found
	// right now", with the same caveat as ApproxGetMin.
	ApproxPopBatch(out []Item) int
}

// PerWorker is an optional extension of Concurrent implemented by schedulers
// that keep worker-affine state — home sub-queue shards, private random
// streams, steal paths. An executor that knows its worker index acquires a
// handle once at worker start and issues that worker's scheduler operations
// through it; the handle is a view of the shared scheduler (items inserted
// through one handle are poppable through any other and through the parent),
// but the handle itself is NOT safe for concurrent use — one handle per
// worker. Operations on the parent scheduler remain valid and thread-safe
// alongside handle use; executors use the parent for cross-worker work such
// as seeding.
type PerWorker interface {
	Concurrent
	// WorkerHandle returns worker's affine view of the scheduler, given the
	// total worker count of the execution. Implementations must accept any
	// worker in [0, workers) and clamp degenerate arguments rather than
	// panic.
	WorkerHandle(worker, workers int) Concurrent
}

// ForWorker returns the worker-affine handle of s when s implements
// PerWorker, and s itself otherwise — the zero-cost adapter executors call
// at worker start. A handle is only safe for use by its one worker.
func ForWorker(s Concurrent, worker, workers int) Concurrent {
	if pw, ok := s.(PerWorker); ok {
		return pw.WorkerHandle(worker, workers)
	}
	return s
}

// Single is the minimal single-item concurrent scheduler interface — what
// Concurrent looked like before batch operations existed. It is the input to
// WithDefaultBatch and a convenient target for test doubles.
type Single interface {
	Insert(Item)
	ApproxGetMin() (Item, bool)
}

// Batcher is the interface of sequential-model schedulers that additionally
// provide native batch operations, so a Locked wrapper can amortize its one
// lock acquisition over a whole batch without per-item virtual calls.
type Batcher interface {
	Scheduler
	InsertBatch(items []Item)
	ApproxPopBatch(out []Item) int
}

// batchAdapter implements the batch half of Concurrent by looping over the
// single-item operations. It provides no amortization; it exists so that any
// Single scheduler can be used where a Concurrent is required.
type batchAdapter struct {
	Single
}

func (a batchAdapter) InsertBatch(items []Item) {
	for _, it := range items {
		a.Insert(it)
	}
}

func (a batchAdapter) ApproxPopBatch(out []Item) int {
	n := 0
	for n < len(out) {
		it, ok := a.ApproxGetMin()
		if !ok {
			break
		}
		out[n] = it
		n++
	}
	return n
}

// WithDefaultBatch adapts a single-item concurrent scheduler to the full
// Concurrent interface using loop-based batch operations. Schedulers that
// already implement Concurrent are returned unchanged.
func WithDefaultBatch(s Single) Concurrent {
	if c, ok := s.(Concurrent); ok {
		return c
	}
	return batchAdapter{Single: s}
}

// Factory constructs a fresh sequential-model scheduler sized for
// approximately capacity items. The simulation and benchmark harnesses use
// factories so a single experiment definition can sweep scheduler families
// and relaxation parameters.
type Factory func(capacity int) Scheduler

// ConcurrentFactory constructs a fresh concurrent scheduler sized for
// approximately capacity items and the given number of worker goroutines.
type ConcurrentFactory func(capacity, workers int) Concurrent
