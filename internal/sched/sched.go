// Package sched defines the scheduler abstraction at the heart of the paper:
// a priority scheduler holding ⟨task, priority⟩ pairs that supports Insert,
// ApproxGetMin and Empty, where ApproxGetMin may return tasks out of priority
// order ("relaxed" semantics).
//
// The paper models relaxation with two exponential tail bounds (Definition 1):
// a rank bound — Pr[rank(t) ≥ ℓ] ≤ exp(-ℓ/k) — and a fairness bound —
// Pr[inv(u) ≥ ℓ] ≤ exp(-ℓ/φ). Sub-packages provide the concrete schedulers
// the paper discusses: an exact binary heap (k = 1), the canonical
// uniform-top-k queue, the MultiQueue, the SprayList, a deterministic
// k-bounded queue, and a fetch-and-add FIFO used as the exact concurrent
// baseline. This package also provides Instrumented, a wrapper that measures
// empirical rank error and priority inversions so tests can check the model's
// tail bounds, and Locked, an adapter that makes any sequential scheduler
// safe for concurrent use.
package sched

// Item is a ⟨task, priority⟩ pair held by a scheduler. Lower Priority values
// are "better": an exact scheduler always returns the live item with the
// smallest Priority. Task is an opaque id (typically a vertex index).
type Item struct {
	Task     int32
	Priority uint32
}

// Less reports whether i has strictly higher scheduling priority than o
// (i.e. a smaller Priority value, ties broken by Task id so orderings are
// total and deterministic).
func (i Item) Less(o Item) bool {
	if i.Priority != o.Priority {
		return i.Priority < o.Priority
	}
	return i.Task < o.Task
}

// Scheduler is the sequential-model interface of a (possibly relaxed)
// priority scheduler. Implementations need not be safe for concurrent use;
// wrap them in Locked or use a Concurrent implementation for multi-threaded
// executions.
type Scheduler interface {
	// Insert adds an item to the scheduler.
	Insert(Item)
	// ApproxGetMin removes and returns an item. An exact scheduler returns
	// the minimum-priority item; a k-relaxed scheduler may return an item of
	// rank up to ~k. The second result is false if the scheduler is empty.
	ApproxGetMin() (Item, bool)
	// Len returns the number of items currently held.
	Len() int
	// Empty reports whether the scheduler holds no items.
	Empty() bool
}

// Concurrent is the interface of schedulers that are safe for concurrent use
// by multiple goroutines. A false result from ApproxGetMin means "nothing
// found right now" and is not a reliable emptiness signal under concurrency;
// executors track outstanding work independently.
type Concurrent interface {
	Insert(Item)
	ApproxGetMin() (Item, bool)
}

// Factory constructs a fresh sequential-model scheduler sized for
// approximately capacity items. The simulation and benchmark harnesses use
// factories so a single experiment definition can sweep scheduler families
// and relaxation parameters.
type Factory func(capacity int) Scheduler

// ConcurrentFactory constructs a fresh concurrent scheduler sized for
// approximately capacity items and the given number of worker goroutines.
type ConcurrentFactory func(capacity, workers int) Concurrent
