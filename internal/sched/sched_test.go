package sched

import (
	"sync"
	"testing"
)

// fakeScheduler is a trivial LIFO scheduler used to test the wrappers without
// depending on the concrete implementations (which live in sub-packages).
type fakeScheduler struct {
	items []Item
}

func (f *fakeScheduler) Insert(it Item) { f.items = append(f.items, it) }

func (f *fakeScheduler) ApproxGetMin() (Item, bool) {
	if len(f.items) == 0 {
		return Item{}, false
	}
	it := f.items[len(f.items)-1]
	f.items = f.items[:len(f.items)-1]
	return it, true
}

func (f *fakeScheduler) Len() int    { return len(f.items) }
func (f *fakeScheduler) Empty() bool { return len(f.items) == 0 }

// exactFake returns items in exact priority order, for instrumentation tests.
type exactFake struct {
	items []Item
}

func (f *exactFake) Insert(it Item) { f.items = append(f.items, it) }

func (f *exactFake) ApproxGetMin() (Item, bool) {
	if len(f.items) == 0 {
		return Item{}, false
	}
	best := 0
	for i, it := range f.items {
		if it.Less(f.items[best]) {
			best = i
		}
	}
	it := f.items[best]
	f.items = append(f.items[:best], f.items[best+1:]...)
	return it, true
}

func (f *exactFake) Len() int    { return len(f.items) }
func (f *exactFake) Empty() bool { return len(f.items) == 0 }

func TestItemLess(t *testing.T) {
	cases := []struct {
		a, b Item
		want bool
	}{
		{Item{Task: 0, Priority: 1}, Item{Task: 0, Priority: 2}, true},
		{Item{Task: 0, Priority: 2}, Item{Task: 0, Priority: 1}, false},
		{Item{Task: 1, Priority: 5}, Item{Task: 2, Priority: 5}, true},
		{Item{Task: 2, Priority: 5}, Item{Task: 1, Priority: 5}, false},
		{Item{Task: 3, Priority: 5}, Item{Task: 3, Priority: 5}, false},
	}
	for _, tc := range cases {
		if got := tc.a.Less(tc.b); got != tc.want {
			t.Fatalf("%v.Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLockedDelegates(t *testing.T) {
	l := NewLocked(&fakeScheduler{})
	if !l.Empty() || l.Len() != 0 {
		t.Fatal("fresh locked scheduler not empty")
	}
	l.Insert(Item{Task: 1, Priority: 10})
	l.Insert(Item{Task: 2, Priority: 20})
	if l.Len() != 2 || l.Empty() {
		t.Fatal("locked scheduler size wrong after inserts")
	}
	it, ok := l.ApproxGetMin()
	if !ok || it.Task != 2 {
		t.Fatalf("locked scheduler returned %v, %v (LIFO inner expects task 2)", it, ok)
	}
}

func TestLockedConcurrentUse(t *testing.T) {
	l := NewLocked(&fakeScheduler{})
	const n = 10000
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				l.Insert(Item{Task: int32(i), Priority: uint32(i)})
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != n {
		t.Fatalf("Len = %d after concurrent inserts, want %d", l.Len(), n)
	}
	counts := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if _, ok := l.ApproxGetMin(); !ok {
					return
				}
				counts[w]++
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("concurrent drain delivered %d, want %d", total, n)
	}
}

func TestInstrumentedExactSchedulerHasRankOneNoInversions(t *testing.T) {
	const n = 200
	m := NewInstrumented(&exactFake{}, n)
	for i := n - 1; i >= 0; i-- {
		m.Insert(Item{Task: int32(i), Priority: uint32(i)})
	}
	for {
		if _, ok := m.ApproxGetMin(); !ok {
			break
		}
	}
	metrics := m.Metrics()
	if metrics.Removals != n {
		t.Fatalf("removals = %d, want %d", metrics.Removals, n)
	}
	if metrics.MeanRank != 1 || metrics.MaxRank != 1 {
		t.Fatalf("exact scheduler rank metrics = %+v, want all ranks 1", metrics)
	}
	if metrics.MeanInversions != 0 || metrics.MaxInversions != 0 {
		t.Fatalf("exact scheduler inversion metrics = %+v, want 0", metrics)
	}
}

func TestInstrumentedLIFOMeasuresRelaxation(t *testing.T) {
	// A LIFO over priorities inserted in increasing order returns the worst
	// element first; ranks and inversions must reflect that.
	const n = 10
	m := NewInstrumented(&fakeScheduler{}, n)
	for i := 0; i < n; i++ {
		m.Insert(Item{Task: int32(i), Priority: uint32(i)})
	}
	// First removal is priority 9, rank 10.
	it, ok := m.ApproxGetMin()
	if !ok || it.Priority != 9 {
		t.Fatalf("first removal = %v", it)
	}
	metrics := m.Metrics()
	if metrics.MaxRank != 10 {
		t.Fatalf("MaxRank = %d, want 10", metrics.MaxRank)
	}
	// Drain the rest; the last removed (priority 0) suffered 9 inversions.
	for {
		if _, ok := m.ApproxGetMin(); !ok {
			break
		}
	}
	metrics = m.Metrics()
	if metrics.MaxInversions != 9 {
		t.Fatalf("MaxInversions = %d, want 9", metrics.MaxInversions)
	}
	if metrics.Removals != n {
		t.Fatalf("Removals = %d, want %d", metrics.Removals, n)
	}
}

func TestInstrumentedEmptyPassThrough(t *testing.T) {
	m := NewInstrumented(&fakeScheduler{}, 4)
	if _, ok := m.ApproxGetMin(); ok {
		t.Fatal("empty instrumented scheduler returned item")
	}
	if !m.Empty() || m.Len() != 0 {
		t.Fatal("empty instrumented scheduler misreports size")
	}
	if m.Metrics().Removals != 0 {
		t.Fatal("metrics recorded removals for failed gets")
	}
}

func TestInstrumentedReinsertionResetsBaseline(t *testing.T) {
	// An item that is removed and reinserted should only accumulate
	// inversions from its latest residence.
	m := NewInstrumented(&fakeScheduler{}, 10)
	m.Insert(Item{Task: 0, Priority: 0})
	m.Insert(Item{Task: 5, Priority: 5})
	// LIFO returns 5 first: inversion on 0.
	if it, _ := m.ApproxGetMin(); it.Priority != 5 {
		t.Fatal("unexpected order from fake LIFO")
	}
	// Reinsert 5, then remove it again (another inversion on 0).
	m.Insert(Item{Task: 5, Priority: 5})
	if it, _ := m.ApproxGetMin(); it.Priority != 5 {
		t.Fatal("unexpected order from fake LIFO")
	}
	// Now remove 0; it suffered 2 inversions total.
	if it, _ := m.ApproxGetMin(); it.Priority != 0 {
		t.Fatal("expected priority 0 last")
	}
	if got := m.Metrics().MaxInversions; got != 2 {
		t.Fatalf("MaxInversions = %d, want 2", got)
	}
}
