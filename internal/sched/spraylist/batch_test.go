package spraylist

import (
	"sync"
	"testing"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestBatchNoLossNoDuplication(t *testing.T) {
	const n = 5000
	l := New(8, rng.New(3))
	batch := make([]sched.Item, 0, 16)
	for i := 0; i < n; i++ {
		batch = append(batch, sched.Item{Task: int32(i), Priority: uint32(n - i)})
		if len(batch) == cap(batch) {
			l.InsertBatch(batch)
			batch = batch[:0]
		}
	}
	l.InsertBatch(batch)
	if l.Len() != n {
		t.Fatalf("Len = %d after batch inserts, want %d", l.Len(), n)
	}

	seen := make([]bool, n)
	out := make([]sched.Item, 13) // deliberately not a divisor of n
	total := 0
	for {
		got := l.ApproxPopBatch(out)
		if got == 0 {
			break
		}
		for _, it := range out[:got] {
			if seen[it.Task] {
				t.Fatalf("task %d delivered twice", it.Task)
			}
			seen[it.Task] = true
		}
		total += got
	}
	if total != n {
		t.Fatalf("drained %d items, want %d", total, n)
	}
	if !l.Empty() {
		t.Fatal("list not empty after drain")
	}
}

func TestBatchInsertPreservesSortedOrder(t *testing.T) {
	// Batch-inserted items interleaved with single inserts must land at
	// their sorted positions: with k = 1 every pop is the exact minimum, so
	// the drain sequence must be globally ascending.
	l := New(1, rng.New(7))
	l.InsertBatch([]sched.Item{{Task: 5, Priority: 50}, {Task: 1, Priority: 10}, {Task: 3, Priority: 30}})
	l.Insert(sched.Item{Task: 2, Priority: 20})
	l.InsertBatch([]sched.Item{{Task: 4, Priority: 40}, {Task: 0, Priority: 0}})
	var prev sched.Item
	for i := 0; l.Len() > 0; i++ {
		it, ok := l.ApproxGetMin()
		if !ok {
			t.Fatal("list ran dry early")
		}
		if i > 0 && it.Less(prev) {
			t.Fatalf("drain not ascending: %v after %v", it, prev)
		}
		if int32(i) != it.Task {
			t.Fatalf("pop %d returned task %d", i, it.Task)
		}
		prev = it
	}
}

func TestBatchPopIsSortedAscending(t *testing.T) {
	// A batch pop walks the list forward from the spray landing, so the
	// returned items are in increasing priority order — the property the
	// executor's sortBatch relies on being cheap.
	l := New(4, rng.New(11))
	for i := 255; i >= 0; i-- {
		l.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	out := make([]sched.Item, 32)
	for {
		n := l.ApproxPopBatch(out)
		if n == 0 {
			break
		}
		for i := 1; i < n; i++ {
			if out[i].Less(out[i-1]) {
				t.Fatalf("batch not ascending at %d: %v", i, out[:n])
			}
		}
	}
}

func TestBatchPopNeverEmptyWhileItemsRemain(t *testing.T) {
	// Unlike a transient miss in a concurrent scheduler, a sequential-model
	// batch pop must always make progress: a deep spray landing falls back
	// to a live node instead of reporting emptiness.
	l := New(64, rng.New(5))
	for i := 0; i < 100; i++ {
		l.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	out := make([]sched.Item, 3)
	for drained := 0; drained < 100; {
		n := l.ApproxPopBatch(out)
		if n == 0 {
			t.Fatalf("batch pop returned 0 with %d items left", l.Len())
		}
		drained += n
	}
}

func TestBatchZeroSizedRequests(t *testing.T) {
	l := New(4, rng.New(1))
	l.InsertBatch(nil)
	if l.Len() != 0 {
		t.Fatal("nil batch insert changed size")
	}
	l.Insert(sched.Item{Task: 1, Priority: 1})
	if n := l.ApproxPopBatch(nil); n != 0 {
		t.Fatalf("nil pop returned %d", n)
	}
	if l.Len() != 1 {
		t.Fatal("nil pop changed size")
	}
}

func TestBatchInsertDoesNotMutateInput(t *testing.T) {
	l := New(2, rng.New(9))
	items := []sched.Item{{Task: 3, Priority: 30}, {Task: 1, Priority: 10}, {Task: 2, Priority: 20}}
	l.InsertBatch(items)
	want := []sched.Item{{Task: 3, Priority: 30}, {Task: 1, Priority: 10}, {Task: 2, Priority: 20}}
	for i := range items {
		if items[i] != want[i] {
			t.Fatalf("InsertBatch reordered the caller's slice: %v", items)
		}
	}
}

func TestLockedBatchParallelMixedUse(t *testing.T) {
	// The native batch path behind sched.NewLocked, exercised by batch and
	// single operations interleaved across goroutines: every item is
	// delivered exactly once.
	const producers = 4
	const perProducer = 2000
	const total = producers * perProducer
	l := sched.NewLocked(New(8, rng.New(21)))
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]sched.Item, 0, 8)
			for i := 0; i < perProducer; i++ {
				it := sched.Item{Task: int32(w*perProducer + i), Priority: uint32(i)}
				if w%2 == 0 {
					batch = append(batch, it)
					if len(batch) == cap(batch) {
						l.InsertBatch(batch)
						batch = batch[:0]
					}
				} else {
					l.Insert(it)
				}
			}
			l.InsertBatch(batch)
		}(w)
	}
	wg.Wait()

	var mu sync.Mutex
	seen := make([]bool, total)
	var drained int
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]sched.Item, 8)
			for {
				var items []sched.Item
				if w%2 == 0 {
					n := l.ApproxPopBatch(out)
					if n == 0 {
						return
					}
					items = out[:n]
				} else {
					it, ok := l.ApproxGetMin()
					if !ok {
						return
					}
					items = []sched.Item{it}
				}
				mu.Lock()
				for _, it := range items {
					if seen[it.Task] {
						mu.Unlock()
						t.Errorf("task %d delivered twice", it.Task)
						return
					}
					seen[it.Task] = true
					drained++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if drained != total {
		t.Fatalf("drained %d items, want %d", drained, total)
	}
}
