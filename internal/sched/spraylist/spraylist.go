// Package spraylist implements the SprayList of Alistarh, Kopinsky, Li and
// Shavit (PPoPP'15, reference [3] of the paper): a skiplist-based relaxed
// priority queue whose DeleteMin performs a random descending walk (a
// "spray") from the head so that, instead of everyone contending on the
// minimum, each call lands approximately uniformly among the O(k · polylog k)
// smallest elements.
//
// Faithful to the original design, deletion is logical: a sprayed node is
// marked deleted but remains in the skiplist for navigation, and nodes are
// physically unlinked only once they form a dead prefix at the front of the
// list. This matters — physically removing sprayed nodes from the middle
// would preferentially tear down tall towers (sprays are more likely to land
// on nodes they used for navigation), eroding the express lanes and blowing
// up the spray's reach. A small fraction (1/k) of calls act as "cleaners" and
// remove the exact minimum, which prevents low-priority stragglers from
// being skipped indefinitely, again mirroring the original SprayList.
//
// This package provides the sequential-model SprayList used by the
// simulations and ablations; wrap it in sched.Locked to share it between
// goroutines.
package spraylist

import (
	"math/bits"
	"slices"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

const maxLevel = 32

type node struct {
	item sched.Item
	next []*node
	dead bool
}

// List is a sequential-model SprayList.
type List struct {
	head     *node // sentinel; head.next[l] is the first node at level l
	level    int   // highest level currently in use (0-based)
	k        int
	sprayTop int // highest level a spray starts from
	jumpMax  int // maximum forward steps per level during a spray
	r        *rng.Rand
	size     int // live (not logically deleted) nodes
}

var (
	_ sched.Scheduler = (*List)(nil)
	_ sched.Batcher   = (*List)(nil)
)

// New returns a SprayList with spray width parameter k (values below 1 are
// treated as 1, which makes every DeleteMin exact).
func New(k int, r *rng.Rand) *List {
	if k < 1 {
		k = 1
	}
	logK := bits.Len(uint(k)) - 1
	jump := logK + 1
	return &List{
		head:     &node{next: make([]*node, maxLevel)},
		level:    0,
		k:        k,
		sprayTop: logK,
		jumpMax:  jump,
		r:        r,
	}
}

// Factory returns a sched.Factory producing SprayLists with the given spray
// parameter; each instance gets an independent random stream forked from r.
func Factory(k int, r *rng.Rand) sched.Factory {
	return func(capacity int) sched.Scheduler { return New(k, r.Fork()) }
}

// K returns the spray width parameter.
func (l *List) K() int { return l.k }

// Len returns the number of live items.
func (l *List) Len() int { return l.size }

// Empty reports whether the list holds no live items.
func (l *List) Empty() bool { return l.size == 0 }

// randomLevel returns a tower height with geometric distribution (p = 1/2).
func (l *List) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.r.Uint64()&1 == 1 {
		lvl++
	}
	return lvl
}

// Insert adds an item at its sorted position.
func (l *List) Insert(it sched.Item) {
	var update [maxLevel]*node
	cur := l.head
	for lvl := l.level; lvl >= 0; lvl-- {
		for cur.next[lvl] != nil && cur.next[lvl].item.Less(it) {
			cur = cur.next[lvl]
		}
		update[lvl] = cur
	}
	height := l.randomLevel()
	if height-1 > l.level {
		for lvl := l.level + 1; lvl < height; lvl++ {
			update[lvl] = l.head
		}
		l.level = height - 1
	}
	n := &node{item: it, next: make([]*node, height)}
	for lvl := 0; lvl < height; lvl++ {
		n.next[lvl] = update[lvl].next[lvl]
		update[lvl].next[lvl] = n
	}
	l.size++
}

// InsertBatch adds every item at its sorted position with one search walk
// for the whole batch: items are placed in ascending order, and each
// insertion resumes its level-wise search from the previous item's splice
// position instead of the head. For a batch of B items landing near each
// other this costs one descent plus O(B) pointer moves, rather than B full
// descents — the native sched.Batcher path that sched.NewLocked amortizes
// one lock acquisition over.
func (l *List) InsertBatch(items []sched.Item) {
	if len(items) == 0 {
		return
	}
	sorted := make([]sched.Item, len(items))
	copy(sorted, items)
	slices.SortFunc(sorted, func(a, b sched.Item) int {
		if a.Less(b) {
			return -1
		}
		if b.Less(a) {
			return 1
		}
		return 0
	})
	var update [maxLevel]*node
	for lvl := range update {
		update[lvl] = l.head
	}
	for _, it := range sorted {
		// Every update[lvl] node holds an item strictly less than it (items
		// are processed in ascending order), so advancing from there finds
		// the same splice position a fresh head-to-bottom search would.
		for lvl := l.level; lvl >= 0; lvl-- {
			cur := update[lvl]
			for cur.next[lvl] != nil && cur.next[lvl].item.Less(it) {
				cur = cur.next[lvl]
			}
			update[lvl] = cur
		}
		height := l.randomLevel()
		if height-1 > l.level {
			for lvl := l.level + 1; lvl < height; lvl++ {
				update[lvl] = l.head
			}
			l.level = height - 1
		}
		n := &node{item: it, next: make([]*node, height)}
		for lvl := 0; lvl < height; lvl++ {
			n.next[lvl] = update[lvl].next[lvl]
			update[lvl].next[lvl] = n
		}
		l.size++
	}
}

// ApproxGetMin sprays into the head of the list, logically deletes the live
// node it lands on, and returns its item. With probability 1/k the call acts
// as a cleaner and removes the exact minimum instead.
func (l *List) ApproxGetMin() (sched.Item, bool) {
	if l.size == 0 {
		return sched.Item{}, false
	}
	var target *node
	if l.k == 1 || l.r.Intn(l.k) == 0 {
		target = l.firstLive()
	} else {
		target = l.spray()
	}
	target.dead = true
	l.size--
	l.collectPrefix()
	return target.item, true
}

// ApproxPopBatch removes up to len(out) items with a single spray: the walk
// (or, with probability 1/k, the exact minimum) picks the batch's starting
// node, and the batch is the next len(out) live nodes from there in list
// order. Popping B items per spray relaxes the rank bound from the spray's
// O(k·polylog k) to O(k·polylog k + B), which stays within the paper's
// (k, φ) model with a larger constant. Whenever the list is non-empty the
// batch contains at least one item, so callers never confuse a deep spray
// landing with emptiness.
func (l *List) ApproxPopBatch(out []sched.Item) int {
	if len(out) == 0 || l.size == 0 {
		return 0
	}
	var cur *node
	if l.k == 1 || l.r.Intn(l.k) == 0 {
		cur = l.firstLive()
	} else {
		cur = l.spray()
	}
	n := 0
	for cur != nil && n < len(out) {
		if !cur.dead {
			cur.dead = true
			l.size--
			out[n] = cur.item
			n++
		}
		cur = cur.next[0]
	}
	l.collectPrefix()
	return n
}

// firstLive returns the first non-deleted node. It must only be called when
// size > 0.
func (l *List) firstLive() *node {
	for cur := l.head.next[0]; cur != nil; cur = cur.next[0] {
		if !cur.dead {
			return cur
		}
	}
	// Unreachable when size > 0; return the first node defensively.
	return l.head.next[0]
}

// spray performs the random descending walk and returns a live node near the
// front of the list.
func (l *List) spray() *node {
	start := l.sprayTop
	if start > l.level {
		start = l.level
	}
	cur := l.head
	for lvl := start; lvl >= 0; lvl-- {
		steps := l.r.Intn(l.jumpMax + 1)
		for s := 0; s < steps; s++ {
			if cur.next[lvl] == nil {
				break
			}
			cur = cur.next[lvl]
		}
	}
	// Advance past the sentinel and any logically deleted nodes so the
	// result is always a live node; wrap to the first live node if the walk
	// ran off the populated prefix.
	if cur == l.head {
		cur = l.head.next[0]
	}
	for cur != nil && cur.dead {
		cur = cur.next[0]
	}
	if cur == nil {
		return l.firstLive()
	}
	return cur
}

// collectPrefix physically unlinks the run of logically deleted nodes at the
// front of the list. A node at the very front is the first node at every
// level it appears in, so unlinking is a constant number of pointer moves per
// node and never disturbs towers deeper in the list.
func (l *List) collectPrefix() {
	for first := l.head.next[0]; first != nil && first.dead; first = l.head.next[0] {
		for lvl := 0; lvl < len(first.next); lvl++ {
			if l.head.next[lvl] == first {
				l.head.next[lvl] = first.next[lvl]
			}
		}
	}
	for l.level > 0 && l.head.next[l.level] == nil {
		l.level--
	}
}
