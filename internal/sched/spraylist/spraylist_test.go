package spraylist

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestExactWhenKOne(t *testing.T) {
	l := New(1, rng.New(1))
	prios := []uint32{8, 3, 5, 1, 9, 0}
	for i, p := range prios {
		l.Insert(sched.Item{Task: int32(i), Priority: p})
	}
	sorted := append([]uint32(nil), prios...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, want := range sorted {
		it, ok := l.ApproxGetMin()
		if !ok || it.Priority != want {
			t.Fatalf("k=1 SprayList returned %v, want %d", it, want)
		}
	}
	if !l.Empty() {
		t.Fatal("list not empty after drain")
	}
}

func TestKClamped(t *testing.T) {
	if New(0, rng.New(1)).K() != 1 {
		t.Fatal("k not clamped")
	}
}

func TestEmptyList(t *testing.T) {
	l := New(8, rng.New(2))
	if _, ok := l.ApproxGetMin(); ok {
		t.Fatal("empty list returned an item")
	}
	if l.Len() != 0 || !l.Empty() {
		t.Fatal("empty list misreports size")
	}
}

func TestNoLossNoDuplication(t *testing.T) {
	const n = 3000
	l := New(16, rng.New(3))
	perm := rng.New(4).Perm(n)
	for i, p := range perm {
		l.Insert(sched.Item{Task: int32(i), Priority: uint32(p)})
	}
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
	seen := make([]bool, n)
	count := 0
	for {
		it, ok := l.ApproxGetMin()
		if !ok {
			break
		}
		if seen[it.Task] {
			t.Fatalf("task %d returned twice", it.Task)
		}
		seen[it.Task] = true
		count++
	}
	if count != n {
		t.Fatalf("drained %d, want %d", count, n)
	}
}

func TestSprayRelaxationBounded(t *testing.T) {
	// The empirical mean rank must be modest (order k) and far below n.
	const n = 5000
	const k = 16
	inner := New(k, rng.New(5))
	l := sched.NewInstrumented(inner, n)
	for i := 0; i < n; i++ {
		l.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	for {
		if _, ok := l.ApproxGetMin(); !ok {
			break
		}
	}
	m := l.Metrics()
	if m.Removals != n {
		t.Fatalf("removals = %d, want %d", m.Removals, n)
	}
	if m.MeanRank > 8*k {
		t.Fatalf("mean rank %.1f too large for k=%d", m.MeanRank, k)
	}
	if m.MaxRank > n/5 {
		t.Fatalf("max rank %d suspiciously close to n", m.MaxRank)
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		l := New(1+r.Intn(8), r.Fork())
		live := make(map[uint32]int32)
		nextTask := int32(0)
		nextPrio := uint32(0)
		for op := 0; op < 500; op++ {
			if len(live) == 0 || r.Intn(3) != 0 {
				p := nextPrio
				nextPrio++
				l.Insert(sched.Item{Task: nextTask, Priority: p})
				live[p] = nextTask
				nextTask++
				continue
			}
			it, ok := l.ApproxGetMin()
			if !ok {
				return false
			}
			want, exists := live[it.Priority]
			if !exists || want != it.Task {
				return false
			}
			delete(live, it.Priority)
		}
		// Drain and verify sizes agree.
		for {
			if _, ok := l.ApproxGetMin(); !ok {
				break
			}
		}
		return l.Len() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLockedWrapperMakesItConcurrent(t *testing.T) {
	var s sched.Concurrent = sched.NewLocked(New(4, rng.New(9)))
	s.Insert(sched.Item{Task: 1, Priority: 2})
	if _, ok := s.ApproxGetMin(); !ok {
		t.Fatal("locked spraylist lost its item")
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	l := New(8, rng.New(1))
	for i := 0; i < 4096; i++ {
		l.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, _ := l.ApproxGetMin()
		l.Insert(it)
	}
}
