// Package topk implements the paper's "canonical" k-relaxed scheduler: every
// ApproxGetMin returns an item chosen uniformly at random among the k
// smallest-priority live items (or among all live items if fewer than k
// remain). The rank of a returned item is therefore never larger than k, and
// an item of rank 1 is returned with probability at least 1/k, which is the
// idealized model the paper's analysis (Section 3) is phrased against.
package topk

import (
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
)

// Queue is a sequential-model uniform top-k relaxed scheduler.
type Queue struct {
	heap    *exactheap.Heap
	k       int
	r       *rng.Rand
	scratch []sched.Item
}

var _ sched.Scheduler = (*Queue)(nil)

// New returns a top-k queue with relaxation factor k (values below 1 are
// treated as 1, i.e. an exact queue) using the given random source.
func New(k, capacity int, r *rng.Rand) *Queue {
	if k < 1 {
		k = 1
	}
	return &Queue{
		heap:    exactheap.New(capacity),
		k:       k,
		r:       r,
		scratch: make([]sched.Item, 0, k),
	}
}

// Factory returns a sched.Factory producing top-k queues with the given
// relaxation factor; each queue gets an independent random stream forked from
// r.
func Factory(k int, r *rng.Rand) sched.Factory {
	return func(capacity int) sched.Scheduler { return New(k, capacity, r.Fork()) }
}

// K returns the relaxation factor.
func (q *Queue) K() int { return q.k }

// Insert adds an item.
func (q *Queue) Insert(it sched.Item) { q.heap.Insert(it) }

// ApproxGetMin removes and returns an item chosen uniformly among the top-k
// live items.
func (q *Queue) ApproxGetMin() (sched.Item, bool) {
	if q.heap.Empty() {
		return sched.Item{}, false
	}
	limit := q.k
	if l := q.heap.Len(); l < limit {
		limit = l
	}
	q.scratch = q.scratch[:0]
	for i := 0; i < limit; i++ {
		it, ok := q.heap.ApproxGetMin()
		if !ok {
			break
		}
		q.scratch = append(q.scratch, it)
	}
	pick := q.r.Intn(len(q.scratch))
	chosen := q.scratch[pick]
	for i, it := range q.scratch {
		if i != pick {
			q.heap.Insert(it)
		}
	}
	return chosen, true
}

// Len returns the number of held items.
func (q *Queue) Len() int { return q.heap.Len() }

// Empty reports whether the queue is empty.
func (q *Queue) Empty() bool { return q.heap.Empty() }
