package topk

import (
	"math"
	"sort"
	"testing"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestExactWhenKIsOne(t *testing.T) {
	q := New(1, 16, rng.New(1))
	prios := []uint32{7, 2, 9, 4, 0, 5}
	for i, p := range prios {
		q.Insert(sched.Item{Task: int32(i), Priority: p})
	}
	sorted := append([]uint32(nil), prios...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, want := range sorted {
		it, ok := q.ApproxGetMin()
		if !ok || it.Priority != want {
			t.Fatalf("k=1 queue returned %v, want priority %d", it, want)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after drain")
	}
}

func TestKClampedToOne(t *testing.T) {
	q := New(0, 4, rng.New(1))
	if q.K() != 1 {
		t.Fatalf("K() = %d, want 1", q.K())
	}
	q2 := New(-5, 4, rng.New(1))
	if q2.K() != 1 {
		t.Fatalf("K() = %d, want 1", q2.K())
	}
}

func TestEmptyQueue(t *testing.T) {
	q := New(4, 0, rng.New(3))
	if _, ok := q.ApproxGetMin(); ok {
		t.Fatal("empty queue returned an item")
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("empty queue misreports size")
	}
}

func TestRankNeverExceedsK(t *testing.T) {
	const n = 200
	const k = 8
	q := New(k, n, rng.New(5))
	live := make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
		live[uint32(i)] = true
	}
	for !q.Empty() {
		it, ok := q.ApproxGetMin()
		if !ok {
			t.Fatal("unexpected empty")
		}
		// Rank = 1 + number of live priorities smaller than the returned one.
		rank := 1
		for p := range live {
			if p < it.Priority {
				rank++
			}
		}
		if rank > k {
			t.Fatalf("returned item of rank %d > k=%d", rank, k)
		}
		delete(live, it.Priority)
	}
}

func TestNoItemLostOrDuplicated(t *testing.T) {
	const n = 500
	q := New(16, n, rng.New(7))
	for i := 0; i < n; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	seen := make([]bool, n)
	count := 0
	for !q.Empty() {
		it, ok := q.ApproxGetMin()
		if !ok {
			break
		}
		if seen[it.Task] {
			t.Fatalf("task %d returned twice", it.Task)
		}
		seen[it.Task] = true
		count++
	}
	if count != n {
		t.Fatalf("drained %d items, inserted %d", count, n)
	}
}

func TestUniformChoiceAmongTopK(t *testing.T) {
	// With a static set of k items, each should be returned first with
	// probability ~1/k.
	const k = 4
	const trials = 40000
	counts := make(map[int32]int)
	r := rng.New(11)
	for trial := 0; trial < trials; trial++ {
		q := New(k, k, r.Fork())
		for i := int32(0); i < k; i++ {
			q.Insert(sched.Item{Task: i, Priority: uint32(i)})
		}
		it, _ := q.ApproxGetMin()
		counts[it.Task]++
	}
	expected := float64(trials) / k
	for task, c := range counts {
		dev := math.Abs(float64(c)-expected) / expected
		if dev > 0.05 {
			t.Fatalf("task %d chosen %d times, deviates %.1f%% from uniform", task, c, dev*100)
		}
	}
}

func TestReinsertionKeepsWorking(t *testing.T) {
	q := New(4, 8, rng.New(13))
	for i := 0; i < 8; i++ {
		q.Insert(sched.Item{Task: int32(i), Priority: uint32(i)})
	}
	// Pop and reinsert repeatedly; the queue must neither lose items nor grow.
	for round := 0; round < 100; round++ {
		it, ok := q.ApproxGetMin()
		if !ok {
			t.Fatal("unexpected empty queue")
		}
		q.Insert(it)
		if q.Len() != 8 {
			t.Fatalf("length changed to %d after pop+reinsert", q.Len())
		}
	}
}

func TestFactoryProducesIndependentQueues(t *testing.T) {
	f := Factory(4, rng.New(17))
	a := f(8)
	b := f(8)
	a.Insert(sched.Item{Task: 1, Priority: 1})
	if b.Len() != 0 {
		t.Fatal("factory queues share state")
	}
}
