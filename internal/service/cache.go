package service

import (
	"container/list"
	"sync"

	"relaxsched/internal/graph"
)

// graphCache is a size-bounded LRU cache of built CSR graphs keyed by
// canonical generator spec (GraphSpec.Key). Concurrent requests for the same
// key share one build: the loser of the insertion race waits on the winner's
// in-flight entry instead of generating the graph a second time.
type graphCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element whose Value is *cacheEntry
	hits     int64
	misses   int64
	evicted  int64
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when g/err are set
	g     *graph.Graph
	err   error
}

// newGraphCache returns a cache holding at most capacity graphs. Capacity 0
// disables caching (every Get builds); negative values are treated as 0.
func newGraphCache(capacity int) *graphCache {
	if capacity < 0 {
		capacity = 0
	}
	return &graphCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// Get returns the graph for spec, building it on a miss. The second result
// reports whether the call was served from cache (false for the builder and
// for waiters that piggybacked on an in-flight build). Failed builds are not
// cached: the entry is removed so a later identical submit retries.
func (c *graphCache) Get(spec GraphSpec) (*graph.Graph, bool, error) {
	if c.capacity == 0 {
		g, err := buildGraph(spec)
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return g, false, err
	}
	key := spec.Key()

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		return e.g, true, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.order.PushFront(e)
	c.misses++
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
	c.mu.Unlock()

	// Build outside the lock; other keys proceed concurrently and same-key
	// callers wait on ready.
	e.g, e.err = buildGraph(spec)
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		// Only remove the entry if it is still ours (it may have been
		// evicted, or evicted and replaced, while we were building).
		if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
			c.order.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, false, e.err
	}
	return e.g, false, nil
}

// Stats returns a snapshot of the cache counters.
func (c *graphCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
	}
}
