package service

import (
	"sync"
	"testing"
)

func specN(seed uint64) GraphSpec {
	return GraphSpec{Model: ModelGNP, N: 200, Edges: 600, Seed: seed}
}

func TestCacheHitOnRepeat(t *testing.T) {
	c := newGraphCache(4)
	g1, hit, err := c.Get(specN(1))
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	g2, hit, err := c.Get(specN(1))
	if err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v", hit, err)
	}
	if g1 != g2 {
		t.Fatal("repeat get returned a different graph object")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newGraphCache(2)
	for seed := uint64(1); seed <= 3; seed++ {
		if _, _, err := c.Get(specN(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Seed 1 is the least recently used — it must be the eviction victim.
	if _, hit, err := c.Get(specN(3)); err != nil || !hit {
		t.Fatalf("newest entry evicted: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.Get(specN(1)); err != nil || hit {
		t.Fatalf("oldest entry survived a full cache: hit=%v err=%v", hit, err)
	}
	st := c.Stats()
	if st.Evictions < 1 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.Entries > 2 {
		t.Fatalf("cache over capacity: %+v", st)
	}
}

func TestCacheTouchRefreshesLRUOrder(t *testing.T) {
	c := newGraphCache(2)
	c.Get(specN(1))
	c.Get(specN(2))
	c.Get(specN(1)) // touch 1; now 2 is LRU
	c.Get(specN(3)) // evicts 2
	if _, hit, _ := c.Get(specN(1)); !hit {
		t.Fatal("recently touched entry was evicted")
	}
	if _, hit, _ := c.Get(specN(2)); hit {
		t.Fatal("LRU entry survived")
	}
}

// TestCacheSingleBuildUnderConcurrency: many goroutines asking for the same
// spec must share one build — exactly one miss, and everyone gets the same
// *graph.Graph.
func TestCacheSingleBuildUnderConcurrency(t *testing.T) {
	c := newGraphCache(4)
	const goroutines = 16
	graphs := make([]any, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, _, err := c.Get(GraphSpec{Model: ModelGNP, N: 5000, Edges: 20000, Seed: 42})
			if err != nil {
				t.Error(err)
				return
			}
			graphs[i] = g
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d misses for one spec under concurrency, want 1 (stats %+v)", st.Misses, st)
	}
	for i := 1; i < goroutines; i++ {
		if graphs[i] != graphs[0] {
			t.Fatal("concurrent getters received different graph objects")
		}
	}
}

// TestCacheFailedBuildNotCached: a failing spec is retried (and re-counted
// as a miss) on the next identical request instead of pinning the error.
func TestCacheFailedBuildNotCached(t *testing.T) {
	c := newGraphCache(4)
	// Validates at Get time: gnp with more edges than a simple graph holds.
	bad := GraphSpec{Model: ModelGNP, N: 3, Edges: 100, Seed: 1}
	for i := 0; i < 2; i++ {
		if _, _, err := c.Get(bad); err == nil {
			t.Fatal("impossible spec built")
		}
	}
	st := c.Stats()
	if st.Misses != 2 {
		t.Fatalf("failed build cached: %+v", st)
	}
	if st.Entries != 0 {
		t.Fatalf("failed entry retained: %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newGraphCache(-1)
	for i := 0; i < 2; i++ {
		if _, hit, err := c.Get(specN(1)); err != nil || hit {
			t.Fatalf("disabled cache: hit=%v err=%v", hit, err)
		}
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("disabled cache stats: %+v", st)
	}
}
