package service

import (
	"context"
	"testing"
	"time"
)

// autoTestManager builds a paused auto-mode manager whose control loop is
// not running, so tests drive controlStep by hand against scripted queue
// state — the deterministic complement to the integration e2e.
func autoTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	opts.JobSched = JobSchedAuto
	opts.startPaused = true
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

// TestAutoControlStepTrajectory scripts one full widen/tighten cycle through
// the manager (not the bare controller): a full queue widens k and batch
// step by step up to the depth-capped maximum, then an injected rank-error
// window halves both, retuning the live queue and the shared batch target.
func TestAutoControlStepTrajectory(t *testing.T) {
	// P99SLO is huge so queue-depth is the only widen signal; RankSLO 2 so a
	// scripted window mean of 5 breaches it.
	m := autoTestManager(t, Options{
		Workers: 1, QueueDepth: 4,
		RankSLO: 2, P99SLO: time.Hour, ControlInterval: time.Hour,
	})

	if got := m.autoQueue.K(); got != 1 {
		t.Fatalf("initial k = %d, want 1 (start exact)", got)
	}
	if got := m.tunable.Batch(); got != 1 {
		t.Fatalf("initial batch = %d, want 1", got)
	}

	// Fill the queue to its bound: depth/capacity = 1 ≥ the high-water mark.
	spec := testSpec("mis", "sequential")
	for i := 0; i < 4; i++ {
		if _, err := m.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}

	// MaxK is capped at the queue depth (4): three widens saturate k, and
	// batch keeps climbing by the default step of 8 until its own cap.
	wantK := []int{2, 3, 4, 4}
	wantBatch := []int{9, 17, 25, 33}
	for i, k := range wantK {
		m.controlStep()
		if got := m.autoQueue.K(); got != k {
			t.Fatalf("step %d: queue k = %d, want %d", i+1, got, k)
		}
		if got := m.tunable.Batch(); got != wantBatch[i] {
			t.Fatalf("step %d: batch = %d, want %d", i+1, got, wantBatch[i])
		}
	}

	mm := m.Metrics()
	c := mm.Controller
	if c == nil || c.K != 4 || c.Batch != 33 || c.Widened != 4 || c.Steps != 4 {
		t.Fatalf("controller metrics after widening = %+v", c)
	}
	if mm.JobSched != JobSchedAuto || mm.JobSchedK != 0 {
		t.Fatalf("auto metrics identity: sched=%q k=%d, want auto/0", mm.JobSched, mm.JobSchedK)
	}
	if c.RankSLO != 2 || c.P99SLOMs != float64(time.Hour.Milliseconds()) {
		t.Fatalf("SLO echo = %+v", c)
	}

	// Inject a dispatch window with mean rank error 5 (> SLO 2). The queue
	// is still full, so both signals fire — and the rank breach must win:
	// multiplicative tighten on both knobs.
	m.mu.Lock()
	m.rank.Count += 10
	m.rank.Sum += 50
	m.mu.Unlock()
	m.controlStep()
	if got := m.autoQueue.K(); got != 2 {
		t.Fatalf("k after rank breach = %d, want 2 (halved)", got)
	}
	if got := m.tunable.Batch(); got != 16 {
		t.Fatalf("batch after rank breach = %d, want 16 (halved)", got)
	}
	c = m.Metrics().Controller
	if c.Tightened != 1 || c.RankViolations != 1 {
		t.Fatalf("tighten accounting = %+v", c)
	}

	// The injected window was consumed: with no new dispatches the next
	// step sees no rank signal, and the still-full queue widens again.
	m.controlStep()
	if got := m.autoQueue.K(); got != 3 {
		t.Fatalf("k after recovery step = %d, want 3", got)
	}
}

// TestAutoManagerRunsAndStops: an unpaused auto manager executes real jobs
// (its control loop live), reports a controller section over Metrics, and
// Close stops the loop before the workers without deadlocking.
func TestAutoManagerRunsAndStops(t *testing.T) {
	m, err := NewManager(Options{
		Workers: 2, QueueDepth: 16, JobSched: JobSchedAuto,
		ControlInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("mis", "concurrent")
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		got, err := m.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == StateDone {
			break
		}
		if got.State == StateFailed || got.State == StateCanceled {
			t.Fatalf("job ended %s: %s", got.State, got.Error)
		}
		time.Sleep(time.Millisecond)
	}
	// Let the ticking loop take a few real steps before shutdown.
	time.Sleep(10 * time.Millisecond)
	if c := m.Metrics().Controller; c == nil || c.Steps == 0 {
		t.Fatalf("live control loop took no steps: %+v", c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent, including the control-loop stop.
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStaticSchedulersHaveNoController: non-auto managers carry no tunable,
// no auto queue, and no controller section in Metrics.
func TestStaticSchedulersHaveNoController(t *testing.T) {
	for _, js := range []string{JobSchedExact, JobSchedMultiQueue, JobSchedKBounded, JobSchedFIFO} {
		m, err := NewManager(Options{Workers: 1, QueueDepth: 4, JobSched: js, startPaused: true})
		if err != nil {
			t.Fatal(err)
		}
		mm := m.Metrics()
		if mm.Controller != nil {
			t.Fatalf("%s: unexpected controller section %+v", js, mm.Controller)
		}
		if mm.JobSchedK == 0 {
			t.Fatalf("%s: static JobSchedK suppressed", js)
		}
		if m.tunable != nil || m.autoQueue != nil || m.ctrl != nil {
			t.Fatalf("%s: adaptive machinery built for a static scheduler", js)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		m.Close(ctx)
		cancel()
	}
}
