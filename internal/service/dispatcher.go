package service

import (
	"context"
	"errors"

	"relaxsched/internal/api"
	"relaxsched/internal/trace"
)

// submitRetryAfterMS is the backoff hint attached to queue-full
// rejections: long enough that a retry has a real chance of finding a
// freed slot, short enough that closed-loop clients keep the queue warm.
const submitRetryAfterMS = 100

// Local adapts an in-process Manager to the transport-agnostic
// api.Dispatcher, mapping the manager's sentinel errors onto the wire
// error envelope. It is what makes the in-process manager and an
// api.Client (remote node, or a gateway fronting many) interchangeable
// behind one interface — the HTTP handler, tests and tools are all
// written against api.Dispatcher.
type Local struct {
	M *Manager
}

var _ api.Dispatcher = Local{}

// Submit enqueues a job under the request context's trace ID. Admission
// rejections become envelope errors: queue_full (with a retry hint) and
// draining.
func (l Local) Submit(ctx context.Context, spec api.JobSpec) (api.JobStatus, error) {
	st, err := l.M.SubmitTraced(spec, trace.IDFromContext(ctx))
	switch {
	case err == nil:
		return st, nil
	case errors.Is(err, ErrQueueFull):
		return api.JobStatus{}, &api.Error{Code: api.CodeQueueFull, Message: err.Error(), RetryAfterMS: submitRetryAfterMS}
	case errors.Is(err, ErrDraining):
		return api.JobStatus{}, &api.Error{Code: api.CodeDraining, Message: err.Error()}
	case errors.Is(err, ErrLogUnavailable):
		return api.JobStatus{}, api.WrapError(err, api.CodeInternal)
	default:
		return api.JobStatus{}, api.WrapError(err, api.CodeInvalidRequest)
	}
}

// Status reports a job's state; unknown ids become unknown_job (404).
func (l Local) Status(_ context.Context, id int64) (api.JobStatus, error) {
	st, err := l.M.Status(id)
	switch {
	case err == nil:
		return st, nil
	case errors.Is(err, ErrUnknownJob):
		return api.JobStatus{}, api.WrapError(err, api.CodeUnknownJob)
	default:
		return api.JobStatus{}, api.WrapError(err, api.CodeInternal)
	}
}

// JobTrace returns a job's lifecycle span timeline; ids outside the
// bounded trace ring become unknown_job (404).
func (l Local) JobTrace(_ context.Context, id int64) (api.JobTrace, error) {
	tr, err := l.M.Trace(id)
	switch {
	case err == nil:
		return tr, nil
	case errors.Is(err, ErrUnknownJob):
		return api.JobTrace{}, api.WrapError(err, api.CodeUnknownJob)
	default:
		return api.JobTrace{}, api.WrapError(err, api.CodeInternal)
	}
}

// Workloads lists the registry.
func (l Local) Workloads(context.Context) ([]api.WorkloadInfo, error) {
	return Workloads(), nil
}

// Metrics snapshots the manager's counters.
func (l Local) Metrics(context.Context) (api.Metrics, error) {
	return l.M.Metrics(), nil
}

// Drain stops admission without blocking for the drain (the manager's
// BeginDrain); the process-level Close still owns waiting for workers.
func (l Local) Drain(context.Context) error {
	l.M.BeginDrain()
	return nil
}
